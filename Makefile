# Test tiers. tier1 is the gate every change must keep green (build + vet +
# tests); race adds the race-detector sweep covering the concurrent session
# core, then re-runs the chaos/fault suites under -race explicitly so the
# failure paths (sentinel death, connection drops, deadlines, torn frames)
# are exercised with the detector on even if the default sweep is filtered;
# conformance runs the backend contract suite — every backend directly and
# through every strategy — under -race; bench-smoke compiles and single-shots
# the parallel and allocation benchmarks so they cannot bit-rot; bench-json
# regenerates the committed Figure 6 JSON report.

GO ?= go
BENCH_JSON ?= BENCH_9.json
BENCH_BASE ?= BENCH_8.json

.PHONY: all tier1 race conformance bench-smoke bench-json bench-compare

all: tier1 race bench-smoke

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	GOOS=darwin $(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'Chaos|Fault|Proxy|Partial|Torn|SentinelDeath|StalledSentinel|Mux|Client' \
		./internal/ipc ./internal/core ./internal/remote ./internal/faultinject ./internal/bench
	$(GO) test -race -count=1 -run 'Tenant|Drain|Daemon|Sigterm|Signal' \
		./internal/daemon ./internal/remote ./cmd/afd
	$(GO) test -race -count=1 -run 'Fleet|Lease|Refusal|Map' \
		./internal/fleet ./internal/remote ./internal/cache
	$(GO) test -race -count=1 -run 'MPSC|Numa|Lane|Submitter|URing' \
		./internal/shm ./internal/core ./internal/wire

# The backend contract suite: conformance profiles over every backend kind
# directly (package backend) and end-to-end through each strategy via the
# manifest backend= param (package core), with the race detector on.
conformance:
	$(GO) test -race -count=1 -run 'Conformance|TestBackend' \
		./internal/backend/... ./internal/core ./internal/remote ./internal/fleet

# Smoke-run the benchmark panels: the parallel sweep plus the wire
# allocation benchmarks (which assert the zero-copy framing stays
# allocation-free), the small-block sequential panel, and a short
# pipe-vs-shm transport sweep so the syscall-economy cells cannot bit-rot.
bench-smoke:
	$(GO) vet ./...
	$(GO) test -run NONE -bench BenchmarkParallel -benchtime 1x ./internal/bench
	$(GO) test -run NONE -bench 'BenchmarkWriteRequest|BenchmarkReadResponse' -benchtime 100x ./internal/wire
	$(GO) test -run NONE -bench BenchmarkSmallBlockSequential -benchtime 10x ./internal/bench
	$(GO) test -run NONE -bench BenchmarkOpenClose -benchtime 3x ./internal/bench
	$(GO) test -run NONE -bench BenchmarkShardedCacheParallelHits -benchtime 100x ./internal/cache
	$(GO) run ./cmd/afbench -transport sweep -panel c -op read -blocks 64 -ops 200
	$(GO) run ./cmd/afbench -fleet 1,2 -ops 200

# Regenerate the machine-readable benchmark report committed alongside
# EXPERIMENTS.md: the Figure 6 panels plus the concurrency sweeps (with
# frame-batching amortization), the many-tenant session sweep (admission,
# quota rejections, drain), the fleet-scale session cohorts (MPSC lane
# plane descriptor economy at 64/256/1024 sessions), and the open/close
# churn sweep. Override BENCH_JSON to write elsewhere.
bench-json:
	$(GO) run ./cmd/afbench -full -json $(BENCH_JSON)

# Diff the current report against the previous PR's committed baseline as a
# per-cell percentage table. Override BENCH_BASE/BENCH_JSON to compare other
# pairs (v1 reports compare on their Figure 6 cells only).
bench-compare:
	$(GO) run ./cmd/afbench -compare $(BENCH_BASE),$(BENCH_JSON)
