# Test tiers. tier1 is the gate every change must keep green; race adds the
# vet + race-detector sweep covering the concurrent session core; bench-smoke
# compiles and single-shots the parallel benchmarks so they cannot bit-rot.

GO ?= go

.PHONY: all tier1 race bench-smoke

all: tier1 race bench-smoke

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run NONE -bench BenchmarkParallel -benchtime 1x ./internal/bench
