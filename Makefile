# Test tiers. tier1 is the gate every change must keep green; race adds the
# vet + race-detector sweep covering the concurrent session core; bench-smoke
# compiles and single-shots the parallel and allocation benchmarks so they
# cannot bit-rot; bench-json regenerates the committed Figure 6 JSON report.

GO ?= go
BENCH_JSON ?= BENCH_2.json

.PHONY: all tier1 race bench-smoke bench-json

all: tier1 race bench-smoke

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Smoke-run the benchmark panels: the parallel sweep plus the wire
# allocation benchmarks (which assert the zero-copy framing stays
# allocation-free) and the small-block sequential panel.
bench-smoke:
	$(GO) vet ./...
	$(GO) test -run NONE -bench BenchmarkParallel -benchtime 1x ./internal/bench
	$(GO) test -run NONE -bench 'BenchmarkWriteRequest|BenchmarkReadResponse' -benchtime 100x ./internal/wire
	$(GO) test -run NONE -bench BenchmarkSmallBlockSequential -benchtime 10x ./internal/bench

# Regenerate the machine-readable Figure 6 report committed alongside
# EXPERIMENTS.md. Override BENCH_JSON to write elsewhere.
bench-json:
	$(GO) run ./cmd/afbench -json $(BENCH_JSON)
