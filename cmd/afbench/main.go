// Command afbench regenerates the paper's Figure 6 with its exact
// methodology: for every panel — (a) remote source, (b) on-disk cache,
// (c) in-memory cache — it times 1000 fixed-size-block Read and Write calls
// per implementation strategy and block size, printing one table per panel.
//
//	afbench                  # all six panels, 1000 ops per point
//	afbench -panel a -op read
//	afbench -ops 200 -process -baseline
//
// With -parallel it instead sweeps concurrent clients over one shared handle
// per strategy, reporting aggregate throughput and speedup:
//
//	afbench -parallel 1,4,16 -op read
//
// With -chaos it sweeps connection-drop rates over the remote path through a
// fault-injecting proxy, reporting recovery latency and surviving throughput:
//
//	afbench -chaos 0,0.01,0.05,0.1 -ops 500
//
// With -churn it sweeps open/close cycles — cold procctl versus the warm
// sentinel pool versus the in-process strategies:
//
//	afbench -churn 100 -pool 4
//
// With -backend it sweeps storage backends behind the same thread-strategy
// sentinel (the manifest backend= parameter), isolating the seam's cost:
//
//	afbench -backend sweep
//	afbench -backend mem,remote -ops 500
//
// With -tenants it sweeps concurrent sessions against the daemon's session
// registry — admission, per-tenant quota rejections, and graceful-drain
// latency at each concurrency target:
//
//	afbench -tenants 64,1024
//
// With -fleet it sweeps sharded FileServer fleets — aggregate read
// throughput of 16 clients against 1/2/4 bandwidth-capped shards, plus a
// hot-file replication pair:
//
//	afbench -fleet 1,2,4
//
// With -sessions it sweeps fleet-scale session cohorts — N concurrent
// sessions multiplexed over the MPSC lane plane versus dedicated shm and
// pipe sentinels, with the data plane's descriptor deltas per cohort:
//
//	afbench -sessions 64,256,1024
//
// With -full it runs the Figure 6 panels, a remote-path concurrency sweep,
// the many-tenant session sweep, the fleet scaling sweep, and the churn
// sweep, merging everything into one JSON report:
//
//	afbench -full -json BENCH_3.json
//
// -compare diffs two such reports; -cpuprofile/-memprofile capture pprof
// profiles of whichever mode runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/activefile/sentinel"
	"repro/internal/bench"
)

func main() {
	sentinel.MaybeChild() // afbench spawns itself for the process strategies
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	flags := flag.NewFlagSet("afbench", flag.ContinueOnError)
	var (
		panel       = flags.String("panel", "all", `panel to run: "a" (remote), "b" (disk), "c" (memory), or "all"`)
		op          = flags.String("op", "both", `operation: "read", "write", or "both"`)
		ops         = flags.Int("ops", bench.DefaultOps, "operations per data point")
		blocks      = flags.String("blocks", "", "comma-separated block sizes (default 8,32,128,512,2048)")
		process     = flags.Bool("process", false, "include the plain process strategy (no control channel)")
		baseline    = flags.Bool("baseline", true, "include the no-sentinel baseline series")
		parallel    = flags.String("parallel", "", "comma-separated concurrent-client counts (e.g. 1,4,16); sweeps parallel throughput instead of Figure 6")
		chaos       = flags.String("chaos", "", "comma-separated connection-drop rates (e.g. 0,0.01,0.1); sweeps fault recovery instead of Figure 6")
		chaosSeed   = flags.Int64("chaos-seed", 1, "seed for the chaos fault schedule")
		latency     = flags.Duration("latency", 0, "injected remote-service latency per operation (e.g. 200us), simulating a distant source")
		jsonPath    = flags.String("json", "", "also write the Figure 6 results as a machine-readable JSON report to this file")
		transport   = flags.String("transport", "", `control-channel carrier for the procctl strategies: "pipe", "shm", or "sweep" to run the pipe-vs-shm comparison instead of Figure 6`)
		backends    = flags.String("backend", "", `sweep per-backend cost instead of Figure 6: comma-separated backend kinds (mem,nativefs,rofs,errorfs,remote) or "sweep" for all`)
		readAhead   = flags.Bool("readahead", true, "enable adaptive read-ahead in the sentinel strategies (ablation switch)")
		writeBehind = flags.Bool("writebehind", false, "enable write coalescing in the sentinel strategies")
		tenants     = flags.String("tenants", "", "comma-separated concurrent-session counts (e.g. 64,1024); sweeps the daemon's multi-tenant session layer instead of Figure 6")
		fleetCells  = flags.String("fleet", "", "comma-separated shard counts (e.g. 1,2,4); sweeps sharded-fleet scaling instead of Figure 6")
		fleetBW     = flags.Int("fleet-bw", bench.DefaultFleetBandwidthMB, "per-shard bandwidth cap for the fleet sweep in MB/s (negative = uncapped)")
		sessions    = flags.String("sessions", "", "comma-separated session-cohort sizes (e.g. 64,256,1024); sweeps fleet-scale session multiplexing instead of Figure 6")
		churn       = flags.Int("churn", 0, "sweep open/close churn with this many opens per cell instead of Figure 6")
		pool        = flags.Int("pool", bench.DefaultChurnPool, "warm sentinel pool size for the churn sweep's pooled cell")
		full        = flags.Bool("full", false, "run Figure 6 + a remote concurrency sweep + the churn sweep, merged into one JSON report")
		compare     = flags.String("compare", "", `diff two JSON reports ("old.json,new.json") and exit`)
		cpuprofile  = flags.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile  = flags.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			return fmt.Errorf(`-compare wants "old.json,new.json", got %q`, *compare)
		}
		return bench.CompareFiles(os.Stdout, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "afbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "afbench: memprofile:", err)
			}
		}()
	}

	params := map[string]string{}
	if !*readAhead {
		params["readahead"] = "false"
	}
	if *writeBehind {
		params["writebehind"] = "true"
	}
	transportSweep := false
	switch *transport {
	case "":
	case "pipe", "shm":
		params["transport"] = *transport
	case "sweep":
		transportSweep = true
	default:
		return fmt.Errorf(`unknown transport %q (want "pipe", "shm", or "sweep")`, *transport)
	}
	if len(params) == 0 {
		params = nil
	}

	opts := bench.FigureOptions{
		Ops:             *ops,
		IncludeProcess:  *process,
		IncludeBaseline: *baseline,
		Params:          params,
	}
	switch *panel {
	case "all":
	case "a":
		opts.Paths = []bench.CachePath{bench.PathRemote}
	case "b":
		opts.Paths = []bench.CachePath{bench.PathDisk}
	case "c":
		opts.Paths = []bench.CachePath{bench.PathMemory}
	default:
		return fmt.Errorf("unknown panel %q", *panel)
	}
	switch *op {
	case "both":
	case "read":
		opts.OpsFilter = bench.OpRead
	case "write":
		opts.OpsFilter = bench.OpWrite
	default:
		return fmt.Errorf("unknown op %q", *op)
	}
	if *blocks != "" {
		for _, part := range strings.Split(*blocks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad block size %q", part)
			}
			opts.Blocks = append(opts.Blocks, n)
		}
	}

	var rates []float64
	if *chaos != "" {
		for _, part := range strings.Split(*chaos, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("bad chaos rate %q", part)
			}
			rates = append(rates, f)
		}
	}

	var tenantCells []int
	if *tenants != "" {
		for _, part := range strings.Split(*tenants, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad tenant session count %q", part)
			}
			tenantCells = append(tenantCells, n)
		}
	}

	var sessionCounts []int
	if *sessions != "" {
		for _, part := range strings.Split(*sessions, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad session cohort size %q", part)
			}
			sessionCounts = append(sessionCounts, n)
		}
	}

	var fleetShards []int
	if *fleetCells != "" {
		for _, part := range strings.Split(*fleetCells, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad fleet shard count %q", part)
			}
			fleetShards = append(fleetShards, n)
		}
	}

	var degrees []int
	if *parallel != "" {
		for _, part := range strings.Split(*parallel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad parallel degree %q", part)
			}
			degrees = append(degrees, n)
		}
	}

	dir, err := os.MkdirTemp("", "afbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	runner, err := bench.NewRunner(dir)
	if err != nil {
		return err
	}
	defer runner.Close()

	if *latency > 0 {
		runner.SetRemoteLatency(*latency)
	}

	if *full {
		return runFull(runner, opts, *ops, *churn, *pool, tenantCells, fleetShards, *fleetBW, sessionCounts, params, *jsonPath)
	}

	if sessionCounts != nil {
		sopts := bench.SessionsOptions{Counts: sessionCounts, Params: params}
		results, err := runner.RunSessions(sopts)
		if err != nil {
			return err
		}
		if err := bench.WriteSessionsTable(os.Stdout, results); err != nil {
			return err
		}
		if *jsonPath != "" {
			rep := bench.BuildReport(nil, *ops, params)
			rep.AddSessions(results)
			if err := rep.WriteJSONFile(*jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	}

	if fleetShards != nil {
		fopts := bench.FleetOptions{Shards: fleetShards, BandwidthMB: *fleetBW}
		results, err := runner.RunFleet(fopts)
		if err != nil {
			return err
		}
		if err := bench.WriteFleetTable(os.Stdout, fopts, results); err != nil {
			return err
		}
		if *jsonPath != "" {
			rep := bench.BuildReport(nil, *ops, params)
			rep.AddFleet(fopts, results)
			if err := rep.WriteJSONFile(*jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	}

	if tenantCells != nil {
		topts := bench.TenantOptions{Sessions: tenantCells}
		results, err := runner.RunTenants(topts)
		if err != nil {
			return err
		}
		if err := bench.WriteTenantTable(os.Stdout, topts, results); err != nil {
			return err
		}
		if *jsonPath != "" {
			rep := bench.BuildReport(nil, *ops, params)
			rep.AddTenants(results)
			if err := rep.WriteJSONFile(*jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	}

	if *backends != "" {
		bopts := bench.BackendOptions{Ops: *ops, Blocks: opts.Blocks}
		if *backends != "sweep" && *backends != "all" {
			for _, part := range strings.Split(*backends, ",") {
				bopts.Names = append(bopts.Names, strings.TrimSpace(part))
			}
		}
		results, err := runner.RunBackends(bopts)
		if err != nil {
			return err
		}
		if err := bench.WriteBackendTable(os.Stdout, bopts.Strategy, *ops, results); err != nil {
			return err
		}
		if *jsonPath != "" {
			rep := bench.BuildReport(nil, *ops, params)
			rep.AddBackends(bopts.Strategy, results)
			if err := rep.WriteJSONFile(*jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	}

	if transportSweep {
		topts := bench.TransportOptions{Ops: *ops, Blocks: opts.Blocks, Params: params}
		if len(opts.Paths) == 1 {
			topts.Path = opts.Paths[0]
		}
		results, err := runner.RunTransports(topts)
		if err != nil {
			return err
		}
		if err := bench.WriteTransportTable(os.Stdout, topts.Path, *ops, results); err != nil {
			return err
		}
		econ, err := runner.RunTransportEconomy(topts)
		if err != nil {
			return err
		}
		if err := bench.WriteTransportEconomyTable(os.Stdout, topts.Path, *ops, econ); err != nil {
			return err
		}
		if *jsonPath != "" {
			rep := bench.BuildReport(nil, *ops, params)
			rep.AddTransports(topts.Path, results)
			rep.AddTransportEconomy(topts.Path, econ)
			if err := rep.WriteJSONFile(*jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	}

	if *churn > 0 {
		fmt.Printf("active files — open/close churn (%d opens per cell)\n\n", *churn)
		results, err := runner.RunChurn(bench.ChurnOptions{Opens: *churn, Pool: *pool, Params: params})
		if err != nil {
			return err
		}
		return bench.WriteChurnTable(os.Stdout, results)
	}

	if rates != nil {
		copts := bench.ChaosOptions{Rates: rates, Ops: *ops, Seed: *chaosSeed}
		if len(opts.Blocks) > 0 {
			copts.BlockSize = opts.Blocks[0]
		}
		fmt.Printf("active files — chaos sweep, remote path (%d ops per point)\n\n", *ops)
		points, err := runner.RunChaos(copts)
		if err != nil {
			return err
		}
		return bench.WriteChaosTable(os.Stdout, points)
	}

	if degrees != nil {
		popts := bench.ParallelOptions{
			Ops:       *ops,
			Degrees:   degrees,
			OpsFilter: opts.OpsFilter,
			Params:    params,
		}
		if len(opts.Blocks) > 0 {
			popts.BlockSize = opts.Blocks[0]
		}
		if len(opts.Paths) == 1 {
			popts.Path = opts.Paths[0]
		}
		fmt.Printf("active files — parallel clients (%d ops per point)\n\n", *ops)
		panels, err := runner.RunParallel(popts)
		if err != nil {
			return err
		}
		for _, p := range panels {
			if err := p.WriteTable(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("active files — Figure 6 reproduction (%d ops per point)\n\n", *ops)
	panels, err := runner.RunFigure6(opts)
	if err != nil {
		return err
	}
	for _, p := range panels {
		if err := p.WriteTable(os.Stdout); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		rep := bench.BuildReport(panels, *ops, params)
		if err := rep.WriteJSONFile(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// runFull runs the whole battery — Figure 6, a remote-path concurrency sweep
// per small block size (where command-channel batching shows), the
// many-tenant session sweep, and the open/close churn sweep — and merges
// everything into one JSON report.
func runFull(runner *bench.Runner, opts bench.FigureOptions, ops, churnOpens, pool int, tenantCells, fleetShards []int, fleetBW int, sessionCounts []int, params map[string]string, jsonPath string) error {
	fmt.Printf("active files — full battery (%d ops per point)\n\n", ops)
	panels, err := runner.RunFigure6(opts)
	if err != nil {
		return err
	}
	for _, p := range panels {
		if err := p.WriteTable(os.Stdout); err != nil {
			return err
		}
	}
	rep := bench.BuildReport(panels, ops, params)

	// The concurrency sweeps disable read-ahead: the prefetcher absorbs
	// sequential parallel reads before they reach the mux, which would hide
	// exactly the command-channel batching these sweeps exist to measure.
	parallelParams := map[string]string{}
	for k, v := range params {
		parallelParams[k] = v
	}
	parallelParams["readahead"] = "false"
	for _, block := range []int{8, 32, 128} {
		pPanels, err := runner.RunParallel(bench.ParallelOptions{
			Ops:       ops,
			BlockSize: block,
			Degrees:   []int{1, 4, 16},
			Path:      bench.PathRemote,
			OpsFilter: bench.OpRead,
			Params:    parallelParams,
		})
		if err != nil {
			return err
		}
		for _, p := range pPanels {
			if err := p.WriteTable(os.Stdout); err != nil {
				return err
			}
		}
		rep.AddParallel(pPanels)
	}

	// Carrier sweep: the same procctl cells over pipes and shm rings. Like
	// the concurrency sweeps, read-ahead is off inside RunTransports so the
	// carrier's round trip is on the measured path.
	tResults, err := runner.RunTransports(bench.TransportOptions{Ops: ops, Params: params})
	if err != nil {
		return err
	}
	if err := bench.WriteTransportTable(os.Stdout, bench.PathMemory, ops, tResults); err != nil {
		return err
	}
	rep.AddTransports(bench.PathMemory, tResults)

	// Syscall-economy cells: the carriers' wakeup counters under pipelined
	// load — doorbells per frame on the rings, frames per read wakeup on the
	// pipes.
	econ, err := runner.RunTransportEconomy(bench.TransportOptions{Ops: ops, Params: params})
	if err != nil {
		return err
	}
	if err := bench.WriteTransportEconomyTable(os.Stdout, bench.PathMemory, ops, econ); err != nil {
		return err
	}
	rep.AddTransportEconomy(bench.PathMemory, econ)

	// Backend sweep: the same thread-strategy sentinel over every backend
	// kind, isolating what the storage seam itself costs.
	beResults, err := runner.RunBackends(bench.BackendOptions{Ops: ops})
	if err != nil {
		return err
	}
	if err := bench.WriteBackendTable(os.Stdout, 0, ops, beResults); err != nil {
		return err
	}
	rep.AddBackends(0, beResults)

	// Many-tenant sweep: the daemon's session registry under concurrent
	// sessions — admission latency, quota rejections, drain. The top cell
	// holds over a thousand sessions open at once.
	tOpts := bench.TenantOptions{Sessions: tenantCells}
	tenResults, err := runner.RunTenants(tOpts)
	if err != nil {
		return err
	}
	if err := bench.WriteTenantTable(os.Stdout, tOpts, tenResults); err != nil {
		return err
	}
	rep.AddTenants(tenResults)

	// Fleet scaling sweep: aggregate throughput against 1/2/4 bandwidth-
	// capped shards, plus the hot-file replication pair.
	fOpts := bench.FleetOptions{Shards: fleetShards, BandwidthMB: fleetBW}
	fResults, err := runner.RunFleet(fOpts)
	if err != nil {
		return err
	}
	if err := bench.WriteFleetTable(os.Stdout, fOpts, fResults); err != nil {
		return err
	}
	rep.AddFleet(fOpts, fResults)

	// Fleet-scale session sweep: cohorts of concurrent sessions over the MPSC
	// lane plane (with descriptor deltas) against the process-per-session
	// baselines.
	seResults, err := runner.RunSessions(bench.SessionsOptions{Counts: sessionCounts, Params: params})
	if err != nil {
		return err
	}
	if err := bench.WriteSessionsTable(os.Stdout, seResults); err != nil {
		return err
	}
	rep.AddSessions(seResults)

	if churnOpens <= 0 {
		churnOpens = bench.DefaultChurnOpens
	}
	churnResults, err := runner.RunChurn(bench.ChurnOptions{Opens: churnOpens, Pool: pool, Params: params})
	if err != nil {
		return err
	}
	if err := bench.WriteChurnTable(os.Stdout, churnResults); err != nil {
		return err
	}
	rep.AddChurn(churnResults)

	if jsonPath != "" {
		if err := rep.WriteJSONFile(jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
