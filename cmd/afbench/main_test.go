package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/activefile/sentinel"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	return <-done, ferr
}

func TestRunSmallPanel(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-panel", "c", "-op", "read", "-ops", "20", "-blocks", "8,64"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 6(c) Read") {
		t.Errorf("missing panel title:\n%s", out)
	}
	for _, col := range []string{"procctl", "thread", "direct", "baseline"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %q:\n%s", col, out)
		}
	}
	if strings.Contains(out, "Write") {
		t.Errorf("-op read produced a Write panel:\n%s", out)
	}
	if !strings.Contains(out, "\n8  ") && !strings.Contains(out, "\n8 ") {
		t.Errorf("missing block-8 row:\n%s", out)
	}
}

func TestRunParallelSweep(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-parallel", "1,2", "-op", "read", "-ops", "32", "-blocks", "64"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"parallel clients", "x1", "x2", "speedup@2", "procctl", "thread", "direct"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Figure 6") {
		t.Errorf("-parallel still produced Figure 6 panels:\n%s", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad panel", args: []string{"-panel", "z"}},
		{name: "bad op", args: []string{"-op", "fsync"}},
		{name: "bad blocks", args: []string{"-blocks", "8,oops"}},
		{name: "negative block", args: []string{"-blocks", "-4"}},
		{name: "bad parallel", args: []string{"-parallel", "1,zero"}},
		{name: "negative parallel", args: []string{"-parallel", "-2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded", tt.args)
			}
		})
	}
}
