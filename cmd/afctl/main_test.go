package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/activefile/sentinel"
	"repro/activefile/services"
	"repro/internal/daemon"
	"repro/internal/wire"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	out := <-done
	return out, ferr
}

// feedStdin runs fn with os.Stdin fed from data.
func feedStdin(t *testing.T, data string, fn func() error) error {
	t.Helper()
	old := os.Stdin
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString(data)
		w.Close()
	}()
	return fn()
}

func TestCreateWriteCatRawLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "n.af")

	if err := run([]string{"create", "-program", "filter:upper", "-cache", "disk", path}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := feedStdin(t, "quiet words", func() error {
		return run([]string{"write", path})
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"cat", path})
	})
	if err != nil || out != "quiet words" {
		t.Errorf("cat = (%q, %v)", out, err)
	}
	out, err = captureStdout(t, func() error {
		return run([]string{"raw", path})
	})
	if err != nil || out != "QUIET WORDS" {
		t.Errorf("raw = (%q, %v)", out, err)
	}
}

func TestStatOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.af")
	if err := run([]string{"create", "-program", "compress", "-strategy", "direct",
		"-param", "codec=lz", path}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"stat", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"program:  compress", "strategy: direct", "codec=lz"} {
		if !strings.Contains(out, want) {
			t.Errorf("stat output missing %q:\n%s", want, out)
		}
	}
}

func TestCopyMoveRemoveList(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.af")
	if err := run([]string{"create", src}); err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(dir, "cp.af")
	if err := run([]string{"cp", src, cp}); err != nil {
		t.Fatalf("cp: %v", err)
	}
	mv := filepath.Join(dir, "mv.af")
	if err := run([]string{"mv", cp, mv}); err != nil {
		t.Fatalf("mv: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"ls", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "src.af") || !strings.Contains(out, "mv.af") {
		t.Errorf("ls = %q", out)
	}
	if err := run([]string{"rm", mv}); err != nil {
		t.Fatalf("rm: %v", err)
	}
	out, _ = captureStdout(t, func() error { return run([]string{"ls", dir}) })
	if strings.Contains(out, "mv.af") {
		t.Errorf("ls after rm still shows mv.af: %q", out)
	}
}

func TestControlCommand(t *testing.T) {
	dir := t.TempDir()
	srv := services.NewQuoteServer([]services.Quote{{Symbol: "CLI", Cents: 100}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := filepath.Join(dir, "t.af")
	if err := run([]string{"create", "-program", "quotes", "-nodata",
		"-param", "addrs=" + addr, path}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"ctl", path, "refresh"})
	})
	if err != nil || !strings.Contains(out, "refreshed") {
		t.Errorf("ctl refresh = (%q, %v)", out, err)
	}
	if err := run([]string{"ctl", path, "bogus-command"}); err == nil {
		t.Error("bogus control command succeeded")
	}
	if err := run([]string{"ctl", path}); err == nil {
		t.Error("ctl without command succeeded")
	}
}

func TestUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no command", args: nil},
		{name: "unknown command", args: []string{"explode"}},
		{name: "create no path", args: []string{"create"}},
		{name: "create bad strategy", args: []string{"create", "-strategy", "kernel", "x.af"}},
		{name: "create bad cache", args: []string{"create", "-cache", "l3", "x.af"}},
		{name: "create bad param", args: []string{"create", "-param", "noequals", "x.af"}},
		{name: "stat no path", args: []string{"stat"}},
		{name: "cp one arg", args: []string{"cp", "only.af"}},
		{name: "rm no arg", args: []string{"rm"}},
		{name: "ls too many", args: []string{"ls", "a", "b"}},
		{name: "cat missing", args: []string{"cat", "/does/not/exist.af"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestWriteViaProcessStrategy(t *testing.T) {
	// Exercises the subprocess path through the CLI: the child is a re-exec
	// of this test binary via sentinel.MaybeChild.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.af")
	if err := run([]string{"create", "-cache", "disk", path}); err != nil {
		t.Fatal(err)
	}
	if err := feedStdin(t, "through a subprocess", func() error {
		return run([]string{"write", "-strategy", "process", path})
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"raw", path})
	})
	if err != nil || out != "through a subprocess" {
		t.Errorf("raw = (%q, %v)", out, err)
	}
}

// TestStatsCommand queries a live registry-backed stats endpoint the way a
// daemon exports it and checks both table and raw-JSON rendering.
func TestStatsCommand(t *testing.T) {
	reg := daemon.NewRegistry(daemon.Quotas{MaxSessions: 1})
	sess, err := reg.Admit("acme")
	if err != nil {
		t.Fatal(err)
	}
	done, err := sess.Begin(wire.OpRead, 64)
	if err != nil {
		t.Fatal(err)
	}
	done(nil, 64)
	if _, err := reg.Admit("acme"); err == nil {
		t.Fatal("quota not enforced in fixture")
	}
	srv := httptest.NewServer(reg)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	out, err := captureStdout(t, func() error {
		return run([]string{"stats", addr})
	})
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"serving", "acme", "read"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	raw, err := captureStdout(t, func() error {
		return run([]string{"stats", "-json", addr})
	})
	if err != nil {
		t.Fatalf("stats -json: %v", err)
	}
	var st daemon.Stats
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatalf("stats -json not decodable: %v", err)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].RejectedQuota != 1 {
		t.Errorf("tenants = %+v", st.Tenants)
	}

	if err := run([]string{"stats"}); err == nil {
		t.Error("stats with no address succeeded")
	}
	if err := run([]string{"stats", "127.0.0.1:1"}); err == nil {
		t.Error("stats against a dead endpoint succeeded")
	}
}
