// Command afctl creates and manipulates active files on disk.
//
//	afctl create -program filter:upper -cache disk notes.af
//	afctl stat notes.af
//	afctl ctl ticker.af refresh              # program control commands
//	afctl write notes.af < draft.txt     # through the sentinel
//	afctl cat notes.af                   # through the sentinel
//	afctl raw notes.af                   # the stored data part, unfiltered
//	afctl cp notes.af copy.af
//	afctl mv copy.af moved.af
//	afctl rm moved.af
//	afctl ls .
//	afctl stats 127.0.0.1:7070       # query a running afd's -stats endpoint
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/internal/daemon"
)

func main() {
	sentinel.MaybeChild() // afctl spawns itself for process-strategy opens
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: afctl <create|stat|cat|raw|write|ctl|cp|mv|rm|ls|stats> ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "create":
		return runCreate(rest)
	case "stat":
		return runStat(rest)
	case "cat":
		return runCat(rest)
	case "raw":
		return runRaw(rest)
	case "write":
		return runWrite(rest)
	case "ctl":
		return runControl(rest)
	case "cp":
		return twoArg(rest, "cp", activefile.Copy)
	case "mv":
		return twoArg(rest, "mv", activefile.Rename)
	case "rm":
		return oneArg(rest, "rm", activefile.Remove)
	case "ls":
		return runList(rest)
	case "stats":
		return runStats(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseStrategy(s string) (activefile.Strategy, error) {
	switch s {
	case "", "default":
		return activefile.StrategyDefault, nil
	case "process":
		return activefile.StrategyProcess, nil
	case "procctl":
		return activefile.StrategyProcessControl, nil
	case "thread":
		return activefile.StrategyThread, nil
	case "direct":
		return activefile.StrategyDirect, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func parseCache(s string) (activefile.CacheMode, error) {
	switch s {
	case "", "default":
		return activefile.CacheDefault, nil
	case "none":
		return activefile.CacheNone, nil
	case "disk":
		return activefile.CacheDisk, nil
	case "memory":
		return activefile.CacheMemory, nil
	default:
		return 0, fmt.Errorf("unknown cache mode %q", s)
	}
}

// paramList collects repeated -param key=value flags.
type paramList map[string]string

func (p paramList) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramList) Set(v string) error {
	key, value, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("param %q is not key=value", v)
	}
	p[key] = value
	return nil
}

func runCreate(args []string) error {
	flags := flag.NewFlagSet("create", flag.ContinueOnError)
	var (
		programName = flags.String("program", "passthrough", "sentinel program name")
		execPath    = flags.String("exec", "", "standalone sentinel executable (process strategies)")
		strategyStr = flags.String("strategy", "", "default strategy: process|procctl|thread|direct")
		cacheStr    = flags.String("cache", "", "cache mode: none|disk|memory")
		srcKind     = flags.String("source-kind", "", "remote source kind (tcp)")
		srcAddr     = flags.String("source-addr", "", "remote source address")
		srcPath     = flags.String("source-path", "", "remote source object name")
		noData      = flags.Bool("nodata", false, "create without a data part")
	)
	params := make(paramList)
	flags.Var(params, "param", "program parameter key=value (repeatable)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl create [flags] <path.af>")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	cacheMode, err := parseCache(*cacheStr)
	if err != nil {
		return err
	}
	def := activefile.Definition{
		Program:  activefile.ProgramSpec{Name: *programName, Exec: *execPath},
		Strategy: strategy,
		Cache:    cacheMode,
		Source:   activefile.SourceSpec{Kind: *srcKind, Addr: *srcAddr, Path: *srcPath},
		NoData:   *noData,
	}
	if len(params) > 0 {
		def.Params = params
	}
	return activefile.Create(flags.Arg(0), def)
}

func runStat(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: afctl stat <path.af>")
	}
	def, err := activefile.Stat(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("program:  %s", def.Program.Name)
	if def.Program.Exec != "" {
		fmt.Printf(" (exec %s)", def.Program.Exec)
	}
	fmt.Println()
	fmt.Println("strategy:", def.Strategy)
	fmt.Println("cache:   ", def.Cache)
	if def.Source.Kind != "" {
		fmt.Printf("source:   %s %s/%s\n", def.Source.Kind, def.Source.Addr, def.Source.Path)
	}
	for k, v := range def.Params {
		fmt.Printf("param:    %s=%s\n", k, v)
	}
	if def.NoData {
		fmt.Println("data:     none (synthesized by sentinel)")
	} else {
		fmt.Println("data:    ", activefile.DataPath(args[0]))
	}
	return nil
}

func runCat(args []string) error {
	flags := flag.NewFlagSet("cat", flag.ContinueOnError)
	strategyStr := flags.String("strategy", "", "strategy override")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl cat [-strategy s] <path.af>")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	f, err := activefile.Open(flags.Arg(0), activefile.WithStrategy(strategy))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(os.Stdout, f)
	return err
}

func runRaw(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: afctl raw <path.af>")
	}
	data, err := os.ReadFile(activefile.DataPath(args[0]))
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func runWrite(args []string) error {
	flags := flag.NewFlagSet("write", flag.ContinueOnError)
	strategyStr := flags.String("strategy", "", "strategy override")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl write [-strategy s] <path.af> < input")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	f, err := activefile.Open(flags.Arg(0), activefile.WithStrategy(strategy))
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, os.Stdin); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runControl sends a program-specific control command (e.g. "refresh" to a
// quotes file, "stats" to a cached file) and prints the reply.
func runControl(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: afctl ctl <path.af> <command>")
	}
	h, err := activefile.OpenActive(args[0])
	if err != nil {
		return err
	}
	defer h.Close()
	reply, err := h.Control([]byte(args[1]))
	if err != nil {
		return err
	}
	if len(reply) > 0 {
		fmt.Println(string(reply))
	}
	return nil
}

// runStats queries a running afd's -stats endpoint and prints the
// daemon-wide snapshot: per-tenant activity and quota rejections, per-op
// latency, and the wire-level amortization totals.
func runStats(args []string) error {
	flags := flag.NewFlagSet("stats", flag.ContinueOnError)
	rawJSON := flags.Bool("json", false, "print the raw JSON snapshot instead of tables")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl stats [-json] <host:port>")
	}
	addr := flags.Arg(0)

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		return fmt.Errorf("query afd stats at %s: %w", addr, err)
	}
	defer resp.Body.Close()
	var st daemon.Stats
	if *rawJSON {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode stats from %s: %w", addr, err)
	}
	printStats(os.Stdout, st)
	return nil
}

func printStats(w io.Writer, st daemon.Stats) {
	state := "serving"
	if st.Draining {
		state = "draining"
	}
	fmt.Fprintf(w, "daemon:   %s, %d sessions, %d ops in flight\n", state, st.Sessions, st.InFlight)
	if st.BatchFlushes > 0 {
		fmt.Fprintf(w, "batching: %.2f frames/flush (%d frames, %d flushes)\n",
			st.FramesPerFlush, st.BatchFrames, st.BatchFlushes)
	}
	if st.RecvFills > 0 {
		fmt.Fprintf(w, "receive:  %d wakeups, %d bytes drained\n", st.RecvFills, st.RecvBytes)
	}
	if len(st.Tenants) > 0 {
		fmt.Fprintf(w, "\n%-16s %8s %6s %8s %10s %8s %12s %12s %10s\n",
			"tenant", "sessions", "peak", "inflight", "ops", "errors", "bytesRead", "bytesWritten", "rejected")
		for _, row := range st.Tenants {
			rejected := row.RejectedOverload + row.RejectedQuota + row.RejectedShutdown
			fmt.Fprintf(w, "%-16s %8d %6d %8d %10d %8d %12d %12d %10d\n",
				row.Name, row.Sessions, row.PeakSessions, row.InFlight,
				row.Ops, row.Errors, row.BytesRead, row.BytesWritten, rejected)
		}
	}
	if len(st.Ops) > 0 {
		fmt.Fprintf(w, "\n%-10s %10s %12s %12s %12s %12s\n",
			"op", "count", "mean µs", "p50 µs", "p99 µs", "max µs")
		for _, op := range st.Ops {
			fmt.Fprintf(w, "%-10s %10d %12.1f %12.0f %12.0f %12.0f\n",
				op.Op, op.Count, op.MeanMicros, op.P50Micros, op.P99Micros, op.MaxMicros)
		}
	}
}

func runList(args []string) error {
	dir := "."
	if len(args) == 1 {
		dir = args[0]
	} else if len(args) > 1 {
		return errors.New("usage: afctl ls [dir]")
	}
	paths, err := activefile.List(dir)
	if err != nil {
		return err
	}
	for _, p := range paths {
		def, err := activefile.Stat(p)
		if err != nil {
			fmt.Printf("%s\t(unreadable: %v)\n", p, err)
			continue
		}
		fmt.Printf("%s\tprogram=%s cache=%s\n", p, def.Program.Name, def.Cache)
	}
	return nil
}

func twoArg(args []string, name string, fn func(a, b string) error) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: afctl %s <src.af> <dst.af>", name)
	}
	return fn(args[0], args[1])
}

func oneArg(args []string, name string, fn func(a string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: afctl %s <path.af>", name)
	}
	return fn(args[0])
}
