// Command afctl creates and manipulates active files on disk.
//
//	afctl create -program filter:upper -cache disk notes.af
//	afctl stat notes.af
//	afctl ctl ticker.af refresh              # program control commands
//	afctl write notes.af < draft.txt     # through the sentinel
//	afctl cat notes.af                   # through the sentinel
//	afctl raw notes.af                   # the stored data part, unfiltered
//	afctl cp notes.af copy.af
//	afctl mv copy.af moved.af
//	afctl rm moved.af
//	afctl ls .
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/activefile"
	"repro/activefile/sentinel"
)

func main() {
	sentinel.MaybeChild() // afctl spawns itself for process-strategy opens
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: afctl <create|stat|cat|raw|write|ctl|cp|mv|rm|ls> ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "create":
		return runCreate(rest)
	case "stat":
		return runStat(rest)
	case "cat":
		return runCat(rest)
	case "raw":
		return runRaw(rest)
	case "write":
		return runWrite(rest)
	case "ctl":
		return runControl(rest)
	case "cp":
		return twoArg(rest, "cp", activefile.Copy)
	case "mv":
		return twoArg(rest, "mv", activefile.Rename)
	case "rm":
		return oneArg(rest, "rm", activefile.Remove)
	case "ls":
		return runList(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseStrategy(s string) (activefile.Strategy, error) {
	switch s {
	case "", "default":
		return activefile.StrategyDefault, nil
	case "process":
		return activefile.StrategyProcess, nil
	case "procctl":
		return activefile.StrategyProcessControl, nil
	case "thread":
		return activefile.StrategyThread, nil
	case "direct":
		return activefile.StrategyDirect, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func parseCache(s string) (activefile.CacheMode, error) {
	switch s {
	case "", "default":
		return activefile.CacheDefault, nil
	case "none":
		return activefile.CacheNone, nil
	case "disk":
		return activefile.CacheDisk, nil
	case "memory":
		return activefile.CacheMemory, nil
	default:
		return 0, fmt.Errorf("unknown cache mode %q", s)
	}
}

// paramList collects repeated -param key=value flags.
type paramList map[string]string

func (p paramList) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramList) Set(v string) error {
	key, value, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("param %q is not key=value", v)
	}
	p[key] = value
	return nil
}

func runCreate(args []string) error {
	flags := flag.NewFlagSet("create", flag.ContinueOnError)
	var (
		programName = flags.String("program", "passthrough", "sentinel program name")
		execPath    = flags.String("exec", "", "standalone sentinel executable (process strategies)")
		strategyStr = flags.String("strategy", "", "default strategy: process|procctl|thread|direct")
		cacheStr    = flags.String("cache", "", "cache mode: none|disk|memory")
		srcKind     = flags.String("source-kind", "", "remote source kind (tcp)")
		srcAddr     = flags.String("source-addr", "", "remote source address")
		srcPath     = flags.String("source-path", "", "remote source object name")
		noData      = flags.Bool("nodata", false, "create without a data part")
	)
	params := make(paramList)
	flags.Var(params, "param", "program parameter key=value (repeatable)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl create [flags] <path.af>")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	cacheMode, err := parseCache(*cacheStr)
	if err != nil {
		return err
	}
	def := activefile.Definition{
		Program:  activefile.ProgramSpec{Name: *programName, Exec: *execPath},
		Strategy: strategy,
		Cache:    cacheMode,
		Source:   activefile.SourceSpec{Kind: *srcKind, Addr: *srcAddr, Path: *srcPath},
		NoData:   *noData,
	}
	if len(params) > 0 {
		def.Params = params
	}
	return activefile.Create(flags.Arg(0), def)
}

func runStat(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: afctl stat <path.af>")
	}
	def, err := activefile.Stat(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("program:  %s", def.Program.Name)
	if def.Program.Exec != "" {
		fmt.Printf(" (exec %s)", def.Program.Exec)
	}
	fmt.Println()
	fmt.Println("strategy:", def.Strategy)
	fmt.Println("cache:   ", def.Cache)
	if def.Source.Kind != "" {
		fmt.Printf("source:   %s %s/%s\n", def.Source.Kind, def.Source.Addr, def.Source.Path)
	}
	for k, v := range def.Params {
		fmt.Printf("param:    %s=%s\n", k, v)
	}
	if def.NoData {
		fmt.Println("data:     none (synthesized by sentinel)")
	} else {
		fmt.Println("data:    ", activefile.DataPath(args[0]))
	}
	return nil
}

func runCat(args []string) error {
	flags := flag.NewFlagSet("cat", flag.ContinueOnError)
	strategyStr := flags.String("strategy", "", "strategy override")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl cat [-strategy s] <path.af>")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	f, err := activefile.Open(flags.Arg(0), activefile.WithStrategy(strategy))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(os.Stdout, f)
	return err
}

func runRaw(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: afctl raw <path.af>")
	}
	data, err := os.ReadFile(activefile.DataPath(args[0]))
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func runWrite(args []string) error {
	flags := flag.NewFlagSet("write", flag.ContinueOnError)
	strategyStr := flags.String("strategy", "", "strategy override")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return errors.New("usage: afctl write [-strategy s] <path.af> < input")
	}
	strategy, err := parseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	f, err := activefile.Open(flags.Arg(0), activefile.WithStrategy(strategy))
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, os.Stdin); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runControl sends a program-specific control command (e.g. "refresh" to a
// quotes file, "stats" to a cached file) and prints the reply.
func runControl(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: afctl ctl <path.af> <command>")
	}
	h, err := activefile.OpenActive(args[0])
	if err != nil {
		return err
	}
	defer h.Close()
	reply, err := h.Control([]byte(args[1]))
	if err != nil {
		return err
	}
	if len(reply) > 0 {
		fmt.Println(string(reply))
	}
	return nil
}

func runList(args []string) error {
	dir := "."
	if len(args) == 1 {
		dir = args[0]
	} else if len(args) > 1 {
		return errors.New("usage: afctl ls [dir]")
	}
	paths, err := activefile.List(dir)
	if err != nil {
		return err
	}
	for _, p := range paths {
		def, err := activefile.Stat(p)
		if err != nil {
			fmt.Printf("%s\t(unreadable: %v)\n", p, err)
			continue
		}
		fmt.Printf("%s\tprogram=%s cache=%s\n", p, def.Program.Name, def.Cache)
	}
	return nil
}

func twoArg(args []string, name string, fn func(a, b string) error) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: afctl %s <src.af> <dst.af>", name)
	}
	return fn(args[0], args[1])
}

func oneArg(args []string, name string, fn func(a string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: afctl %s <path.af>", name)
	}
	return fn(args[0])
}
