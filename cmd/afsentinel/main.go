// Command afsentinel is a standalone sentinel executable hosting the
// library's built-in programs. An active file whose definition sets
// Program.Exec to this binary's path runs its sentinel as this separate
// image — the exact arrangement of the paper's process-based
// implementations, where "the active part is an executable".
//
// Run directly (not as a spawned sentinel), it lists the available
// programs.
package main

import (
	"fmt"
	"os"

	"repro/activefile/sentinel"
)

func main() {
	sentinel.MaybeChild() // never returns when spawned as a sentinel

	fmt.Println("afsentinel hosts sentinel programs for active files.")
	fmt.Println("Point an active file's Program.Exec at this binary to run")
	fmt.Println("its sentinel as a standalone process. Available programs:")
	for _, name := range sentinel.Programs() {
		fmt.Println("  ", name)
	}
	os.Exit(0)
}
