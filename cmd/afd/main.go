// Command afd runs the simulated remote information services active files
// aggregate from and distribute to: the block file store, the stock-quote
// feed, and the mail drop. It prints each bound address and serves until
// interrupted.
//
//	afd                          # all three services on ephemeral ports
//	afd -file 127.0.0.1:7001 -quotes "" -mail ""
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/backend"
	"repro/internal/remote"

	// Make the network-crossing backend kinds available to -backend specs,
	// so one afd can re-export another's file service.
	_ "repro/internal/backend/remotefs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, waitForInterrupt); err != nil {
		fmt.Fprintln(os.Stderr, "afd:", err)
		os.Exit(1)
	}
}

func waitForInterrupt() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

// config selects which services to start and where.
type config struct {
	fileAddr  string
	quoteAddr string
	mailAddr  string
	backend   string
	seed      bool
}

func parseFlags(args []string) (config, error) {
	flags := flag.NewFlagSet("afd", flag.ContinueOnError)
	var cfg config
	flags.StringVar(&cfg.fileAddr, "file", "127.0.0.1:0", "block file service address (empty to disable)")
	flags.StringVar(&cfg.quoteAddr, "quotes", "127.0.0.1:0", "stock quote service address (empty to disable)")
	flags.StringVar(&cfg.mailAddr, "mail", "127.0.0.1:0", "mail service address (empty to disable)")
	flags.StringVar(&cfg.backend, "backend", "mem",
		"backend spec the file service exports (e.g. mem, nativefs:/srv/data, rofs:nativefs:/srv/ro, errorfs(rate=0.01):mem)")
	flags.BoolVar(&cfg.seed, "seed", true, "seed demonstration data")
	if err := flags.Parse(args); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// services is the running set, with the addresses actually bound.
type services struct {
	FileAddr  string
	QuoteAddr string
	MailAddr  string
	stops     []func() error
}

// Close stops every running service.
func (s *services) Close() {
	for _, stop := range s.stops {
		stop()
	}
}

// startServices launches the configured services.
func startServices(cfg config) (*services, error) {
	svc := &services{}
	ok := false
	defer func() {
		if !ok {
			svc.Close()
		}
	}()

	if cfg.fileAddr != "" {
		spec := cfg.backend
		if spec == "" {
			spec = "mem"
		}
		store, err := backend.Open(spec)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", spec, err)
		}
		srv := remote.NewFileServerWith(store)
		if cfg.seed && store.Caps().Has(backend.CapWrite) {
			srv.Put("hello", []byte("hello from the block file service\n"))
		}
		addr, err := srv.Start(cfg.fileAddr)
		if err != nil {
			store.Close()
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close, store.Close)
		svc.FileAddr = addr
	}
	if cfg.quoteAddr != "" {
		var initial []remote.Quote
		if cfg.seed {
			initial = []remote.Quote{
				{Symbol: "AAPL", Cents: 19254},
				{Symbol: "GOOG", Cents: 17510},
				{Symbol: "MSFT", Cents: 41089},
			}
		}
		srv := remote.NewQuoteServer(initial)
		addr, err := srv.Start(cfg.quoteAddr)
		if err != nil {
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close)
		svc.QuoteAddr = addr
	}
	if cfg.mailAddr != "" {
		srv := remote.NewMailServer()
		if cfg.seed {
			srv.Deposit("demo", []byte("To: demo@local\nSubject: welcome\n\nseeded message\n"))
		}
		addr, err := srv.Start(cfg.mailAddr)
		if err != nil {
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close)
		svc.MailAddr = addr
	}
	ok = true
	return svc, nil
}

func run(args []string, out io.Writer, wait func()) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	svc, err := startServices(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	if svc.FileAddr != "" {
		fmt.Fprintln(out, "file service:  ", svc.FileAddr)
	}
	if svc.QuoteAddr != "" {
		fmt.Fprintln(out, "quote service: ", svc.QuoteAddr)
	}
	if svc.MailAddr != "" {
		fmt.Fprintln(out, "mail service:  ", svc.MailAddr)
	}
	fmt.Fprintln(out, "serving; interrupt to stop")
	wait()
	return nil
}
