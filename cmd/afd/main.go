// Command afd runs the active-file daemon: the simulated remote information
// services active files aggregate from and distribute to — the block file
// store, the stock-quote feed, and the mail drop — plus the multi-tenant
// session layer in front of the file service: per-tenant quotas, admission
// control with typed backpressure, and a stats endpoint. It prints each
// bound address and serves until interrupted or SIGTERMed, then drains:
// in-flight operations finish, new work is refused with a typed shutdown
// status, and connections close at frame boundaries. A second signal exits
// immediately.
//
//	afd                          # all three services on ephemeral ports
//	afd -file 127.0.0.1:7001 -quotes "" -mail ""
//	afd -max-sessions 64 -max-inflight 128 -max-bytes 16777216
//	afd -stats 127.0.0.1:7070    # then: afctl stats 127.0.0.1:7070
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/daemon"
	"repro/internal/remote"

	// Make the network-crossing backend kinds available to -backend specs,
	// so one afd can re-export another's file service.
	_ "repro/internal/backend/remotefs"

	"repro/internal/fleet"
)

func main() {
	wait, _ := newSignalWaiter(os.Stderr, os.Exit)
	if err := run(os.Args[1:], os.Stdout, wait); err != nil {
		fmt.Fprintln(os.Stderr, "afd:", err)
		os.Exit(1)
	}
}

// newSignalWaiter returns a wait function that blocks until the first
// SIGINT or SIGTERM (what service managers send), announces the drain, and
// arms an escape hatch: a second signal calls exit(1) immediately instead
// of waiting out the drain. stop disarms the watcher (tests use it; main
// exits before it matters).
func newSignalWaiter(out io.Writer, exit func(int)) (wait func(), stop func()) {
	sig := make(chan os.Signal, 2)
	done := make(chan struct{})
	// Notify at construction, not first wait: a signal landing between
	// startup and the wait loop is then queued instead of fatal.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	wait = func() {
		s := <-sig
		fmt.Fprintf(out, "afd: %v: draining (signal again to exit immediately)\n", s)
		go func() {
			select {
			case s := <-sig:
				fmt.Fprintf(out, "afd: %v: immediate exit\n", s)
				exit(1)
			case <-done:
			}
		}()
	}
	stop = func() {
		signal.Stop(sig)
		close(done)
	}
	return wait, stop
}

// config selects which services to start and where, and how the
// multi-tenant layer is bounded.
type config struct {
	fileAddr  string
	quoteAddr string
	mailAddr  string
	statsAddr string
	backend   string
	seed      bool

	maxSessions int
	maxInFlight int
	maxBytes    int64
	drain       time.Duration

	// Static fleet membership: join lists every shard address (including
	// this one), self names this server in that list, replicas and hot
	// configure hot-file replication. Every shard must be started with the
	// same three placement flags so the fleet agrees on one map.
	join     string
	self     string
	replicas int
	hot      string
}

func parseFlags(args []string) (config, error) {
	flags := flag.NewFlagSet("afd", flag.ContinueOnError)
	var cfg config
	flags.StringVar(&cfg.fileAddr, "file", "127.0.0.1:0", "block file service address (empty to disable)")
	flags.StringVar(&cfg.quoteAddr, "quotes", "127.0.0.1:0", "stock quote service address (empty to disable)")
	flags.StringVar(&cfg.mailAddr, "mail", "127.0.0.1:0", "mail service address (empty to disable)")
	flags.StringVar(&cfg.statsAddr, "stats", "127.0.0.1:0", "daemon stats HTTP address (empty to disable); query with afctl stats")
	flags.StringVar(&cfg.backend, "backend", "mem",
		"backend spec the file service exports (e.g. mem, nativefs:/srv/data, rofs:nativefs:/srv/ro, errorfs(rate=0.01):mem)")
	flags.BoolVar(&cfg.seed, "seed", true, "seed demonstration data")
	flags.IntVar(&cfg.maxSessions, "max-sessions", 0, "per-tenant cap on concurrently open sessions (0 = unlimited)")
	flags.IntVar(&cfg.maxInFlight, "max-inflight", 0, "per-tenant cap on concurrently executing operations (0 = unlimited)")
	flags.Int64Var(&cfg.maxBytes, "max-bytes", 0, "per-tenant cap on resident in-flight payload bytes (0 = unlimited)")
	flags.DurationVar(&cfg.drain, "drain", 5*time.Second, "how long shutdown lets in-flight operations finish")
	flags.StringVar(&cfg.join, "join", "", "comma-separated fleet shard addresses (static membership; include this server)")
	flags.StringVar(&cfg.self, "self", "", "this server's address within -join (required with -join; must match -file)")
	flags.IntVar(&cfg.replicas, "replicas", 1, "replication factor for hot files across the fleet")
	flags.StringVar(&cfg.hot, "hot", "", "semicolon-separated globs naming hot (replicated) files, e.g. 'hot/*;indexes/*'")
	if err := flags.Parse(args); err != nil {
		return config{}, err
	}
	if cfg.join != "" && cfg.self == "" {
		return config{}, fmt.Errorf("-join requires -self (this server's address in the member list)")
	}
	return cfg, nil
}

// fleetMap builds the shard map a -join'ed server serves and enforces.
func fleetMap(cfg config) (*fleet.Map, error) {
	var addrs []string
	selfListed := false
	for _, a := range strings.Split(cfg.join, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		addrs = append(addrs, a)
		if a == cfg.self {
			selfListed = true
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("-self %q is not in -join %q", cfg.self, cfg.join)
	}
	var hot []string
	for _, g := range strings.Split(cfg.hot, ";") {
		if g = strings.TrimSpace(g); g != "" {
			hot = append(hot, g)
		}
	}
	return fleet.NewMap(1, addrs, cfg.replicas, hot)
}

// services is the running set, with the addresses actually bound.
type services struct {
	FileAddr  string
	QuoteAddr string
	MailAddr  string
	StatsAddr string
	Registry  *daemon.Registry
	stops     []func() error
}

// Close stops every running service, in reverse start order, and returns
// every stop failure joined — a failed teardown is a reportable fact, not
// something to swallow.
func (s *services) Close() error {
	var errs []error
	for i := len(s.stops) - 1; i >= 0; i-- {
		if err := s.stops[i](); err != nil {
			errs = append(errs, err)
		}
	}
	s.stops = nil
	return errors.Join(errs...)
}

// startServices launches the configured services.
func startServices(cfg config) (*services, error) {
	svc := &services{}
	ok := false
	defer func() {
		if !ok {
			svc.Close()
		}
	}()

	quotas := daemon.Quotas{
		MaxSessions: cfg.maxSessions,
		MaxInFlight: cfg.maxInFlight,
		MaxBytes:    cfg.maxBytes,
	}
	svc.Registry = daemon.NewRegistry(quotas)

	if cfg.fileAddr != "" {
		spec := cfg.backend
		if spec == "" {
			spec = "mem"
		}
		store, err := backend.Open(spec)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", spec, err)
		}
		srv := remote.NewFileServerWith(store)
		srv.SetRegistry(svc.Registry)
		if cfg.drain > 0 {
			srv.SetDrainTimeout(cfg.drain)
		}
		if cfg.join != "" {
			m, err := fleetMap(cfg)
			if err != nil {
				store.Close()
				return nil, err
			}
			srv.SetFleet(m, cfg.self)
			svc.Registry.SetShardProvider(func() daemon.ShardStats {
				ls := srv.LeaseStats()
				return daemon.ShardStats{
					Self:           cfg.self,
					MapEpoch:       m.Epoch(),
					Shards:         len(m.Addrs()),
					Replicas:       m.Replicas(),
					LeaseGrants:    ls.Grants,
					LeaseRevokes:   ls.Revokes,
					RevokeTimeouts: ls.RevokeTimeouts,
					ApplyForwards:  srv.ApplyForwards(),
				}
			})
		}
		if cfg.seed && store.Caps().Has(backend.CapWrite) {
			srv.Put("hello", []byte("hello from the block file service\n"))
		}
		addr, err := srv.Start(cfg.fileAddr)
		if err != nil {
			store.Close()
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close, store.Close)
		svc.FileAddr = addr
	}
	if cfg.quoteAddr != "" {
		var initial []remote.Quote
		if cfg.seed {
			initial = []remote.Quote{
				{Symbol: "AAPL", Cents: 19254},
				{Symbol: "GOOG", Cents: 17510},
				{Symbol: "MSFT", Cents: 41089},
			}
		}
		srv := remote.NewQuoteServer(initial)
		addr, err := srv.Start(cfg.quoteAddr)
		if err != nil {
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close)
		svc.QuoteAddr = addr
	}
	if cfg.mailAddr != "" {
		srv := remote.NewMailServer()
		if cfg.seed {
			srv.Deposit("demo", []byte("To: demo@local\nSubject: welcome\n\nseeded message\n"))
		}
		addr, err := srv.Start(cfg.mailAddr)
		if err != nil {
			return nil, err
		}
		svc.stops = append(svc.stops, srv.Close)
		svc.MailAddr = addr
	}
	if cfg.statsAddr != "" {
		ln, err := net.Listen("tcp", cfg.statsAddr)
		if err != nil {
			return nil, fmt.Errorf("stats listener: %w", err)
		}
		hs := &http.Server{Handler: svc.Registry}
		go hs.Serve(ln)
		svc.stops = append(svc.stops, func() error {
			if err := hs.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return fmt.Errorf("stats server: %w", err)
			}
			return nil
		})
		svc.StatsAddr = ln.Addr().String()
	}
	ok = true
	return svc, nil
}

func run(args []string, out io.Writer, wait func()) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	svc, err := startServices(cfg)
	if err != nil {
		return err
	}

	if svc.FileAddr != "" {
		fmt.Fprintln(out, "file service:  ", svc.FileAddr)
	}
	if svc.QuoteAddr != "" {
		fmt.Fprintln(out, "quote service: ", svc.QuoteAddr)
	}
	if svc.MailAddr != "" {
		fmt.Fprintln(out, "mail service:  ", svc.MailAddr)
	}
	if svc.StatsAddr != "" {
		fmt.Fprintln(out, "stats:         ", svc.StatsAddr)
	}
	fmt.Fprintln(out, "serving; interrupt to stop")
	wait()
	if err := svc.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
