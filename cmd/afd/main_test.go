package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/faultinject"
	"repro/internal/remote"
	"repro/internal/wire"
)

func TestStartServicesAllAndReachable(t *testing.T) {
	svc, err := startServices(config{
		fileAddr:  "127.0.0.1:0",
		quoteAddr: "127.0.0.1:0",
		mailAddr:  "127.0.0.1:0",
		seed:      true,
	})
	if err != nil {
		t.Fatalf("startServices: %v", err)
	}
	defer svc.Close()

	// Seeded file object.
	fc, err := remote.Dial(svc.FileAddr, "hello")
	if err != nil {
		t.Fatalf("dial file service: %v", err)
	}
	defer fc.Close()
	size, err := fc.Size()
	if err != nil || size == 0 {
		t.Errorf("seeded object size = (%d, %v)", size, err)
	}

	// Seeded quotes.
	quotes, err := remote.FetchQuotes(svc.QuoteAddr)
	if err != nil || len(quotes) != 3 {
		t.Errorf("FetchQuotes = (%v, %v)", quotes, err)
	}

	// Seeded mail.
	msgs, err := remote.FetchMail(svc.MailAddr, "demo", false)
	if err != nil || len(msgs) != 1 {
		t.Errorf("FetchMail = (%d msgs, %v)", len(msgs), err)
	}
}

func TestStartServicesSelective(t *testing.T) {
	svc, err := startServices(config{quoteAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.FileAddr != "" || svc.MailAddr != "" {
		t.Errorf("unexpected services: %+v", svc)
	}
	if svc.QuoteAddr == "" {
		t.Error("quote service missing")
	}
	// Unseeded: empty listing.
	quotes, err := remote.FetchQuotes(svc.QuoteAddr)
	if err != nil || len(quotes) != 0 {
		t.Errorf("unseeded FetchQuotes = (%v, %v)", quotes, err)
	}
}

func TestStartServicesBindFailure(t *testing.T) {
	// Take a port, then ask afd to bind the same one.
	first, err := startServices(config{fileAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := startServices(config{fileAddr: first.FileAddr}); err == nil {
		t.Error("second bind of the same port succeeded")
	}
}

func TestRunPrintsAddressesAndStops(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mail", "", "-quotes", ""}, &out, func() {} /* return immediately */)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "file service:") || !strings.Contains(text, "serving") {
		t.Errorf("output = %q", text)
	}
	if strings.Contains(text, "mail service:") {
		t.Errorf("disabled service printed: %q", text)
	}
}

func TestRunFlagError(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("run with unknown flag succeeded")
	}
}

// TestCloseReportsJoinedErrors pins the lifecycle bugfix: a failed service
// teardown is reported — all of them, joined — instead of silently
// discarded.
func TestCloseReportsJoinedErrors(t *testing.T) {
	e1, e2 := errors.New("stop one"), errors.New("stop two")
	svc := &services{stops: []func() error{
		func() error { return e1 },
		func() error { return nil },
		func() error { return e2 },
	}}
	err := svc.Close()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Close() = %v, want both stop errors joined", err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("second Close() = %v, want idempotent nil", err)
	}
}

func TestStatsEndpointExported(t *testing.T) {
	svc, err := startServices(config{
		fileAddr:    "127.0.0.1:0",
		statsAddr:   "127.0.0.1:0",
		seed:        true,
		maxSessions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Generate a little accounted activity.
	c, err := remote.Dial(svc.FileAddr, "hello")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()

	resp, err := http.Get("http://" + svc.StatsAddr + "/stats")
	if err != nil {
		t.Fatalf("stats endpoint: %v", err)
	}
	defer resp.Body.Close()
	var st daemon.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if len(st.Tenants) == 0 || st.Tenants[0].Name != daemon.DefaultTenant {
		t.Errorf("tenants = %+v", st.Tenants)
	}
	if st.Tenants[0].BytesRead == 0 {
		t.Errorf("no bytes accounted: %+v", st.Tenants[0])
	}
	if len(st.Ops) == 0 {
		t.Error("no per-op latency recorded")
	}
}

// syncWriter lets the test read run's output while run is still writing it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// warmSignalLoop forces the runtime's process-wide signal goroutine to start
// before a LeakCheck snapshot: os/signal.loop spawns on the first Notify ever
// and lives for the rest of the process, so letting a leak-checked test be
// that first Notify misreads it as a leak.
func warmSignalLoop() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	signal.Stop(ch)
}

// fieldAfter extracts the trimmed remainder of the line starting with
// prefix.
func fieldAfter(out, prefix string) string {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// TestSigtermDrainsLoadedDaemon is the acceptance scenario for the signal
// bugfix: SIGTERM (what service managers send, previously ignored) lands on
// a daemon with reads in flight, and the daemon exits cleanly — in-flight
// work drained, no torn frames, no leaked goroutines.
func TestSigtermDrainsLoadedDaemon(t *testing.T) {
	warmSignalLoop()
	faultinject.LeakCheck(t)
	wait, stop := newSignalWaiter(io.Discard, func(code int) {
		t.Errorf("immediate-exit escape hatch fired (code %d) on a single signal", code)
	})
	defer stop()

	out := &syncWriter{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-quotes", "", "-mail", "", "-stats", ""}, out, wait)
	}()

	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		addr = fieldAfter(out.String(), "file service:")
		if time.Now().After(deadline) {
			t.Fatal("file service address never printed")
		}
		time.Sleep(time.Millisecond)
	}

	// Load: a client hammering reads until shutdown cuts it off.
	c, err := remote.DialWith(addr, "hello", remote.DialOptions{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		for {
			if _, rerr := c.ReadAt(buf, 0); rerr != nil {
				loadErr <- rerr
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the load establish

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	// The load was cut off with a typed shutdown status or a clean
	// connection close — never a torn frame.
	select {
	case lerr := <-loadErr:
		if errors.Is(lerr, io.ErrUnexpectedEOF) {
			t.Errorf("client saw a torn frame during drain: %v", lerr)
		}
		if errors.Is(lerr, wire.ErrShuttingDown) {
			t.Logf("client rejected with typed shutdown: %v", lerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("load goroutine still running after daemon exit")
	}
}

// TestSecondSignalEscapeHatch: during a drain, one more signal must exit
// immediately instead of waiting the drain out.
func TestSecondSignalEscapeHatch(t *testing.T) {
	warmSignalLoop()
	faultinject.LeakCheck(t)
	exited := make(chan int, 1)
	wait, stop := newSignalWaiter(io.Discard, func(code int) { exited <- code })
	defer stop()

	waited := make(chan struct{})
	go func() { wait(); close(waited) }()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGTERM did not unblock the waiter")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 1 {
			t.Errorf("escape hatch exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGTERM did not trigger immediate exit")
	}
}
