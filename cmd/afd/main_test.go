package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/remote"
)

func TestStartServicesAllAndReachable(t *testing.T) {
	svc, err := startServices(config{
		fileAddr:  "127.0.0.1:0",
		quoteAddr: "127.0.0.1:0",
		mailAddr:  "127.0.0.1:0",
		seed:      true,
	})
	if err != nil {
		t.Fatalf("startServices: %v", err)
	}
	defer svc.Close()

	// Seeded file object.
	fc, err := remote.Dial(svc.FileAddr, "hello")
	if err != nil {
		t.Fatalf("dial file service: %v", err)
	}
	defer fc.Close()
	size, err := fc.Size()
	if err != nil || size == 0 {
		t.Errorf("seeded object size = (%d, %v)", size, err)
	}

	// Seeded quotes.
	quotes, err := remote.FetchQuotes(svc.QuoteAddr)
	if err != nil || len(quotes) != 3 {
		t.Errorf("FetchQuotes = (%v, %v)", quotes, err)
	}

	// Seeded mail.
	msgs, err := remote.FetchMail(svc.MailAddr, "demo", false)
	if err != nil || len(msgs) != 1 {
		t.Errorf("FetchMail = (%d msgs, %v)", len(msgs), err)
	}
}

func TestStartServicesSelective(t *testing.T) {
	svc, err := startServices(config{quoteAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.FileAddr != "" || svc.MailAddr != "" {
		t.Errorf("unexpected services: %+v", svc)
	}
	if svc.QuoteAddr == "" {
		t.Error("quote service missing")
	}
	// Unseeded: empty listing.
	quotes, err := remote.FetchQuotes(svc.QuoteAddr)
	if err != nil || len(quotes) != 0 {
		t.Errorf("unseeded FetchQuotes = (%v, %v)", quotes, err)
	}
}

func TestStartServicesBindFailure(t *testing.T) {
	// Take a port, then ask afd to bind the same one.
	first, err := startServices(config{fileAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := startServices(config{fileAddr: first.FileAddr}); err == nil {
		t.Error("second bind of the same port succeeded")
	}
}

func TestRunPrintsAddressesAndStops(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mail", "", "-quotes", ""}, &out, func() {} /* return immediately */)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "file service:") || !strings.Contains(text, "serving") {
		t.Errorf("output = %q", text)
	}
	if strings.Contains(text, "mail service:") {
		t.Errorf("disabled service printed: %q", text)
	}
}

func TestRunFlagError(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, func() {}); err == nil {
		t.Error("run with unknown flag succeeded")
	}
}
