// Package shm implements the shared-memory data plane for the process
// strategies: mmap'd single-producer/single-consumer byte rings — a
// parent→child command ring and a child→parent reply ring per session pair —
// with cache-line-padded head/tail cursors, an eventfd doorbell per wait
// direction, and adaptive spin-then-park waiting.
//
// The rings are plain ordered byte streams (io.Reader/io.Writer), so the
// existing wire framing, ipc.Mux correlation, BatchWriter group commit, and
// the whole failure machinery run over them unchanged; only the bytes'
// carrier moves from a kernel pipe to shared memory. On the hot path a frame
// exchange costs two memcpys and zero syscalls: the producer publishes bytes
// with an atomic cursor store and rings the peer's doorbell only when the
// peer has actually parked, and the consumer spins briefly (yielding the CPU
// so a same-core peer can run) before parking. An idle ring therefore burns
// no CPU — both sides block in an eventfd read until the next doorbell.
//
// Doorbell coalescing: a group-committed flush (wire.BatchWriter) brackets
// its ring writes with BeginFlush/EndFlush, deferring the wake decision to
// the end of the batch — N frames published together cost at most one
// doorbell, and none at all when the consumer is running. Both rung and
// suppressed doorbells are counted in the shared ring header, so either
// process can observe the full syscall economy of the pair (the child rings
// the reply-ring doorbells, but the parent reports them).
//
// Memory ordering: cursors and park flags are sync/atomic values living in
// the shared mapping. Data bytes are written before the head-cursor store
// that publishes them and read only after loading the cursor, so the
// release/acquire pairing of Go's (sequentially consistent) atomics carries
// the payload across the process boundary. The park/doorbell handshake is a
// Dekker-style store-then-check on both sides — the producer publishes then
// checks "consumer parked?", the consumer marks parked then re-checks
// "ring still empty?" — which sequential consistency makes lossless: at
// least one side always sees the other's store, so a wakeup cannot be lost.
// A deferred (coalesced) wake preserves the property because EndFlush
// re-runs the parked check after the final cursor store, and a writer that
// must wait for space first releases any deferred wake so the reader it is
// waiting on cannot stay parked.
//
// Segment layout: one mapping carries a control region (magic/version, an
// adoption epoch, and a ring directory) followed by every ring's header and
// data area, so a warm-pool adoption rebinds rings inside the existing
// segment — no new fds, no new mmaps — and future per-client ring pairs have
// a place to live (NewMulti).
//
// Teardown: either side may Close, which sets a shared closed flag and rings
// every doorbell. Readers drain what was published and then see io.EOF;
// writers fail with ErrClosed. A SIGKILLed peer cannot set the flag, so the
// surviving side's supervisor (the parent's child monitor, the child's
// control-pipe watchdog) closes its endpoint explicitly — the same prompt
// poisoning discipline the pipe transport gets from kernel EOF/EPIPE.
package shm

import "errors"

// Default ring capacities. The command ring carries only request envelopes
// (tens of bytes each); the reply ring carries response envelopes plus read
// payloads, so it gets the larger share. Frames larger than a ring are
// written in chunks, with the consumer draining concurrently.
const (
	DefaultCmdBytes   = 256 << 10
	DefaultReplyBytes = 1 << 20
)

// ErrClosed reports a write to (or a wait on) a ring whose segment was
// closed by either side.
var ErrClosed = errors.New("shm: ring closed")

// ErrUnsupported reports that this platform cannot host the shared-memory
// transport; callers fall back to the pipe transport.
var ErrUnsupported = errors.New("shm: shared-memory transport unsupported on this platform")

// Stats is a point-in-time snapshot of one ring's wait behaviour, exposed so
// tests can pin the spin-then-park contract (a parked ring must not spin)
// and benchmarks can report doorbell amortization. Parks and Spins are local
// to the calling process; Doorbells and Suppressed live in the shared ring
// header and therefore count both processes' wake decisions on this ring.
type Stats struct {
	Parks      uint64 // times this process gave up spinning and blocked on a doorbell
	Doorbells  uint64 // doorbell syscalls issued to wake a parked peer (both sides)
	Suppressed uint64 // wakes skipped: peer was running, or coalesced into a flush (both sides)
	Spins      uint64 // yield iterations this process spent in bounded spin waits
}
