//go:build linux

package shm

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Segment layout, all offsets cache-line aligned:
//
//	[0, 4096)                      control region (magic, version, epoch, ring directory)
//	[4096, 4096+ringHdrBytes)      ring 0 header
//	[..., ... + cap0)              ring 0 data
//	[..., ... + ringHdrBytes)      ring 1 header
//	[..., ... + cap1)              ring 1 data
//	...
//
// Rings come in direction pairs — even indices carry commands toward the
// serving side, odd indices carry replies back — and the directory in the
// control region records every ring's header offset and capacity, so an
// attaching process reconstructs the geometry from the mapping itself
// rather than assuming a fixed two-ring shape. Capacities are powers of two
// so cursor positions reduce with a mask, and the cursors themselves are
// free-running uint64 byte counts (head = bytes produced, tail = bytes
// consumed) — the empty/full ambiguity of wrapped indices never arises and
// 2^64 bytes outlives any session.
const (
	segMagic     = 0x41465348 // "AFSH" — active-file shared memory
	segVersion   = 2          // v2: control region with epoch + ring directory, shared doorbell counters
	segHdrBytes  = 4096
	ringHdrBytes = 512
	minRingBytes = 4096
	// maxSegRings bounds the ring directory; 16 rings = 8 session pairs in
	// one segment, room enough for the per-client pair layouts to come.
	maxSegRings = 16
)

// Spin calibration. On a shared core the peer cannot make progress while we
// burn it, so every spin iteration yields the CPU with sched_yield — that is
// what turns the spin from a pure waste into "run the peer, then re-check".
// Every goschedEvery-th iteration yields to the Go scheduler instead, so
// same-process goroutines (mux callers, child workers) are not starved of
// the P under GOMAXPROCS=1; it is kept rare because an idle-runqueue Gosched
// costs a netpoll probe. After spinBudget fruitless iterations the waiter
// parks on its doorbell and burns nothing.
const (
	spinBudget   = 96
	goschedEvery = 8
)

// Raw syscall numbers, named for the call sites. memfd_create postdates the
// frozen syscall package, so its number is spelled per-arch in
// memfd_*.go; zero means "no memfd, use a temp file".
const eventfdTrap = syscall.SYS_EVENTFD2

// ringDir is one control-region directory entry: where a ring's header
// lives and how much data it carries.
type ringDir struct {
	off uint64 // ring header offset from the segment start
	cap uint64 // ring data capacity (power of two)
}

// segHdr is the segment's control region. Epoch is the adoption generation:
// the parent bumps it when a warm-pool rebind hands the segment's rings to a
// new session, so both processes (and post-mortem tests) can tell sessions
// apart without remapping anything. Each mutable word gets its own cache
// line, like the ring headers.
type segHdr struct {
	magic   uint32
	version uint32
	_       [56]byte
	epoch   atomic.Uint64 // session generation; bumped on warm-pool adoption
	_       [56]byte
	nrings  uint32 // directory length
	_       [60]byte
	dir     [maxSegRings]ringDir
}

// ringHdr is the shared control block of one ring, laid out so every
// mutable word (or same-owner word group) owns a cache line: head is written
// only by the producer, tail only by the consumer, and sharing a line would
// make each side's cursor store invalidate the other's hot loop. The
// doorbell counters live here — not in process-local memory — because the
// bells of one ring are rung by different processes per direction and the
// benchmark observer (the parent) wants the whole economy; they share their
// owner's infrequently-written lines.
type ringHdr struct {
	head    atomic.Uint64 // bytes produced; written by producer only
	_       [56]byte
	tail    atomic.Uint64 // bytes consumed; written by consumer only
	_       [56]byte
	rparked atomic.Uint32 // consumer is (about to be) parked on the data bell
	_       [60]byte
	wparked atomic.Uint32 // producer is (about to be) parked on the space bell
	_       [60]byte
	closed  atomic.Uint32 // either side closed; set once, never cleared
	_       [60]byte
	pbells  atomic.Uint64 // data doorbells rung by the producer
	psupp   atomic.Uint64 // producer wakes suppressed (consumer running, or flush-coalesced)
	_       [48]byte
	cbells  atomic.Uint64 // space doorbells rung by the consumer
	csupp   atomic.Uint64 // consumer wakes suppressed (producer running)
	_       [48]byte
}

// Both shared structures must fit their reserved regions; a negative array
// length here fails the build the moment either outgrows its slot.
var (
	_ [segHdrBytes - int(unsafe.Sizeof(segHdr{}))]byte
	_ [ringHdrBytes - int(unsafe.Sizeof(ringHdr{}))]byte
)

// Ring is one direction of the shared segment: an SPSC byte stream over
// mapped memory. Exactly one process writes it and exactly one reads it;
// within a process the usual io.Reader/io.Writer discipline applies (one
// reader goroutine, one writer goroutine at a time).
//
// Two doorbells serve the two wait directions: the producer rings dataBell
// to wake a consumer parked for bytes, the consumer rings spaceBell to wake
// a producer parked for room. They must be distinct — with a single shared
// bell, a parking reader could swallow the token meant for a space-starved
// writer and strand both sides.
type Ring struct {
	name string
	hdr  *ringHdr
	data []byte
	mask uint64

	dataBell  *os.File // producer → consumer: "bytes available"
	spaceBell *os.File // consumer → producer: "space available"

	// Flush coalescing (wire.FlushCoalescer). Plain fields, written only on
	// the producer side: single-writer discipline (and BatchWriter's
	// leader mutex, for batched producers) serializes access, and the
	// consumer never reads them.
	deferWake   bool // inside a BeginFlush/EndFlush bracket
	wakePending bool // a publish happened since BeginFlush; decide at EndFlush

	localClosed atomic.Bool
	inflight    atomic.Int64 // ring ops in this process, gating munmap

	// detached is set (after snapshotting the shared counters below) when the
	// segment starts tearing down, so Stats never chases hdr into an
	// unmapped page.
	detached   atomic.Bool
	finalBells atomic.Uint64
	finalSupp  atomic.Uint64

	parks atomic.Uint64
	spins atomic.Uint64
}

// SelfBuffered marks the ring for wire.SelfBuffered: its Read already drains
// every published byte per cursor check without a syscall, so drain-mode
// buffering on top would only add a memcpy.
func (r *Ring) SelfBuffered() {}

// Segment is one process's view of the shared mapping and its doorbells.
// The parent creates it (New/NewMulti) and passes its files to the child,
// which attaches (Attach); both ends hold equal views afterwards.
type Segment struct {
	mem    []byte
	file   *os.File
	hdr    *segHdr
	rings  []*Ring
	closed atomic.Bool
}

// Supported reports whether this platform can host the transport.
func Supported() bool { return true }

// New creates a fresh anonymous shared segment carrying one command/reply
// ring pair with the given capacities (0 means the defaults) and its four
// doorbell eventfds. The backing file is a memfd when the kernel has one,
// else an unlinked temp file; either way nothing persists past the
// processes holding it.
func New(cmdBytes, replyBytes int) (*Segment, error) {
	return NewMulti(1, cmdBytes, replyBytes)
}

// NewMulti creates a segment carrying pairs command/reply ring pairs — ring
// 2i is pair i's command direction, ring 2i+1 its reply direction — each
// with the given per-ring capacities (0 means the defaults), plus two
// doorbell eventfds per ring. One mapping and one backing fd serve every
// pair, which is what keeps per-client ring pairs from multiplying mmaps.
func NewMulti(pairs, cmdBytes, replyBytes int) (*Segment, error) {
	if pairs < 1 || 2*pairs > maxSegRings {
		return nil, fmt.Errorf("shm: %d ring pairs (want 1..%d)", pairs, maxSegRings/2)
	}
	if cmdBytes <= 0 {
		cmdBytes = DefaultCmdBytes
	}
	if replyBytes <= 0 {
		replyBytes = DefaultReplyBytes
	}
	cmdCap := ceilPow2(cmdBytes)
	replyCap := ceilPow2(replyBytes)

	f, err := newSegmentFile()
	if err != nil {
		return nil, err
	}
	total := segHdrBytes + pairs*(2*ringHdrBytes+cmdCap+replyCap)
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*segHdr)(unsafe.Pointer(&mem[0]))
	hdr.magic = segMagic
	hdr.version = segVersion
	hdr.nrings = uint32(2 * pairs)
	off := uint64(segHdrBytes)
	for i := 0; i < 2*pairs; i++ {
		c := uint64(cmdCap)
		if i%2 == 1 {
			c = uint64(replyCap)
		}
		hdr.dir[i] = ringDir{off: off, cap: c}
		off += ringHdrBytes + c
	}

	bells := make([]*os.File, 4*pairs)
	for i := range bells {
		b, err := newEventFD()
		if err != nil {
			for _, open := range bells[:i] {
				open.Close()
			}
			syscall.Munmap(mem)
			f.Close()
			return nil, err
		}
		bells[i] = b
	}
	return assemble(f, mem, hdr, bells), nil
}

// Attach builds the attaching process's view from the inherited files: the
// segment file plus two doorbells per directory ring, in ChildFiles order.
// The geometry comes from the control region's ring directory, validated
// against the mapping size. Attach takes ownership of the files on success
// and on failure.
func Attach(seg *os.File, bells []*os.File) (*Segment, error) {
	closeAll := func() {
		seg.Close()
		for _, b := range bells {
			if b != nil {
				b.Close()
			}
		}
	}
	st, err := seg.Stat()
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: stat segment: %w", err)
	}
	total := int(st.Size())
	if total < segHdrBytes+ringHdrBytes+minRingBytes {
		closeAll()
		return nil, fmt.Errorf("shm: segment too small (%d bytes)", total)
	}
	mem, err := syscall.Mmap(int(seg.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*segHdr)(unsafe.Pointer(&mem[0]))
	nrings := int(hdr.nrings)
	switch {
	case hdr.magic != segMagic:
		err = fmt.Errorf("shm: bad segment magic %#x", hdr.magic)
	case hdr.version != segVersion:
		err = fmt.Errorf("shm: segment version %d, want %d", hdr.version, segVersion)
	case nrings < 2 || nrings > maxSegRings || nrings%2 != 0:
		err = fmt.Errorf("shm: segment directory holds %d rings", nrings)
	case len(bells) != 2*nrings:
		err = fmt.Errorf("shm: attach wants %d doorbells for %d rings, got %d", 2*nrings, nrings, len(bells))
	default:
		// Directory entries must tile the mapping exactly: ascending,
		// non-overlapping, power-of-two capacities, ending at the mapping's
		// end. Anything else is a corrupt or foreign segment.
		expect := uint64(segHdrBytes)
		for i := 0; i < nrings; i++ {
			d := hdr.dir[i]
			if d.off != expect || d.cap < minRingBytes || d.cap&(d.cap-1) != 0 ||
				d.off+ringHdrBytes+d.cap > uint64(total) {
				err = fmt.Errorf("shm: ring %d directory entry (off %d, cap %d) does not fit %d bytes", i, d.off, d.cap, total)
				break
			}
			expect = d.off + ringHdrBytes + d.cap
		}
		if err == nil && expect != uint64(total) {
			err = fmt.Errorf("shm: segment geometry ends at %d of %d bytes", expect, total)
		}
	}
	if err != nil {
		syscall.Munmap(mem)
		closeAll()
		return nil, err
	}
	return assemble(seg, mem, hdr, bells), nil
}

// assemble carves the mapping into its directory rings. Doorbell order is
// ring-major — [ring0 data, ring0 space, ring1 data, ring1 space, ...] —
// the contract between ChildFiles and Attach; for the classic single pair
// that is [cmd data, cmd space, reply data, reply space].
func assemble(f *os.File, mem []byte, hdr *segHdr, bells []*os.File) *Segment {
	s := &Segment{mem: mem, file: f, hdr: hdr}
	fdSegments.Add(1)
	fdSegmentFiles.Add(1)
	fdDoorbells.Add(int64(len(bells)))
	for i := 0; i < int(hdr.nrings); i++ {
		d := hdr.dir[i]
		name := "cmd"
		if i%2 == 1 {
			name = "reply"
		}
		if i > 1 {
			name = fmt.Sprintf("%s%d", name, i/2)
		}
		dataOff := d.off + ringHdrBytes
		s.rings = append(s.rings, &Ring{
			name:      name,
			hdr:       (*ringHdr)(unsafe.Pointer(&mem[d.off])),
			data:      mem[dataOff : dataOff+d.cap],
			mask:      d.cap - 1,
			dataBell:  bells[2*i],
			spaceBell: bells[2*i+1],
		})
	}
	return s
}

// Cmd returns pair 0's command ring (toward the serving side).
func (s *Segment) Cmd() *Ring { return s.rings[0] }

// Reply returns pair 0's reply ring (back from the serving side).
func (s *Segment) Reply() *Ring { return s.rings[1] }

// Rings returns every ring in the segment, in directory order.
func (s *Segment) Rings() []*Ring { return s.rings }

// Epoch returns the control region's adoption generation. Valid only while
// the segment is open.
func (s *Segment) Epoch() uint64 { return s.hdr.epoch.Load() }

// AdvanceEpoch bumps the adoption generation — called when a warm-pool
// rebind hands this segment's rings to a new session — and returns the new
// value. Both processes observe it through the shared control region.
func (s *Segment) AdvanceEpoch() uint64 { return s.hdr.epoch.Add(1) }

// Closed reports whether this process's view has been torn down.
func (s *Segment) Closed() bool { return s.closed.Load() }

// ChildFiles returns the files the attaching process must inherit, in the
// order Attach expects them back: segment file first, then two doorbells per
// ring in directory order.
func (s *Segment) ChildFiles() []*os.File {
	files := []*os.File{s.file}
	for _, r := range s.rings {
		files = append(files, r.dataBell, r.spaceBell)
	}
	return files
}

// Close shuts every ring in the segment (waking any parked peer in either
// process), waits for this process's in-flight ring operations to drain, and
// unmaps the segment — the control region and all ring headers go with the
// one mapping. If an operation refuses to drain — a wedged caller still
// inside Read — the mapping is leaked rather than unmapped under it, since a
// stale load through an unmapped page is a process-killing SIGSEGV, not an
// error. Idempotent.
func (s *Segment) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, r := range s.rings {
		r.Close()
	}
	for _, r := range s.rings {
		r.detach()
	}

	unmap := true
	deadline := time.Now().Add(2 * time.Second)
	for !s.ringsIdle() {
		if time.Now().After(deadline) {
			unmap = false
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if unmap {
		syscall.Munmap(s.mem)
	}
	s.mem = nil
	err := s.file.Close()
	for _, r := range s.rings {
		r.dataBell.Close()
		r.spaceBell.Close()
	}
	fdSegments.Add(-1)
	fdSegmentFiles.Add(-1)
	fdDoorbells.Add(-2 * int64(len(s.rings)))
	return err
}

// ringsIdle reports whether no ring operation is in flight in this process.
func (s *Segment) ringsIdle() bool {
	for _, r := range s.rings {
		if r.inflight.Load() != 0 {
			return false
		}
	}
	return true
}

// Close marks the ring closed for both processes and rings both doorbells
// so any parked side — ours or the peer's — wakes and observes it. The
// shared flag is never cleared: a closed ring stays closed.
func (r *Ring) Close() error {
	if !r.localClosed.CompareAndSwap(false, true) {
		return nil
	}
	r.hdr.closed.Store(1)
	ringBell(r.dataBell)
	ringBell(r.spaceBell)
	return nil
}

// detach snapshots the shared doorbell counters and redirects Stats to the
// snapshot, so a Stats call racing (or following) the segment unmap reads
// process-local memory instead of a page that may be gone.
func (r *Ring) detach() {
	r.finalBells.Store(r.hdr.pbells.Load() + r.hdr.cbells.Load())
	r.finalSupp.Store(r.hdr.psupp.Load() + r.hdr.csupp.Load())
	r.detached.Store(true)
}

// isClosed reports whether either side closed the ring.
func (r *Ring) isClosed() bool {
	return r.hdr.closed.Load() != 0 || r.localClosed.Load()
}

// Stats snapshots the ring's wait counters. Parks and Spins are this
// process's; Doorbells and Suppressed come from the shared header and count
// both sides. Safe to call after Close — the teardown path snapshots the
// shared counters before the mapping can go away, and the inflight gate
// keeps a concurrent unmap waiting for a live read of them.
func (r *Ring) Stats() Stats {
	s := Stats{Parks: r.parks.Load(), Spins: r.spins.Load()}
	r.inflight.Add(1)
	if r.detached.Load() {
		s.Doorbells = r.finalBells.Load()
		s.Suppressed = r.finalSupp.Load()
	} else {
		s.Doorbells = r.hdr.pbells.Load() + r.hdr.cbells.Load()
		s.Suppressed = r.hdr.psupp.Load() + r.hdr.csupp.Load()
	}
	r.inflight.Add(-1)
	return s
}

// Read copies up to len(p) currently-published bytes out of the ring,
// waiting (spin, then park on the data doorbell) while it is empty. When
// the ring is closed and fully drained it returns io.EOF — the same
// terminal shape a pipe gives its reader, which is what lets wire.Reader's
// torn-frame discipline (mid-frame EOF → ErrUnexpectedEOF → mux poisoning)
// apply unchanged.
func (r *Ring) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.detached.Load() {
		// The segment is (or is about to be) unmapped; the header may be a
		// dead page. A detached ring was drained by teardown — EOF, like any
		// other post-close read.
		return 0, io.EOF
	}

	spins := 0
	for {
		t := r.hdr.tail.Load()
		h := r.hdr.head.Load()
		if h != t {
			avail := h - t
			pos := t & r.mask
			n := uint64(len(p))
			if n > avail {
				n = avail
			}
			if contig := uint64(len(r.data)) - pos; n > contig {
				n = contig
			}
			copy(p, r.data[pos:pos+n])
			r.hdr.tail.Store(t + n)
			r.wakeWriter()
			return int(n), nil
		}
		if r.isClosed() {
			// Re-check emptiness after observing the flag: the peer may have
			// published bytes and then closed; drain them first.
			if r.hdr.head.Load() == t {
				return 0, io.EOF
			}
			continue
		}
		if spins < spinBudget {
			r.relax(spins)
			spins++
			continue
		}
		r.park(&r.hdr.rparked, r.dataBell, func() bool { return r.hdr.head.Load() != t })
		spins = 0
	}
}

// Discard consumes exactly n published bytes without copying them out — the
// ring-aware fast path under wire.Reader.DiscardPayload. It blocks like
// Read and returns how many bytes it dropped with io.EOF if the ring closed
// short.
func (r *Ring) Discard(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.detached.Load() {
		return 0, io.EOF
	}

	dropped := 0
	spins := 0
	for dropped < n {
		t := r.hdr.tail.Load()
		h := r.hdr.head.Load()
		if h != t {
			take := h - t
			if rem := uint64(n - dropped); take > rem {
				take = rem
			}
			r.hdr.tail.Store(t + take)
			r.wakeWriter()
			dropped += int(take)
			spins = 0
			continue
		}
		if r.isClosed() {
			if r.hdr.head.Load() == t {
				return dropped, io.EOF
			}
			continue
		}
		if spins < spinBudget {
			r.relax(spins)
			spins++
			continue
		}
		r.park(&r.hdr.rparked, r.dataBell, func() bool { return r.hdr.head.Load() != t })
		spins = 0
	}
	return dropped, nil
}

// Write copies all of p into the ring, waiting (spin, then park on the
// space doorbell) whenever it is full; frames larger than the ring go in
// chunks while the consumer drains concurrently. A closed ring fails the
// write with ErrClosed — the shared-memory analogue of EPIPE.
func (r *Ring) Write(p []byte) (int, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.detached.Load() {
		return 0, ErrClosed
	}

	written := 0
	spins := 0
	for written < len(p) {
		if r.isClosed() {
			return written, ErrClosed
		}
		h := r.hdr.head.Load()
		t := r.hdr.tail.Load()
		free := uint64(len(r.data)) - (h - t)
		if free == 0 {
			// The ring cannot drain while its reader sleeps: release any
			// doorbell a flush bracket is holding back before waiting for
			// space, or writer and reader would park facing each other.
			r.flushWake()
			if spins < spinBudget {
				r.relax(spins)
				spins++
				continue
			}
			r.park(&r.hdr.wparked, r.spaceBell, func() bool { return r.hdr.tail.Load() != t })
			spins = 0
			continue
		}
		pos := h & r.mask
		n := free
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		if contig := uint64(len(r.data)) - pos; n > contig {
			n = contig
		}
		copy(r.data[pos:pos+n], p[written:written+int(n)])
		r.hdr.head.Store(h + n)
		r.wakeReader()
		written += int(n)
		spins = 0
	}
	return written, nil
}

// BeginFlush opens a doorbell-coalescing bracket (wire.FlushCoalescer): the
// wake decisions of every Write until EndFlush collapse into one. Producer
// side only; brackets do not nest.
func (r *Ring) BeginFlush() { r.deferWake = true }

// EndFlush closes the bracket and performs the single deferred wake
// decision. Running the parked check here — after the bracket's final
// cursor store — preserves the Dekker no-lost-wakeup property: a consumer
// parking mid-bracket set rparked before re-checking emptiness, so either
// it saw our bytes and returned, or we see its flag now and ring.
func (r *Ring) EndFlush() {
	r.deferWake = false
	r.flushWake()
}

// flushWake issues a deferred wake decision, if one is pending. EndFlush
// runs outside any Write's inflight window, so the parked-flag load must be
// bracketed by its own inflight/detached guard against a concurrent unmap.
func (r *Ring) flushWake() {
	if !r.wakePending {
		return
	}
	r.wakePending = false
	r.inflight.Add(1)
	if !r.detached.Load() {
		r.ringDataBell()
	}
	r.inflight.Add(-1)
}

// wakeReader decides the post-publish wake: inside a flush bracket the
// decision is deferred (and counted suppressed past the first), otherwise
// the data doorbell rings iff the consumer is parked.
func (r *Ring) wakeReader() {
	if r.deferWake {
		if r.wakePending {
			// A previous publish in this bracket already holds the pending
			// decision; this one's wake is coalesced away entirely.
			r.hdr.psupp.Add(1)
		}
		r.wakePending = true
		return
	}
	r.ringDataBell()
}

// ringDataBell rings the data doorbell iff the consumer is parked (or mid-
// park). The flag check keeps the hot path syscall-free: an actively
// spinning or busy consumer never costs the producer a bell — that skip is
// what the suppressed counter records.
func (r *Ring) ringDataBell() {
	if r.hdr.rparked.Load() != 0 {
		r.hdr.pbells.Add(1)
		ringBell(r.dataBell)
	} else {
		r.hdr.psupp.Add(1)
	}
}

// wakeWriter rings the space doorbell iff the producer is parked.
func (r *Ring) wakeWriter() {
	if r.hdr.wparked.Load() != 0 {
		r.hdr.cbells.Add(1)
		ringBell(r.spaceBell)
	} else {
		r.hdr.csupp.Add(1)
	}
}

// relax burns one bounded-spin iteration: sched_yield so the peer process
// can run on a shared core, with a periodic Gosched so same-process
// goroutines get the P too.
func (r *Ring) relax(spin int) {
	r.spins.Add(1)
	if spin%goschedEvery == goschedEvery-1 {
		runtime.Gosched()
	} else {
		syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
	}
}

// park blocks on bell until the peer rings it, the ring closes, or ready
// reports the wait is already over. The flag-then-recheck order pairs with
// the peer's publish-then-check-flag order (see the package comment);
// together they guarantee the bell cannot be missed. A bell read may also
// return a stale token from an earlier wake — callers loop and re-check, so
// spurious wakeups are harmless.
func (r *Ring) park(flag *atomic.Uint32, bell *os.File, ready func() bool) {
	flag.Store(1)
	defer flag.Store(0)
	if ready() || r.isClosed() {
		return
	}
	r.parks.Add(1)
	var buf [8]byte
	// The eventfd is in blocking mode (exec inheritance forces it there), so
	// this occupies an OS thread, not the netpoller; the runtime hands the P
	// off. Errors need no handling: a closed bell during teardown surfaces
	// as an error here, and the caller's loop then observes the closed ring.
	bell.Read(buf[:])
}

// ringBell posts one token to an eventfd. Failures are ignored: the only
// ways a bell write fails are teardown races, where the waiter is being
// released by the closed flag anyway.
func ringBell(bell *os.File) {
	var one = [8]byte{0: 1}
	bell.Write(one[:])
}

// newEventFD opens a fresh eventfd doorbell. Blocking mode is deliberate:
// os/exec flips inherited descriptors to blocking when spawning the child,
// and the flag lives on the shared open file description, so nonblocking
// semantics could not survive anyway. A parked waiter simply occupies one
// OS thread until rung.
func newEventFD() (*os.File, error) {
	const efdCloexec = 0x80000 // EFD_CLOEXEC; cleared per-fd by ExtraFiles inheritance
	fd, _, errno := syscall.Syscall(eventfdTrap, 0, efdCloexec, 0)
	if errno != 0 {
		return nil, fmt.Errorf("shm: eventfd: %w", errno)
	}
	return os.NewFile(fd, "shm-doorbell"), nil
}

// newSegmentFile returns an anonymous file to back the mapping: a memfd
// when available, else an unlinked temp file (page-cache backed, so the
// data path is the same; only the name lifecycle differs).
func newSegmentFile() (*os.File, error) {
	if memfdTrap != 0 {
		name, err := syscall.BytePtrFromString("af-shm")
		if err == nil {
			const mfdCloexec = 1 // MFD_CLOEXEC
			fd, _, errno := syscall.Syscall(memfdTrap, uintptr(unsafe.Pointer(name)), mfdCloexec, 0)
			if errno == 0 {
				return os.NewFile(fd, "af-shm"), nil
			}
		}
	}
	f, err := os.CreateTemp("", "af-shm-*")
	if err != nil {
		return nil, fmt.Errorf("shm: create segment file: %w", err)
	}
	os.Remove(f.Name())
	return f, nil
}

func ceilPow2(n int) int {
	if n < minRingBytes {
		n = minRingBytes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
