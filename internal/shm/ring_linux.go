//go:build linux

package shm

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Segment layout, all offsets cache-line aligned:
//
//	[0, 4096)                      segment header (magic, version, capacities)
//	[4096, 4096+ringHdrBytes)      command-ring header
//	[..., ... + cmdCap)            command-ring data
//	[..., ... + ringHdrBytes)      reply-ring header
//	[..., ... + replyCap)          reply-ring data
//
// Capacities are powers of two so cursor positions reduce with a mask, and
// the cursors themselves are free-running uint64 byte counts (head = bytes
// produced, tail = bytes consumed) — the empty/full ambiguity of wrapped
// indices never arises and 2^64 bytes outlives any session.
const (
	segMagic     = 0x41465348 // "AFSH" — active-file shared memory
	segVersion   = 1
	segHdrBytes  = 4096
	ringHdrBytes = 512
	minRingBytes = 4096
)

// Spin calibration. On a shared core the peer cannot make progress while we
// burn it, so every spin iteration yields the CPU with sched_yield — that is
// what turns the spin from a pure waste into "run the peer, then re-check".
// Every goschedEvery-th iteration yields to the Go scheduler instead, so
// same-process goroutines (mux callers, child workers) are not starved of
// the P under GOMAXPROCS=1; it is kept rare because an idle-runqueue Gosched
// costs a netpoll probe. After spinBudget fruitless iterations the waiter
// parks on its doorbell and burns nothing.
const (
	spinBudget   = 96
	goschedEvery = 8
)

// Raw syscall numbers, named for the call sites. memfd_create postdates the
// frozen syscall package, so its number is spelled per-arch in
// memfd_*.go; zero means "no memfd, use a temp file".
const eventfdTrap = syscall.SYS_EVENTFD2

type segHdr struct {
	magic    uint32
	version  uint32
	cmdCap   uint64
	replyCap uint64
}

// ringHdr is the shared control block of one ring, laid out so every
// mutable word owns a cache line: head is written only by the producer,
// tail only by the consumer, and sharing a line would make each side's
// cursor store invalidate the other's hot loop.
type ringHdr struct {
	head    atomic.Uint64 // bytes produced; written by producer only
	_       [56]byte
	tail    atomic.Uint64 // bytes consumed; written by consumer only
	_       [56]byte
	rparked atomic.Uint32 // consumer is (about to be) parked on the data bell
	_       [60]byte
	wparked atomic.Uint32 // producer is (about to be) parked on the space bell
	_       [60]byte
	closed  atomic.Uint32 // either side closed; set once, never cleared
	_       [60]byte
}

// Ring is one direction of the shared segment: an SPSC byte stream over
// mapped memory. Exactly one process writes it and exactly one reads it;
// within a process the usual io.Reader/io.Writer discipline applies (one
// reader goroutine, one writer goroutine at a time).
//
// Two doorbells serve the two wait directions: the producer rings dataBell
// to wake a consumer parked for bytes, the consumer rings spaceBell to wake
// a producer parked for room. They must be distinct — with a single shared
// bell, a parking reader could swallow the token meant for a space-starved
// writer and strand both sides.
type Ring struct {
	name string
	hdr  *ringHdr
	data []byte
	mask uint64

	dataBell  *os.File // producer → consumer: "bytes available"
	spaceBell *os.File // consumer → producer: "space available"

	localClosed atomic.Bool
	inflight    atomic.Int64 // ring ops in this process, gating munmap

	parks atomic.Uint64
	bells atomic.Uint64
	spins atomic.Uint64
}

// Segment is one process's view of the shared mapping and its doorbells.
// The parent creates it (New) and passes its files to the child, which
// attaches (Attach); both ends hold equal views afterwards.
type Segment struct {
	mem    []byte
	file   *os.File
	cmd    *Ring
	reply  *Ring
	closed atomic.Bool
}

// Supported reports whether this platform can host the transport.
func Supported() bool { return true }

// New creates a fresh anonymous shared segment with the given ring
// capacities (0 means the defaults) and its four doorbell eventfds. The
// backing file is a memfd when the kernel has one, else an unlinked temp
// file; either way nothing persists past the processes holding it.
func New(cmdBytes, replyBytes int) (*Segment, error) {
	if cmdBytes <= 0 {
		cmdBytes = DefaultCmdBytes
	}
	if replyBytes <= 0 {
		replyBytes = DefaultReplyBytes
	}
	cmdCap := ceilPow2(cmdBytes)
	replyCap := ceilPow2(replyBytes)

	f, err := newSegmentFile()
	if err != nil {
		return nil, err
	}
	total := segHdrBytes + ringHdrBytes + cmdCap + ringHdrBytes + replyCap
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*segHdr)(unsafe.Pointer(&mem[0]))
	hdr.magic = segMagic
	hdr.version = segVersion
	hdr.cmdCap = uint64(cmdCap)
	hdr.replyCap = uint64(replyCap)

	var bells [4]*os.File
	for i := range bells {
		b, err := newEventFD()
		if err != nil {
			for _, open := range bells[:i] {
				open.Close()
			}
			syscall.Munmap(mem)
			f.Close()
			return nil, err
		}
		bells[i] = b
	}
	return assemble(f, mem, cmdCap, replyCap, bells), nil
}

// Attach builds the child's view from the inherited files: the segment file
// plus the four doorbells, in ChildFiles order. It takes ownership of the
// files on success and on failure.
func Attach(seg *os.File, bells []*os.File) (*Segment, error) {
	closeAll := func() {
		seg.Close()
		for _, b := range bells {
			if b != nil {
				b.Close()
			}
		}
	}
	if len(bells) != 4 {
		closeAll()
		return nil, fmt.Errorf("shm: attach wants 4 doorbells, got %d", len(bells))
	}
	st, err := seg.Stat()
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: stat segment: %w", err)
	}
	total := int(st.Size())
	if total < segHdrBytes+2*ringHdrBytes+2*minRingBytes {
		closeAll()
		return nil, fmt.Errorf("shm: segment too small (%d bytes)", total)
	}
	mem, err := syscall.Mmap(int(seg.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*segHdr)(unsafe.Pointer(&mem[0]))
	cmdCap, replyCap := int(hdr.cmdCap), int(hdr.replyCap)
	switch {
	case hdr.magic != segMagic:
		err = fmt.Errorf("shm: bad segment magic %#x", hdr.magic)
	case hdr.version != segVersion:
		err = fmt.Errorf("shm: segment version %d, want %d", hdr.version, segVersion)
	case cmdCap < minRingBytes || replyCap < minRingBytes ||
		cmdCap&(cmdCap-1) != 0 || replyCap&(replyCap-1) != 0 ||
		segHdrBytes+2*ringHdrBytes+cmdCap+replyCap != total:
		err = fmt.Errorf("shm: segment geometry %d+%d does not fit %d bytes", cmdCap, replyCap, total)
	}
	if err != nil {
		syscall.Munmap(mem)
		closeAll()
		return nil, err
	}
	var arr [4]*os.File
	copy(arr[:], bells)
	return assemble(seg, mem, cmdCap, replyCap, arr), nil
}

// assemble carves the mapping into the two rings. Doorbell order is
// [cmd data, cmd space, reply data, reply space] — the contract between
// ChildFiles and Attach.
func assemble(f *os.File, mem []byte, cmdCap, replyCap int, bells [4]*os.File) *Segment {
	cmdOff := segHdrBytes
	replyOff := cmdOff + ringHdrBytes + cmdCap
	s := &Segment{
		mem:  mem,
		file: f,
		cmd: &Ring{
			name:      "cmd",
			hdr:       (*ringHdr)(unsafe.Pointer(&mem[cmdOff])),
			data:      mem[cmdOff+ringHdrBytes : cmdOff+ringHdrBytes+cmdCap],
			mask:      uint64(cmdCap - 1),
			dataBell:  bells[0],
			spaceBell: bells[1],
		},
		reply: &Ring{
			name:      "reply",
			hdr:       (*ringHdr)(unsafe.Pointer(&mem[replyOff])),
			data:      mem[replyOff+ringHdrBytes : replyOff+ringHdrBytes+replyCap],
			mask:      uint64(replyCap - 1),
			dataBell:  bells[2],
			spaceBell: bells[3],
		},
	}
	return s
}

// Cmd returns the parent→child command ring.
func (s *Segment) Cmd() *Ring { return s.cmd }

// Reply returns the child→parent reply ring.
func (s *Segment) Reply() *Ring { return s.reply }

// ChildFiles returns the files the child must inherit, in the order Attach
// expects them back: segment file first, then the four doorbells.
func (s *Segment) ChildFiles() []*os.File {
	return []*os.File{
		s.file,
		s.cmd.dataBell, s.cmd.spaceBell,
		s.reply.dataBell, s.reply.spaceBell,
	}
}

// Close shuts both rings (waking any parked peer in either process), waits
// for this process's in-flight ring operations to drain, and unmaps the
// segment. If an operation refuses to drain — a wedged caller still inside
// Read — the mapping is leaked rather than unmapped under it, since a stale
// load through an unmapped page is a process-killing SIGSEGV, not an error.
// Idempotent.
func (s *Segment) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.cmd.Close()
	s.reply.Close()

	unmap := true
	deadline := time.Now().Add(2 * time.Second)
	for s.cmd.inflight.Load() != 0 || s.reply.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			unmap = false
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if unmap {
		syscall.Munmap(s.mem)
	}
	s.mem = nil
	err := s.file.Close()
	for _, b := range []*os.File{s.cmd.dataBell, s.cmd.spaceBell, s.reply.dataBell, s.reply.spaceBell} {
		b.Close()
	}
	return err
}

// Close marks the ring closed for both processes and rings both doorbells
// so any parked side — ours or the peer's — wakes and observes it. The
// shared flag is never cleared: a closed ring stays closed.
func (r *Ring) Close() error {
	if !r.localClosed.CompareAndSwap(false, true) {
		return nil
	}
	r.hdr.closed.Store(1)
	ringBell(r.dataBell)
	ringBell(r.spaceBell)
	return nil
}

// isClosed reports whether either side closed the ring.
func (r *Ring) isClosed() bool {
	return r.hdr.closed.Load() != 0 || r.localClosed.Load()
}

// Stats snapshots the ring's wait counters.
func (r *Ring) Stats() Stats {
	return Stats{
		Parks:     r.parks.Load(),
		Doorbells: r.bells.Load(),
		Spins:     r.spins.Load(),
	}
}

// Read copies up to len(p) currently-published bytes out of the ring,
// waiting (spin, then park on the data doorbell) while it is empty. When
// the ring is closed and fully drained it returns io.EOF — the same
// terminal shape a pipe gives its reader, which is what lets wire.Reader's
// torn-frame discipline (mid-frame EOF → ErrUnexpectedEOF → mux poisoning)
// apply unchanged.
func (r *Ring) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)

	spins := 0
	for {
		t := r.hdr.tail.Load()
		h := r.hdr.head.Load()
		if h != t {
			avail := h - t
			pos := t & r.mask
			n := uint64(len(p))
			if n > avail {
				n = avail
			}
			if contig := uint64(len(r.data)) - pos; n > contig {
				n = contig
			}
			copy(p, r.data[pos:pos+n])
			r.hdr.tail.Store(t + n)
			r.wakeWriter()
			return int(n), nil
		}
		if r.isClosed() {
			// Re-check emptiness after observing the flag: the peer may have
			// published bytes and then closed; drain them first.
			if r.hdr.head.Load() == t {
				return 0, io.EOF
			}
			continue
		}
		if spins < spinBudget {
			r.relax(spins)
			spins++
			continue
		}
		r.park(&r.hdr.rparked, r.dataBell, func() bool { return r.hdr.head.Load() != t })
		spins = 0
	}
}

// Discard consumes exactly n published bytes without copying them out — the
// ring-aware fast path under wire.Reader.DiscardPayload. It blocks like
// Read and returns how many bytes it dropped with io.EOF if the ring closed
// short.
func (r *Ring) Discard(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)

	dropped := 0
	spins := 0
	for dropped < n {
		t := r.hdr.tail.Load()
		h := r.hdr.head.Load()
		if h != t {
			take := h - t
			if rem := uint64(n - dropped); take > rem {
				take = rem
			}
			r.hdr.tail.Store(t + take)
			r.wakeWriter()
			dropped += int(take)
			spins = 0
			continue
		}
		if r.isClosed() {
			if r.hdr.head.Load() == t {
				return dropped, io.EOF
			}
			continue
		}
		if spins < spinBudget {
			r.relax(spins)
			spins++
			continue
		}
		r.park(&r.hdr.rparked, r.dataBell, func() bool { return r.hdr.head.Load() != t })
		spins = 0
	}
	return dropped, nil
}

// Write copies all of p into the ring, waiting (spin, then park on the
// space doorbell) whenever it is full; frames larger than the ring go in
// chunks while the consumer drains concurrently. A closed ring fails the
// write with ErrClosed — the shared-memory analogue of EPIPE.
func (r *Ring) Write(p []byte) (int, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)

	written := 0
	spins := 0
	for written < len(p) {
		if r.isClosed() {
			return written, ErrClosed
		}
		h := r.hdr.head.Load()
		t := r.hdr.tail.Load()
		free := uint64(len(r.data)) - (h - t)
		if free == 0 {
			if spins < spinBudget {
				r.relax(spins)
				spins++
				continue
			}
			r.park(&r.hdr.wparked, r.spaceBell, func() bool { return r.hdr.tail.Load() != t })
			spins = 0
			continue
		}
		pos := h & r.mask
		n := free
		if rem := uint64(len(p) - written); n > rem {
			n = rem
		}
		if contig := uint64(len(r.data)) - pos; n > contig {
			n = contig
		}
		copy(r.data[pos:pos+n], p[written:written+int(n)])
		r.hdr.head.Store(h + n)
		r.wakeReader()
		written += int(n)
		spins = 0
	}
	return written, nil
}

// wakeReader rings the data doorbell iff the consumer is parked (or mid-
// park). The flag check keeps the hot path syscall-free: an actively
// spinning or busy consumer never costs the producer a bell.
func (r *Ring) wakeReader() {
	if r.hdr.rparked.Load() != 0 {
		r.bells.Add(1)
		ringBell(r.dataBell)
	}
}

// wakeWriter rings the space doorbell iff the producer is parked.
func (r *Ring) wakeWriter() {
	if r.hdr.wparked.Load() != 0 {
		r.bells.Add(1)
		ringBell(r.spaceBell)
	}
}

// relax burns one bounded-spin iteration: sched_yield so the peer process
// can run on a shared core, with a periodic Gosched so same-process
// goroutines get the P too.
func (r *Ring) relax(spin int) {
	r.spins.Add(1)
	if spin%goschedEvery == goschedEvery-1 {
		runtime.Gosched()
	} else {
		syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
	}
}

// park blocks on bell until the peer rings it, the ring closes, or ready
// reports the wait is already over. The flag-then-recheck order pairs with
// the peer's publish-then-check-flag order (see the package comment);
// together they guarantee the bell cannot be missed. A bell read may also
// return a stale token from an earlier wake — callers loop and re-check, so
// spurious wakeups are harmless.
func (r *Ring) park(flag *atomic.Uint32, bell *os.File, ready func() bool) {
	flag.Store(1)
	defer flag.Store(0)
	if ready() || r.isClosed() {
		return
	}
	r.parks.Add(1)
	var buf [8]byte
	// The eventfd is in blocking mode (exec inheritance forces it there), so
	// this occupies an OS thread, not the netpoller; the runtime hands the P
	// off. Errors need no handling: a closed bell during teardown surfaces
	// as an error here, and the caller's loop then observes the closed ring.
	bell.Read(buf[:])
}

// ringBell posts one token to an eventfd. Failures are ignored: the only
// ways a bell write fails are teardown races, where the waiter is being
// released by the closed flag anyway.
func ringBell(bell *os.File) {
	var one = [8]byte{0: 1}
	bell.Write(one[:])
}

// newEventFD opens a fresh eventfd doorbell. Blocking mode is deliberate:
// os/exec flips inherited descriptors to blocking when spawning the child,
// and the flag lives on the shared open file description, so nonblocking
// semantics could not survive anyway. A parked waiter simply occupies one
// OS thread until rung.
func newEventFD() (*os.File, error) {
	const efdCloexec = 0x80000 // EFD_CLOEXEC; cleared per-fd by ExtraFiles inheritance
	fd, _, errno := syscall.Syscall(eventfdTrap, 0, efdCloexec, 0)
	if errno != 0 {
		return nil, fmt.Errorf("shm: eventfd: %w", errno)
	}
	return os.NewFile(fd, "shm-doorbell"), nil
}

// newSegmentFile returns an anonymous file to back the mapping: a memfd
// when available, else an unlinked temp file (page-cache backed, so the
// data path is the same; only the name lifecycle differs).
func newSegmentFile() (*os.File, error) {
	if memfdTrap != 0 {
		name, err := syscall.BytePtrFromString("af-shm")
		if err == nil {
			const mfdCloexec = 1 // MFD_CLOEXEC
			fd, _, errno := syscall.Syscall(memfdTrap, uintptr(unsafe.Pointer(name)), mfdCloexec, 0)
			if errno == 0 {
				return os.NewFile(fd, "af-shm"), nil
			}
		}
	}
	f, err := os.CreateTemp("", "af-shm-*")
	if err != nil {
		return nil, fmt.Errorf("shm: create segment file: %w", err)
	}
	os.Remove(f.Name())
	return f, nil
}

func ceilPow2(n int) int {
	if n < minRingBytes {
		n = minRingBytes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
