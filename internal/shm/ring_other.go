//go:build !linux

package shm

import "os"

// The transport needs mmap-shared anonymous files and eventfd doorbells;
// off Linux it is compiled out and every entry point reports
// ErrUnsupported, which core turns into a pipe fallback (recorded in the
// handle's carrier stats).

// Supported reports whether this platform can host the transport.
func Supported() bool { return false }

// Ring is unavailable on this platform; no value is ever constructed.
type Ring struct{}

func (r *Ring) Read(p []byte) (int, error)  { return 0, ErrUnsupported }
func (r *Ring) Write(p []byte) (int, error) { return 0, ErrUnsupported }
func (r *Ring) Discard(n int) (int, error)  { return 0, ErrUnsupported }
func (r *Ring) Close() error                { return nil }
func (r *Ring) Stats() Stats                { return Stats{} }
func (r *Ring) BeginFlush()                 {}
func (r *Ring) EndFlush()                   {}
func (r *Ring) SelfBuffered()               {}

// Segment is unavailable on this platform; no value is ever constructed.
type Segment struct{}

func New(cmdBytes, replyBytes int) (*Segment, error) { return nil, ErrUnsupported }

func NewMulti(pairs, cmdBytes, replyBytes int) (*Segment, error) { return nil, ErrUnsupported }

func Attach(seg *os.File, bells []*os.File) (*Segment, error) {
	seg.Close()
	for _, b := range bells {
		if b != nil {
			b.Close()
		}
	}
	return nil, ErrUnsupported
}

func (s *Segment) Cmd() *Ring             { return nil }
func (s *Segment) Reply() *Ring           { return nil }
func (s *Segment) Rings() []*Ring         { return nil }
func (s *Segment) Epoch() uint64          { return 0 }
func (s *Segment) AdvanceEpoch() uint64   { return 0 }
func (s *Segment) Closed() bool           { return true }
func (s *Segment) ChildFiles() []*os.File { return nil }
func (s *Segment) Close() error           { return nil }
