//go:build linux

package shm

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func newTestSegment(t *testing.T, cmdBytes, replyBytes int) *Segment {
	t.Helper()
	s, err := New(cmdBytes, replyBytes)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRingRoundTrip(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	msg := []byte("hello, ring")
	if n, err := r.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

// TestRingWraparound pushes a stream across the ring boundary many times
// with mismatched read/write chunk sizes, checking byte-exact delivery.
func TestRingWraparound(t *testing.T) {
	s := newTestSegment(t, minRingBytes, minRingBytes)
	r := s.Reply()

	const total = 10 * minRingBytes
	src := make([]byte, total)
	rng := rand.New(rand.NewSource(1))
	rng.Read(src)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sent := 0
		for sent < total {
			n := 1 + rng.Intn(3000)
			if sent+n > total {
				n = total - sent
			}
			if _, err := r.Write(src[sent : sent+n]); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			sent += n
		}
	}()

	got := make([]byte, 0, total)
	buf := make([]byte, 2731) // deliberately co-prime with the ring size
	for len(got) < total {
		n, err := r.Read(buf)
		if err != nil {
			t.Fatalf("Read after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	wg.Wait()
	if !bytes.Equal(got, src) {
		t.Fatal("byte stream corrupted across wraparound")
	}
}

// TestRingLargeWrite checks that a single write far larger than the ring
// capacity lands intact while a concurrent reader drains.
func TestRingLargeWrite(t *testing.T) {
	s := newTestSegment(t, minRingBytes, minRingBytes)
	r := s.Cmd()

	src := make([]byte, 64*minRingBytes)
	rand.New(rand.NewSource(2)).Read(src)

	done := make(chan error, 1)
	go func() {
		_, err := r.Write(src)
		done <- err
	}()

	got := make([]byte, len(src))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("large write corrupted")
	}
}

func TestRingDiscard(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	payload := make([]byte, 3*minRingBytes)
	rand.New(rand.NewSource(3)).Read(payload)
	marker := []byte("after")

	go func() {
		r.Write(payload)
		r.Write(marker)
	}()

	if n, err := r.Discard(len(payload)); err != nil || n != len(payload) {
		t.Fatalf("Discard = %d, %v; want %d, nil", n, err, len(payload))
	}
	got := make([]byte, len(marker))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("ReadFull after discard: %v", err)
	}
	if !bytes.Equal(got, marker) {
		t.Fatalf("read %q after discard, want %q", got, marker)
	}
}

// TestRingCloseSemantics: a reader drains published bytes then sees io.EOF;
// a writer on a closed ring fails with ErrClosed.
func TestRingCloseSemantics(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	if _, err := r.Write([]byte("tail")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	r.Close()

	got := make([]byte, 16)
	n, err := r.Read(got)
	if err != nil || string(got[:n]) != "tail" {
		t.Fatalf("Read drained %q, %v; want \"tail\", nil", got[:n], err)
	}
	if _, err := r.Read(got); err != io.EOF {
		t.Fatalf("Read after drain = %v, want io.EOF", err)
	}
	if _, err := r.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after close = %v, want ErrClosed", err)
	}
}

// TestRingCloseUnblocksWaiters: Close must release a reader parked on an
// empty ring and a writer parked on a full one, without goroutine leaks.
func TestRingCloseUnblocksWaiters(t *testing.T) {
	faultinject.LeakCheck(t)
	s := newTestSegment(t, minRingBytes, minRingBytes)

	readerDone := make(chan error, 1)
	go func() {
		_, err := s.Reply().Read(make([]byte, 8))
		readerDone <- err
	}()

	writerDone := make(chan error, 1)
	go func() {
		// Overfill the command ring so the writer must park for space.
		_, err := s.Cmd().Write(make([]byte, 2*minRingBytes))
		writerDone <- err
	}()

	// Let both goroutines reach their parks (parks counter flips when they
	// commit to the doorbell wait).
	waitFor(t, func() bool {
		return s.Reply().Stats().Parks >= 1 && s.Cmd().Stats().Parks >= 1
	})

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-readerDone; err != io.EOF {
		t.Fatalf("parked reader woke with %v, want io.EOF", err)
	}
	if err := <-writerDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked writer woke with %v, want ErrClosed", err)
	}
}

// TestParkedRingBurnsNoCPU pins the spin-then-park contract: once a reader
// with no traffic has parked, it must stop spinning entirely (the spin
// counter freezes) and wake only when the producer rings the doorbell.
func TestParkedRingBurnsNoCPU(t *testing.T) {
	faultinject.LeakCheck(t)
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	got := make(chan byte, 1)
	go func() {
		var buf [1]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			t.Errorf("parked read: %v", err)
			close(got)
			return
		}
		got <- buf[0]
	}()

	waitFor(t, func() bool { return r.Stats().Parks >= 1 })

	// Parked now. Any further spinning during this idle window is a busy
	// loop — exactly the CPU burn the doorbell exists to prevent.
	idleStart := r.Stats()
	time.Sleep(100 * time.Millisecond)
	idleEnd := r.Stats()
	if idleEnd.Spins != idleStart.Spins {
		t.Fatalf("parked ring kept spinning: %d yield iterations during idle window",
			idleEnd.Spins-idleStart.Spins)
	}
	if idleEnd.Parks != idleStart.Parks {
		t.Fatalf("parked ring re-parked %d times while idle (spurious wakeups)",
			idleEnd.Parks-idleStart.Parks)
	}

	// One byte wakes it via the doorbell.
	if _, err := r.Write([]byte{0x42}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	select {
	case b := <-got:
		if b != 0x42 {
			t.Fatalf("woke with byte %#x, want 0x42", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("doorbell did not wake the parked reader")
	}
	if bells := r.Stats().Doorbells; bells == 0 {
		t.Fatal("wakeup happened with no doorbell recorded")
	}
}

// TestRingConcurrentStress runs both rings hard in both directions under
// the race detector: one echo pair per ring with randomized chunk sizes.
func TestRingConcurrentStress(t *testing.T) {
	faultinject.LeakCheck(t)
	s := newTestSegment(t, minRingBytes, minRingBytes)

	const total = 256 * 1024
	stream := func(r *Ring, seed int64, done chan<- error) {
		src := make([]byte, total)
		rand.New(rand.NewSource(seed)).Read(src)
		go func() {
			sent := 0
			rng := rand.New(rand.NewSource(seed + 1))
			for sent < total {
				n := 1 + rng.Intn(8192)
				if sent+n > total {
					n = total - sent
				}
				if _, err := r.Write(src[sent : sent+n]); err != nil {
					done <- err
					return
				}
				sent += n
			}
			done <- nil
		}()
		go func() {
			got := make([]byte, 0, total)
			buf := make([]byte, 4096)
			for len(got) < total {
				n, err := r.Read(buf)
				if err != nil {
					done <- err
					return
				}
				got = append(got, buf[:n]...)
			}
			if !bytes.Equal(got, src) {
				done <- errors.New("stream corrupted")
				return
			}
			done <- nil
		}()
	}

	cmdDone := make(chan error, 2)
	replyDone := make(chan error, 2)
	stream(s.Cmd(), 100, cmdDone)
	stream(s.Reply(), 200, replyDone)
	for i := 0; i < 2; i++ {
		if err := <-cmdDone; err != nil {
			t.Fatalf("cmd ring: %v", err)
		}
		if err := <-replyDone; err != nil {
			t.Fatalf("reply ring: %v", err)
		}
	}
}

// TestSegmentCloseIdempotent double-closes with live-but-quiescent rings.
func TestSegmentCloseIdempotent(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
