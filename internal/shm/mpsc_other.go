//go:build !linux

package shm

import (
	"io"
	"os"
)

// The MPSC lane plane compiles out with the rest of the transport; every
// entry point reports ErrUnsupported so core falls back to per-session
// conduits (recorded in the handle's carrier stats).

const (
	// MaxLanes matches the Linux lane-table bound so manifest validation
	// behaves identically across platforms.
	MaxLanes = 256

	DefaultMPSCCmdBytes   = 4 << 20
	DefaultMPSCReplyBytes = 8 << 20
)

// RecordKind tags one record's stream; see the Linux implementation.
type RecordKind uint8

const (
	RecordFrame RecordKind = 0
	RecordData  RecordKind = 1
	RecordEOS   RecordKind = 2
)

// MPSCQueue is unavailable on this platform; no value is ever constructed.
type MPSCQueue struct{}

func (q *MPSCQueue) LaneProducers(lane uint16) (frames, data *Producer) { return nil, nil }
func (q *MPSCQueue) Producer(lane uint16, kind RecordKind) *Producer    { return nil }
func (q *MPSCQueue) SendEOS(lane uint16) error                          { return ErrUnsupported }
func (q *MPSCQueue) Stats() Stats                                       { return Stats{} }
func (q *MPSCQueue) Drain(func(lane uint16, kind RecordKind, payload []byte)) error {
	return io.EOF
}

// Producer is unavailable on this platform; no value is ever constructed.
type Producer struct{}

func (p *Producer) Write(b []byte) (int, error) { return 0, ErrUnsupported }
func (p *Producer) BeginFlush()                 {}
func (p *Producer) EndFlush()                   {}

// MPSCSegment is unavailable on this platform; no value is ever constructed.
type MPSCSegment struct{}

func NewMPSC(lanes, cmdBytes, replyBytes int) (*MPSCSegment, error) { return nil, ErrUnsupported }

func AttachMPSC(seg *os.File, bells []*os.File) (*MPSCSegment, error) {
	seg.Close()
	for _, b := range bells {
		if b != nil {
			b.Close()
		}
	}
	return nil, ErrUnsupported
}

func (s *MPSCSegment) Cmd() *MPSCQueue                     { return nil }
func (s *MPSCSegment) Reply() *MPSCQueue                   { return nil }
func (s *MPSCSegment) Lanes() int                          { return 0 }
func (s *MPSCSegment) Epoch() uint64                       { return 0 }
func (s *MPSCSegment) AdvanceEpoch() uint64                { return 0 }
func (s *MPSCSegment) Closed() bool                        { return true }
func (s *MPSCSegment) ChildFiles() []*os.File              { return nil }
func (s *MPSCSegment) ClaimLane() (uint16, bool)           { return 0, false }
func (s *MPSCSegment) ReleaseLane(lane uint16)             {}
func (s *MPSCSegment) QuiesceLane(lane uint16)             {}
func (s *MPSCSegment) LaneCounts() (claimed, draining int) { return 0, 0 }
func (s *MPSCSegment) PlaceSegment(node int) bool          { return false }
func (s *MPSCSegment) Close() error                        { return nil }
