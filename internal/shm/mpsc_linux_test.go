//go:build linux

package shm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// drainAll pumps q.Drain until io.EOF, forwarding records to fn.
func drainAll(t *testing.T, q *MPSCQueue, fn func(lane uint16, kind RecordKind, payload []byte)) {
	t.Helper()
	for {
		err := q.Drain(fn)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			t.Errorf("drain: %v", err)
			return
		}
	}
}

// TestMPSCBasic round-trips records of every kind across lanes and checks
// payloads, kinds, and lane tags survive.
func TestMPSCBasic(t *testing.T) {
	seg, err := NewMPSC(8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	q := seg.Cmd()
	f3, d3 := q.LaneProducers(3)
	if _, err := f3.Write([]byte("frame-bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := d3.Write([]byte("data-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := q.SendEOS(3); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		lane    uint16
		kind    RecordKind
		payload string
	}
	var got []rec
	for len(got) < 3 {
		if err := q.Drain(func(lane uint16, kind RecordKind, p []byte) {
			got = append(got, rec{lane, kind, string(p)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := []rec{
		{3, RecordFrame, "frame-bytes"},
		{3, RecordData, "data-bytes"},
		{3, RecordEOS, ""},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMPSCWrapPad forces records across the wrap boundary of a minimal queue
// and checks the pad discipline keeps every record contiguous and intact.
func TestMPSCWrapPad(t *testing.T) {
	seg, err := NewMPSC(2, minRingBytes, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	q := seg.Cmd()
	p := q.Producer(0, RecordFrame)

	// Odd-sized records walk the head across the boundary repeatedly.
	payload := make([]byte, 760)
	var consumed int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drainAll(t, q, func(lane uint16, kind RecordKind, b []byte) {
			if len(b) != len(payload) {
				t.Errorf("record %d arrived %d bytes, want %d", consumed, len(b), len(payload))
			}
			for i := range b {
				if b[i] != byte(consumed) {
					t.Errorf("record %d corrupt at offset %d", consumed, i)
					break
				}
			}
			consumed++
		})
	}()
	const records = 200
	for i := 0; i < records; i++ {
		for j := range payload {
			payload[j] = byte(i)
		}
		if _, err := p.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	seg.Cmd().close()
	wg.Wait()
	if consumed != records {
		t.Fatalf("consumed %d records, want %d", consumed, records)
	}
}

// TestMPSCRandomizedProducers is the multi-producer race drill: many
// goroutines submit randomized record schedules into one queue while a
// single consumer verifies that every lane's stream arrives complete, in
// per-lane order, and uncorrupted.
func TestMPSCRandomizedProducers(t *testing.T) {
	seg, err := NewMPSC(16, 64<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	q := seg.Cmd()

	const (
		producers = 8
		perLane   = 300
	)
	type seen struct {
		next  uint32
		total int
	}
	lanes := make([]seen, producers)
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		drainAll(t, q, func(lane uint16, kind RecordKind, b []byte) {
			if kind != RecordFrame || len(b) < 8 {
				t.Errorf("lane %d: unexpected record kind=%d len=%d", lane, kind, len(b))
				return
			}
			gotLane := binary.LittleEndian.Uint16(b)
			seq := binary.LittleEndian.Uint32(b[2:])
			s := &lanes[lane]
			if gotLane != lane {
				t.Errorf("lane %d record self-describes lane %d", lane, gotLane)
			}
			if seq != s.next {
				t.Errorf("lane %d: seq %d, want %d (reordered stream)", lane, seq, s.next)
			}
			for i := 8; i < len(b); i++ {
				if b[i] != byte(seq) {
					t.Errorf("lane %d seq %d corrupt at %d", lane, seq, i)
					break
				}
			}
			s.next = seq + 1
			s.total++
		})
	}()

	var prodWG sync.WaitGroup
	for lane := 0; lane < producers; lane++ {
		prodWG.Add(1)
		go func(lane uint16) {
			defer prodWG.Done()
			rng := rand.New(rand.NewSource(int64(lane) * 7919))
			p := q.Producer(lane, RecordFrame)
			buf := make([]byte, 8+2048)
			for seq := uint32(0); seq < perLane; seq++ {
				n := 8 + rng.Intn(2048)
				binary.LittleEndian.PutUint16(buf, lane)
				binary.LittleEndian.PutUint32(buf[2:], seq)
				for i := 8; i < n; i++ {
					buf[i] = byte(seq)
				}
				var werr error
				if rng.Intn(4) == 0 {
					p.BeginFlush()
					_, werr = p.Write(buf[:n])
					p.EndFlush()
				} else {
					_, werr = p.Write(buf[:n])
				}
				if werr != nil {
					t.Errorf("lane %d write: %v", lane, werr)
					return
				}
			}
		}(uint16(lane))
	}
	prodWG.Wait()
	q.close()
	consumerWG.Wait()
	for lane := range lanes {
		if lanes[lane].total != perLane {
			t.Errorf("lane %d delivered %d records, want %d", lane, lanes[lane].total, perLane)
		}
	}
}

// TestMPSCBackpressureMidFlush parks a producer on a full queue in the
// middle of a flush-coalescing bracket: the deferred doorbell must be
// released before the producer sleeps, or producer and consumer would park
// facing each other forever.
func TestMPSCBackpressureMidFlush(t *testing.T) {
	seg, err := NewMPSC(2, minRingBytes, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	q := seg.Cmd()
	p := q.Producer(0, RecordFrame)

	var consumed int
	done := make(chan struct{})
	go func() {
		defer close(done)
		drainAll(t, q, func(uint16, RecordKind, []byte) { consumed++ })
	}()

	// Everything below rides one bracket; total volume is several times the
	// queue capacity, so the producer must park (and wake the consumer) many
	// times before EndFlush ever runs.
	const records = 64
	payload := make([]byte, 512)
	p.BeginFlush()
	for i := 0; i < records; i++ {
		if _, err := p.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	p.EndFlush()
	q.close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never drained: mid-flush backpressure deadlocked")
	}
	if consumed != records {
		t.Fatalf("consumed %d records, want %d", consumed, records)
	}
}

// TestMPSCCloseReleasesParkedProducers fills the queue with no consumer,
// parks several producers on the space bell, then closes: the single close
// token must relay through every parked producer.
func TestMPSCCloseReleasesParkedProducers(t *testing.T) {
	seg, err := NewMPSC(4, minRingBytes, minRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	q := seg.Cmd()

	// Fill to the brim: no consumer will ever make space.
	filler := q.Producer(0, RecordFrame)
	for {
		free := uint64(len(q.data)) - (q.hdr.head.Load() - q.hdr.tail.Load())
		if free < 256 {
			break
		}
		if _, err := filler.Write(make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}

	const blocked = 3
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func(lane uint16) {
			p := q.Producer(lane, RecordFrame)
			_, err := p.Write(make([]byte, 1024))
			errs <- err
		}(uint16(i + 1))
	}
	time.Sleep(50 * time.Millisecond) // let them burn their spin budgets and park
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked producer returned %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked producer never released by close (lost relay token)")
		}
	}
}

// TestMPSCLaneTable exercises the claim → draining → free lifecycle and the
// exhaustion path.
func TestMPSCLaneTable(t *testing.T) {
	seg, err := NewMPSC(4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	var lanes []uint16
	for {
		lane, ok := seg.ClaimLane()
		if !ok {
			break
		}
		lanes = append(lanes, lane)
	}
	if len(lanes) != 4 {
		t.Fatalf("claimed %d lanes, want 4", len(lanes))
	}
	if c, d := seg.LaneCounts(); c != 4 || d != 0 {
		t.Fatalf("counts after claim = (%d,%d), want (4,0)", c, d)
	}
	seg.ReleaseLane(lanes[1])
	if _, ok := seg.ClaimLane(); ok {
		t.Fatal("draining lane was reclaimable before quiesce")
	}
	if c, d := seg.LaneCounts(); c != 3 || d != 1 {
		t.Fatalf("counts after release = (%d,%d), want (3,1)", c, d)
	}
	seg.QuiesceLane(lanes[1])
	if lane, ok := seg.ClaimLane(); !ok || lane != lanes[1] {
		t.Fatalf("quiesced lane not reclaimed: got (%d,%v)", lane, ok)
	}
}

// TestMPSCFDBudget pins the tentpole's descriptor claim at the segment
// level: one MPSC segment costs five descriptors (backing file + four
// doorbells) regardless of how many lanes are claimed on it.
func TestMPSCFDBudget(t *testing.T) {
	before := SnapshotFDs()
	seg, err := NewMPSC(MaxLanes, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxLanes; i++ {
		if _, ok := seg.ClaimLane(); !ok {
			t.Fatalf("lane %d refused", i)
		}
	}
	mid := SnapshotFDs()
	if got := mid.DoorbellFDs - before.DoorbellFDs; got != 4 {
		t.Fatalf("doorbell fds for %d sessions = %d, want 4 (O(1) per segment)", MaxLanes, got)
	}
	if got := mid.SegmentFiles - before.SegmentFiles; got != 1 {
		t.Fatalf("segment files = %d, want 1", got)
	}
	if got := mid.LaneSessions - before.LaneSessions; got != MaxLanes {
		t.Fatalf("lane sessions gauge = %d, want %d", got, MaxLanes)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	after := SnapshotFDs()
	if after.Segments != before.Segments || after.DoorbellFDs != before.DoorbellFDs {
		t.Fatalf("fd gauges did not return to baseline: %+v vs %+v", after, before)
	}
}

// TestNumaPlacementHarmless checks the placement layer degrades to no-ops on
// hosts without a multi-node topology (this is most CI) and never errors the
// data path.
func TestNumaPlacementHarmless(t *testing.T) {
	nodes := NumaNodes()
	t.Logf("numa nodes with cpus: %v", nodes)
	seg, err := NewMPSC(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	node := -1
	if len(nodes) > 0 {
		node = nodes[0]
	}
	if node >= 0 {
		t.Logf("PlaceSegment(%d) = %v", node, seg.PlaceSegment(node))
	}
	ran := false
	PinConsumer(node, func() { ran = true })
	if !ran {
		t.Fatal("PinConsumer did not run fn")
	}
}

// TestMPSCTornAdoption closes a segment while producers and the consumer are
// mid-operation — the torn-adoption teardown drill extended to concurrent
// producers: everything must unwind without touching unmapped memory.
func TestMPSCTornAdoption(t *testing.T) {
	for round := 0; round < 20; round++ {
		seg, err := NewMPSC(8, minRingBytes, minRingBytes)
		if err != nil {
			t.Fatal(err)
		}
		q := seg.Cmd()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(lane uint16) {
				defer wg.Done()
				p := q.Producer(lane, RecordFrame)
				buf := bytes.Repeat([]byte{byte(lane)}, 256)
				for {
					if _, err := p.Write(buf); err != nil {
						return
					}
				}
			}(uint16(i))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			drainAll(t, q, func(uint16, RecordKind, []byte) {})
		}()
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
