//go:build linux

package shm

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"unsafe"
)

// NUMA-aware segment placement. On a multi-socket host the free-running
// cursors of a segment whose producer and consumer sit on different nodes
// ping-pong cache lines across the interconnect on every publish; binding
// each segment's pages to one node and pinning its consumer thread there
// keeps the hot path on-package. Everything here is best-effort: probes
// that find nothing and syscalls the kernel (or a sandbox) refuses degrade
// to no-ops, never errors — placement is an optimization, not a contract.

const sysfsNodeDir = "/sys/devices/system/node"

// NumaNodes returns the IDs of NUMA nodes that have CPUs, in ascending
// order. Single-node hosts, hosts without the sysfs topology (containers,
// non-NUMA kernels), and probe failures all return nil — callers treat nil
// as "no placement to do".
func NumaNodes() []int {
	entries, err := os.ReadDir(sysfsNodeDir)
	if err != nil {
		return nil
	}
	var nodes []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[4:])
		if err != nil {
			continue
		}
		if len(nodeCPUs(id)) > 0 {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) < 2 {
		// One node (or none) means placement cannot matter.
		return nil
	}
	return nodes
}

// nodeCPUs parses one node's cpulist ("0-3,8-11") into CPU numbers.
func nodeCPUs(node int) []int {
	data, err := os.ReadFile(sysfsNodeDir + "/node" + strconv.Itoa(node) + "/cpulist")
	if err != nil {
		return nil
	}
	var cpus []int
	for _, part := range strings.Split(strings.TrimSpace(string(data)), ",") {
		if part == "" {
			continue
		}
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil {
			continue
		}
		b := a
		if found {
			if b, err = strconv.Atoi(hi); err != nil {
				continue
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus
}

// BindMemory asks the kernel to place (and keep) b's pages on the given
// node via mbind(MPOL_BIND). Failures — unaligned kernels, sandboxes without
// the syscall, CAP-less callers — are reported but harmless to ignore.
func BindMemory(b []byte, node int) error {
	if len(b) == 0 || node < 0 || node >= 64 {
		return nil
	}
	const mpolBind = 2
	nodemask := uint64(1) << uint(node)
	// maxnode counts bits and must exceed the highest set bit; the kernel
	// wants at least one full word plus the terminator bit.
	_, _, errno := syscall.Syscall6(syscall.SYS_MBIND,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)),
		mpolBind, uintptr(unsafe.Pointer(&nodemask)), 65, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

// PinThreadToNode pins the calling OS thread to the node's CPU set. The
// caller must hold runtime.LockOSThread for the pin to mean anything; this
// function does not take it, so consumers can scope the lock to their serve
// loop. No-op (with error) when the node has no CPUs or the kernel refuses.
func PinThreadToNode(node int) error {
	cpus := nodeCPUs(node)
	if len(cpus) == 0 {
		return nil
	}
	var mask [16]uint64 // 1024 CPUs
	for _, c := range cpus {
		if c >= 0 && c < len(mask)*64 {
			mask[c/64] |= uint64(1) << uint(c%64)
		}
	}
	_, _, errno := syscall.Syscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}

// PlaceSegment binds an MPSC segment's mapping to node and reports whether
// the binding took. Called by the lane hub when it spreads segments
// round-robin across the probed nodes.
func (s *MPSCSegment) PlaceSegment(node int) bool {
	if s.mem == nil {
		return false
	}
	return BindMemory(s.mem, node) == nil
}

// PinConsumer pins the calling goroutine's OS thread to node for the
// duration of fn — the consumer-side hook: the demux loop runs inside it so
// its cursor loads stay on the segment's package. Thread identity is
// restored by unlocking; affinity of the (now unpinned) thread is left to
// the scheduler, which is safe because the runtime hands parked Ps around
// anyway.
func PinConsumer(node int, fn func()) {
	if node < 0 {
		fn()
		return
	}
	runtime.LockOSThread()
	PinThreadToNode(node)
	fn()
	runtime.UnlockOSThread()
}
