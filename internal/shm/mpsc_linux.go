//go:build linux

package shm

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Many-session data plane: one MPSC segment multiplexes up to MaxLanes
// sessions over a single pair of record queues, a single mapping, and a
// single doorbell budget — five fds total (the backing file plus four
// eventfds), however many sessions share it. Layout:
//
//	[0, 4096)                    control region (magic, version, epoch, lane table)
//	[4096, 4096+ringHdrBytes)    cmd queue header
//	[..., ... + cmdCap)          cmd queue data   (sessions → serving side)
//	[..., ... + ringHdrBytes)    reply queue header
//	[..., ... + replyCap)        reply queue data (serving side → sessions)
//
// Unlike the SPSC byte rings, the queues carry framed *records*: producers
// CAS-claim a contiguous byte span, copy their payload, and publish it by
// storing the record header word last. The single consumer walks records in
// claim order, which is what serializes N sessions' frames into one stream
// the serving side can demultiplex by lane.
const (
	mpscVersion = 3 // v3: control region with epoch + lane table, two MPSC record queues

	// MaxLanes bounds the lane table; a lane is one session's slot on the
	// shared segment.
	MaxLanes = 256

	// Default queue capacities. The command queue carries request frames
	// (small) plus posted write payloads; the reply queue carries response
	// frames including read payloads, so it gets the larger share.
	DefaultMPSCCmdBytes   = 4 << 20
	DefaultMPSCReplyBytes = 8 << 20
)

// Lane states in the control region's lane table. A lane is claimed by the
// session side, released to draining when the session closes (the serving
// side may still be flushing its replies), and quiesced back to free when
// the serving side confirms the lane's streams are done.
const (
	laneFree     = 0
	laneClaimed  = 1
	laneDraining = 2
)

// RecordKind tags one record's stream. Frames and Data mirror the procctl
// carrier split: command/response frames versus posted bulk payloads. EOS is
// a zero-payload stream terminal — the lane's half-close, in-band so it
// cannot pass earlier bytes.
type RecordKind uint8

const (
	RecordFrame RecordKind = 0
	RecordData  RecordKind = 1
	RecordEOS   RecordKind = 2
	recordPad   RecordKind = 3 // skip-to-end filler; never reaches Drain callbacks
)

// Record header word: bit 63 commits the record (a zero word is an
// unpublished claim — the consumer pre-zeroes every slot it retires, see
// Drain), bits 56..58 carry the kind, bits 32..47 the lane, bits 0..31 the
// payload length (for pads: the total bytes to skip).
const (
	recCommit    = uint64(1) << 63
	recKindShift = 56
	recLaneShift = 32
	recLenMask   = uint64(1)<<32 - 1
	recAlign     = 8
)

func recHeader(kind RecordKind, lane uint16, n int) uint64 {
	return recCommit | uint64(kind)<<recKindShift | uint64(lane)<<recLaneShift | uint64(uint32(n))
}

func recDecode(w uint64) (kind RecordKind, lane uint16, n uint64) {
	return RecordKind(w >> recKindShift & 0x7), uint16(w >> recLaneShift), w & recLenMask
}

func align8(n uint64) uint64 { return (n + recAlign - 1) &^ (recAlign - 1) }

// mpscSegHdr is the MPSC segment's control region: identity, adoption epoch,
// geometry, and the lane table. Lane words are written by the session side
// (claim/release) and read by both; each spends its word, not a line — lane
// transitions are cold-path (open/close), not hot-path.
type mpscSegHdr struct {
	magic   uint32
	version uint32
	_       [56]byte
	epoch   atomic.Uint64
	_       [56]byte
	nlanes  uint32
	_       [60]byte
	cmdCap  uint64
	repCap  uint64
	_       [48]byte
	lanes   [MaxLanes]atomic.Uint32
}

// mpscHdr is one record queue's shared control block, cache-line padded like
// ringHdr. head is CAS-advanced by any producer; tail is written only by the
// consumer. wparked is a *count* of parked producers (the SPSC header's flag
// is not enough: several producers can park on the one space bell, and the
// consumer must know someone — anyone — still waits).
type mpscHdr struct {
	head    atomic.Uint64 // bytes claimed; CAS-advanced by producers
	_       [56]byte
	tail    atomic.Uint64 // bytes consumed; written by the consumer only
	_       [56]byte
	rparked atomic.Uint32 // consumer is (about to be) parked on the data bell
	_       [60]byte
	wparked atomic.Uint32 // count of producers parked on the space bell
	_       [60]byte
	closed  atomic.Uint32
	_       [60]byte
	pbells  atomic.Uint64 // data doorbells rung by producers
	psupp   atomic.Uint64 // producer wakes suppressed (consumer running or flush-coalesced)
	_       [48]byte
	cbells  atomic.Uint64 // space doorbells rung by the consumer
	csupp   atomic.Uint64 // consumer wakes suppressed (no producer parked)
	_       [48]byte
}

var (
	_ [segHdrBytes - int(unsafe.Sizeof(mpscSegHdr{}))]byte
	_ [ringHdrBytes - int(unsafe.Sizeof(mpscHdr{}))]byte
)

// MPSCQueue is one direction of the shared segment: many producers, one
// consumer, framed records over mapped memory. Producers may live in many
// goroutines of one process (the session side) or one goroutine each; the
// consumer is exactly one goroutine in the other process.
type MPSCQueue struct {
	name string
	hdr  *mpscHdr
	data []byte
	mask uint64

	dataBell  *os.File // producers → consumer: "records available"
	spaceBell *os.File // consumer → producers: "space available"

	localClosed atomic.Bool
	inflight    atomic.Int64
	detached    atomic.Bool
	finalBells  atomic.Uint64
	finalSupp   atomic.Uint64

	parks atomic.Uint64
	spins atomic.Uint64
}

// FlushState is one producer group's doorbell-coalescing bracket state
// (wire.FlushCoalescer). It is NOT shared across sessions — each lane's
// producers own one — and it follows the same single-writer discipline as
// the SPSC ring's plain fields: only the batch leader (or the lane's lone
// writer) touches it.
type FlushState struct {
	deferWake   bool
	wakePending bool
}

// Producer submits records for one lane and kind. Safe for one goroutine at
// a time per Producer; distinct Producers (even of the same lane) may run
// concurrently — that is the MPSC in the name.
type Producer struct {
	q    *MPSCQueue
	lane uint16
	kind RecordKind
	fs   *FlushState
}

// MPSCSegment is one process's view of a shared MPSC mapping.
type MPSCSegment struct {
	mem    []byte
	file   *os.File
	hdr    *mpscSegHdr
	cmd    *MPSCQueue
	reply  *MPSCQueue
	owner  bool // created here (claims lanes) vs attached (serves them)
	closed atomic.Bool

	// laneSessions counts lanes this view claimed and has not released, so
	// Close can settle the process-wide fdLaneSessions gauge for lanes whose
	// release raced (or never happened) against teardown.
	laneSessions atomic.Int64
}

// NewMPSC creates a fresh shared MPSC segment for up to lanes sessions
// (0 means MaxLanes) with the given queue capacities (0 means the defaults),
// plus its four doorbell eventfds.
func NewMPSC(lanes, cmdBytes, replyBytes int) (*MPSCSegment, error) {
	if lanes == 0 {
		lanes = MaxLanes
	}
	if lanes < 1 || lanes > MaxLanes {
		return nil, fmt.Errorf("shm: %d lanes (want 1..%d)", lanes, MaxLanes)
	}
	if cmdBytes <= 0 {
		cmdBytes = DefaultMPSCCmdBytes
	}
	if replyBytes <= 0 {
		replyBytes = DefaultMPSCReplyBytes
	}
	cmdCap := ceilPow2(cmdBytes)
	repCap := ceilPow2(replyBytes)

	f, err := newSegmentFile()
	if err != nil {
		return nil, err
	}
	total := segHdrBytes + 2*ringHdrBytes + cmdCap + repCap
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*mpscSegHdr)(unsafe.Pointer(&mem[0]))
	hdr.magic = segMagic
	hdr.version = mpscVersion
	hdr.nlanes = uint32(lanes)
	hdr.cmdCap = uint64(cmdCap)
	hdr.repCap = uint64(repCap)

	bells := make([]*os.File, 4)
	for i := range bells {
		b, err := newEventFD()
		if err != nil {
			for _, open := range bells[:i] {
				open.Close()
			}
			syscall.Munmap(mem)
			f.Close()
			return nil, err
		}
		bells[i] = b
	}
	return assembleMPSC(f, mem, hdr, bells, true), nil
}

// AttachMPSC builds the attaching (serving) process's view from the
// inherited files: the segment file plus the four doorbells in ChildFiles
// order. Geometry is validated against the mapping size, like Attach.
func AttachMPSC(seg *os.File, bells []*os.File) (*MPSCSegment, error) {
	closeAll := func() {
		seg.Close()
		for _, b := range bells {
			if b != nil {
				b.Close()
			}
		}
	}
	st, err := seg.Stat()
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: stat segment: %w", err)
	}
	total := int(st.Size())
	if total < segHdrBytes+2*ringHdrBytes+2*minRingBytes {
		closeAll()
		return nil, fmt.Errorf("shm: mpsc segment too small (%d bytes)", total)
	}
	mem, err := syscall.Mmap(int(seg.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("shm: map segment: %w", err)
	}
	hdr := (*mpscSegHdr)(unsafe.Pointer(&mem[0]))
	switch {
	case hdr.magic != segMagic:
		err = fmt.Errorf("shm: bad segment magic %#x", hdr.magic)
	case hdr.version != mpscVersion:
		err = fmt.Errorf("shm: segment version %d, want %d", hdr.version, mpscVersion)
	case hdr.nlanes < 1 || hdr.nlanes > MaxLanes:
		err = fmt.Errorf("shm: mpsc segment declares %d lanes", hdr.nlanes)
	case len(bells) != 4:
		err = fmt.Errorf("shm: mpsc attach wants 4 doorbells, got %d", len(bells))
	case hdr.cmdCap < minRingBytes || hdr.cmdCap&(hdr.cmdCap-1) != 0 ||
		hdr.repCap < minRingBytes || hdr.repCap&(hdr.repCap-1) != 0:
		err = fmt.Errorf("shm: mpsc queue capacities %d/%d not powers of two", hdr.cmdCap, hdr.repCap)
	case uint64(total) != uint64(segHdrBytes+2*ringHdrBytes)+hdr.cmdCap+hdr.repCap:
		err = fmt.Errorf("shm: mpsc segment geometry wants %d bytes, mapped %d",
			uint64(segHdrBytes+2*ringHdrBytes)+hdr.cmdCap+hdr.repCap, total)
	}
	if err != nil {
		syscall.Munmap(mem)
		closeAll()
		return nil, err
	}
	return assembleMPSC(seg, mem, hdr, bells, false), nil
}

// assembleMPSC carves the mapping into its two queues. Doorbell order is the
// ChildFiles contract: [cmd data, cmd space, reply data, reply space].
func assembleMPSC(f *os.File, mem []byte, hdr *mpscSegHdr, bells []*os.File, owner bool) *MPSCSegment {
	cmdOff := uint64(segHdrBytes)
	repOff := cmdOff + ringHdrBytes + hdr.cmdCap
	s := &MPSCSegment{
		mem: mem, file: f, hdr: hdr, owner: owner,
		cmd: &MPSCQueue{
			name:     "cmd",
			hdr:      (*mpscHdr)(unsafe.Pointer(&mem[cmdOff])),
			data:     mem[cmdOff+ringHdrBytes : cmdOff+ringHdrBytes+hdr.cmdCap],
			mask:     hdr.cmdCap - 1,
			dataBell: bells[0], spaceBell: bells[1],
		},
		reply: &MPSCQueue{
			name:     "reply",
			hdr:      (*mpscHdr)(unsafe.Pointer(&mem[repOff])),
			data:     mem[repOff+ringHdrBytes : repOff+ringHdrBytes+hdr.repCap],
			mask:     hdr.repCap - 1,
			dataBell: bells[2], spaceBell: bells[3],
		},
	}
	fdSegments.Add(1)
	fdSegmentFiles.Add(1)
	fdDoorbells.Add(int64(len(bells)))
	return s
}

// Cmd returns the command-direction queue (sessions produce, server consumes).
func (s *MPSCSegment) Cmd() *MPSCQueue { return s.cmd }

// Reply returns the reply-direction queue (server produces, sessions consume).
func (s *MPSCSegment) Reply() *MPSCQueue { return s.reply }

// Lanes returns the segment's lane capacity.
func (s *MPSCSegment) Lanes() int { return int(s.hdr.nlanes) }

// Epoch returns the control region's adoption generation.
func (s *MPSCSegment) Epoch() uint64 { return s.hdr.epoch.Load() }

// AdvanceEpoch bumps the adoption generation — called whenever a lane is
// handed to a new session, the many-session analogue of the warm-pool rebind.
func (s *MPSCSegment) AdvanceEpoch() uint64 { return s.hdr.epoch.Add(1) }

// Closed reports whether this process's view has been torn down.
func (s *MPSCSegment) Closed() bool { return s.closed.Load() }

// ChildFiles returns the files the attaching process must inherit, in the
// order AttachMPSC expects them back — the same five-slot layout as the
// classic single-pair segment, so the spawn path's fd numbering is shared.
func (s *MPSCSegment) ChildFiles() []*os.File {
	return []*os.File{s.file, s.cmd.dataBell, s.cmd.spaceBell, s.reply.dataBell, s.reply.spaceBell}
}

// laneTableOp runs fn against the shared lane table unless this process's
// view is already detached, with the same inflight guard Stats uses so
// Close's munmap can never pull the table out from under fn. Returns whether
// fn ran.
func (s *MPSCSegment) laneTableOp(fn func()) bool {
	q := s.cmd
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.detached.Load() {
		return false
	}
	fn()
	return true
}

// ClaimLane allocates a free lane for a new session, or reports none left
// (also the answer on a closed segment).
func (s *MPSCSegment) ClaimLane() (lane uint16, ok bool) {
	s.laneTableOp(func() {
		for i := uint32(0); i < s.hdr.nlanes; i++ {
			if s.hdr.lanes[i].CompareAndSwap(laneFree, laneClaimed) {
				fdLaneSessions.Add(1)
				s.laneSessions.Add(1)
				lane, ok = uint16(i), true
				return
			}
		}
	})
	return lane, ok
}

// ReleaseLane moves a claimed lane to draining: the session is gone, but the
// serving side may still be flushing replies, so the slot cannot be reused
// until QuiesceLane confirms both streams are done.
func (s *MPSCSegment) ReleaseLane(lane uint16) {
	s.laneTableOp(func() {
		if int(lane) < len(s.hdr.lanes) &&
			s.hdr.lanes[lane].CompareAndSwap(laneClaimed, laneDraining) {
			fdLaneSessions.Add(-1)
			s.laneSessions.Add(-1)
		}
	})
}

// QuiesceLane returns a draining lane to the free pool — called when the
// serving side's reply-EOS for the lane has been consumed, so no stale bytes
// of the dead session can ever land in its successor's streams.
func (s *MPSCSegment) QuiesceLane(lane uint16) {
	s.laneTableOp(func() {
		if int(lane) < len(s.hdr.lanes) {
			s.hdr.lanes[lane].CompareAndSwap(laneDraining, laneFree)
		}
	})
}

// LaneCounts reports how many lanes are claimed and draining (0, 0 once the
// local view is detached).
func (s *MPSCSegment) LaneCounts() (claimed, draining int) {
	s.laneTableOp(func() {
		for i := uint32(0); i < s.hdr.nlanes; i++ {
			switch s.hdr.lanes[i].Load() {
			case laneClaimed:
				claimed++
			case laneDraining:
				draining++
			}
		}
	})
	return claimed, draining
}

// Close shuts both queues (waking every parked producer and consumer in both
// processes), waits for this process's in-flight queue operations to drain,
// and unmaps the segment — leaking the mapping rather than pulling it out
// from under a wedged operation, exactly like Segment.Close.
func (s *MPSCSegment) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.cmd.close()
	s.reply.close()
	s.cmd.detach()
	s.reply.detach()

	unmap := true
	deadline := time.Now().Add(2 * time.Second)
	for s.cmd.inflight.Load() != 0 || s.reply.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			unmap = false
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if unmap {
		syscall.Munmap(s.mem)
		// Lane releases raced out by the detach were skipped; with inflight
		// ops drained, settle what this view still holds so the process-wide
		// session gauge stays balanced. (A timed-out drain skips this: its
		// straggler ops still decrement on their own when they finish.)
		fdLaneSessions.Add(-s.laneSessions.Swap(0))
	}
	s.mem = nil
	err := s.file.Close()
	for _, q := range []*MPSCQueue{s.cmd, s.reply} {
		q.dataBell.Close()
		q.spaceBell.Close()
	}
	fdSegments.Add(-1)
	fdSegmentFiles.Add(-1)
	fdDoorbells.Add(-4)
	return err
}

// close marks the queue closed for both processes and rings both bells so
// every parked side wakes and observes it. Parked producers relay the space
// bell onward (see parkForSpace), so one token releases them all.
func (q *MPSCQueue) close() {
	if !q.localClosed.CompareAndSwap(false, true) {
		return
	}
	q.hdr.closed.Store(1)
	ringBell(q.dataBell)
	ringBell(q.spaceBell)
}

func (q *MPSCQueue) detach() {
	q.finalBells.Store(q.hdr.pbells.Load() + q.hdr.cbells.Load())
	q.finalSupp.Store(q.hdr.psupp.Load() + q.hdr.csupp.Load())
	q.detached.Store(true)
}

func (q *MPSCQueue) isClosed() bool {
	return q.hdr.closed.Load() != 0 || q.localClosed.Load()
}

// Stats snapshots the queue's wait counters, with the same detach discipline
// as Ring.Stats.
func (q *MPSCQueue) Stats() Stats {
	s := Stats{Parks: q.parks.Load(), Spins: q.spins.Load()}
	q.inflight.Add(1)
	if q.detached.Load() {
		s.Doorbells = q.finalBells.Load()
		s.Suppressed = q.finalSupp.Load()
	} else {
		s.Doorbells = q.hdr.pbells.Load() + q.hdr.cbells.Load()
		s.Suppressed = q.hdr.psupp.Load() + q.hdr.csupp.Load()
	}
	q.inflight.Add(-1)
	return s
}

// LaneProducers returns one lane's frame and data producers, sharing one
// flush-coalescing bracket: both feed the same queue within one BatchWriter
// flush, so one deferred doorbell decision covers command frames and posted
// payloads together.
func (q *MPSCQueue) LaneProducers(lane uint16) (frames, data *Producer) {
	fs := &FlushState{}
	return &Producer{q: q, lane: lane, kind: RecordFrame, fs: fs},
		&Producer{q: q, lane: lane, kind: RecordData, fs: fs}
}

// Producer returns a standalone producer for one lane and kind with its own
// flush bracket — the serving side's per-lane reply writer.
func (q *MPSCQueue) Producer(lane uint16, kind RecordKind) *Producer {
	return &Producer{q: q, lane: lane, kind: kind, fs: &FlushState{}}
}

// SendEOS publishes the lane's in-band stream terminal.
func (q *MPSCQueue) SendEOS(lane uint16) error {
	return q.submit(lane, RecordEOS, nil, nil)
}

// maxRecordPayload bounds one record so a single claim can never starve the
// queue: a claim (with its wrap pad) stays under half the capacity.
func (q *MPSCQueue) maxRecordPayload() int {
	return len(q.data) / 4
}

// Write submits p as records of the producer's lane and kind, chunked to the
// queue's record bound. It blocks while the queue is full (spin, then park on
// the space doorbell) and fails with ErrClosed once the queue is closed.
func (p *Producer) Write(b []byte) (int, error) {
	written := 0
	maxRec := p.q.maxRecordPayload()
	for written < len(b) {
		chunk := len(b) - written
		if chunk > maxRec {
			chunk = maxRec
		}
		if err := p.q.submit(p.lane, p.kind, b[written:written+chunk], p.fs); err != nil {
			return written, err
		}
		written += chunk
	}
	return written, nil
}

// BeginFlush opens the doorbell-coalescing bracket (wire.FlushCoalescer) for
// this producer group: wake decisions of every submit until EndFlush collapse
// into one. Leader-serialized, like Ring.BeginFlush.
func (p *Producer) BeginFlush() { p.fs.deferWake = true }

// EndFlush closes the bracket and issues the one deferred wake decision.
func (p *Producer) EndFlush() {
	p.fs.deferWake = false
	p.q.flushWake(p.fs)
}

// flushWake issues a deferred wake, guarding the shared-header access with
// the inflight/detached bracket since EndFlush runs outside submit.
func (q *MPSCQueue) flushWake(fs *FlushState) {
	if fs == nil || !fs.wakePending {
		return
	}
	fs.wakePending = false
	q.inflight.Add(1)
	if !q.detached.Load() {
		q.ringDataBell()
	}
	q.inflight.Add(-1)
}

// submit claims, fills, and publishes one record. The claim is a CAS on the
// shared head cursor over [h, h+size) — plus a pad record when the span
// would wrap, keeping every record contiguous. Publication is the header
// store: the consumer treats a zero header at tail as "claimed, not yet
// committed" and waits for the claimant, which is what makes claim order the
// stream order even when producers finish out of order.
func (q *MPSCQueue) submit(lane uint16, kind RecordKind, payload []byte, fs *FlushState) error {
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.detached.Load() {
		return ErrClosed
	}
	if uint64(len(payload)) > uint64(q.maxRecordPayload()) {
		return fmt.Errorf("shm: record payload %d over queue bound %d", len(payload), q.maxRecordPayload())
	}

	need := align8(recAlign + uint64(len(payload)))
	capacity := uint64(len(q.data))
	spins := 0
	for {
		if q.isClosed() {
			return ErrClosed
		}
		h := q.hdr.head.Load()
		t := q.hdr.tail.Load()
		pos := h & q.mask
		want := need
		pad := uint64(0)
		if contig := capacity - pos; need > contig {
			pad = contig
			want = need + contig
		}
		if capacity-(h-t) < want {
			// Full. Release any doorbell a flush bracket is holding back —
			// the consumer cannot drain while parked — then wait for space.
			q.flushWakeLocked(fs)
			if spins < spinBudget {
				q.relax(spins)
				spins++
				continue
			}
			q.parkForSpace(want)
			spins = 0
			continue
		}
		if !q.hdr.head.CompareAndSwap(h, h+want) {
			// Another producer claimed first; its progress is ours too.
			continue
		}
		if pad > 0 {
			// The span would wrap: commit a pad over the tail of the buffer
			// (consumers skip it) and start the record at offset zero.
			q.storeHeader(pos, recCommit|uint64(recordPad)<<recKindShift|pad)
			pos = 0
		}
		copy(q.data[pos+recAlign:pos+recAlign+uint64(len(payload))], payload)
		q.storeHeader(pos, recHeader(kind, lane, len(payload)))
		q.wakeConsumer(fs)
		return nil
	}
}

// flushWakeLocked is flushWake without the inflight bracket — submit already
// holds one.
func (q *MPSCQueue) flushWakeLocked(fs *FlushState) {
	if fs == nil || !fs.wakePending {
		return
	}
	fs.wakePending = false
	q.ringDataBell()
}

// storeHeader publishes one record header word. Offsets are 8-aligned by
// construction (every claim is a multiple of recAlign).
func (q *MPSCQueue) storeHeader(pos uint64, w uint64) {
	(*atomic.Uint64)(unsafe.Pointer(&q.data[pos])).Store(w)
}

func (q *MPSCQueue) loadHeader(pos uint64) uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&q.data[pos])).Load()
}

// Drain blocks until at least one record is consumable, then consumes every
// record already published, invoking fn with each record's lane, kind, and
// payload. The payload slice aliases the shared mapping and is valid only
// during the callback — fn must copy what it keeps. Returns io.EOF once the
// queue is closed and drained (or a producer died mid-claim; teardown
// forfeits the torn record), ErrClosed after local detach.
func (q *MPSCQueue) Drain(fn func(lane uint16, kind RecordKind, payload []byte)) error {
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.detached.Load() {
		return io.EOF
	}

	consumed := false
	spins := 0
	for {
		t := q.hdr.tail.Load()
		h := q.hdr.head.Load()
		if h != t {
			pos := t & q.mask
			w := q.loadHeader(pos)
			if w != 0 {
				kind, lane, n := recDecode(w)
				size := align8(recAlign + n)
				if kind == recordPad {
					size = n
				} else {
					fn(lane, kind, q.data[pos+recAlign:pos+recAlign+n])
				}
				// Re-arm the span before retiring it. The whole span, not just
				// the header word: next lap's record boundaries need not line
				// up with this lap's, so any aligned word in here could serve
				// as a future header — stale payload bytes with bit 63 set
				// would read as a committed record. Producers only reclaim
				// bytes the tail has passed, so the clear can never race a new
				// claim's writes.
				clear(q.data[pos : pos+size])
				q.hdr.tail.Store(t + size)
				q.wakeProducers()
				consumed = true
				spins = 0
				continue
			}
			// Claimed but not yet committed: the claimant is mid-copy. Spin —
			// commitment is a couple of loads away — then park; the claimant's
			// commit path re-checks our parked flag.
		}
		if consumed {
			return nil
		}
		if q.isClosed() {
			// Drain whatever was committed. An uncommitted claim at tail
			// after close means the claimant bailed with ErrClosed or its
			// process died mid-record; either way the stream is torn and
			// teardown owns the bytes.
			if q.hdr.head.Load() == t || q.loadHeader(t&q.mask) == 0 {
				return io.EOF
			}
			continue
		}
		if spins < spinBudget {
			q.relax(spins)
			spins++
			continue
		}
		q.park(&q.hdr.rparked, q.dataBell, func() bool {
			t := q.hdr.tail.Load()
			return q.hdr.head.Load() != t && q.loadHeader(t&q.mask) != 0
		})
		spins = 0
	}
}

// wakeConsumer decides the post-publish wake, honoring the producer group's
// flush bracket exactly like Ring.wakeReader.
func (q *MPSCQueue) wakeConsumer(fs *FlushState) {
	if fs != nil && fs.deferWake {
		if fs.wakePending {
			q.hdr.psupp.Add(1)
		}
		fs.wakePending = true
		return
	}
	q.ringDataBell()
}

func (q *MPSCQueue) ringDataBell() {
	if q.hdr.rparked.Load() != 0 {
		q.hdr.pbells.Add(1)
		ringBell(q.dataBell)
	} else {
		q.hdr.psupp.Add(1)
	}
}

// wakeProducers rings the space bell when any producer is parked. One token
// wakes one producer; parkForSpace relays it while peers remain parked.
func (q *MPSCQueue) wakeProducers() {
	if q.hdr.wparked.Load() != 0 {
		q.hdr.cbells.Add(1)
		ringBell(q.spaceBell)
	} else {
		q.hdr.csupp.Add(1)
	}
}

// parkForSpace blocks one producer on the space bell until capacity might
// fit want bytes. The parked count (not a flag) pairs with the relay below:
// the consumer rings once per retire, the woken producer passes the token on
// while siblings still wait and progress (or teardown) is possible, so one
// bell read never strands the others.
func (q *MPSCQueue) parkForSpace(want uint64) {
	q.hdr.wparked.Add(1)
	free := uint64(len(q.data)) - (q.hdr.head.Load() - q.hdr.tail.Load())
	if free >= want || q.isClosed() {
		q.hdr.wparked.Add(^uint32(0))
		return
	}
	q.parks.Add(1)
	var buf [8]byte
	q.spaceBell.Read(buf[:])
	q.hdr.wparked.Add(^uint32(0))
	if q.hdr.wparked.Load() != 0 {
		if q.isClosed() {
			ringBell(q.spaceBell)
		} else if uint64(len(q.data))-(q.hdr.head.Load()-q.hdr.tail.Load()) != 0 {
			ringBell(q.spaceBell)
		}
	}
}

// park is Ring.park for the queue's consumer side.
func (q *MPSCQueue) park(flag *atomic.Uint32, bell *os.File, ready func() bool) {
	flag.Store(1)
	defer flag.Store(0)
	if ready() || q.isClosed() {
		return
	}
	q.parks.Add(1)
	var buf [8]byte
	bell.Read(buf[:])
}

// relax is one bounded-spin iteration, Ring.relax's discipline.
func (q *MPSCQueue) relax(spin int) {
	q.spins.Add(1)
	if spin%goschedEvery == goschedEvery-1 {
		runtime.Gosched()
	} else {
		syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
	}
}
