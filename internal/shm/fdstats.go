package shm

import "sync/atomic"

// Process-wide descriptor accounting for the shared-memory data plane. Every
// mapped segment — classic SPSC pair or MPSC lane segment, created or
// attached — registers the descriptors it holds open, and lane claims count
// the sessions multiplexed over them. The point is the ratio: with per-lane
// segments the doorbell count grows with sessions; with the MPSC plane it is
// O(1) per segment, and these gauges are how tests and the daemon snapshot
// pin that down.
var (
	fdSegments     atomic.Int64 // mapped segments in this process
	fdSegmentFiles atomic.Int64 // backing files (memfd / unlinked temp) held open
	fdDoorbells    atomic.Int64 // doorbell eventfds held open
	fdLaneSessions atomic.Int64 // lanes currently claimed on MPSC segments
)

// FDStats is a snapshot of the data plane's descriptor economy.
type FDStats struct {
	Segments     int64 // mapped segments (all kinds)
	SegmentFiles int64 // backing file descriptors
	DoorbellFDs  int64 // doorbell eventfd descriptors
	LaneSessions int64 // sessions claimed on MPSC lane segments
}

// SnapshotFDs returns the current process-wide descriptor gauges.
func SnapshotFDs() FDStats {
	return FDStats{
		Segments:     fdSegments.Load(),
		SegmentFiles: fdSegmentFiles.Load(),
		DoorbellFDs:  fdDoorbells.Load(),
		LaneSessions: fdLaneSessions.Load(),
	}
}
