//go:build linux

package shm

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Tests for the PR 7 syscall-economy surface: doorbell coalescing
// (BeginFlush/EndFlush), the shared wakeup counters, and the multi-ring
// segment layout with its control region.

// TestFlushCoalescingOneDoorbellPerBracket pins the headline property: a
// bracketed group of N writes wakes a parked reader with at most ONE
// doorbell, with the other publishes recorded as suppressed.
func TestFlushCoalescingOneDoorbellPerBracket(t *testing.T) {
	faultinject.LeakCheck(t)
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	const writes = 16
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, writes)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Errorf("read: %v", err)
			close(got)
			return
		}
		got <- buf
	}()
	waitFor(t, func() bool { return r.Stats().Parks >= 1 })

	before := r.Stats()
	r.BeginFlush()
	for i := 0; i < writes; i++ {
		if _, err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	r.EndFlush()

	select {
	case buf := <-got:
		for i, b := range buf {
			if b != byte(i) {
				t.Fatalf("byte %d = %#x, want %#x", i, b, byte(i))
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deferred doorbell never woke the parked reader")
	}

	after := r.Stats()
	if rang := after.Doorbells - before.Doorbells; rang != 1 {
		t.Fatalf("bracket of %d writes rang %d doorbells, want exactly 1", writes, rang)
	}
	if supp := after.Suppressed - before.Suppressed; supp < writes-1 {
		t.Fatalf("bracket of %d writes suppressed %d wakeups, want >= %d", writes, supp, writes-1)
	}
}

// TestFlushBracketFullRingDoesNotDeadlock is the liveness hazard the
// coalescer must dodge: mid-bracket, the writer fills the ring while the
// reader is parked awaiting a doorbell the bracket is deferring. Write's
// ring-full path must surface the pending wake before parking for space.
func TestFlushBracketFullRingDoesNotDeadlock(t *testing.T) {
	faultinject.LeakCheck(t)
	s := newTestSegment(t, minRingBytes, minRingBytes)
	r := s.Cmd()

	const total = 4 * minRingBytes
	readerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 512)
		seen := 0
		for seen < total {
			n, err := r.Read(buf)
			if err != nil {
				readerDone <- err
				return
			}
			seen += n
		}
		readerDone <- nil
	}()
	waitFor(t, func() bool { return r.Stats().Parks >= 1 })

	done := make(chan error, 1)
	go func() {
		r.BeginFlush()
		defer r.EndFlush()
		// Far larger than capacity: the writer must park for space at least
		// once while the bracket is open.
		_, err := r.Write(make([]byte, total))
		done <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bracketed over-capacity write: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer deadlocked mid-bracket on a full ring (lost wakeup)")
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
}

// TestRingWakeupLiveness is the randomized lost-wakeup hunt: a producer
// issuing randomly sized, randomly bracketed write groups and a consumer
// draining with random pauses must always terminate. Run under -race this
// doubles as the ordering check on the Dekker-style parked/doorbell
// handshake; a suppression bug shows up as a hang, caught by the deadline.
func TestRingWakeupLiveness(t *testing.T) {
	faultinject.LeakCheck(t)
	const (
		rounds = 4
		total  = 64 * 1024
	)
	for round := 0; round < rounds; round++ {
		s := newTestSegment(t, minRingBytes, minRingBytes)
		r := s.Reply()
		rng := rand.New(rand.NewSource(int64(round) * 7919))
		seed := rng.Int63()

		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(2)
		go func() { // producer: bracketed bursts of small writes
			defer wg.Done()
			prng := rand.New(rand.NewSource(seed))
			sent := 0
			for sent < total {
				burst := 1 + prng.Intn(8)
				bracketed := prng.Intn(2) == 0
				if bracketed {
					r.BeginFlush()
				}
				for i := 0; i < burst && sent < total; i++ {
					n := 1 + prng.Intn(700)
					if sent+n > total {
						n = total - sent
					}
					if _, err := r.Write(make([]byte, n)); err != nil {
						if bracketed {
							r.EndFlush()
						}
						errs <- err
						return
					}
					sent += n
				}
				if bracketed {
					r.EndFlush()
				}
				if prng.Intn(4) == 0 {
					runtime.Gosched()
				}
			}
		}()
		go func() { // consumer: drain with erratic pacing
			defer wg.Done()
			prng := rand.New(rand.NewSource(seed + 1))
			buf := make([]byte, 1024)
			seen := 0
			for seen < total {
				n, err := r.Read(buf[:1+prng.Intn(len(buf))])
				if err != nil {
					errs <- err
					return
				}
				seen += n
				if prng.Intn(8) == 0 {
					time.Sleep(time.Duration(prng.Intn(200)) * time.Microsecond)
				}
			}
		}()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: producer/consumer wedged — lost wakeup under doorbell suppression", round)
		}
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: %v", round, err)
		}
		s.Close()
	}
}

// TestSharedDoorbellCountersCrossAttach checks that the wakeup counters live
// in the segment, not the process: bells rung by an attached view are
// visible through the creator's Stats, the way a child's reply-ring bells
// must be visible to the parent.
func TestSharedDoorbellCountersCrossAttach(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	att := attachClone(t, s)

	// The attached view's reader parks; the creator's writer wakes it. The
	// doorbell is rung through the creator's Ring, but the counter must read
	// back identically through the attached Ring — one shared ledger.
	done := make(chan struct{})
	go func() {
		var b [1]byte
		io.ReadFull(att.Rings()[0], b[:])
		close(done)
	}()
	waitFor(t, func() bool { return att.Rings()[0].Stats().Parks >= 1 })
	if _, err := s.Cmd().Write([]byte{1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	<-done

	creator, attached := s.Cmd().Stats(), att.Rings()[0].Stats()
	if creator.Doorbells == 0 {
		t.Fatal("no doorbell recorded for a parked-reader wakeup")
	}
	if creator.Doorbells != attached.Doorbells || creator.Suppressed != attached.Suppressed {
		t.Fatalf("counters diverge across attach: creator %+v attached %+v", creator, attached)
	}
}

// attachClone maps s a second time through dup'd descriptors, standing in
// for the child's view of the segment. The clone is closed by the test via
// the segment-wide close semantics (closing either view closes the rings
// for both — they share the header flags).
func attachClone(t *testing.T, s *Segment) *Segment {
	t.Helper()
	files := s.ChildFiles()
	dup := func(f *os.File) *os.File {
		fd, err := syscall.Dup(int(f.Fd()))
		if err != nil {
			t.Fatalf("dup: %v", err)
		}
		return os.NewFile(uintptr(fd), f.Name())
	}
	segFile := dup(files[0])
	bells := make([]*os.File, len(files)-1)
	for i, f := range files[1:] {
		bells[i] = dup(f)
	}
	att, err := Attach(segFile, bells)
	if err != nil {
		segFile.Close()
		for _, b := range bells {
			b.Close()
		}
		t.Fatalf("Attach: %v", err)
	}
	t.Cleanup(func() { att.Close() })
	return att
}

// TestMultiRingSegmentGeometry pins the v2 layout: NewMulti carves the
// requested pairs, the directory names and sizes them, every pair moves
// bytes independently, and the epoch advances under AdvanceEpoch.
func TestMultiRingSegmentGeometry(t *testing.T) {
	const pairs = 3
	s, err := NewMulti(pairs, 0, 0)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	defer s.Close()

	rings := s.Rings()
	if len(rings) != 2*pairs {
		t.Fatalf("NewMulti(%d) carved %d rings, want %d", pairs, len(rings), 2*pairs)
	}
	if s.Cmd() != rings[0] || s.Reply() != rings[1] {
		t.Fatal("Cmd/Reply accessors do not alias pair 0")
	}
	// 1 segment file + 2 bells per ring.
	if got, want := len(s.ChildFiles()), 1+4*pairs; got != want {
		t.Fatalf("ChildFiles = %d files, want %d", got, want)
	}

	// Each pair is an independent conduit.
	for p := 0; p < pairs; p++ {
		for dir := 0; dir < 2; dir++ {
			r := rings[2*p+dir]
			msg := []byte{byte(p), byte(dir), 0xAA}
			if _, err := r.Write(msg); err != nil {
				t.Fatalf("pair %d dir %d write: %v", p, dir, err)
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(r, got); err != nil {
				t.Fatalf("pair %d dir %d read: %v", p, dir, err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("pair %d dir %d: got %v want %v", p, dir, got, msg)
			}
		}
	}

	if e := s.Epoch(); e != 0 {
		t.Fatalf("fresh segment epoch = %d, want 0", e)
	}
	s.AdvanceEpoch()
	if e := s.Epoch(); e != 1 {
		t.Fatalf("epoch after advance = %d, want 1", e)
	}
}

// TestMultiRingAttachSharesEpoch: an attached view reads the same control
// region — epoch bumps on one side are visible on the other, and the
// directory reproduces the creator's ring geometry.
func TestMultiRingAttachSharesEpoch(t *testing.T) {
	s, err := NewMulti(2, 0, 0)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	defer s.Close()
	att := attachClone(t, s)

	if len(att.Rings()) != len(s.Rings()) {
		t.Fatalf("attach carved %d rings, creator has %d", len(att.Rings()), len(s.Rings()))
	}
	s.AdvanceEpoch()
	s.AdvanceEpoch()
	if got := att.Epoch(); got != 2 {
		t.Fatalf("attached view reads epoch %d, want 2", got)
	}

	// Cross-view traffic on a non-zero pair: creator writes ring 2, attached
	// view reads it out of the same memory.
	if _, err := s.Rings()[2].Write([]byte("pair1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(att.Rings()[2], got); err != nil || string(got) != "pair1" {
		t.Fatalf("cross-view read = %q, %v", got, err)
	}
}

// TestAttachRejectsBadSegments: attach must fail cleanly on garbage — wrong
// magic, impossible geometry, or a bell count that does not match the
// directory — rather than carving rings out of lies.
func TestAttachRejectsBadSegments(t *testing.T) {
	junk, err := os.CreateTemp(t.TempDir(), "junk")
	if err != nil {
		t.Fatal(err)
	}
	defer junk.Close()
	if err := junk.Truncate(int64(segHdrBytes + 2*(ringHdrBytes+minRingBytes))); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(junk, make([]*os.File, 4)); err == nil {
		t.Fatal("Attach accepted a zeroed (magic-less) segment")
	}

	s := newTestSegment(t, 0, 0)
	files := s.ChildFiles()
	if _, err := Attach(files[0], files[1:3]); err == nil {
		t.Fatal("Attach accepted a bell count that cannot cover the rings")
	}
}

// TestRingStatsAfterSegmentClose: Stats must stay callable after Close
// unmapped the segment, reporting the final snapshot instead of faulting on
// dead memory.
func TestRingStatsAfterSegmentClose(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	done := make(chan struct{})
	go func() {
		var b [1]byte
		io.ReadFull(r, b[:])
		close(done)
	}()
	waitFor(t, func() bool { return r.Stats().Parks >= 1 })
	if _, err := r.Write([]byte{1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	<-done

	live := r.Stats()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	final := r.Stats()
	if final.Doorbells != live.Doorbells || final.Suppressed != live.Suppressed {
		t.Fatalf("post-close stats %+v lost the pre-close counters %+v", final, live)
	}
	// And again, for the detached-snapshot path's idempotence.
	if again := r.Stats(); again != final {
		t.Fatalf("second post-close Stats %+v != first %+v", again, final)
	}
}

// TestBatchedWritesSuppressDoorbells: without explicit brackets, back-to-back
// writes against a RUNNING (not parked) reader should suppress almost every
// bell — the Dekker check sees the reader awake and skips the syscall.
func TestBatchedWritesSuppressDoorbells(t *testing.T) {
	s := newTestSegment(t, 0, 0)
	r := s.Cmd()

	const total = 32 * 1024
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		seen := 0
		for seen < total {
			n, err := r.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			seen += n
		}
	}()

	chunk := make([]byte, 256)
	for sent := 0; sent < total; sent += len(chunk) {
		if _, err := r.Write(chunk); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	wg.Wait()

	st := r.Stats()
	if st.Suppressed == 0 {
		t.Fatalf("no suppression across %d writes against a mostly-running reader: %+v",
			total/len(chunk), st)
	}
	if errs := s.Close(); errs != nil {
		t.Fatalf("Close: %v", errs)
	}
}
