//go:build linux && arm64

package shm

const memfdTrap = 279 // SYS_MEMFD_CREATE
