//go:build linux && !amd64 && !arm64

package shm

const memfdTrap = 0 // unknown arch: skip memfd, back the segment with a temp file
