//go:build linux && amd64

package shm

const memfdTrap = 319 // SYS_MEMFD_CREATE
