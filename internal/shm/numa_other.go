//go:build !linux

package shm

// NUMA placement is Linux-only; elsewhere the probe finds nothing and every
// placement call is a no-op, which is exactly the single-node behavior.

// NumaNodes returns nil: no multi-node topology to place against.
func NumaNodes() []int { return nil }

// BindMemory is a no-op off Linux.
func BindMemory(b []byte, node int) error { return nil }

// PinThreadToNode is a no-op off Linux.
func PinThreadToNode(node int) error { return nil }

// PinConsumer runs fn without pinning.
func PinConsumer(node int, fn func()) { fn() }
