// Package distribute implements the sentinel action of pushing information
// to several destinations, "triggered by file operations against the active
// file" (§3, Distribution) — the outbox that mails whatever is written to
// it, the tee that replicates a stream to many files.
package distribute

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Sink receives one distributed payload.
type Sink interface {
	// Deliver pushes payload to the destination named by addr.
	Deliver(addr string, payload []byte) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(addr string, payload []byte) error

var _ Sink = (SinkFunc)(nil)

// Deliver implements Sink.
func (f SinkFunc) Deliver(addr string, payload []byte) error { return f(addr, payload) }

// Distribution errors.
var (
	ErrNoRecipients = errors.New("distribute: message names no recipients")
	ErrBadMessage   = errors.New("distribute: malformed message")
)

// FanOut delivers each payload to a fixed set of destinations, collecting
// per-destination failures rather than stopping at the first.
type FanOut struct {
	sink  Sink
	addrs []string
}

// NewFanOut returns a distributor delivering to every addr via sink.
func NewFanOut(sink Sink, addrs []string) (*FanOut, error) {
	if len(addrs) == 0 {
		return nil, ErrNoRecipients
	}
	copied := make([]string, len(addrs))
	copy(copied, addrs)
	return &FanOut{sink: sink, addrs: copied}, nil
}

// Distribute delivers payload to every destination, returning an error
// joining any failures.
func (f *FanOut) Distribute(payload []byte) error {
	var errs []error
	for _, addr := range f.addrs {
		if err := f.sink.Deliver(addr, payload); err != nil {
			errs = append(errs, fmt.Errorf("deliver to %s: %w", addr, err))
		}
	}
	return errors.Join(errs...)
}

// Message is a parsed outbox message: headers plus body.
type Message struct {
	To      []string
	Subject string
	Body    []byte
}

// ParseMessage extracts recipients from the message text, the sentinel
// behaviour where it "parses the data written to the file to extract the
// 'To' addresses and send the data to each recipient" (§3). The expected
// form is RFC-822-like: header lines, a blank line, then the body.
//
//	To: alice@a, bob@b
//	Subject: greetings
//
//	body text...
func ParseMessage(raw []byte) (Message, error) {
	var msg Message
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 64*1024), 1<<20)

	inHeader := true
	var body bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		if inHeader {
			if line == "" {
				inHeader = false
				continue
			}
			name, value, ok := strings.Cut(line, ":")
			if !ok {
				return Message{}, fmt.Errorf("%w: header line %q", ErrBadMessage, line)
			}
			value = strings.TrimSpace(value)
			switch strings.ToLower(strings.TrimSpace(name)) {
			case "to":
				for _, addr := range strings.Split(value, ",") {
					if a := strings.TrimSpace(addr); a != "" {
						msg.To = append(msg.To, a)
					}
				}
			case "subject":
				msg.Subject = value
			default:
				// Unknown headers are carried in the body verbatim? No —
				// they are simply ignored, like the prototype's minimal
				// parser.
			}
			continue
		}
		body.Write(sc.Bytes())
		body.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if len(msg.To) == 0 {
		return Message{}, ErrNoRecipients
	}
	msg.Body = body.Bytes()
	return msg, nil
}

// Outbox distributes written messages to their parsed recipients.
type Outbox struct {
	sink Sink
}

// NewOutbox returns an outbox distributing through sink.
func NewOutbox(sink Sink) *Outbox {
	return &Outbox{sink: sink}
}

// Send parses raw and delivers it to each recipient.
func (o *Outbox) Send(raw []byte) error {
	msg, err := ParseMessage(raw)
	if err != nil {
		return err
	}
	var errs []error
	for _, addr := range msg.To {
		if err := o.sink.Deliver(addr, raw); err != nil {
			errs = append(errs, fmt.Errorf("deliver to %s: %w", addr, err))
		}
	}
	return errors.Join(errs...)
}
