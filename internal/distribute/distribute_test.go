package distribute

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// recordingSink remembers deliveries and can fail selected addresses.
type recordingSink struct {
	mu        sync.Mutex
	delivered map[string][]string
	failAddrs map[string]error
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		delivered: make(map[string][]string),
		failAddrs: make(map[string]error),
	}
}

func (s *recordingSink) Deliver(addr string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err, ok := s.failAddrs[addr]; ok {
		return err
	}
	s.delivered[addr] = append(s.delivered[addr], string(payload))
	return nil
}

func TestFanOutDeliversToAll(t *testing.T) {
	sink := newRecordingSink()
	f, err := NewFanOut(sink, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Distribute([]byte("payload")); err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	for _, addr := range []string{"a", "b", "c"} {
		if got := sink.delivered[addr]; len(got) != 1 || got[0] != "payload" {
			t.Errorf("delivery to %s = %v", addr, got)
		}
	}
}

func TestFanOutCollectsFailures(t *testing.T) {
	boom := errors.New("unreachable")
	sink := newRecordingSink()
	sink.failAddrs["b"] = boom
	f, err := NewFanOut(sink, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	err = f.Distribute([]byte("x"))
	if !errors.Is(err, boom) {
		t.Errorf("Distribute err = %v, want wrapped %v", err, boom)
	}
	// Failure of one destination must not block the others.
	if len(sink.delivered["a"]) != 1 || len(sink.delivered["c"]) != 1 {
		t.Error("healthy destinations skipped after a failure")
	}
}

func TestFanOutRequiresAddrs(t *testing.T) {
	if _, err := NewFanOut(newRecordingSink(), nil); !errors.Is(err, ErrNoRecipients) {
		t.Errorf("err = %v, want ErrNoRecipients", err)
	}
}

func TestParseMessage(t *testing.T) {
	raw := "To: alice@a, bob@b\nSubject: hello there\n\nline one\nline two\n"
	msg, err := ParseMessage([]byte(raw))
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if len(msg.To) != 2 || msg.To[0] != "alice@a" || msg.To[1] != "bob@b" {
		t.Errorf("To = %v", msg.To)
	}
	if msg.Subject != "hello there" {
		t.Errorf("Subject = %q", msg.Subject)
	}
	if string(msg.Body) != "line one\nline two\n" {
		t.Errorf("Body = %q", msg.Body)
	}
}

func TestParseMessageVariants(t *testing.T) {
	tests := []struct {
		name    string
		give    string
		wantTo  []string
		wantErr error
	}{
		{name: "case-insensitive header", give: "TO: x@y\n\nbody", wantTo: []string{"x@y"}},
		{name: "no recipients", give: "Subject: s\n\nbody", wantErr: ErrNoRecipients},
		{name: "empty", give: "", wantErr: ErrNoRecipients},
		{name: "bad header line", give: "not a header\n\nbody", wantErr: ErrBadMessage},
		{name: "spaces in list", give: "To:  a@a ,  , b@b \n\n.", wantTo: []string{"a@a", "b@b"}},
		{name: "unknown headers ignored", give: "To: a@a\nX-Priority: 1\n\nbody", wantTo: []string{"a@a"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			msg, err := ParseMessage([]byte(tt.give))
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Errorf("err = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMessage: %v", err)
			}
			if strings.Join(msg.To, ",") != strings.Join(tt.wantTo, ",") {
				t.Errorf("To = %v, want %v", msg.To, tt.wantTo)
			}
		})
	}
}

func TestOutboxSendsToParsedRecipients(t *testing.T) {
	sink := newRecordingSink()
	outbox := NewOutbox(sink)
	raw := "To: alice@a, bob@b\n\nhi both\n"
	if err := outbox.Send([]byte(raw)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, addr := range []string{"alice@a", "bob@b"} {
		got := sink.delivered[addr]
		if len(got) != 1 || got[0] != raw {
			t.Errorf("delivery to %s = %v", addr, got)
		}
	}
}

func TestOutboxRejectsBadMessage(t *testing.T) {
	outbox := NewOutbox(newRecordingSink())
	if err := outbox.Send([]byte("Subject: no recipients\n\nbody")); !errors.Is(err, ErrNoRecipients) {
		t.Errorf("Send err = %v, want ErrNoRecipients", err)
	}
}

func TestOutboxPartialFailure(t *testing.T) {
	boom := errors.New("mailbox full")
	sink := newRecordingSink()
	sink.failAddrs["bad@x"] = boom
	outbox := NewOutbox(sink)
	err := outbox.Send([]byte("To: good@x, bad@x\n\nbody"))
	if !errors.Is(err, boom) {
		t.Errorf("Send err = %v, want wrapped %v", err, boom)
	}
	if len(sink.delivered["good@x"]) != 1 {
		t.Error("good recipient skipped after failure")
	}
}
