package daemon

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/shm"
	"repro/internal/wire"
)

func TestTenantOf(t *testing.T) {
	cases := map[string]string{
		"acme/logs/today": "acme",
		"acme/x":          "acme",
		"plain":           DefaultTenant,
		"/leading":        DefaultTenant,
		"trailing/":       DefaultTenant,
		"":                DefaultTenant,
	}
	for name, want := range cases {
		if got := TenantOf(name); got != want {
			t.Errorf("TenantOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestSessionQuota(t *testing.T) {
	r := NewRegistry(Quotas{MaxSessions: 2})
	s1, err := r.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Admit("a"); !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("third session admitted: err = %v", err)
	}
	// Another tenant has its own budget.
	sb, err := r.Admit("b")
	if err != nil {
		t.Fatalf("tenant b starved by tenant a: %v", err)
	}
	sb.Close()
	// Releasing a slot readmits.
	s1.Close()
	s1.Close() // idempotent
	s3, err := r.Admit("a")
	if err != nil {
		t.Fatalf("readmission after release: %v", err)
	}
	s3.Close()
	s2.Close()

	st := r.Snapshot()
	if st.Sessions != 0 {
		t.Errorf("sessions gauge = %d after all closed", st.Sessions)
	}
	for _, row := range st.Tenants {
		if row.Name == "a" {
			if row.PeakSessions != 2 || row.RejectedQuota != 1 {
				t.Errorf("tenant a row = %+v", row)
			}
		}
	}
}

func TestInFlightBoundRejectsOverload(t *testing.T) {
	r := NewRegistry(Quotas{MaxInFlight: 2})
	s, err := r.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d1, err := s.Begin(wire.OpRead, 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Begin(wire.OpRead, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(wire.OpRead, 8); !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("third op admitted past bound: err = %v", err)
	}
	d1(nil, 8)
	// A released slot admits again — overload is transient.
	d3, err := s.Begin(wire.OpWrite, 4)
	if err != nil {
		t.Fatalf("op after release: %v", err)
	}
	d3(nil, 4)
	d2(errors.New("boom"), 0)

	st := r.Snapshot()
	row := st.Tenants[0]
	if row.Ops != 3 || row.Errors != 1 || row.RejectedOverload != 1 {
		t.Errorf("tenant row = %+v", row)
	}
	if row.BytesRead != 8 || row.BytesWritten != 4 {
		t.Errorf("byte accounting = read %d, written %d", row.BytesRead, row.BytesWritten)
	}
	if row.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after settle", row.InFlight)
	}
}

func TestByteBudgetRejectsQuota(t *testing.T) {
	r := NewRegistry(Quotas{MaxBytes: 100})
	s, _ := r.Admit("a")
	defer s.Close()
	done, err := s.Begin(wire.OpRead, 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(wire.OpRead, 40); !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("byte budget not enforced: err = %v", err)
	}
	done(nil, 80)
	done2, err := s.Begin(wire.OpRead, 40)
	if err != nil {
		t.Fatalf("bytes not released on settle: %v", err)
	}
	done2(nil, 40)
}

func TestDrainRefusesNewWorkAndWaits(t *testing.T) {
	r := NewRegistry(Quotas{})
	s, _ := r.Admit("a")
	done, err := s.Begin(wire.OpRead, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A drain with work in flight misses a short deadline...
	if r.Drain(time.Millisecond) {
		t.Fatal("drain reported clean with an op in flight")
	}
	// ...and everything new is refused, typed.
	if _, err := r.Admit("a"); !errors.Is(err, wire.ErrShuttingDown) {
		t.Errorf("admit while draining: err = %v", err)
	}
	if _, err := s.Begin(wire.OpRead, 0); !errors.Is(err, wire.ErrShuttingDown) {
		t.Errorf("begin while draining: err = %v", err)
	}

	// Settling the straggler lets a second drain succeed.
	go func() {
		time.Sleep(5 * time.Millisecond)
		done(nil, 0)
	}()
	if !r.Drain(time.Second) {
		t.Fatal("drain did not complete after in-flight op settled")
	}
	if !r.Draining() || r.InFlight() != 0 {
		t.Errorf("post-drain state: draining=%v inflight=%d", r.Draining(), r.InFlight())
	}
}

// TestConcurrentAdmission hammers one registry from many goroutines: the
// bound must hold (never more than MaxInFlight concurrently admitted per
// tenant), no operation may deadlock, and the gauges must return to zero.
func TestConcurrentAdmission(t *testing.T) {
	const (
		workers = 32
		opsEach = 200
		bound   = 8
	)
	r := NewRegistry(Quotas{MaxInFlight: bound})
	s, err := r.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		cur, max int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				done, err := s.Begin(wire.OpRead, 1)
				if errors.Is(err, wire.ErrOverloaded) {
					continue
				}
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				mu.Lock()
				cur++
				if cur > max {
					max = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				done(nil, 1)
			}
		}()
	}
	wg.Wait()
	if max > bound {
		t.Errorf("observed %d concurrent admitted ops, bound %d", max, bound)
	}
	st := r.Snapshot()
	if st.InFlight != 0 || st.Tenants[0].InFlight != 0 {
		t.Errorf("gauges nonzero after settle: %+v", st)
	}
	if st.Tenants[0].Ops == 0 {
		t.Error("no ops recorded")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket <4µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond) // bucket <1024µs
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.QuantileMicros(0.50); p50 != 4 {
		t.Errorf("p50 = %v, want 4", p50)
	}
	if p99 := s.QuantileMicros(0.99); p99 != 1024 {
		t.Errorf("p99 = %v, want 1024", p99)
	}
	if mean := s.MeanMicros(); mean < 90 || mean > 100 {
		t.Errorf("mean = %v", mean)
	}
	// Overflow clamps rather than panics.
	h.Observe(time.Hour)
	if got := h.Snapshot().Counts[histBuckets-1]; got != 1 {
		t.Errorf("overflow bucket = %d", got)
	}
}

func TestStatsEndpointServesJSON(t *testing.T) {
	r := NewRegistry(Quotas{})
	s, _ := r.Admit("acme")
	done, _ := s.Begin(wire.OpRead, 64)
	done(nil, 64)
	r.AddBatchStats(wire.BatchStats{Flushes: 2, Frames: 10})

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats endpoint returned bad JSON: %v", err)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Name != "acme" || st.Tenants[0].BytesRead != 64 {
		t.Errorf("tenants = %+v", st.Tenants)
	}
	if len(st.Ops) != 1 || st.Ops[0].Op != "read" || st.Ops[0].Count != 1 {
		t.Errorf("ops = %+v", st.Ops)
	}
	if st.FramesPerFlush != 5 {
		t.Errorf("framesPerFlush = %v", st.FramesPerFlush)
	}
	s.Close()
}

// TestSnapshotReportsDataPlaneFDs: with a mapped segment in the process the
// snapshot must carry the descriptor-economy section, and it must retire
// with the segment — the section reflects live gauges, not history.
func TestSnapshotReportsDataPlaneFDs(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm unsupported on this platform")
	}
	r := NewRegistry(Quotas{})
	if dp := r.Snapshot().DataPlane; dp != nil {
		t.Fatalf("idle process reports data-plane fds: %+v", dp)
	}
	seg, err := shm.New(0, 0)
	if err != nil {
		t.Fatalf("shm.New: %v", err)
	}
	dp := r.Snapshot().DataPlane
	if dp == nil || dp.Segments < 1 || dp.DoorbellFDs < 1 {
		t.Fatalf("snapshot missed the mapped segment: %+v", dp)
	}
	seg.Close()
	if dp := r.Snapshot().DataPlane; dp != nil {
		t.Fatalf("closed segment still reported: %+v", dp)
	}
}
