// Package daemon is the multi-tenant session layer of the active-file
// daemon (afd). It multiplexes M client sessions over the N sentinels and
// backends a server composes, and makes the daemon safe to share:
//
//   - a session REGISTRY tracks every live session grouped by tenant, so
//     "who is using the daemon, and how hard" is a queryable fact rather
//     than a guess;
//   - ADMISSION CONTROL bounds each tenant's concurrent operations and
//     in-flight payload bytes. When a bound is hit the operation is
//     rejected immediately with a typed error (wire.ErrOverloaded /
//     wire.ErrQuotaExceeded) instead of queueing without limit — the
//     client learns it is the bottleneck while the daemon stays live for
//     everyone else;
//   - QUOTAS cap what a tenant may hold open (sessions) and keep resident
//     (bytes), so one tenant cannot starve the rest;
//   - graceful DRAIN quiesces the daemon for shutdown: new work is refused
//     with wire.ErrShuttingDown, in-flight operations finish under a
//     deadline, and only then do connections close — at frame boundaries,
//     not mid-reply.
//
// The registry also owns the daemon-wide observability surface: per-op
// latency histograms plus per-tenant activity counters (the server-side
// mirror of core.Handle.Stats), aggregated across tenants and exported as
// one JSON snapshot (see stats.go).
//
// Tenancy is named, not authenticated: a session's tenant is derived from
// the object name it opens (TenantOf), which is exactly as much isolation
// as a local daemon shared by cooperating applications needs — the same
// trust model as the file system itself.
package daemon

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// DefaultTenant is the tenant of sessions whose object names carry no
// tenant prefix.
const DefaultTenant = "default"

// TenantOf maps an opened object name to its tenant: the first
// path-separated segment when the name has one ("acme/logs/today" belongs
// to "acme"), DefaultTenant otherwise. Backends see the full name
// unchanged; the prefix is an accounting key, not a namespace rewrite.
func TenantOf(name string) string {
	if i := strings.IndexByte(name, '/'); i > 0 && i < len(name)-1 {
		return name[:i]
	}
	return DefaultTenant
}

// Quotas bounds one tenant's footprint. A zero field means unlimited, so
// the zero value admits everything — a Registry without quotas is pure
// accounting.
type Quotas struct {
	// MaxSessions caps a tenant's concurrently open sessions (handles).
	// Admission past the cap fails with wire.ErrQuotaExceeded.
	MaxSessions int
	// MaxInFlight caps a tenant's concurrently executing operations. An
	// operation past the cap is rejected with wire.ErrOverloaded — the
	// transient form: the same request can succeed as soon as one in
	// flight completes.
	MaxInFlight int
	// MaxBytes caps the payload bytes a tenant may have resident in the
	// daemon at once (request payloads plus reserved response buffers —
	// the accounting analog of a per-tenant cache budget). Exceeding it
	// rejects with wire.ErrQuotaExceeded.
	MaxBytes int64
}

// Registry is the daemon's session table: every live session, grouped by
// tenant, with admission control and activity accounting. All methods are
// safe for concurrent use; the hot path (Session.Begin / the done
// callback) is lock-free.
type Registry struct {
	quotas Quotas

	mu      sync.Mutex
	tenants map[string]*tenant
	shard   func() ShardStats // optional fleet-shard gauge provider

	draining atomic.Bool
	inflight atomic.Int64 // daemon-wide gauge; Drain waits on it
	sessions atomic.Int64 // daemon-wide gauge

	hist [opSlots]Histogram // per-op latency, daemon-wide

	// Wire-level amortization folded in from finished connections: how
	// many frames each vectored write carried (BatchWriter) and how many
	// bytes each receive wakeup pulled (DrainReader) — the server-side
	// aggregate of the per-handle BatchStats/DataPlaneStats counters.
	batchFlushes atomic.Uint64
	batchFrames  atomic.Uint64
	recvFills    atomic.Uint64
	recvBytes    atomic.Uint64

	rejectedShutdown atomic.Uint64
}

// opSlots sizes the per-op histogram array; wire ops are small contiguous
// constants (OpOpen=1 … OpApply=16).
const opSlots = 20

// NewRegistry returns a registry enforcing q.
func NewRegistry(q Quotas) *Registry {
	return &Registry{quotas: q, tenants: make(map[string]*tenant)}
}

// SetShardProvider installs f as the source of fleet-shard gauges included
// in Snapshot — identity in the shard map, lease-protocol counters,
// replication forwards. A daemon that is not a fleet shard leaves it unset.
func (r *Registry) SetShardProvider(f func() ShardStats) {
	r.mu.Lock()
	r.shard = f
	r.mu.Unlock()
}

// tenant is one tenant's accounting row. Gauges and counters are atomics:
// the operation path never takes the registry lock.
type tenant struct {
	name string

	sessions     atomic.Int64 // gauge
	peakSessions atomic.Int64
	inflight     atomic.Int64 // gauge
	bytes        atomic.Int64 // gauge: resident payload bytes

	ops          atomic.Uint64
	errors       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64

	rejOverload atomic.Uint64
	rejQuota    atomic.Uint64
	rejShutdown atomic.Uint64
}

// lookup returns the tenant row, creating it on first contact.
func (r *Registry) lookup(name string) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[name]
	if t == nil {
		t = &tenant{name: name}
		r.tenants[name] = t
	}
	return t
}

// Session is one admitted client session (one connection bound to one
// object). It is the capability operations are accounted against; Close
// releases the tenant's session slot.
type Session struct {
	reg    *Registry
	tenant *tenant
	closed atomic.Bool
}

// Admit registers a new session for tenantName, enforcing the session
// quota. It fails with wire.ErrShuttingDown while draining and
// wire.ErrQuotaExceeded when the tenant is at its session cap.
func (r *Registry) Admit(tenantName string) (*Session, error) {
	t := r.lookup(tenantName)
	if r.draining.Load() {
		t.rejShutdown.Add(1)
		r.rejectedShutdown.Add(1)
		return nil, wire.ErrShuttingDown
	}
	for {
		cur := t.sessions.Load()
		if r.quotas.MaxSessions > 0 && cur >= int64(r.quotas.MaxSessions) {
			t.rejQuota.Add(1)
			return nil, wire.ErrQuotaExceeded
		}
		if t.sessions.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	r.sessions.Add(1)
	for {
		peak := t.peakSessions.Load()
		now := t.sessions.Load()
		if now <= peak || t.peakSessions.CompareAndSwap(peak, now) {
			break
		}
	}
	return &Session{reg: r, tenant: t}, nil
}

// Close releases the session's slot. It is idempotent.
func (s *Session) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.tenant.sessions.Add(-1)
	s.reg.sessions.Add(-1)
}

// Tenant returns the session's tenant name.
func (s *Session) Tenant() string { return s.tenant.name }

// DoneFunc settles one admitted operation: err is the operation's outcome
// (nil on success), moved is how many payload bytes it actually
// transferred. It must be called exactly once per successful Begin.
type DoneFunc func(err error, moved int64)

// Begin admits one operation against the session: op names it for the
// latency histogram, bytes is the payload it will hold resident while in
// flight (request payload, or the response buffer a read reserves).
//
// Begin never blocks. Past the tenant's in-flight bound it fails with
// wire.ErrOverloaded; past the byte budget, wire.ErrQuotaExceeded; while
// draining, wire.ErrShuttingDown. On success the returned DoneFunc must be
// called when the operation completes — it records latency and bytes and
// releases the admission.
func (s *Session) Begin(op wire.Op, bytes int64) (DoneFunc, error) {
	t := s.tenant
	r := s.reg
	if r.draining.Load() {
		t.rejShutdown.Add(1)
		r.rejectedShutdown.Add(1)
		return nil, wire.ErrShuttingDown
	}
	if max := int64(r.quotas.MaxInFlight); max > 0 {
		if t.inflight.Add(1) > max {
			t.inflight.Add(-1)
			t.rejOverload.Add(1)
			return nil, wire.ErrOverloaded
		}
	} else {
		t.inflight.Add(1)
	}
	if max := r.quotas.MaxBytes; max > 0 && bytes > 0 {
		if t.bytes.Add(bytes) > max {
			t.bytes.Add(-bytes)
			t.inflight.Add(-1)
			t.rejQuota.Add(1)
			return nil, wire.ErrQuotaExceeded
		}
	} else {
		t.bytes.Add(bytes)
	}
	r.inflight.Add(1)
	start := time.Now()
	return func(err error, moved int64) {
		if slot := int(op); slot > 0 && slot < opSlots {
			r.hist[slot].Observe(time.Since(start))
		}
		t.ops.Add(1)
		if err != nil {
			t.errors.Add(1)
		} else if moved > 0 {
			switch op {
			case wire.OpWrite:
				t.bytesWritten.Add(uint64(moved))
			default:
				t.bytesRead.Add(uint64(moved))
			}
		}
		t.bytes.Add(-bytes)
		t.inflight.Add(-1)
		r.inflight.Add(-1)
	}, nil
}

// AddBatchStats folds one finished connection's reply-path flush
// amortization into the daemon-wide totals.
func (r *Registry) AddBatchStats(bs wire.BatchStats) {
	r.batchFlushes.Add(bs.Flushes)
	r.batchFrames.Add(bs.Frames)
}

// AddDrainStats folds one finished connection's receive-path wakeup
// amortization into the daemon-wide totals.
func (r *Registry) AddDrainStats(ds wire.DrainStats) {
	r.recvFills.Add(ds.Fills)
	r.recvBytes.Add(ds.Bytes)
}

// Draining reports whether the registry has stopped admitting work.
func (r *Registry) Draining() bool { return r.draining.Load() }

// InFlight reports the daemon-wide count of operations currently
// executing.
func (r *Registry) InFlight() int64 { return r.inflight.Load() }

// Drain stops admitting new sessions and operations, then waits up to
// timeout for every in-flight operation to settle. It reports whether the
// daemon quiesced cleanly; false means the deadline expired with work
// still running (the caller may then tear connections down forcibly).
// Drain is idempotent — concurrent callers all wait.
func (r *Registry) Drain(timeout time.Duration) bool {
	r.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for r.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return r.inflight.Load() == 0
		}
		time.Sleep(500 * time.Microsecond)
	}
	return true
}
