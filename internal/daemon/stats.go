package daemon

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/shm"
	"repro/internal/wire"
)

// Stats is one JSON-serializable snapshot of the whole daemon: every
// tenant's activity row, per-op latency histograms, and the wire-level
// amortization totals. It is what `afd -stats` serves and `afctl stats`
// prints.
type Stats struct {
	Draining bool  `json:"draining"`
	Sessions int64 `json:"sessions"`
	InFlight int64 `json:"inFlight"`

	Tenants []TenantStats `json:"tenants,omitempty"`
	Ops     []OpStats     `json:"ops,omitempty"`

	// Reply-path flush amortization aggregated over finished connections
	// (frames per vectored write), and receive-path wakeup amortization
	// (bytes pulled per read syscall) — the daemon-wide roll-up of the
	// per-handle BatchStats/DataPlaneStats counters.
	BatchFlushes     uint64  `json:"batchFlushes,omitempty"`
	BatchFrames      uint64  `json:"batchFrames,omitempty"`
	FramesPerFlush   float64 `json:"framesPerFlush,omitempty"`
	RecvFills        uint64  `json:"recvFills,omitempty"`
	RecvBytes        uint64  `json:"recvBytes,omitempty"`
	RejectedShutdown uint64  `json:"rejectedShutdown,omitempty"`

	// Shard is present when the daemon serves as one shard of a fleet: its
	// identity in the shard map plus lease-protocol and replication gauges.
	Shard *ShardStats `json:"shard,omitempty"`

	// DataPlane reports the process-wide descriptor economy of the shared-
	// memory data plane: mapped segments, their backing files and doorbell
	// eventfds, and the sessions multiplexed over MPSC lane segments. The
	// fleet-scale contract is visible here: doorbell fds grow with segments,
	// not with sessions.
	DataPlane *DataPlaneFDStats `json:"dataPlane,omitempty"`
}

// DataPlaneFDStats is the JSON form of shm.SnapshotFDs.
type DataPlaneFDStats struct {
	Segments     int64 `json:"segments"`
	SegmentFiles int64 `json:"segmentFiles"`
	DoorbellFDs  int64 `json:"doorbellFDs"`
	LaneSessions int64 `json:"laneSessions"`
}

// ShardStats is the fleet-facing slice of one shard's snapshot.
type ShardStats struct {
	Self           string `json:"self"`
	MapEpoch       uint64 `json:"mapEpoch"`
	Shards         int    `json:"shards"`
	Replicas       int    `json:"replicas"`
	LeaseGrants    uint64 `json:"leaseGrants,omitempty"`
	LeaseRevokes   uint64 `json:"leaseRevokes,omitempty"`
	RevokeTimeouts uint64 `json:"revokeTimeouts,omitempty"`
	ApplyForwards  uint64 `json:"applyForwards,omitempty"`
}

// TenantStats is one tenant's accounting row.
type TenantStats struct {
	Name         string `json:"name"`
	Sessions     int64  `json:"sessions"`
	PeakSessions int64  `json:"peakSessions"`
	InFlight     int64  `json:"inFlight"`
	Ops          uint64 `json:"ops"`
	Errors       uint64 `json:"errors,omitempty"`
	BytesRead    uint64 `json:"bytesRead,omitempty"`
	BytesWritten uint64 `json:"bytesWritten,omitempty"`
	// Typed rejections: how often admission control turned this tenant
	// away, by kind.
	RejectedOverload uint64 `json:"rejectedOverload,omitempty"`
	RejectedQuota    uint64 `json:"rejectedQuota,omitempty"`
	RejectedShutdown uint64 `json:"rejectedShutdown,omitempty"`
}

// OpStats is one operation's daemon-wide latency summary.
type OpStats struct {
	Op         string            `json:"op"`
	Count      uint64            `json:"count"`
	MeanMicros float64           `json:"meanMicros"`
	P50Micros  float64           `json:"p50Micros"`
	P99Micros  float64           `json:"p99Micros"`
	MaxMicros  float64           `json:"maxMicros"`
	Histogram  HistogramSnapshot `json:"histogram"`
}

// Snapshot collects the registry's current state. It is safe to call at
// any time; counters keep moving underneath it.
func (r *Registry) Snapshot() Stats {
	s := Stats{
		Draining:         r.draining.Load(),
		Sessions:         r.sessions.Load(),
		InFlight:         r.inflight.Load(),
		BatchFlushes:     r.batchFlushes.Load(),
		BatchFrames:      r.batchFrames.Load(),
		RecvFills:        r.recvFills.Load(),
		RecvBytes:        r.recvBytes.Load(),
		RejectedShutdown: r.rejectedShutdown.Load(),
	}
	if s.BatchFlushes > 0 {
		s.FramesPerFlush = float64(s.BatchFrames) / float64(s.BatchFlushes)
	}
	if fds := shm.SnapshotFDs(); fds != (shm.FDStats{}) {
		s.DataPlane = &DataPlaneFDStats{
			Segments:     fds.Segments,
			SegmentFiles: fds.SegmentFiles,
			DoorbellFDs:  fds.DoorbellFDs,
			LaneSessions: fds.LaneSessions,
		}
	}

	r.mu.Lock()
	rows := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		rows = append(rows, t)
	}
	shard := r.shard
	r.mu.Unlock()
	if shard != nil {
		ss := shard()
		s.Shard = &ss
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, t := range rows {
		s.Tenants = append(s.Tenants, TenantStats{
			Name:             t.name,
			Sessions:         t.sessions.Load(),
			PeakSessions:     t.peakSessions.Load(),
			InFlight:         t.inflight.Load(),
			Ops:              t.ops.Load(),
			Errors:           t.errors.Load(),
			BytesRead:        t.bytesRead.Load(),
			BytesWritten:     t.bytesWritten.Load(),
			RejectedOverload: t.rejOverload.Load(),
			RejectedQuota:    t.rejQuota.Load(),
			RejectedShutdown: t.rejShutdown.Load(),
		})
	}

	for op := wire.Op(1); int(op) < opSlots; op++ {
		hs := r.hist[op].Snapshot()
		if hs.Count == 0 {
			continue
		}
		s.Ops = append(s.Ops, OpStats{
			Op:         op.String(),
			Count:      hs.Count,
			MeanMicros: hs.MeanMicros(),
			P50Micros:  hs.QuantileMicros(0.50),
			P99Micros:  hs.QuantileMicros(0.99),
			MaxMicros:  hs.QuantileMicros(1),
			Histogram:  hs,
		})
	}
	return s
}

// ServeHTTP serves the snapshot as indented JSON, making a Registry
// mountable directly as the `afd -stats` endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot())
}
