package daemon

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets: bucket i counts
// observations with latency < 2^i microseconds (bucket 0: sub-microsecond),
// and the last bucket absorbs everything slower (≥ ~65ms). Power-of-two
// bucketing makes Observe a CLZ plus one atomic add — cheap enough for
// every operation on the daemon's hot path.
const histBuckets = 18

// Histogram is a lock-free log-scaled latency histogram. The zero value is
// ready; Observe and Snapshot may race freely (snapshots are
// monotonically consistent per bucket, which is all a stats endpoint
// needs).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64 // microseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(us)
}

// HistogramSnapshot is a point-in-time copy of a histogram, serializable
// and queryable for quantiles.
type HistogramSnapshot struct {
	// Counts[i] holds samples with latency < 2^i µs; the last bucket is
	// the overflow.
	Counts    []uint64 `json:"counts"`
	Count     uint64   `json:"count"`
	SumMicros uint64   `json:"sumMicros"`
}

// Snapshot copies the histogram's current counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, histBuckets)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumMicros = h.sum.Load()
	return s
}

// MeanMicros returns the mean sample latency in microseconds.
func (s HistogramSnapshot) MeanMicros() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumMicros) / float64(s.Count)
}

// QuantileMicros returns an upper bound on the q-quantile latency in
// microseconds: the top edge of the bucket where the cumulative count
// crosses q. Resolution is a factor of two — coarse, but stable and free
// of sampling.
func (s HistogramSnapshot) QuantileMicros(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i == 0 {
				return 1
			}
			return float64(uint64(1) << i)
		}
	}
	return float64(uint64(1) << (len(s.Counts) - 1))
}
