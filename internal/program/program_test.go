package program_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/registry"
	"repro/internal/remote"
	"repro/internal/vfs"
	"repro/internal/wire"
)

func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

func createAF(t *testing.T, m vfs.Manifest) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, m); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	return path
}

func open(t *testing.T, path string, strategy core.Strategy) *core.Handle {
	t.Helper()
	h, err := core.Open(path, core.Options{Strategy: strategy})
	if err != nil {
		t.Fatalf("core.Open: %v", err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestQuotesProgramReflectsLatestOnOpen(t *testing.T) {
	srv := remote.NewQuoteServer([]remote.Quote{
		{Symbol: "AAPL", Cents: 10000},
		{Symbol: "MSFT", Cents: 20000},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	})

	h := open(t, path, core.StrategyThread)
	first, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "AAPL\t100.00\nMSFT\t200.00\n" {
		t.Errorf("ticker = %q", first)
	}

	// Price moves; a fresh open sees the new listing ("every time the file
	// is opened").
	srv.SetQuote("AAPL", 12345)
	h2 := open(t, path, core.StrategyDirect)
	second, err := io.ReadAll(h2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(second), "AAPL\t123.45") {
		t.Errorf("refreshed ticker = %q", second)
	}
}

func TestQuotesProgramMergesServers(t *testing.T) {
	srvA := remote.NewQuoteServer([]remote.Quote{{Symbol: "ZZZ", Cents: 100}})
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB := remote.NewQuoteServer([]remote.Quote{{Symbol: "AAA", Cents: 200}})
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addrA + ", " + addrB},
	})
	h := open(t, path, core.StrategyDirect)
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	want := "AAA\t2.00\nZZZ\t1.00\n" // merged and sorted across servers
	if string(got) != want {
		t.Errorf("merged ticker = %q, want %q", got, want)
	}
}

func TestQuotesProgramRefreshControl(t *testing.T) {
	srv := remote.NewQuoteServer([]remote.Quote{{Symbol: "X", Cents: 100}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	})
	h := open(t, path, core.StrategyThread)
	srv.SetQuote("X", 999)
	if _, err := h.Control([]byte("refresh")); err != nil {
		t.Fatalf("Control(refresh): %v", err)
	}
	buf := make([]byte, 64)
	n, _ := h.ReadAt(buf, 0)
	if !strings.Contains(string(buf[:n]), "9.99") {
		t.Errorf("after refresh = %q", buf[:n])
	}
	if _, err := h.Control([]byte("bogus")); err == nil {
		t.Error("unknown control accepted")
	}
}

func TestQuotesProgramRejectsWrites(t *testing.T) {
	srv := remote.NewQuoteServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	})
	h := open(t, path, core.StrategyDirect)
	if _, err := h.Write([]byte("x")); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Write err = %v, want ErrUnsupported", err)
	}
}

func TestQuotesProgramRequiresServers(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "quotes"},
		NoData:  true,
	})
	if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
		t.Error("Open without addrs succeeded")
	}
}

func TestInboxAggregatesMultipleServers(t *testing.T) {
	srvA := remote.NewMailServer()
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB := remote.NewMailServer()
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	srvA.Deposit("alice", []byte("To: alice@a\n\nmessage on A\n"))
	srvB.Deposit("alice", []byte("To: alice@b\n\nmessage on B\n"))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "inbox"},
		NoData:  true,
		Params: map[string]string{
			"servers": addrA + "/alice, " + addrB + "/alice",
		},
	})
	h := open(t, path, core.StrategyThread)
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	if !strings.Contains(text, "message on A") || !strings.Contains(text, "message on B") {
		t.Errorf("inbox = %q", text)
	}
	if strings.Count(text, "From alice\n") != 2 {
		t.Errorf("expected 2 mbox delimiters in %q", text)
	}
	// RETR mode leaves the messages on the servers.
	if srvA.Count("alice") != 1 || srvB.Count("alice") != 1 {
		t.Error("messages were removed without take=true")
	}
}

func TestInboxTakeDrainsServers(t *testing.T) {
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Deposit("u", []byte("one"))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "inbox"},
		NoData:  true,
		Params:  map[string]string{"servers": addr + "/u", "take": "true"},
	})
	h := open(t, path, core.StrategyDirect)
	if _, err := io.ReadAll(h); err != nil {
		t.Fatal(err)
	}
	if srv.Count("u") != 0 {
		t.Error("take=true left messages on the server")
	}
}

func TestInboxFetchControl(t *testing.T) {
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "inbox"},
		NoData:  true,
		Params:  map[string]string{"servers": addr + "/u"},
	})
	h := open(t, path, core.StrategyThread)
	if size, _ := h.Size(); size != 0 {
		t.Fatalf("fresh inbox size = %d", size)
	}
	srv.Deposit("u", []byte("late arrival"))
	if _, err := h.Control([]byte("fetch")); err != nil {
		t.Fatalf("Control(fetch): %v", err)
	}
	buf := make([]byte, 128)
	n, _ := h.ReadAt(buf, 0)
	if !strings.Contains(string(buf[:n]), "late arrival") {
		t.Errorf("after fetch = %q", buf[:n])
	}
}

func TestInboxBadSpecs(t *testing.T) {
	tests := []struct {
		name   string
		params map[string]string
	}{
		{name: "no servers", params: nil},
		{name: "malformed spec", params: map[string]string{"servers": "no-slash-here"}},
		{name: "bad take", params: map[string]string{"servers": "h/p", "take": "perhaps"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "inbox"},
				NoData:  true,
				Params:  tt.params,
			})
			if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
				t.Error("Open succeeded with bad configuration")
			}
		})
	}
}

func TestOutboxDeliversOnClose(t *testing.T) {
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": addr},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	raw := "To: alice@a, bob@b\nSubject: hi\n\nhello from the outbox\n"
	if _, err := h.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	// Not sent yet: delivery is the flush-triggered side effect.
	if srv.Count("alice@a") != 0 {
		t.Error("delivered before close/sync")
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, rcpt := range []string{"alice@a", "bob@b"} {
		msgs := srv.Messages(rcpt)
		if len(msgs) != 1 || string(msgs[0]) != raw {
			t.Errorf("mailbox %s = %q", rcpt, msgs)
		}
	}
}

func TestOutboxSyncSendsAndClears(t *testing.T) {
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": addr},
	})
	h := open(t, path, core.StrategyDirect)
	h.Write([]byte("To: x@y\n\nfirst\n"))
	if err := h.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if srv.Count("x@y") != 1 {
		t.Fatal("message not delivered on sync")
	}
	// The outbox empties after sending.
	if size, _ := h.Size(); size != 0 {
		t.Errorf("outbox size after send = %d", size)
	}
	// A clean second sync sends nothing more.
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if srv.Count("x@y") != 1 {
		t.Error("duplicate delivery on idle sync")
	}
}

func TestOutboxRejectsMessageWithoutRecipients(t *testing.T) {
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": addr},
	})
	h := open(t, path, core.StrategyDirect)
	h.Write([]byte("Subject: lost\n\nno recipients\n"))
	if err := h.Sync(); err == nil {
		t.Error("Sync succeeded for a message without recipients")
	}
}

func TestLoggerConcurrentWritersThroughHandles(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "logger"},
	})
	const writers = 4
	const perWriter = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			defer h.Close()
			for i := 0; i < perWriter; i++ {
				record := fmt.Sprintf("w%d-%d", w, i)
				if _, err := h.Write([]byte(record)); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	h := open(t, path, core.StrategyDirect)
	data, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(lines), writers*perWriter)
	}
	for _, line := range lines {
		if strings.Count(line, "w") != 1 {
			t.Fatalf("interleaved record %q", line)
		}
	}
}

func TestLoggerCompactsOnClose(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "logger"},
		Params:  map[string]string{"keep": "2"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Write([]byte(fmt.Sprintf("entry-%d", i)))
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(vfs.DataPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if string(stored) != "entry-3\nentry-4\n" {
		t.Errorf("compacted log = %q", stored)
	}
}

func TestRegistryFileRoundTrip(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "registryfile"},
	})

	// First session: write a configuration as plain text.
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	text := "[system/network]\ndns = \"10.0.0.1\"\nmtu = 1500\n"
	if _, err := h.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session: the parsed registry comes back canonically rendered.
	h2 := open(t, path, core.StrategyDirect)
	got, err := io.ReadAll(h2)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := registry.Parse(got)
	if err != nil {
		t.Fatalf("rendered registry does not reparse: %v", err)
	}
	v, err := parsed.Get("system/network", "dns")
	if err != nil || v.Str != "10.0.0.1" {
		t.Errorf("dns = (%+v, %v)", v, err)
	}
	v, err = parsed.Get("system/network", "mtu")
	if err != nil || v.Int != 1500 {
		t.Errorf("mtu = (%+v, %v)", v, err)
	}
}

func TestRegistryFileRejectsMalformedEdit(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "registryfile"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("this is not registry syntax")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err == nil {
		t.Error("Sync accepted malformed registry text")
	}
	// The store is untouched by the rejected edit.
	stored, err := os.ReadFile(vfs.DataPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stored, []byte("not registry syntax")) {
		t.Error("malformed edit reached the store")
	}
}

func TestRegistryFileEmptyStoreParsesAsEmpty(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "registryfile"},
	})
	h := open(t, path, core.StrategyDirect)
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty registry renders %q", got)
	}
}

func TestGenerateBadParams(t *testing.T) {
	tests := []struct {
		name   string
		params map[string]string
	}{
		{name: "bad size", params: map[string]string{"size": "huge"}},
		{name: "negative size", params: map[string]string{"size": "-1"}},
		{name: "bad seed", params: map[string]string{"seed": "x"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "generate"},
				NoData:  true,
				Params:  tt.params,
			})
			if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
				t.Error("Open succeeded with bad parameters")
			}
		})
	}
}

func TestOutboxThroughSubprocessSentinel(t *testing.T) {
	// The full §3 outbox scenario through a real subprocess sentinel:
	// a legacy application writes an email to a file; a separate process
	// parses and distributes it.
	srv := remote.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": addr},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("To: remote@user\n\nvia subprocess\n")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	msgs := srv.Messages("remote@user")
	if len(msgs) != 1 || !strings.Contains(string(msgs[0]), "via subprocess") {
		t.Errorf("delivered = %q", msgs)
	}
}
