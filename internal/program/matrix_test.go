package program_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/vfs"
)

// TestProgramStrategyMatrix exercises every built-in program under every
// strategy that supports its operation profile. Programs must behave
// identically regardless of whether their sentinel is a goroutine, a direct
// call, or a subprocess — the engine owns the transport, the program the
// semantics.
func TestProgramStrategyMatrix(t *testing.T) {
	// Shared services for the network-bound programs.
	fileSrv := remote.NewFileServer()
	fileAddr, err := fileSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fileSrv.Close()
	quoteSrv := remote.NewQuoteServer([]remote.Quote{{Symbol: "MX", Cents: 1234}})
	quoteAddr, err := quoteSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer quoteSrv.Close()
	mailSrv := remote.NewMailServer()
	mailAddr, err := mailSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mailSrv.Close()

	positioned := []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect}

	type entry struct {
		name       string
		manifest   vfs.Manifest
		strategies []core.Strategy
		// seed prepares per-case external state.
		seed func(t *testing.T)
		// exercise drives the open handle and verifies behaviour.
		exercise func(t *testing.T, h *core.Handle)
	}

	writeRead := func(payload string) func(t *testing.T, h *core.Handle) {
		return func(t *testing.T, h *core.Handle) {
			t.Helper()
			if _, err := h.Write([]byte(payload)); err != nil {
				t.Fatalf("Write: %v", err)
			}
			buf := make([]byte, len(payload))
			if _, err := h.ReadAt(buf, 0); err != nil {
				t.Fatalf("ReadAt: %v", err)
			}
			if string(buf) != payload {
				t.Errorf("view = %q, want %q", buf, payload)
			}
		}
	}
	readOnly := func(want string) func(t *testing.T, h *core.Handle) {
		return func(t *testing.T, h *core.Handle) {
			t.Helper()
			got, err := io.ReadAll(h)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if !bytes.Contains(got, []byte(want)) {
				t.Errorf("content %q lacks %q", got, want)
			}
		}
	}

	entries := []entry{
		{
			name:       "passthrough-disk",
			manifest:   vfs.Manifest{Program: vfs.ProgramSpec{Name: "passthrough"}, Cache: "disk"},
			strategies: positioned,
			exercise:   writeRead("matrix passthrough"),
		},
		{
			name:       "filter-upper",
			manifest:   vfs.Manifest{Program: vfs.ProgramSpec{Name: "filter:upper"}, Cache: "disk"},
			strategies: positioned,
			// Lower-case payload: the upper filter's round trip is identity
			// only up to letter case.
			exercise: writeRead("filtered payload"),
		},
		{
			name:       "compress",
			manifest:   vfs.Manifest{Program: vfs.ProgramSpec{Name: "compress"}},
			strategies: positioned,
			exercise:   writeRead("compress me compress me compress me"),
		},
		{
			name: "generate",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "generate"},
				NoData:  true,
				Params:  map[string]string{"size": "128", "seed": "5"},
			},
			strategies: append(positioned, core.StrategyProcess),
			exercise: func(t *testing.T, h *core.Handle) {
				t.Helper()
				got, err := io.ReadAll(h)
				if err != nil || len(got) != 128 {
					t.Fatalf("ReadAll = (%d bytes, %v), want 128", len(got), err)
				}
			},
		},
		{
			name: "quotes",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "quotes"},
				NoData:  true,
				Params:  map[string]string{"addrs": quoteAddr},
			},
			strategies: append(positioned, core.StrategyProcess),
			exercise:   readOnly("MX\t12.34"),
		},
		{
			name: "inbox",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "inbox"},
				NoData:  true,
				Params:  map[string]string{"servers": mailAddr + "/matrix"},
			},
			strategies: append(positioned, core.StrategyProcess),
			seed: func(t *testing.T) {
				mailSrv.Deposit("matrix", []byte("To: m@x\n\nmatrix message\n"))
			},
			exercise: readOnly("matrix message"),
		},
		{
			name: "logger",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "logger"},
			},
			strategies: positioned,
			exercise: func(t *testing.T, h *core.Handle) {
				t.Helper()
				if _, err := h.Write([]byte("matrix record")); err != nil {
					t.Fatalf("Write: %v", err)
				}
				buf := make([]byte, 14)
				if _, err := h.ReadAt(buf, 0); err != nil && err != io.EOF {
					t.Fatalf("ReadAt: %v", err)
				}
				if string(buf) != "matrix record\n" {
					t.Errorf("log = %q", buf)
				}
			},
		},
		{
			name: "registryfile",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "registryfile"},
			},
			strategies: positioned,
			exercise: func(t *testing.T, h *core.Handle) {
				t.Helper()
				if _, err := h.Write([]byte("[matrix]\nk = 7\n")); err != nil {
					t.Fatalf("Write: %v", err)
				}
				if err := h.Sync(); err != nil {
					t.Fatalf("Sync: %v", err)
				}
				buf := make([]byte, 64)
				n, err := h.ReadAt(buf, 0)
				if err != nil && err != io.EOF {
					t.Fatalf("ReadAt: %v", err)
				}
				if !bytes.Contains(buf[:n], []byte("[matrix]")) {
					t.Errorf("rendered = %q", buf[:n])
				}
			},
		},
		{
			name: "cached",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "cached"},
				NoData:  true,
				Source:  vfs.SourceSpec{Kind: "tcp", Addr: fileAddr, Path: "matrix-obj"},
			},
			strategies: positioned,
			seed: func(t *testing.T) {
				fileSrv.Put("matrix-obj", []byte("cached matrix content"))
			},
			exercise: func(t *testing.T, h *core.Handle) {
				t.Helper()
				buf := make([]byte, 21)
				for i := 0; i < 3; i++ {
					if _, err := h.ReadAt(buf, 0); err != nil {
						t.Fatalf("ReadAt: %v", err)
					}
				}
				if string(buf) != "cached matrix content" {
					t.Errorf("view = %q", buf)
				}
			},
		},
		{
			name: "accesslog",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "accesslog"},
				Cache:   "memory",
			},
			strategies: positioned,
			exercise:   writeRead("audited bytes"),
		},
		{
			name: "locking",
			manifest: vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "locking"},
				Cache:   "memory",
			},
			strategies: positioned,
			exercise: func(t *testing.T, h *core.Handle) {
				t.Helper()
				if err := h.Lock(0, 10); err != nil {
					t.Fatalf("Lock: %v", err)
				}
				if err := h.Unlock(0, 10); err != nil {
					t.Fatalf("Unlock: %v", err)
				}
			},
		},
	}

	for _, e := range entries {
		for _, strategy := range e.strategies {
			name := fmt.Sprintf("%s/%s", e.name, strategy)
			t.Run(name, func(t *testing.T) {
				if e.seed != nil {
					e.seed(t)
				}
				path := createAF(t, e.manifest)
				h, err := core.Open(path, core.Options{Strategy: strategy})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				defer h.Close()
				e.exercise(t, h)
			})
		}
	}
}
