package program_test

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/vfs"
)

func startFileServer(t *testing.T) (*remote.FileServer, string) {
	t.Helper()
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestCachedProgramServesHitsLocally(t *testing.T) {
	srv, addr := startFileServer(t)
	content := bytes.Repeat([]byte("block data "), 1024)
	srv.Put("obj", content)

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "cached"},
		NoData:  true,
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
		// Transport read-ahead is off so the hit/miss counts below measure
		// ONLY the program's LRU cache: the thread transport's async window
		// fills would otherwise reach the cache on racy schedules (reliably
		// so under -race, where they land before the stats snapshot).
		Params: map[string]string{"blocksize": "256", "blocks": "8", "readahead": "false"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	buf := make([]byte, 256)
	for i := 0; i < 10; i++ { // same block, repeatedly
		if _, err := h.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf, content[:256]) {
		t.Error("cached read returned wrong data")
	}
	stats, err := h.Control([]byte("stats"))
	if err != nil {
		t.Fatalf("Control(stats): %v", err)
	}
	text := string(stats)
	if !strings.Contains(text, "hits=9") || !strings.Contains(text, "misses=1") {
		t.Errorf("stats = %q, want 9 hits / 1 miss", text)
	}
}

func TestCachedProgramInvalidation(t *testing.T) {
	srv, addr := startFileServer(t)
	srv.Put("obj", bytes.Repeat([]byte("a"), 512))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "cached"},
		NoData:  true,
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
		Params:  map[string]string{"blocksize": "128", "blocks": "4"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	buf := make([]byte, 128)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	// Another party updates the remote source; the cached copy is stale
	// until the invalidation notification arrives.
	srv.Put("obj", bytes.Repeat([]byte("b"), 512))
	h.ReadAt(buf, 0)
	if buf[0] != 'a' {
		t.Fatal("expected stale cached read before invalidation")
	}
	if _, err := h.Control([]byte("invalidate")); err != nil {
		t.Fatal(err)
	}
	h.ReadAt(buf, 0)
	if buf[0] != 'b' {
		t.Error("read still stale after invalidation")
	}
}

func TestCachedProgramWriteThrough(t *testing.T) {
	srv, addr := startFileServer(t)
	srv.Put("obj", make([]byte, 256))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "cached"},
		NoData:  true,
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.WriteAt([]byte("through"), 8); err != nil {
		t.Fatal(err)
	}
	obj, _ := srv.Get("obj")
	if string(obj[8:15]) != "through" {
		t.Errorf("remote object = %q", obj[8:15])
	}
}

func TestCachedProgramPollingInvalidation(t *testing.T) {
	// With poll set, the sentinel notices remote updates on its own — no
	// explicit invalidate control needed.
	srv, addr := startFileServer(t)
	srv.Put("obj", bytes.Repeat([]byte("a"), 256))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "cached"},
		NoData:  true,
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
		Params:  map[string]string{"blocksize": "128", "poll": "10ms"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	buf := make([]byte, 4)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	srv.Put("obj", bytes.Repeat([]byte("b"), 256))

	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := h.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if buf[0] == 'b' {
			break // poller invalidated; fresh content visible
		}
		if time.Now().After(deadline) {
			t.Fatal("polling never invalidated the stale cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCachedProgramBadPoll(t *testing.T) {
	_, addr := startFileServer(t)
	for _, poll := range []string{"soon", "-1s", "0"} {
		path := createAF(t, vfs.Manifest{
			Program: vfs.ProgramSpec{Name: "cached"},
			NoData:  true,
			Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "o"},
			Params:  map[string]string{"poll": poll},
		})
		if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
			t.Errorf("Open with poll=%q succeeded", poll)
		}
	}
}

func TestCachedProgramRequiresSource(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "cached"},
		NoData:  true,
	})
	if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
		t.Error("Open without source succeeded")
	}
}

func TestCachedProgramBadParams(t *testing.T) {
	_, addr := startFileServer(t)
	for _, params := range []map[string]string{
		{"blocksize": "0"},
		{"blocksize": "abc"},
		{"blocks": "-1"},
	} {
		path := createAF(t, vfs.Manifest{
			Program: vfs.ProgramSpec{Name: "cached"},
			NoData:  true,
			Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "o"},
			Params:  params,
		})
		if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); err == nil {
			t.Errorf("Open with params %v succeeded", params)
		}
	}
}

func TestHTTPSourceBackedActiveFile(t *testing.T) {
	// The §3 aggregation use with a standard protocol: the sentinel proxies
	// an HTTP object; the application sees a local file.
	obj := remote.NewObjectServer()
	srv := httptest.NewServer(obj)
	defer srv.Close()
	obj.Put("/pages/doc.txt", []byte("served over http"))

	addr := strings.TrimPrefix(srv.URL, "http://")
	for _, cacheMode := range []string{"none", "memory"} {
		cacheMode := cacheMode
		t.Run(cacheMode, func(t *testing.T) {
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   cacheMode,
				NoData:  cacheMode != "disk",
				Source:  vfs.SourceSpec{Kind: "http", Addr: addr, Path: "/pages/doc.txt"},
			})
			h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			got, err := io.ReadAll(h)
			if err != nil || string(got) != "served over http" {
				t.Fatalf("read = (%q, %v)", got, err)
			}
			// Writes propagate back over HTTP PUT (on close for cached mode).
			if _, err := h.WriteAt([]byte("SERVED"), 0); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			body, _ := obj.Get("/pages/doc.txt")
			if string(body) != "SERVED over http" {
				t.Errorf("http object = %q", body)
			}
			obj.Put("/pages/doc.txt", []byte("served over http")) // reset
		})
	}
}

func TestAccessLogRecordsEveryOperation(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "accesslog"},
		Cache:   "disk",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("sensitive"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Size(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// The application saw a perfectly ordinary file...
	if string(buf) != "sensitive" {
		t.Errorf("view = %q", buf)
	}
	// ...while the audit trail recorded every access.
	audit, err := os.ReadFile(path + ".access.log")
	if err != nil {
		t.Fatalf("audit log: %v", err)
	}
	text := string(audit)
	for _, want := range []string{"open", "write off=0 len=9", "read off=0 len=9", "size", "close"} {
		if !strings.Contains(text, want) {
			t.Errorf("audit log missing %q:\n%s", want, text)
		}
	}
}

func TestAccessLogCustomPath(t *testing.T) {
	dir := t.TempDir()
	logPath := dir + "/custom-audit.log"
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "accesslog"},
		Cache:   "memory",
		Params:  map[string]string{"log": logPath},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := os.Stat(logPath); err != nil {
		t.Errorf("custom audit log missing: %v", err)
	}
}

func TestLockingProgramCoordinatesSessions(t *testing.T) {
	// Two sessions of the same active file — two sentinels — synchronize
	// through the file's shared lock table (§2.2).
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "locking"},
		Cache:   "disk",
	})
	h1, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()

	if err := h1.Lock(0, 100); err != nil {
		t.Fatalf("h1.Lock: %v", err)
	}
	if err := h2.Lock(50, 100); err == nil {
		t.Error("h2 acquired an overlapping range")
	}
	if err := h2.Lock(100, 100); err != nil {
		t.Errorf("h2.Lock(disjoint): %v", err)
	}
	if err := h1.Unlock(0, 100); err != nil {
		t.Fatalf("h1.Unlock: %v", err)
	}
	if err := h2.Lock(0, 100); err != nil {
		t.Errorf("h2.Lock after release: %v", err)
	}
}

func TestLockingProgramReleasesOnClose(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "locking"},
		Cache:   "memory",
	})
	h1, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Lock(0, 10); err != nil {
		t.Fatal(err)
	}
	// The application exits without unlocking; its session close frees the
	// range for others.
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h2.Lock(0, 10); err != nil {
		t.Errorf("range leaked past session close: %v", err)
	}
}

func TestLockingProgramIsStillATransparentFile(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "locking"},
		Cache:   "disk",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("locked content")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if _, err := h.ReadAt(buf, 0); err != nil || string(buf) != "locked content" {
		t.Errorf("read = (%q, %v)", buf, err)
	}
}

func TestReadAheadServesSequentialReads(t *testing.T) {
	// Functional check of the §4.2 eager-injection option: sequential reads
	// through a read-ahead procctl sentinel return exactly the file's
	// contents, including the short block at EOF.
	content := bytes.Repeat([]byte("0123456789abcdef"), 64) // 1024 bytes
	content = append(content, []byte("tail")...)            // non-aligned end

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
		Params:  map[string]string{"readahead": "true"},
	})
	if err := os.WriteFile(vfs.DataPath(path), content, 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("read %d bytes, want %d; data mismatch", len(got), len(content))
	}
}

func TestReadAheadInvalidatedByWrites(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
		Params:  map[string]string{"readahead": "true"},
	})
	if err := os.WriteFile(vfs.DataPath(path), []byte("AAAABBBBCCCC"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	buf := make([]byte, 4)
	if _, err := h.ReadAt(buf, 0); err != nil { // prefetches offset 4..8
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("XXXX"), 4); err != nil { // overlaps prefetch
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil { // barrier: the async write lands
		t.Fatal(err)
	}
	if _, err := h.ReadAt(buf, 4); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "XXXX" {
		t.Errorf("read after overlapping write = %q, want fresh data", buf)
	}
}

func TestReadAheadRandomAccessStaysCorrect(t *testing.T) {
	content := bytes.Repeat([]byte("abcdefgh"), 128)
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
		Params:  map[string]string{"readahead": "true"},
	})
	if err := os.WriteFile(vfs.DataPath(path), content, 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Non-sequential offsets must bypass the prefetch, never serve it.
	buf := make([]byte, 16)
	for _, off := range []int64{0, 512, 16, 16, 960, 0, 32} {
		if _, err := h.ReadAt(buf, off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf, content[off:off+16]) {
			t.Fatalf("ReadAt(%d) = %q, want %q", off, buf, content[off:off+16])
		}
	}
}
