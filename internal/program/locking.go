package program

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/rangelock"
)

// Locking is a passthrough sentinel with byte-range locking: sessions of
// the same active file synchronize through a shared lock table, realizing
// §2.2 ("multiple sentinels ... synchronize amongst themselves") with
// resource-centric control — the lock policy belongs to the file, not to
// the applications. Locks an application never releases are dropped when
// its session closes.
//
// The table is shared per process: sessions opened with the thread and
// direct strategies coordinate; sentinel subprocesses each have their own
// table. Cross-process coordination is what the logger program's lock-file
// protocol (internal/loglock) provides.
type Locking struct{}

var _ core.Program = Locking{}

// Name implements core.Program.
func (Locking) Name() string { return "locking" }

// Open implements core.Program.
func (Locking) Open(env *core.Env) (core.Handler, error) {
	backend, err := env.OpenBackend()
	if err != nil {
		return nil, err
	}
	table := rangelock.Shared(env.Path)
	return &lockingHandler{
		backend: backend,
		session: table.NewSession(),
	}, nil
}

type lockingHandler struct {
	backend cache.Backend
	session *rangelock.Session
}

var (
	_ core.Handler = (*lockingHandler)(nil)
	_ core.Locker  = (*lockingHandler)(nil)
)

func (h *lockingHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.backend.ReadAt(p, off)
}

func (h *lockingHandler) WriteAt(p []byte, off int64) (int, error) {
	return h.backend.WriteAt(p, off)
}

func (h *lockingHandler) Size() (int64, error) { return h.backend.Size() }

func (h *lockingHandler) Truncate(n int64) error { return h.backend.Truncate(n) }

func (h *lockingHandler) Sync() error { return h.backend.Sync() }

// Lock implements core.Locker.
func (h *lockingHandler) Lock(off, n int64) error { return h.session.Lock(off, n) }

// Unlock implements core.Locker.
func (h *lockingHandler) Unlock(off, n int64) error { return h.session.Unlock(off, n) }

func (h *lockingHandler) Close() error {
	h.session.ReleaseAll()
	return h.backend.Close()
}
