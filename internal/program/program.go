// Package program provides the built-in sentinel programs that ship with
// the library, covering the paper's four fundamental actions (§3): data
// generation ("generate"), input/output filtering ("filter:*" and
// "compress"), and — together with the services in internal/remote —
// aggregation and distribution (registered by their own packages). Programs
// are plain implementations of core.Program; RegisterAll installs them into
// the default registry.
package program

import (
	"repro/internal/core"
)

// RegisterAll installs every built-in program into the default core
// registry. Call it once at startup (main or TestMain); it is idempotent.
func RegisterAll() {
	for _, p := range All() {
		core.Register(p)
	}
}

// All returns fresh instances of every built-in program.
func All() []core.Program {
	return []core.Program{
		Passthrough{},
		Filter{FilterName: "upper"},
		Filter{FilterName: "lower"},
		Filter{FilterName: "rot13"},
		Filter{}, // configurable via the manifest "filter" param
		Compress{},
		Generate{},
		Quotes{},
		Inbox{},
		Outbox{},
		Logger{},
		RegistryFile{},
		Cached{},
		AccessLog{},
		Locking{},
	}
}
