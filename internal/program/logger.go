package program

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/loglock"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Logger is the concurrent intelligent-logging sentinel of §3: many
// processes append records to the same log file through their own sentinels;
// each record is written under a lock the applications never see, and the
// sentinel "can perform a variety of functions in the background such as
// cleaning up the logs" — here, compaction to the most recent "keep" records
// on close (0 disables it).
type Logger struct{}

var _ core.Program = Logger{}

// Name implements core.Program.
func (Logger) Name() string { return "logger" }

// Open implements core.Program.
func (Logger) Open(env *core.Env) (core.Handler, error) {
	keep, err := strconv.Atoi(env.Param("keep", "0"))
	if err != nil || keep < 0 {
		return nil, fmt.Errorf("logger: bad keep parameter %q", env.Param("keep", ""))
	}
	if env.Manifest.NoData {
		return nil, fmt.Errorf("logger: active file needs a data part for the log")
	}
	return &loggerHandler{
		manager: loglock.New(vfs.DataPath(env.Path)),
		keep:    keep,
	}, nil
}

type loggerHandler struct {
	manager *loglock.Manager
	keep    int
}

var _ core.Handler = (*loggerHandler)(nil)

// ReadAt serves the live log contents, so readers always see records from
// every writer.
func (h *loggerHandler) ReadAt(p []byte, off int64) (int, error) {
	data, err := h.manager.Contents()
	if err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt appends p as one record; the offset is ignored because a shared
// log is append-only from every client's perspective.
func (h *loggerHandler) WriteAt(p []byte, _ int64) (int, error) {
	if err := h.manager.Append(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (h *loggerHandler) Size() (int64, error) {
	data, err := h.manager.Contents()
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

func (h *loggerHandler) Truncate(int64) error { return wire.ErrUnsupported }

func (h *loggerHandler) Sync() error { return nil }

// Close runs the background cleanup if configured.
func (h *loggerHandler) Close() error {
	if h.keep > 0 {
		return h.manager.Compact(h.keep)
	}
	return nil
}
