package program

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/wire"
)

// Quotes is the stock-ticker aggregation sentinel of §3: "an active file
// that reflects the latest stock quotes (downloaded by the sentinel from a
// server) every time the file is opened". The manifest's "addrs" parameter
// lists one or more quote servers (comma separated); quotes from all of them
// are merged into one sorted listing. The file is read-only; a "refresh"
// control command re-fetches mid-session.
type Quotes struct{}

var _ core.Program = Quotes{}

// Name implements core.Program.
func (Quotes) Name() string { return "quotes" }

// Open implements core.Program.
func (Quotes) Open(env *core.Env) (core.Handler, error) {
	addrs := splitList(env.Param("addrs", env.Param("addr", "")))
	if len(addrs) == 0 {
		return nil, errors.New("quotes: no quote servers configured (set the addrs parameter)")
	}
	h := &quotesHandler{addrs: addrs, snapshot: cache.NewMemStore()}
	if err := h.refresh(); err != nil {
		return nil, err
	}
	return h, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

type quotesHandler struct {
	addrs    []string
	snapshot *cache.MemStore
}

var (
	_ core.Handler    = (*quotesHandler)(nil)
	_ core.Controller = (*quotesHandler)(nil)
)

// refresh downloads from every server and rebuilds the file image.
func (h *quotesHandler) refresh() error {
	var all []remote.Quote
	for _, addr := range h.addrs {
		quotes, err := remote.FetchQuotes(addr)
		if err != nil {
			return fmt.Errorf("quotes from %s: %w", addr, err)
		}
		all = append(all, quotes...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Symbol < all[j].Symbol })
	text := remote.FormatQuotes(all)
	if err := h.snapshot.Truncate(int64(len(text))); err != nil {
		return err
	}
	_, err := h.snapshot.WriteAt(text, 0)
	return err
}

func (h *quotesHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.snapshot.ReadAt(p, off)
}

func (h *quotesHandler) WriteAt([]byte, int64) (int, error) {
	return 0, wire.ErrUnsupported // the ticker is read-only
}

func (h *quotesHandler) Size() (int64, error) { return h.snapshot.Size() }

func (h *quotesHandler) Truncate(int64) error { return wire.ErrUnsupported }

func (h *quotesHandler) Sync() error { return nil }

// Control accepts "refresh" to re-download the listing.
func (h *quotesHandler) Control(req []byte) ([]byte, error) {
	if !bytes.Equal(req, []byte("refresh")) {
		return nil, fmt.Errorf("quotes: unknown control %q", req)
	}
	if err := h.refresh(); err != nil {
		return nil, err
	}
	size, _ := h.snapshot.Size()
	return []byte(fmt.Sprintf("refreshed %d bytes", size)), nil
}

func (h *quotesHandler) Close() error { return nil }
