package program

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/loglock"
)

// AccessLog is the auditing sentinel of §3: "a file containing sensitive
// data would like to log every access from users, even if these users are
// trusted". Every operation is recorded — as a side effect invisible to the
// application — to an audit log beside the active file (or at the "log"
// parameter's path) before being served from the file's normal backend.
// Unlike the Watchdogs kernel mechanism the paper contrasts with, the
// logging policy lives entirely in this user-level program.
type AccessLog struct{}

var _ core.Program = AccessLog{}

// Name implements core.Program.
func (AccessLog) Name() string { return "accesslog" }

// Open implements core.Program.
func (AccessLog) Open(env *core.Env) (core.Handler, error) {
	logPath := env.Param("log", env.Path+".access.log")
	backend, err := env.OpenBackend()
	if err != nil {
		return nil, err
	}
	h := &accessLogHandler{
		backend: backend,
		log:     loglock.New(logPath),
	}
	h.record("open", 0, 0)
	return h, nil
}

type accessLogHandler struct {
	backend cache.Backend
	log     *loglock.Manager
}

var _ core.Handler = (*accessLogHandler)(nil)

// record appends one audit line; audit failures must not break the
// application's file access, so they are deliberately swallowed after one
// attempt (the log manager itself retries the lock).
func (h *accessLogHandler) record(op string, off int64, n int) {
	line := fmt.Sprintf("%s off=%d len=%d", op, off, n)
	_ = h.log.Append([]byte(line))
}

func (h *accessLogHandler) ReadAt(p []byte, off int64) (int, error) {
	h.record("read", off, len(p))
	return h.backend.ReadAt(p, off)
}

func (h *accessLogHandler) WriteAt(p []byte, off int64) (int, error) {
	h.record("write", off, len(p))
	return h.backend.WriteAt(p, off)
}

func (h *accessLogHandler) Size() (int64, error) {
	h.record("size", 0, 0)
	return h.backend.Size()
}

func (h *accessLogHandler) Truncate(n int64) error {
	h.record("truncate", n, 0)
	return h.backend.Truncate(n)
}

func (h *accessLogHandler) Sync() error {
	h.record("sync", 0, 0)
	return h.backend.Sync()
}

func (h *accessLogHandler) Close() error {
	h.record("close", 0, 0)
	return h.backend.Close()
}
