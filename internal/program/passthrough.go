package program

import (
	"repro/internal/cache"
	"repro/internal/core"
)

// Passthrough is the null-filter sentinel (§2.2): it relays operations to
// the storage backend unchanged, so the active file behaves exactly like a
// passive file — while still taking whichever Figure 5 critical path the
// manifest's cache mode selects. It is the program the evaluation drives.
type Passthrough struct{}

var _ core.Program = Passthrough{}

// Name implements core.Program.
func (Passthrough) Name() string { return "passthrough" }

// Open implements core.Program.
func (Passthrough) Open(env *core.Env) (core.Handler, error) {
	backend, err := env.OpenBackend()
	if err != nil {
		return nil, err
	}
	return backendHandler{backend}, nil
}

// backendHandler adapts a cache.Backend to core.Handler; the method sets
// coincide, so this is a pure naming bridge.
type backendHandler struct {
	cache.Backend
}

var _ core.Handler = backendHandler{}
var _ core.ConcurrentHandler = backendHandler{}

// ConcurrentSafe implements core.ConcurrentHandler: every cache.Backend
// (passthrough, local/disk, memory) synchronizes internally, as do the
// remote sources beneath them, so the engine may overlap this handler's
// calls — which is what lets concurrent session operations overlap remote
// round trips instead of queueing on one.
func (backendHandler) ConcurrentSafe() bool { return true }
