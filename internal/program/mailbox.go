package program

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/distribute"
	"repro/internal/remote"
	"repro/internal/wire"
)

// Inbox is the mail-aggregation sentinel of §3: "an inbox file of an E-mail
// program can be such that reading it causes new messages to be retrieved
// possibly from multiple remote POP servers". The manifest's "servers"
// parameter lists addr/mailbox pairs ("127.0.0.1:1234/alice"), comma
// separated; "take=true" removes retrieved messages from the servers. The
// messages are concatenated, separated by mbox-style "From " delimiters.
type Inbox struct{}

var _ core.Program = Inbox{}

// Name implements core.Program.
func (Inbox) Name() string { return "inbox" }

// Open implements core.Program.
func (Inbox) Open(env *core.Env) (core.Handler, error) {
	specs := splitList(env.Param("servers", ""))
	if len(specs) == 0 {
		return nil, errors.New("inbox: no mail servers configured (set the servers parameter)")
	}
	take, err := strconv.ParseBool(env.Param("take", "false"))
	if err != nil {
		return nil, fmt.Errorf("inbox: bad take parameter: %w", err)
	}
	h := &inboxHandler{specs: specs, take: take, snapshot: cache.NewMemStore()}
	if err := h.fetch(); err != nil {
		return nil, err
	}
	return h, nil
}

type inboxHandler struct {
	specs    []string
	take     bool
	snapshot *cache.MemStore
}

var (
	_ core.Handler    = (*inboxHandler)(nil)
	_ core.Controller = (*inboxHandler)(nil)
)

func (h *inboxHandler) fetch() error {
	var buf bytes.Buffer
	for _, spec := range h.specs {
		addr, mailbox, ok := strings.Cut(spec, "/")
		if !ok {
			return fmt.Errorf("inbox: malformed server spec %q (want addr/mailbox)", spec)
		}
		msgs, err := remote.FetchMail(addr, mailbox, h.take)
		if err != nil {
			return fmt.Errorf("inbox %s: %w", spec, err)
		}
		for _, msg := range msgs {
			fmt.Fprintf(&buf, "From %s\n", mailbox)
			buf.Write(msg)
			if len(msg) == 0 || msg[len(msg)-1] != '\n' {
				buf.WriteByte('\n')
			}
		}
	}
	if err := h.snapshot.Truncate(int64(buf.Len())); err != nil {
		return err
	}
	_, err := h.snapshot.WriteAt(buf.Bytes(), 0)
	return err
}

func (h *inboxHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.snapshot.ReadAt(p, off)
}

func (h *inboxHandler) WriteAt([]byte, int64) (int, error) {
	return 0, wire.ErrUnsupported
}

func (h *inboxHandler) Size() (int64, error) { return h.snapshot.Size() }

func (h *inboxHandler) Truncate(int64) error { return wire.ErrUnsupported }

func (h *inboxHandler) Sync() error { return nil }

// Control accepts "fetch" to re-poll every server.
func (h *inboxHandler) Control(req []byte) ([]byte, error) {
	if !bytes.Equal(req, []byte("fetch")) {
		return nil, fmt.Errorf("inbox: unknown control %q", req)
	}
	if err := h.fetch(); err != nil {
		return nil, err
	}
	size, _ := h.snapshot.Size()
	return []byte(fmt.Sprintf("fetched %d bytes", size)), nil
}

func (h *inboxHandler) Close() error { return nil }

// Outbox is the distribution sentinel of §3: "the outbox-file can be
// programmed to send email ... the sentinel process parses the data written
// to the file to extract the 'To' addresses and send the data to each
// recipient". Written bytes accumulate in a session buffer; on sync or close
// the buffer is parsed and delivered through the mail server named by the
// "server" parameter, using each recipient address as the mailbox.
type Outbox struct{}

var _ core.Program = Outbox{}

// Name implements core.Program.
func (Outbox) Name() string { return "outbox" }

// Open implements core.Program.
func (Outbox) Open(env *core.Env) (core.Handler, error) {
	addr := env.Param("server", "")
	if addr == "" {
		return nil, errors.New("outbox: no mail server configured (set the server parameter)")
	}
	sink := distribute.SinkFunc(func(recipient string, payload []byte) error {
		return remote.DeliverMail(addr, recipient, payload)
	})
	return &outboxHandler{
		outbox: distribute.NewOutbox(sink),
		buf:    cache.NewMemStore(),
	}, nil
}

type outboxHandler struct {
	outbox *distribute.Outbox
	buf    *cache.MemStore
	dirty  bool
}

var _ core.Handler = (*outboxHandler)(nil)

func (h *outboxHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.buf.ReadAt(p, off) // the pending draft remains readable
}

func (h *outboxHandler) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.buf.WriteAt(p, off)
	if n > 0 {
		h.dirty = true
	}
	return n, err
}

func (h *outboxHandler) Size() (int64, error) { return h.buf.Size() }

func (h *outboxHandler) Truncate(n int64) error { return h.buf.Truncate(n) }

// Sync sends the accumulated message — the write-triggered side effect.
func (h *outboxHandler) Sync() error {
	if !h.dirty {
		return nil
	}
	size, err := h.buf.Size()
	if err != nil {
		return err
	}
	if size == 0 {
		h.dirty = false
		return nil
	}
	raw := make([]byte, size)
	if _, err := readFull(h.buf, raw); err != nil {
		return err
	}
	if err := h.outbox.Send(raw); err != nil {
		return fmt.Errorf("outbox: %w", err)
	}
	h.dirty = false
	return h.buf.Truncate(0) // sent mail leaves the outbox
}

func (h *outboxHandler) Close() error { return h.Sync() }
