package program

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/vfs"
)

// Compress is the per-file compression sentinel of §3: "the sentinel process
// compresses and decompresses the file data as it is written and read ...
// the client application is completely unaware that it is interacting with a
// compressed file". The stored form (data part or remote source) holds the
// encoded bytes; the session operates on a decoded in-memory image that is
// re-encoded on sync and close. The codec is per file — the manifest's
// "codec" parameter — realizing "different compression algorithms used for
// different types of files".
type Compress struct{}

var _ core.Program = Compress{}

// Name implements core.Program.
func (Compress) Name() string { return "compress" }

// Open implements core.Program.
func (Compress) Open(env *core.Env) (core.Handler, error) {
	codec, err := filter.NewCodec(env.Param("codec", "lz"))
	if err != nil {
		return nil, err
	}
	store, err := openStore(env)
	if err != nil {
		return nil, err
	}
	h := &compressHandler{store: store, codec: codec, image: cache.NewMemStore()}
	if err := h.load(); err != nil {
		h.closeStore()
		return nil, err
	}
	return h, nil
}

// openStore picks the persistent home of the encoded bytes: the remote
// source when bound, else the data part.
func openStore(env *core.Env) (cache.RandomAccess, error) {
	source, err := env.OpenSource()
	if err != nil {
		return nil, err
	}
	if source != nil {
		return source, nil
	}
	return env.OpenData()
}

type compressHandler struct {
	store cache.RandomAccess
	codec filter.Codec
	image *cache.MemStore
	dirty bool
}

var _ core.Handler = (*compressHandler)(nil)

// load decodes the stored representation into the session image.
func (h *compressHandler) load() error {
	size, err := h.store.Size()
	if err != nil {
		return fmt.Errorf("compress: stored size: %w", err)
	}
	if size == 0 {
		return nil // fresh file: empty image
	}
	enc := make([]byte, size)
	if _, err := readFull(h.store, enc); err != nil {
		return fmt.Errorf("compress: read stored form: %w", err)
	}
	dec, err := h.codec.Decode(enc)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	if _, err := h.image.WriteAt(dec, 0); err != nil {
		return err
	}
	return nil
}

func readFull(r io.ReaderAt, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.ReadAt(p[total:], int64(total))
		total += n
		if err != nil {
			if errors.Is(err, io.EOF) && total == len(p) {
				return total, nil
			}
			return total, err
		}
		if n == 0 {
			return total, io.ErrUnexpectedEOF
		}
	}
	return total, nil
}

func (h *compressHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.image.ReadAt(p, off)
}

func (h *compressHandler) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.image.WriteAt(p, off)
	if n > 0 {
		h.dirty = true
	}
	return n, err
}

func (h *compressHandler) Size() (int64, error) { return h.image.Size() }

func (h *compressHandler) Truncate(n int64) error {
	if err := h.image.Truncate(n); err != nil {
		return err
	}
	h.dirty = true
	return nil
}

// Sync re-encodes the image into the store.
func (h *compressHandler) Sync() error {
	if !h.dirty {
		return nil
	}
	size, err := h.image.Size()
	if err != nil {
		return err
	}
	dec := make([]byte, size)
	if size > 0 {
		if _, err := readFull(h.image, dec); err != nil {
			return err
		}
	}
	enc, err := h.codec.Encode(dec)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	if err := h.store.Truncate(int64(len(enc))); err != nil {
		return fmt.Errorf("compress: truncate store: %w", err)
	}
	if _, err := h.store.WriteAt(enc, 0); err != nil {
		return fmt.Errorf("compress: write store: %w", err)
	}
	h.dirty = false
	return nil
}

func (h *compressHandler) Close() error {
	err := h.Sync()
	if cerr := h.closeStore(); err == nil {
		err = cerr
	}
	return err
}

func (h *compressHandler) closeStore() error {
	if c, ok := h.store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Interface checks for the store types openStore can return.
var (
	_ cache.RandomAccess = (*vfs.DataFile)(nil)
)
