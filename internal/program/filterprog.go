package program

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filter"
)

// Filter is the input/output filtering sentinel (§3): every byte written by
// the application passes through a ByteFilter before reaching storage, and
// every byte read is inverse-filtered on the way out. The filter is chosen
// by FilterName, or by the manifest's "filter" parameter when FilterName is
// empty (the program then registers as "filter").
type Filter struct {
	// FilterName fixes the filter; empty defers to the manifest parameter.
	FilterName string
}

var _ core.Program = Filter{}

// Name implements core.Program.
func (f Filter) Name() string {
	if f.FilterName == "" {
		return "filter"
	}
	return "filter:" + f.FilterName
}

// Open implements core.Program.
func (f Filter) Open(env *core.Env) (core.Handler, error) {
	name := f.FilterName
	if name == "" {
		name = env.Param("filter", "null")
	}
	flt, err := filter.New(name)
	if err != nil {
		return nil, err
	}
	backend, err := env.OpenBackend()
	if err != nil {
		return nil, err
	}
	return &filterHandler{backend: backend, filter: flt}, nil
}

type filterHandler struct {
	backend cache.Backend
	filter  filter.ByteFilter
	scratch []byte
}

var _ core.Handler = (*filterHandler)(nil)

func (h *filterHandler) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.backend.ReadAt(p, off)
	h.filter.Invert(p[:n], off)
	return n, err
}

func (h *filterHandler) WriteAt(p []byte, off int64) (int, error) {
	// Filter into a scratch buffer so the caller's bytes are untouched.
	if cap(h.scratch) < len(p) {
		h.scratch = make([]byte, len(p))
	}
	buf := h.scratch[:len(p)]
	copy(buf, p)
	h.filter.Apply(buf, off)
	return h.backend.WriteAt(buf, off)
}

func (h *filterHandler) Size() (int64, error) { return h.backend.Size() }

func (h *filterHandler) Truncate(n int64) error { return h.backend.Truncate(n) }

func (h *filterHandler) Sync() error { return h.backend.Sync() }

func (h *filterHandler) Close() error { return h.backend.Close() }
