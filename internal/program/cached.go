package program

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/remote"
)

// Cached is the frequency-caching sentinel of §1: the sentinel "can monitor
// how the application uses this file, caching only the most frequently
// accessed contents for performance. Moreover, the cache can be kept
// consistent with any updates performed to its contents at any of the remote
// sources." It layers an LRU block cache over the file's remote source;
// Control commands expose the cache:
//
//	stats       -> "hits=H misses=M evictions=E invalidations=I blocks=B"
//	invalidate  -> discard every cached block (a remote-update notification)
//
// Parameters: "blocksize" (bytes per block, default 4096), "blocks"
// (capacity in blocks, default 64), and "poll" (a Go duration such as
// "50ms"; when set, the sentinel watches the source in the background and
// invalidates the cache when its content signature changes, keeping the
// cache consistent without explicit notifications).
type Cached struct{}

var _ core.Program = Cached{}

// Name implements core.Program.
func (Cached) Name() string { return "cached" }

// Open implements core.Program.
func (Cached) Open(env *core.Env) (core.Handler, error) {
	blockSize, err := strconv.Atoi(env.Param("blocksize", "4096"))
	if err != nil || blockSize <= 0 {
		return nil, fmt.Errorf("cached: bad blocksize parameter %q", env.Param("blocksize", ""))
	}
	capacity, err := strconv.Atoi(env.Param("blocks", "64"))
	if err != nil || capacity <= 0 {
		return nil, fmt.Errorf("cached: bad blocks parameter %q", env.Param("blocks", ""))
	}
	source, err := env.OpenSource()
	if err != nil {
		return nil, err
	}
	if source == nil {
		return nil, errors.New("cached: requires a remote source binding")
	}
	bc, err := cache.NewBlockCache(source, blockSize, capacity)
	if err != nil {
		source.Close()
		return nil, err
	}
	h := &cachedHandler{cache: bc, source: source}
	if pollSpec := env.Param("poll", ""); pollSpec != "" {
		interval, err := time.ParseDuration(pollSpec)
		if err != nil || interval <= 0 {
			bc.InvalidateAll()
			source.Close()
			return nil, fmt.Errorf("cached: bad poll parameter %q", pollSpec)
		}
		h.startWatcher(interval)
	}
	return h, nil
}

type cachedHandler struct {
	cache  *cache.BlockCache
	source remote.Source

	stop chan struct{} // nil without polling
	done chan struct{}
}

// startWatcher launches the background consistency poller. It is stopped
// (and joined) by Close.
func (h *cachedHandler) startWatcher(interval time.Duration) {
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	// The baseline is captured synchronously: the cache is empty right now,
	// so any later deviation from this signature means cached blocks may be
	// stale. Capturing it inside the goroutine would race with updates that
	// arrive between Open and the goroutine's first run.
	last, ok := h.signature()
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				cur, curOK := h.signature()
				if curOK && (!ok || cur != last) {
					if ok {
						h.cache.InvalidateAll()
					}
					last, ok = cur, true
				}
			case <-h.stop:
				return
			}
		}
	}()
}

// signature computes a cheap change detector over the source: its size plus
// a hash of sampled regions (head and tail).
func (h *cachedHandler) signature() (uint64, bool) {
	size, err := h.source.Size()
	if err != nil {
		return 0, false
	}
	hash := fnv.New64a()
	fmt.Fprintf(hash, "%d:", size)
	sample := make([]byte, 512)
	for _, off := range []int64{0, size - int64(len(sample))} {
		if off < 0 {
			off = 0
		}
		n, err := h.source.ReadAt(sample, off)
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, false
		}
		hash.Write(sample[:n])
		if size <= int64(len(sample)) {
			break // head covers everything
		}
	}
	return hash.Sum64(), true
}

var (
	_ core.Handler    = (*cachedHandler)(nil)
	_ core.Controller = (*cachedHandler)(nil)
)

func (h *cachedHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.cache.ReadAt(p, off)
}

func (h *cachedHandler) WriteAt(p []byte, off int64) (int, error) {
	return h.cache.WriteAt(p, off) // write-through with in-place patching
}

func (h *cachedHandler) Size() (int64, error) { return h.cache.Size() }

func (h *cachedHandler) Truncate(n int64) error { return h.cache.Truncate(n) }

func (h *cachedHandler) Sync() error { return nil } // writes already went through

// Control serves cache management commands.
func (h *cachedHandler) Control(req []byte) ([]byte, error) {
	switch strings.TrimSpace(string(req)) {
	case "stats":
		st := h.cache.Stats()
		return []byte(fmt.Sprintf("hits=%d misses=%d evictions=%d invalidations=%d blocks=%d",
			st.Hits, st.Misses, st.Evictions, st.Invalidations, h.cache.Len())), nil
	case "invalidate":
		h.cache.InvalidateAll()
		return []byte("invalidated"), nil
	default:
		return nil, fmt.Errorf("cached: unknown control %q", req)
	}
}

func (h *cachedHandler) Close() error {
	if h.stop != nil {
		close(h.stop)
		<-h.done // join the watcher before releasing the source
	}
	return h.source.Close()
}
