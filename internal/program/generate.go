package program

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/wire"
)

// Generate is the data-generation sentinel (§3): the active file has no real
// data part — "the sentinel process just creates the illusion of its
// existence". It presents a deterministic pseudo-random byte stream, the
// paper's example of "a data file that contains an infinite stream of random
// numbers", bounded here by the manifest's "size" parameter so positioned
// strategies can answer Size (parameter "size" in bytes, default 64 KiB;
// "seed" selects the stream).
type Generate struct{}

var _ core.Program = Generate{}

// Name implements core.Program.
func (Generate) Name() string { return "generate" }

// Open implements core.Program.
func (Generate) Open(env *core.Env) (core.Handler, error) {
	size, err := strconv.ParseInt(env.Param("size", "65536"), 10, 64)
	if err != nil || size < 0 {
		return nil, fmt.Errorf("generate: bad size parameter: %q", env.Param("size", ""))
	}
	seed, err := strconv.ParseUint(env.Param("seed", "1"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("generate: bad seed parameter: %q", env.Param("seed", ""))
	}
	return &generateHandler{size: size, seed: seed}, nil
}

type generateHandler struct {
	size int64
	seed uint64
}

var _ core.Handler = (*generateHandler)(nil)

// splitmix64 is a small, well-distributed mixer; byte i of the stream is a
// pure function of (seed, i/8), so any offset can be generated independently
// — random access over synthesized content.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (h *generateHandler) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("generate: negative offset")
	}
	if off >= h.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > h.size-off {
		n = int(h.size - off)
	}
	var word [8]byte
	for i := 0; i < n; {
		pos := off + int64(i)
		block := uint64(pos) / 8
		binary.LittleEndian.PutUint64(word[:], splitmix64(h.seed^block*0x2545f4914f6cdd1d))
		start := int(uint64(pos) % 8)
		i += copy(p[i:n], word[start:])
	}
	if int64(n) == h.size-off {
		return n, io.EOF
	}
	return n, nil
}

func (h *generateHandler) WriteAt([]byte, int64) (int, error) {
	return 0, wire.ErrUnsupported // the stream is synthesized, not stored
}

func (h *generateHandler) Size() (int64, error) { return h.size, nil }

func (h *generateHandler) Truncate(int64) error { return wire.ErrUnsupported }

func (h *generateHandler) Sync() error { return nil }

func (h *generateHandler) Close() error { return nil }
