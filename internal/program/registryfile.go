package program

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/registry"
)

// RegistryFile is the registry-filtering sentinel of §3: "the sentinel
// checks the registry, providing a simplified version (e.g., a plain text
// file) to the client application. Any modifications by the client
// application can in turn be parsed by the sentinel process and translated
// into appropriate registry modifications." The registry persists in the
// active file's data part in canonical text form; sessions operate on a
// live registry.Registry and commit validated edits on sync/close —
// malformed edits are rejected instead of corrupting the store.
type RegistryFile struct{}

var _ core.Program = RegistryFile{}

// Name implements core.Program.
func (RegistryFile) Name() string { return "registryfile" }

// Open implements core.Program.
func (RegistryFile) Open(env *core.Env) (core.Handler, error) {
	data, err := env.OpenData()
	if err != nil {
		return nil, err
	}
	h := &registryHandler{store: data, image: cache.NewMemStore(), reg: registry.New()}
	if err := h.load(); err != nil {
		data.Close()
		return nil, err
	}
	return h, nil
}

type registryHandler struct {
	store interface {
		cache.RandomAccess
		io.Closer
	}
	reg   *registry.Registry
	image *cache.MemStore
	dirty bool
}

var _ core.Handler = (*registryHandler)(nil)

// load parses the stored text into the live registry and exposes its
// canonical rendering as the session image.
func (h *registryHandler) load() error {
	size, err := h.store.Size()
	if err != nil {
		return err
	}
	raw := make([]byte, size)
	if size > 0 {
		if _, err := readFull(h.store, raw); err != nil {
			return fmt.Errorf("registryfile: read store: %w", err)
		}
	}
	parsed, err := registry.Parse(raw)
	if err != nil {
		return fmt.Errorf("registryfile: stored registry: %w", err)
	}
	h.reg.ReplaceWith(parsed)
	return h.resetImage()
}

func (h *registryHandler) resetImage() error {
	text := h.reg.Render()
	if err := h.image.Truncate(int64(len(text))); err != nil {
		return err
	}
	_, err := h.image.WriteAt(text, 0)
	return err
}

func (h *registryHandler) ReadAt(p []byte, off int64) (int, error) {
	return h.image.ReadAt(p, off)
}

func (h *registryHandler) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.image.WriteAt(p, off)
	if n > 0 {
		h.dirty = true
	}
	return n, err
}

func (h *registryHandler) Size() (int64, error) { return h.image.Size() }

func (h *registryHandler) Truncate(n int64) error {
	if err := h.image.Truncate(n); err != nil {
		return err
	}
	h.dirty = true
	return nil
}

// Sync parses the edited text; valid edits become registry modifications and
// the canonical rendering is persisted, invalid edits fail the sync and
// leave the registry untouched.
func (h *registryHandler) Sync() error {
	if !h.dirty {
		return nil
	}
	size, err := h.image.Size()
	if err != nil {
		return err
	}
	raw := make([]byte, size)
	if size > 0 {
		if _, err := readFull(h.image, raw); err != nil {
			return err
		}
	}
	parsed, err := registry.Parse(raw)
	if err != nil {
		return fmt.Errorf("registryfile: rejected edit: %w", err)
	}
	h.reg.ReplaceWith(parsed)
	canonical := h.reg.Render()
	if err := h.store.Truncate(int64(len(canonical))); err != nil {
		return err
	}
	if _, err := h.store.WriteAt(canonical, 0); err != nil {
		return err
	}
	h.dirty = false
	return h.resetImage()
}

func (h *registryHandler) Close() error {
	err := h.Sync()
	if cerr := h.store.Close(); err == nil {
		err = cerr
	}
	return err
}
