// Package registry implements a hierarchical key/typed-value configuration
// store modeled on the Windows system registry, together with a plain-text
// rendering of it. It backs the paper's §3 filtering use: a sentinel can
// "provide a file-based interface to the Windows system registry,
// considerably simplifying system configuration" — reads of the active file
// render the registry as text, and writes are parsed back into registry
// modifications.
package registry

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ValueType discriminates registry value payloads.
type ValueType int

// Value types, mirroring REG_SZ, REG_DWORD/QWORD, and REG_BINARY.
const (
	TypeString ValueType = iota + 1
	TypeInt
	TypeBytes
)

// Value is one typed registry value.
type Value struct {
	Type  ValueType
	Str   string
	Int   int64
	Bytes []byte
}

// StringValue returns a TypeString value.
func StringValue(s string) Value { return Value{Type: TypeString, Str: s} }

// IntValue returns a TypeInt value.
func IntValue(n int64) Value { return Value{Type: TypeInt, Int: n} }

// BytesValue returns a TypeBytes value over a copy of b.
func BytesValue(b []byte) Value {
	out := make([]byte, len(b))
	copy(out, b)
	return Value{Type: TypeBytes, Bytes: out}
}

// Equal reports whether two values have the same type and payload.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TypeString:
		return v.Str == o.Str
	case TypeInt:
		return v.Int == o.Int
	case TypeBytes:
		return string(v.Bytes) == string(o.Bytes)
	default:
		return false
	}
}

// Registry errors.
var (
	ErrNoKey    = errors.New("registry: key not found")
	ErrNoValue  = errors.New("registry: value not found")
	ErrBadPath  = errors.New("registry: malformed key path")
	ErrBadText  = errors.New("registry: malformed text form")
	ErrBadValue = errors.New("registry: malformed value")
)

type node struct {
	children map[string]*node
	values   map[string]Value
}

func newNode() *node {
	return &node{children: make(map[string]*node), values: make(map[string]Value)}
}

// Registry is a thread-safe hierarchical key/value store. Key paths are
// slash-separated, e.g. "system/network/dns".
type Registry struct {
	mu   sync.RWMutex
	root *node
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{root: newNode()}
}

func splitPath(path string) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

// lookup returns the node at path; with create, missing intermediate keys
// are made. Callers hold the appropriate lock.
func (r *Registry) lookup(path string, create bool) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := r.root
	for _, p := range parts {
		next, ok := cur.children[p]
		if !ok {
			if !create {
				return nil, fmt.Errorf("%w: %q", ErrNoKey, path)
			}
			next = newNode()
			cur.children[p] = next
		}
		cur = next
	}
	return cur, nil
}

// CreateKey ensures the key at path exists.
func (r *Registry) CreateKey(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.lookup(path, true)
	return err
}

// Set stores value under the key at path, creating the key as needed.
func (r *Registry) Set(path, name string, v Value) error {
	if name == "" {
		return fmt.Errorf("%w: empty value name", ErrBadValue)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.lookup(path, true)
	if err != nil {
		return err
	}
	if v.Type == TypeBytes {
		v = BytesValue(v.Bytes) // defensive copy
	}
	n.values[name] = v
	return nil
}

// Get returns the named value of the key at path.
func (r *Registry) Get(path, name string) (Value, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, err := r.lookup(path, false)
	if err != nil {
		return Value{}, err
	}
	v, ok := n.values[name]
	if !ok {
		return Value{}, fmt.Errorf("%w: %q under %q", ErrNoValue, name, path)
	}
	if v.Type == TypeBytes {
		v = BytesValue(v.Bytes)
	}
	return v, nil
}

// DeleteValue removes the named value of the key at path.
func (r *Registry) DeleteValue(path, name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.lookup(path, false)
	if err != nil {
		return err
	}
	if _, ok := n.values[name]; !ok {
		return fmt.Errorf("%w: %q under %q", ErrNoValue, name, path)
	}
	delete(n.values, name)
	return nil
}

// DeleteKey removes the key at path and its entire subtree. Deleting the
// root ("" path) is rejected.
func (r *Registry) DeleteKey(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot delete root", ErrBadPath)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	parent := r.root
	for _, p := range parts[:len(parts)-1] {
		next, ok := parent.children[p]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoKey, path)
		}
		parent = next
	}
	leaf := parts[len(parts)-1]
	if _, ok := parent.children[leaf]; !ok {
		return fmt.Errorf("%w: %q", ErrNoKey, path)
	}
	delete(parent.children, leaf)
	return nil
}

// Keys returns the sorted child key names of the key at path.
func (r *Registry) Keys(path string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, err := r.lookup(path, false)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Values returns the sorted value names of the key at path.
func (r *Registry) Values(path string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, err := r.lookup(path, false)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.values))
	for name := range n.values {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Render serializes the whole registry as deterministic text, the simplified
// file view a registry sentinel presents. The format is INI-like:
//
//	[system/network]
//	dns = "10.0.0.1"
//	mtu = 1500
//	mac = hex:0a1b2c
func (r *Registry) Render() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	renderNode(&b, "", r.root)
	return []byte(b.String())
}

func renderNode(b *strings.Builder, path string, n *node) {
	if len(n.values) > 0 || path != "" {
		fmt.Fprintf(b, "[%s]\n", path)
		names := make([]string, 0, len(n.values))
		for name := range n.values {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			v := n.values[name]
			switch v.Type {
			case TypeString:
				fmt.Fprintf(b, "%s = %s\n", name, strconv.Quote(v.Str))
			case TypeInt:
				fmt.Fprintf(b, "%s = %d\n", name, v.Int)
			case TypeBytes:
				fmt.Fprintf(b, "%s = hex:%s\n", name, hex.EncodeToString(v.Bytes))
			}
		}
		b.WriteString("\n")
	}
	children := make([]string, 0, len(n.children))
	for name := range n.children {
		children = append(children, name)
	}
	sort.Strings(children)
	for _, name := range children {
		child := path + "/" + name
		if path == "" {
			child = name
		}
		renderNode(b, child, n.children[name])
	}
}

// Parse builds a registry from the text form produced by Render (or edited
// by an application through the active file).
func Parse(text []byte) (*Registry, error) {
	r := New()
	var cur *node
	curLine := 0
	for _, line := range strings.Split(string(text), "\n") {
		curLine++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("%w: line %d: unterminated section", ErrBadText, curLine)
			}
			path := line[1 : len(line)-1]
			n, err := r.lookup(path, true)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadText, curLine, err)
			}
			cur = n
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("%w: line %d: value outside any section", ErrBadText, curLine)
		}
		name, raw, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: missing '='", ErrBadText, curLine)
		}
		name = strings.TrimSpace(name)
		raw = strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("%w: line %d: empty value name", ErrBadText, curLine)
		}
		v, err := parseValue(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadText, curLine, err)
		}
		cur.values[name] = v
	}
	return r, nil
}

func parseValue(raw string) (Value, error) {
	switch {
	case strings.HasPrefix(raw, `"`):
		s, err := strconv.Unquote(raw)
		if err != nil {
			return Value{}, fmt.Errorf("%w: %q", ErrBadValue, raw)
		}
		return StringValue(s), nil
	case strings.HasPrefix(raw, "hex:"):
		b, err := hex.DecodeString(raw[4:])
		if err != nil {
			return Value{}, fmt.Errorf("%w: %q", ErrBadValue, raw)
		}
		return Value{Type: TypeBytes, Bytes: b}, nil
	default:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: %q", ErrBadValue, raw)
		}
		return IntValue(n), nil
	}
}

// ReplaceWith atomically swaps r's contents for other's, the registry
// sentinel's commit step after parsing an application write.
func (r *Registry) ReplaceWith(other *Registry) {
	other.mu.RLock()
	clone := cloneNode(other.root)
	other.mu.RUnlock()
	r.mu.Lock()
	r.root = clone
	r.mu.Unlock()
}

func cloneNode(n *node) *node {
	out := newNode()
	for name, v := range n.values {
		if v.Type == TypeBytes {
			v = BytesValue(v.Bytes)
		}
		out.values[name] = v
	}
	for name, child := range n.children {
		out.children[name] = cloneNode(child)
	}
	return out
}

// Equal reports whether two registries hold identical trees.
func (r *Registry) Equal(o *Registry) bool {
	return string(r.Render()) == string(o.Render())
}
