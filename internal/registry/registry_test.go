package registry

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetGetValues(t *testing.T) {
	r := New()
	if err := r.Set("system/network", "dns", StringValue("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("system/network", "mtu", IntValue(1500)); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("system/network", "mac", BytesValue([]byte{0x0a, 0x1b})); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		want Value
	}{
		{name: "dns", want: StringValue("10.0.0.1")},
		{name: "mtu", want: IntValue(1500)},
		{name: "mac", want: BytesValue([]byte{0x0a, 0x1b})},
	}
	for _, tt := range tests {
		got, err := r.Get("system/network", tt.name)
		if err != nil {
			t.Fatalf("Get(%q): %v", tt.name, err)
		}
		if !got.Equal(tt.want) {
			t.Errorf("Get(%q) = %+v, want %+v", tt.name, got, tt.want)
		}
	}
}

func TestGetErrors(t *testing.T) {
	r := New()
	r.Set("a/b", "v", IntValue(1))
	if _, err := r.Get("a/missing", "v"); !errors.Is(err, ErrNoKey) {
		t.Errorf("missing key err = %v, want ErrNoKey", err)
	}
	if _, err := r.Get("a/b", "missing"); !errors.Is(err, ErrNoValue) {
		t.Errorf("missing value err = %v, want ErrNoValue", err)
	}
	if _, err := r.Get("a//b", "v"); !errors.Is(err, ErrBadPath) {
		t.Errorf("bad path err = %v, want ErrBadPath", err)
	}
}

func TestSetRejectsEmptyName(t *testing.T) {
	if err := New().Set("a", "", IntValue(1)); !errors.Is(err, ErrBadValue) {
		t.Errorf("Set empty name err = %v, want ErrBadValue", err)
	}
}

func TestDeleteValue(t *testing.T) {
	r := New()
	r.Set("k", "v", IntValue(1))
	if err := r.DeleteValue("k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("k", "v"); !errors.Is(err, ErrNoValue) {
		t.Errorf("after delete err = %v, want ErrNoValue", err)
	}
	if err := r.DeleteValue("k", "v"); !errors.Is(err, ErrNoValue) {
		t.Errorf("double delete err = %v, want ErrNoValue", err)
	}
}

func TestDeleteKeySubtree(t *testing.T) {
	r := New()
	r.Set("app/cache/l1", "size", IntValue(64))
	r.Set("app/cache/l2", "size", IntValue(512))
	r.Set("app", "name", StringValue("af"))
	if err := r.DeleteKey("app/cache"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("app/cache/l1", "size"); !errors.Is(err, ErrNoKey) {
		t.Error("subtree survived DeleteKey")
	}
	if _, err := r.Get("app", "name"); err != nil {
		t.Errorf("sibling value lost: %v", err)
	}
	if err := r.DeleteKey("app/cache"); !errors.Is(err, ErrNoKey) {
		t.Errorf("double DeleteKey err = %v, want ErrNoKey", err)
	}
	if err := r.DeleteKey(""); !errors.Is(err, ErrBadPath) {
		t.Errorf("DeleteKey root err = %v, want ErrBadPath", err)
	}
}

func TestKeysAndValuesSorted(t *testing.T) {
	r := New()
	r.CreateKey("z/b")
	r.CreateKey("z/a")
	r.Set("z", "beta", IntValue(2))
	r.Set("z", "alpha", IntValue(1))
	keys, err := r.Keys("z")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(keys, ",") != "a,b" {
		t.Errorf("Keys = %v", keys)
	}
	vals, err := r.Values("z")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(vals, ",") != "alpha,beta" {
		t.Errorf("Values = %v", vals)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := New()
	r.Set("b", "y", IntValue(2))
	r.Set("a", "x", StringValue("s"))
	r.Set("a/sub", "blob", BytesValue([]byte{1, 2, 3}))
	first := r.Render()
	second := r.Render()
	if !bytes.Equal(first, second) {
		t.Error("Render is not deterministic")
	}
	text := string(first)
	if !strings.Contains(text, "[a]") || !strings.Contains(text, "[a/sub]") || !strings.Contains(text, "[b]") {
		t.Errorf("Render missing sections:\n%s", text)
	}
	if !strings.Contains(text, `x = "s"`) || !strings.Contains(text, "y = 2") || !strings.Contains(text, "blob = hex:010203") {
		t.Errorf("Render missing values:\n%s", text)
	}
	if idx := strings.Index(text, "[a]"); idx > strings.Index(text, "[b]") {
		t.Error("sections not sorted")
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	r := New()
	r.Set("system/boot", "timeout", IntValue(30))
	r.Set("system/boot", "kernel", StringValue("vmlinuz \"quoted\"\n"))
	r.Set("system", "id", BytesValue([]byte{0xde, 0xad}))
	r.CreateKey("empty/leaf")

	parsed, err := Parse(r.Render())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !parsed.Equal(r) {
		t.Errorf("round trip mismatch:\n--- original\n%s\n--- parsed\n%s", r.Render(), parsed.Render())
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	text := `
# top comment
[app]
name = "af"

# trailing
`
	r, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("app", "name")
	if err != nil || got.Str != "af" {
		t.Errorf("Get = (%+v, %v)", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "unterminated section", give: "[app\nx = 1"},
		{name: "value before section", give: "x = 1"},
		{name: "missing equals", give: "[a]\njust words"},
		{name: "empty name", give: "[a]\n = 1"},
		{name: "bad int", give: "[a]\nx = 12abc"},
		{name: "bad quote", give: "[a]\nx = \"unterminated"},
		{name: "bad hex", give: "[a]\nx = hex:zz"},
		{name: "bad path", give: "[a//b]\nx = 1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.give)); !errors.Is(err, ErrBadText) {
				t.Errorf("Parse err = %v, want ErrBadText", err)
			}
		})
	}
}

func TestReplaceWith(t *testing.T) {
	dst := New()
	dst.Set("old", "v", IntValue(1))
	src := New()
	src.Set("new", "v", IntValue(2))

	dst.ReplaceWith(src)
	if _, err := dst.Get("old", "v"); !errors.Is(err, ErrNoKey) {
		t.Error("old contents survived ReplaceWith")
	}
	got, err := dst.Get("new", "v")
	if err != nil || got.Int != 2 {
		t.Errorf("new contents = (%+v, %v)", got, err)
	}
	// The replacement is a deep copy: mutating src later must not leak.
	src.Set("new", "v", IntValue(99))
	got, _ = dst.Get("new", "v")
	if got.Int != 2 {
		t.Error("ReplaceWith aliased the source tree")
	}
}

func TestBytesValueDefensiveCopies(t *testing.T) {
	raw := []byte{1, 2, 3}
	r := New()
	r.Set("k", "b", Value{Type: TypeBytes, Bytes: raw})
	raw[0] = 99
	got, err := r.Get("k", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes[0] != 1 {
		t.Error("stored bytes alias caller slice")
	}
	got.Bytes[1] = 98
	again, _ := r.Get("k", "b")
	if again.Bytes[1] != 2 {
		t.Error("returned bytes alias stored slice")
	}
}

func TestParseRenderPropertyRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New()
		segs := []string{"sys", "app", "net", "cfg", "hw"}
		for i := 0; i < 30; i++ {
			depth := rng.Intn(3) + 1
			parts := make([]string, depth)
			for d := range parts {
				parts[d] = segs[rng.Intn(len(segs))]
			}
			path := strings.Join(parts, "/")
			name := string(rune('a' + rng.Intn(26)))
			switch rng.Intn(3) {
			case 0:
				r.Set(path, name, IntValue(rng.Int63n(1000)))
			case 1:
				r.Set(path, name, StringValue(segs[rng.Intn(len(segs))]))
			default:
				b := make([]byte, rng.Intn(8))
				rng.Read(b)
				r.Set(path, name, BytesValue(b))
			}
		}
		parsed, err := Parse(r.Render())
		if err != nil {
			return false
		}
		return parsed.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanics(t *testing.T) {
	// The registry sentinel parses whatever an application writes; hostile
	// or garbled text must fail cleanly, never crash the sentinel.
	f := func(text []byte) bool {
		r, err := Parse(text)
		if err != nil {
			return true
		}
		// Anything that parses must survive a render/parse round trip.
		again, err := Parse(r.Render())
		return err == nil && again.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
