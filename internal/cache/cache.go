// Package cache implements the caching options a sentinel can interpose
// between the application and a remote information source. These realize the
// three critical execution paths of the paper's Figure 5:
//
//	path 1 (Mode None)   — every operation goes to the remote service;
//	path 2 (Mode Disk)   — the active file's on-disk data part is the cache;
//	path 3 (Mode Memory) — the cache lives in the sentinel's memory.
//
// A frequency-based block cache (BlockCache) additionally implements the §1
// use of "caching only the most frequently accessed contents" with
// invalidation so the cache "can be kept consistent with any updates
// performed to its contents at any of the remote sources".
package cache

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Mode selects a caching path.
type Mode int

// Caching modes, one per Figure 5 path.
const (
	ModeNone Mode = iota + 1
	ModeDisk
	ModeMemory
)

// ParseMode maps a manifest cache string to a Mode; empty selects ModeNone.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "none":
		return ModeNone, nil
	case "disk":
		return ModeDisk, nil
	case "memory", "mem":
		return ModeMemory, nil
	default:
		return 0, fmt.Errorf("cache: unknown mode %q", s)
	}
}

// String returns the manifest spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeDisk:
		return "disk"
	case ModeMemory:
		return "memory"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// RandomAccess is the storage contract shared by remote sources, the on-disk
// data part, and in-memory buffers.
type RandomAccess interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Truncate(n int64) error
}

// Backend is what a sentinel session performs file operations against; the
// concrete type determines which Figure 5 path each operation takes.
type Backend interface {
	RandomAccess
	// Sync pushes buffered state toward stable storage or the remote source.
	Sync() error
	// Close releases the backend, flushing as Sync does.
	Close() error
}

// errNoStore reports a backend constructed without its required store.
var errNoStore = errors.New("cache: backend requires a store")

// Passthrough is the Mode None backend: it forwards every operation to the
// remote store with no local state (Figure 5, path 1).
type Passthrough struct {
	store RandomAccess
}

var _ Backend = (*Passthrough)(nil)

// NewPassthrough returns a backend forwarding directly to store.
func NewPassthrough(store RandomAccess) (*Passthrough, error) {
	if store == nil {
		return nil, errNoStore
	}
	return &Passthrough{store: store}, nil
}

// ReadAt implements Backend.
func (b *Passthrough) ReadAt(p []byte, off int64) (int, error) { return b.store.ReadAt(p, off) }

// WriteAt implements Backend.
func (b *Passthrough) WriteAt(p []byte, off int64) (int, error) { return b.store.WriteAt(p, off) }

// Size implements Backend.
func (b *Passthrough) Size() (int64, error) { return b.store.Size() }

// Truncate implements Backend.
func (b *Passthrough) Truncate(n int64) error { return b.store.Truncate(n) }

// Sync implements Backend; the remote store is always current.
func (b *Passthrough) Sync() error { return nil }

// Close implements Backend.
func (b *Passthrough) Close() error {
	if c, ok := b.store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Local is the Mode Disk / Mode Memory backend: operations hit a local store
// (the data part on disk, or a memory buffer), and writes are optionally
// propagated write-through to a remote source in the background of the
// critical path (Figure 5, paths 2 and 3: "the sentinel interacts with its
// local file rather than contacting the remote service").
type Local struct {
	local  RandomAccess
	remote RandomAccess // optional write-through target

	mu    sync.Mutex
	dirty bool
}

var _ Backend = (*Local)(nil)

// NewLocal returns a backend serving from local, propagating writes to
// remote when it is non-nil.
func NewLocal(local, remote RandomAccess) (*Local, error) {
	if local == nil {
		return nil, errNoStore
	}
	return &Local{local: local, remote: remote}, nil
}

// Populate fills the local store from the remote source, the sentinel's
// "creates a local copy" step when an active file is opened.
func (b *Local) Populate() error {
	if b.remote == nil {
		return nil
	}
	size, err := b.remote.Size()
	if err != nil {
		return fmt.Errorf("populate: remote size: %w", err)
	}
	if err := b.local.Truncate(size); err != nil {
		return fmt.Errorf("populate: truncate local: %w", err)
	}
	buf := make([]byte, 64*1024)
	var off int64
	for off < size {
		n := len(buf)
		if int64(n) > size-off {
			n = int(size - off)
		}
		rn, rerr := b.remote.ReadAt(buf[:n], off)
		if rn > 0 {
			if _, werr := b.local.WriteAt(buf[:rn], off); werr != nil {
				return fmt.Errorf("populate: write local: %w", werr)
			}
			off += int64(rn)
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return fmt.Errorf("populate: remote read: %w", rerr)
		}
		if rn == 0 {
			break
		}
	}
	return nil
}

// ReadAt implements Backend, serving from the local store only.
func (b *Local) ReadAt(p []byte, off int64) (int, error) { return b.local.ReadAt(p, off) }

// WriteAt implements Backend: the local store is updated on the critical
// path; the remote copy is marked stale and refreshed on Sync/Close.
func (b *Local) WriteAt(p []byte, off int64) (int, error) {
	n, err := b.local.WriteAt(p, off)
	if n > 0 && b.remote != nil {
		b.mu.Lock()
		b.dirty = true
		b.mu.Unlock()
	}
	return n, err
}

// Size implements Backend.
func (b *Local) Size() (int64, error) { return b.local.Size() }

// Truncate implements Backend.
func (b *Local) Truncate(n int64) error {
	err := b.local.Truncate(n)
	if err == nil && b.remote != nil {
		b.mu.Lock()
		b.dirty = true
		b.mu.Unlock()
	}
	return err
}

// Sync implements Backend: if the local copy changed, it is pushed back to
// the remote source in full.
func (b *Local) Sync() error {
	b.mu.Lock()
	dirty := b.dirty
	b.dirty = false
	b.mu.Unlock()
	if !dirty || b.remote == nil {
		return nil
	}
	size, err := b.local.Size()
	if err != nil {
		return fmt.Errorf("sync: local size: %w", err)
	}
	if err := b.remote.Truncate(size); err != nil {
		return fmt.Errorf("sync: truncate remote: %w", err)
	}
	buf := make([]byte, 64*1024)
	var off int64
	for off < size {
		n := len(buf)
		if int64(n) > size-off {
			n = int(size - off)
		}
		rn, rerr := b.local.ReadAt(buf[:n], off)
		if rn > 0 {
			if _, werr := b.remote.WriteAt(buf[:rn], off); werr != nil {
				return fmt.Errorf("sync: remote write: %w", werr)
			}
			off += int64(rn)
		}
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return fmt.Errorf("sync: local read: %w", rerr)
		}
		if rn == 0 {
			break
		}
	}
	return nil
}

// Close implements Backend, flushing dirty state first.
func (b *Local) Close() error {
	err := b.Sync()
	if c, ok := b.local.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if c, ok := b.remote.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MemStore is a plain in-memory RandomAccess used as the Mode Memory local
// store. Reads share an RLock, so a fan-out of parallel readers — the
// sharded BlockCache's fill path, concurrent sentinel workers — does not
// serialize on the store.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
}

var _ RandomAccess = (*MemStore)(nil)

// NewMemStore returns an empty memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadAt implements RandomAccess.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	// Zero-length reads succeed at any offset, matching os.File.
	if len(p) == 0 {
		return 0, nil
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements RandomAccess, growing the buffer as needed.
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

// Size implements RandomAccess.
func (m *MemStore) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data)), nil
}

// Truncate implements RandomAccess.
func (m *MemStore) Truncate(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		return errors.New("cache: negative length")
	}
	if n <= int64(len(m.data)) {
		m.data = m.data[:n]
		return nil
	}
	grown := make([]byte, n)
	copy(grown, m.data)
	m.data = grown
	return nil
}
