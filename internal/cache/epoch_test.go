package cache

import (
	"bytes"
	"testing"
)

// TestBlockCacheEpochInvalidatesHits: bumping the epoch makes every cached
// block stale — the next read refills from the backing store instead of
// serving the old bytes.
func TestBlockCacheEpochInvalidatesHits(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("a"), 256), 0)
	store := &countingStore{RandomAccess: mem}
	c, err := NewBlockCache(store, 64, 8)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	readsBefore := store.reads

	// The backing store changes out of band (a conflicting write elsewhere in
	// a fleet); the epoch bump is the revoke signal.
	mem.WriteAt(bytes.Repeat([]byte("b"), 256), 0)
	c.SetEpoch(1)

	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte("b"), 64)) {
		t.Fatalf("read after epoch bump served stale bytes: %q", buf[:8])
	}
	if store.reads == readsBefore {
		t.Fatal("epoch bump did not force a refill from backing")
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want invalidations after epoch bump", st)
	}

	// The refilled block is tagged with the new epoch: hits resume.
	readsAfterRefill := store.reads
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if store.reads != readsAfterRefill {
		t.Fatal("post-refill read went to backing despite a fresh tag")
	}
}

// TestBlockCacheEpochMonotonic: SetEpoch never moves backwards, so a stale
// revoke arriving late cannot resurrect invalid cache contents.
func TestBlockCacheEpochMonotonic(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(make([]byte, 128), 0)
	c, err := NewBlockCache(mem, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("fresh cache epoch = %d, want 0", c.Epoch())
	}
	c.SetEpoch(5)
	c.SetEpoch(3) // late, out-of-order signal
	if c.Epoch() != 5 {
		t.Fatalf("epoch regressed to %d", c.Epoch())
	}
	c.SetEpoch(5) // idempotent
	if c.Epoch() != 5 {
		t.Fatalf("epoch = %d after idempotent set", c.Epoch())
	}
}
