package cache

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		give    string
		want    Mode
		wantErr bool
	}{
		{give: "", want: ModeNone},
		{give: "none", want: ModeNone},
		{give: "disk", want: ModeDisk},
		{give: "memory", want: ModeMemory},
		{give: "mem", want: ModeMemory},
		{give: "MEMORY", want: ModeMemory},
		{give: "l2", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseMode(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Errorf("ParseMode(%q) succeeded, want error", tt.give)
				}
				return
			}
			if err != nil || got != tt.want {
				t.Errorf("ParseMode(%q) = (%v, %v), want %v", tt.give, got, err, tt.want)
			}
		})
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		give Mode
		want string
	}{
		{ModeNone, "none"},
		{ModeDisk, "disk"},
		{ModeMemory, "memory"},
		{Mode(9), "mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestMemStoreBasics(t *testing.T) {
	m := NewMemStore()
	if _, err := m.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := m.ReadAt(buf, 2); err != nil || string(buf) != "cde" {
		t.Errorf("ReadAt = (%q, %v)", buf, err)
	}
	if size, _ := m.Size(); size != 6 {
		t.Errorf("Size = %d, want 6", size)
	}
	if err := m.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(buf, 2); !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt after truncate err = %v, want EOF", err)
	}
	if err := m.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 4 {
		t.Errorf("Size after grow = %d, want 4", size)
	}
}

func TestPassthroughForwards(t *testing.T) {
	store := NewMemStore()
	b, err := NewPassthrough(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("direct"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := store.ReadAt(got, 0); err != nil || string(got) != "direct" {
		t.Errorf("store saw (%q, %v), want write-through", got, err)
	}
	if _, err := b.ReadAt(got, 0); err != nil || string(got) != "direct" {
		t.Errorf("backend read = (%q, %v)", got, err)
	}
	if size, _ := b.Size(); size != 6 {
		t.Errorf("Size = %d", size)
	}
	if err := b.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if err := b.Truncate(0); err != nil {
		t.Errorf("Truncate: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestNewBackendsRejectNilStore(t *testing.T) {
	if _, err := NewPassthrough(nil); err == nil {
		t.Error("NewPassthrough(nil) succeeded")
	}
	if _, err := NewLocal(nil, NewMemStore()); err == nil {
		t.Error("NewLocal(nil, ...) succeeded")
	}
	if _, err := NewBlockCache(nil, 4, 4); err == nil {
		t.Error("NewBlockCache(nil, ...) succeeded")
	}
}

func TestLocalServesFromLocalStore(t *testing.T) {
	remote := NewMemStore()
	remote.WriteAt([]byte("remote truth"), 0)
	local := NewMemStore()
	b, err := NewLocal(local, remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Populate(); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	buf := make([]byte, 12)
	if _, err := b.ReadAt(buf, 0); err != nil || string(buf) != "remote truth" {
		t.Fatalf("ReadAt = (%q, %v)", buf, err)
	}
	// Mutate the remote after population: reads must keep coming from the
	// local copy (that is the point of path 2/3).
	remote.WriteAt([]byte("REMOTE"), 0)
	if _, err := b.ReadAt(buf, 0); err != nil || string(buf) != "remote truth" {
		t.Errorf("ReadAt after remote mutation = (%q, %v), want cached copy", buf, err)
	}
}

func TestLocalWritePropagatesOnSync(t *testing.T) {
	remote := NewMemStore()
	local := NewMemStore()
	b, err := NewLocal(local, remote)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("dirty"), 0); err != nil {
		t.Fatal(err)
	}
	// Before Sync the remote has not seen the write.
	if size, _ := remote.Size(); size != 0 {
		t.Errorf("remote size before sync = %d, want 0", size)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := remote.ReadAt(buf, 0); err != nil || string(buf) != "dirty" {
		t.Errorf("remote after sync = (%q, %v)", buf, err)
	}
	// Clean sync is a no-op even if the remote then diverges.
	remote.WriteAt([]byte("XXXXX"), 0)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	remote.ReadAt(buf, 0)
	if string(buf) != "XXXXX" {
		t.Errorf("clean Sync overwrote remote: %q", buf)
	}
}

func TestLocalTruncateMarksDirty(t *testing.T) {
	remote := NewMemStore()
	remote.WriteAt([]byte("0123456789"), 0)
	local := NewMemStore()
	b, err := NewLocal(local, remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Populate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if size, _ := remote.Size(); size != 4 {
		t.Errorf("remote size after truncate sync = %d, want 4", size)
	}
}

func TestLocalCloseFlushes(t *testing.T) {
	remote := NewMemStore()
	b, err := NewLocal(NewMemStore(), remote)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteAt([]byte("bye"), 0)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, 3)
	if _, err := remote.ReadAt(buf, 0); err != nil || string(buf) != "bye" {
		t.Errorf("remote after close = (%q, %v)", buf, err)
	}
}

func TestLocalWithoutRemote(t *testing.T) {
	b, err := NewLocal(NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Populate(); err != nil {
		t.Errorf("Populate without remote: %v", err)
	}
	b.WriteAt([]byte("solo"), 0)
	if err := b.Sync(); err != nil {
		t.Errorf("Sync without remote: %v", err)
	}
}

// countingStore counts operations reaching the backing store.
type countingStore struct {
	RandomAccess
	reads, writes int
}

func (c *countingStore) ReadAt(p []byte, off int64) (int, error) {
	c.reads++
	return c.RandomAccess.ReadAt(p, off)
}

func (c *countingStore) WriteAt(p []byte, off int64) (int, error) {
	c.writes++
	return c.RandomAccess.WriteAt(p, off)
}

func TestBlockCacheHitAvoidsBacking(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("x"), 1024), 0)
	store := &countingStore{RandomAccess: mem}
	c, err := NewBlockCache(store, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	readsAfterMiss := store.reads
	for i := 0; i < 10; i++ {
		if _, err := c.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if store.reads != readsAfterMiss {
		t.Errorf("backing reads grew from %d to %d on cache hits", readsAfterMiss, store.reads)
	}
	st := c.Stats()
	if st.Hits != 10 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 10 hits / 1 miss", st)
	}
}

func TestBlockCacheWriteThrough(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(make([]byte, 256), 0)
	c, err := NewBlockCache(mem, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fault in block 0, then write through it.
	buf := make([]byte, 8)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt([]byte("fresh"), 2); err != nil {
		t.Fatal(err)
	}
	// The backing store sees the write immediately.
	got := make([]byte, 5)
	if _, err := mem.ReadAt(got, 2); err != nil || string(got) != "fresh" {
		t.Errorf("backing = (%q, %v)", got, err)
	}
	// A subsequent read through the cache observes the write.
	if _, err := c.ReadAt(got, 2); err != nil || string(got) != "fresh" {
		t.Errorf("cached read = (%q, %v)", got, err)
	}
}

func TestBlockCacheLRUEviction(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(make([]byte, 64*10), 0)
	c, err := NewBlockCache(mem, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.ReadAt(buf, 0)    // block 0
	c.ReadAt(buf, 64)   // block 1
	c.ReadAt(buf, 0)    // touch block 0 (now MRU)
	c.ReadAt(buf, 2*64) // block 2 evicts block 1
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Re-reading block 0 is still a hit; block 1 is a miss.
	before := c.Stats().Misses
	c.ReadAt(buf, 0)
	if c.Stats().Misses != before {
		t.Error("block 0 was evicted, want it retained as MRU")
	}
	c.ReadAt(buf, 64)
	if c.Stats().Misses != before+1 {
		t.Error("block 1 unexpectedly still cached")
	}
}

func TestBlockCacheInvalidate(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("a"), 256), 0)
	c, err := NewBlockCache(mem, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	c.ReadAt(buf, 0)
	// External writer updates the source behind the cache's back.
	mem.WriteAt(bytes.Repeat([]byte("b"), 64), 0)
	c.ReadAt(buf, 0)
	if buf[0] != 'a' {
		t.Fatal("expected stale read before invalidation")
	}
	c.Invalidate(0, 64)
	c.ReadAt(buf, 0)
	if buf[0] != 'b' {
		t.Error("read after Invalidate still stale")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestBlockCacheInvalidateAll(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(make([]byte, 256), 0)
	c, err := NewBlockCache(mem, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	for off := int64(0); off < 256; off += 64 {
		c.ReadAt(buf, off)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Errorf("Len after InvalidateAll = %d, want 0", c.Len())
	}
}

func TestBlockCacheTruncateDropsBlocks(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("z"), 256), 0)
	c, err := NewBlockCache(mem, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	c.ReadAt(buf, 0)
	if err := c.Truncate(10); err != nil {
		t.Fatal(err)
	}
	n, err := c.ReadAt(buf, 0)
	if n != 10 || !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt after truncate = (%d, %v), want (10, EOF)", n, err)
	}
}

func TestBlockCacheEOFAtExactEnd(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt([]byte("0123456789"), 0)
	c, err := NewBlockCache(mem, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := c.ReadAt(buf, 10); !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt at end err = %v, want EOF", err)
	}
	n, err := c.ReadAt(buf, 8)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt(8) = (%d, %v), want (2, EOF)", n, err)
	}
}

func TestBlockCacheRejectsBadConfig(t *testing.T) {
	mem := NewMemStore()
	if _, err := NewBlockCache(mem, 0, 4); err == nil {
		t.Error("blockSize 0 accepted")
	}
	if _, err := NewBlockCache(mem, 64, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestBlockCacheMatchesBackingProperty(t *testing.T) {
	// Under any interleaving of cached reads and write-throughs, a read
	// through the cache returns exactly what a direct read of the backing
	// store would.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := NewMemStore()
		initial := make([]byte, 1000)
		rng.Read(initial)
		mem.WriteAt(initial, 0)

		c, err := NewBlockCache(mem, 32, 4)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			off := int64(rng.Intn(1000))
			n := rng.Intn(100) + 1
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				if _, err := c.WriteAt(data, off); err != nil {
					return false
				}
			} else {
				got := make([]byte, n)
				gn, gerr := c.ReadAt(got, off)
				want := make([]byte, n)
				wn, werr := mem.ReadAt(want, off)
				if gn != wn || !bytes.Equal(got[:gn], want[:wn]) {
					return false
				}
				if (gerr == nil) != (werr == nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBlockCacheSizeDelegates(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(make([]byte, 100), 0)
	c, err := NewBlockCache(mem, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := c.Size(); err != nil || size != 100 {
		t.Errorf("Size = (%d, %v), want 100", size, err)
	}
}

func TestLocalCloseClosesBothStores(t *testing.T) {
	local := remoteCloser{NewMemStore(), new(bool)}
	remote := remoteCloser{NewMemStore(), new(bool)}
	b, err := NewLocal(local, remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !*local.closed || !*remote.closed {
		t.Errorf("closed = local %v, remote %v", *local.closed, *remote.closed)
	}
}

// remoteCloser decorates a RandomAccess with a Close flag.
type remoteCloser struct {
	RandomAccess
	closed *bool
}

func (r remoteCloser) Close() error {
	*r.closed = true
	return nil
}

func TestPassthroughCloseClosesStore(t *testing.T) {
	store := remoteCloser{NewMemStore(), new(bool)}
	b, err := NewPassthrough(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !*store.closed {
		t.Error("underlying store not closed")
	}
}

// gatedStore blocks ReadAt on selected blocks until released, to exercise
// the singleflight fill path.
type gatedStore struct {
	RandomAccess
	mu       sync.Mutex
	gate     chan struct{} // non-nil: reads of gatedOff block until closed
	gatedOff int64
	started  chan struct{} // receives one token per gated read that began
	reads    int32
}

func (g *gatedStore) ReadAt(p []byte, off int64) (int, error) {
	atomic.AddInt32(&g.reads, 1)
	g.mu.Lock()
	gate := g.gate
	gated := gate != nil && off == g.gatedOff
	g.mu.Unlock()
	if gated {
		g.started <- struct{}{}
		<-gate
	}
	return g.RandomAccess.ReadAt(p, off)
}

func TestBlockCacheHitsProceedDuringSlowMiss(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("x"), 256), 0)
	store := &gatedStore{
		RandomAccess: mem,
		gate:         make(chan struct{}),
		gatedOff:     64, // block index 1
		started:      make(chan struct{}, 1),
	}
	c, err := NewBlockCache(store, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Warm block 0, then start a miss of block 1 that hangs in the backing
	// store.
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	missDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(make([]byte, 64), 64)
		missDone <- err
	}()
	<-store.started // the miss is inside the backing ReadAt

	// The regression this guards: a hit on block 0 must complete while the
	// miss still holds the backing store.
	hitDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(make([]byte, 64), 0)
		hitDone <- err
	}()
	select {
	case err := <-hitDone:
		if err != nil {
			t.Fatalf("hit during miss: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hit on a cached block stalled behind a slow miss")
	}

	// A second miss of the SAME block joins the in-flight fill instead of
	// issuing its own backing read.
	joinDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(make([]byte, 64), 64)
		joinDone <- err
	}()
	close(store.gate)
	for _, ch := range []chan error{missDone, joinDone} {
		if err := <-ch; err != nil {
			t.Fatalf("gated read: %v", err)
		}
	}
	if n := atomic.LoadInt32(&store.reads); n != 2 { // block 0 + one shared fill of block 1
		t.Errorf("backing reads = %d, want 2 (concurrent misses must share one fill)", n)
	}
}

func TestBlockCacheWriteRacingFillStaysConsistent(t *testing.T) {
	mem := NewMemStore()
	mem.WriteAt(bytes.Repeat([]byte("a"), 64), 0)
	store := &gatedStore{
		RandomAccess: mem,
		gate:         make(chan struct{}),
		gatedOff:     0,
		started:      make(chan struct{}, 1),
	}
	c, err := NewBlockCache(store, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(make([]byte, 64), 0)
		readDone <- err
	}()
	<-store.started

	// While the fill is reading, a write lands. Ungate it from another
	// goroutine is not needed: the write path does not touch the gated read.
	if _, err := c.WriteAt(bytes.Repeat([]byte("b"), 64), 0); err != nil {
		t.Fatal(err)
	}
	close(store.gate)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	// Whatever the racing reader saw, a read AFTER the write must see the
	// written bytes, not a cached pre-write fill.
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte("b"), 64)) {
		t.Errorf("post-write read = %q..., want all 'b'", buf[:8])
	}
}
