package cache

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Stats counts BlockCache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// BlockCache layers an LRU cache of fixed-size blocks over a slower
// RandomAccess (typically a remote source). Reads of hot blocks are served
// locally; writes go through to the backing store and update the cached
// copy. Invalidate discards blocks when a remote update notification
// arrives, keeping the cache consistent with the source.
type BlockCache struct {
	backing   RandomAccess
	blockSize int
	capacity  int

	mu     sync.Mutex
	blocks map[int64]*list.Element // block index -> lru element
	lru    *list.List              // front = most recently used
	stats  Stats
}

type cachedBlock struct {
	index int64
	data  []byte // exactly blockSize, zero padded past EOF; nil until filled
	valid int    // bytes of data that are real (≤ blockSize)

	// Singleflight fill state. A block is inserted as a placeholder before
	// its backing read runs, so concurrent readers of the same block share
	// one fault-in while readers of other blocks proceed. ready is closed
	// when the fill settles; filled/err/stale (guarded by the cache mutex)
	// say how: filled means data is usable, err carries a failed backing
	// read, stale means a write or invalidation raced the fill and the
	// reader must refetch.
	ready  chan struct{}
	filled bool
	err    error
	stale  bool
}

var _ RandomAccess = (*BlockCache)(nil)

// NewBlockCache returns a cache of up to capacity blocks of blockSize bytes
// over backing.
func NewBlockCache(backing RandomAccess, blockSize, capacity int) (*BlockCache, error) {
	if backing == nil {
		return nil, errNoStore
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size %d must be positive", blockSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return &BlockCache{
		backing:   backing,
		blockSize: blockSize,
		capacity:  capacity,
		blocks:    make(map[int64]*list.Element, capacity),
		lru:       list.New(),
	}, nil
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *BlockCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// block returns the ready cached block at index, faulting it in on a miss.
// The backing read runs with c.mu RELEASED: a slow remote miss no longer
// blocks every other reader — hits on cached blocks proceed, and concurrent
// misses of the same block wait on one shared fill instead of issuing their
// own.
func (c *BlockCache) block(index int64) (*cachedBlock, error) {
	for {
		c.mu.Lock()
		if el, ok := c.blocks[index]; ok {
			blk, bok := el.Value.(*cachedBlock)
			if !bok {
				c.mu.Unlock()
				return nil, errors.New("cache: corrupt lru entry")
			}
			c.stats.Hits++
			c.lru.MoveToFront(el)
			if !blk.filled {
				c.mu.Unlock()
				<-blk.ready // a fill is in flight; join it
				c.mu.Lock()
				if blk.err != nil || blk.stale {
					err := blk.err
					c.mu.Unlock()
					if err != nil {
						return nil, err
					}
					continue // the fill lost a race with a write; refetch
				}
			}
			c.mu.Unlock()
			return blk, nil
		}

		c.stats.Misses++
		blk := &cachedBlock{index: index, ready: make(chan struct{})}
		c.insert(blk)
		c.mu.Unlock()

		data := make([]byte, c.blockSize)
		n, err := c.backing.ReadAt(data, index*int64(c.blockSize))

		c.mu.Lock()
		if err != nil && !errors.Is(err, io.EOF) {
			blk.err = err
			c.removeLocked(blk) // future readers retry the backing store
		} else {
			blk.data = data
			blk.valid = n
			blk.filled = true
			if blk.stale {
				// A write or invalidation landed while the fill was reading;
				// the data may predate it. Drop the entry so everyone
				// refetches.
				c.removeLocked(blk)
			}
		}
		stale, ferr := blk.stale, blk.err
		close(blk.ready)
		c.mu.Unlock()
		if ferr != nil {
			return nil, ferr
		}
		if stale {
			continue
		}
		return blk, nil
	}
}

// removeLocked drops blk's map/lru entry if it is still the mapped one.
// Called with c.mu held; idempotent.
func (c *BlockCache) removeLocked(blk *cachedBlock) {
	if el, ok := c.blocks[blk.index]; ok && el.Value == any(blk) {
		c.lru.Remove(el)
		delete(c.blocks, blk.index)
	}
}

// insert adds blk to the cache, evicting the least recently used block if at
// capacity. Called with c.mu held.
func (c *BlockCache) insert(blk *cachedBlock) {
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		old, ok := oldest.Value.(*cachedBlock)
		if ok {
			delete(c.blocks, old.index)
		}
		c.lru.Remove(oldest)
		c.stats.Evictions++
	}
	c.blocks[blk.index] = c.lru.PushFront(blk)
}

// ReadAt implements RandomAccess, serving from cached blocks where possible.
// The cache lock is held only for lookups and copies, never across a backing
// fault-in.
func (c *BlockCache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	total := 0
	for total < len(p) {
		pos := off + int64(total)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		blk, err := c.block(index)
		if err != nil {
			return total, err
		}
		// Copy under the lock: writes patch filled blocks in place.
		c.mu.Lock()
		if inBlock >= blk.valid {
			c.mu.Unlock()
			return total, io.EOF
		}
		n := copy(p[total:], blk.data[inBlock:blk.valid])
		short := blk.valid < c.blockSize
		c.mu.Unlock()
		total += n
		if short {
			// Short block: end of the backing object.
			if total < len(p) {
				return total, io.EOF
			}
			break
		}
	}
	return total, nil
}

// WriteAt implements RandomAccess: write-through to the backing store, then
// update any cached blocks in place so subsequent reads stay consistent.
func (c *BlockCache) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	n, err := c.backing.WriteAt(p, off)
	if n > 0 {
		c.mu.Lock()
		c.patchLocked(p[:n], off)
		c.mu.Unlock()
	}
	return n, err
}

// patchLocked overlays written bytes onto cached blocks. Called with c.mu
// held.
func (c *BlockCache) patchLocked(p []byte, off int64) {
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		span := c.blockSize - inBlock
		if span > len(p)-done {
			span = len(p) - done
		}
		if el, ok := c.blocks[index]; ok {
			if blk, ok := el.Value.(*cachedBlock); ok {
				if !blk.filled {
					// The block's fill is mid-flight and may have read the
					// backing store before this write landed; make everyone
					// refetch instead of patching data that isn't there yet.
					blk.stale = true
					c.lru.Remove(el)
					delete(c.blocks, index)
				} else {
					copy(blk.data[inBlock:inBlock+span], p[done:done+span])
					if end := inBlock + span; end > blk.valid {
						blk.valid = end
					}
				}
			}
		}
		done += span
	}
}

// Size implements RandomAccess, always consulting the backing store.
func (c *BlockCache) Size() (int64, error) { return c.backing.Size() }

// Truncate implements RandomAccess, dropping every cached block (length
// changes can shorten any block).
func (c *BlockCache) Truncate(n int64) error {
	if err := c.backing.Truncate(n); err != nil {
		return err
	}
	c.InvalidateAll()
	return nil
}

// Invalidate discards cached blocks overlapping [off, off+length), used when
// a remote-update notification reports external modification.
func (c *BlockCache) Invalidate(off, length int64) {
	if length <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	first := off / int64(c.blockSize)
	last := (off + length - 1) / int64(c.blockSize)
	for i := first; i <= last; i++ {
		if el, ok := c.blocks[i]; ok {
			if blk, bok := el.Value.(*cachedBlock); bok && !blk.filled {
				blk.stale = true // in-flight fill must not serve stale bytes
			}
			c.lru.Remove(el)
			delete(c.blocks, i)
			c.stats.Invalidations++
		}
	}
}

// InvalidateAll discards every cached block.
func (c *BlockCache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += int64(c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if blk, ok := el.Value.(*cachedBlock); ok && !blk.filled {
			blk.stale = true
		}
	}
	c.lru.Init()
	c.blocks = make(map[int64]*list.Element, c.capacity)
}

// Len returns the number of blocks currently cached.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
