package cache

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Stats counts BlockCache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// BlockCache layers an LRU cache of fixed-size blocks over a slower
// RandomAccess (typically a remote source). Reads of hot blocks are served
// locally; writes go through to the backing store and update the cached
// copy. Invalidate discards blocks when a remote update notification
// arrives, keeping the cache consistent with the source.
type BlockCache struct {
	backing   RandomAccess
	blockSize int
	capacity  int

	mu     sync.Mutex
	blocks map[int64]*list.Element // block index -> lru element
	lru    *list.List              // front = most recently used
	stats  Stats
}

type cachedBlock struct {
	index int64
	data  []byte // exactly blockSize, zero padded past EOF
	valid int    // bytes of data that are real (≤ blockSize)
}

var _ RandomAccess = (*BlockCache)(nil)

// NewBlockCache returns a cache of up to capacity blocks of blockSize bytes
// over backing.
func NewBlockCache(backing RandomAccess, blockSize, capacity int) (*BlockCache, error) {
	if backing == nil {
		return nil, errNoStore
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size %d must be positive", blockSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return &BlockCache{
		backing:   backing,
		blockSize: blockSize,
		capacity:  capacity,
		blocks:    make(map[int64]*list.Element, capacity),
		lru:       list.New(),
	}, nil
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *BlockCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// getBlock returns the cached block at index, faulting it in on a miss.
// Called with c.mu held.
func (c *BlockCache) getBlock(index int64) (*cachedBlock, error) {
	if el, ok := c.blocks[index]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(el)
		blk, ok := el.Value.(*cachedBlock)
		if !ok {
			return nil, errors.New("cache: corrupt lru entry")
		}
		return blk, nil
	}
	c.stats.Misses++
	blk := &cachedBlock{index: index, data: make([]byte, c.blockSize)}
	n, err := c.backing.ReadAt(blk.data, index*int64(c.blockSize))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	blk.valid = n
	c.insert(blk)
	return blk, nil
}

// insert adds blk to the cache, evicting the least recently used block if at
// capacity. Called with c.mu held.
func (c *BlockCache) insert(blk *cachedBlock) {
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		old, ok := oldest.Value.(*cachedBlock)
		if ok {
			delete(c.blocks, old.index)
		}
		c.lru.Remove(oldest)
		c.stats.Evictions++
	}
	c.blocks[blk.index] = c.lru.PushFront(blk)
}

// ReadAt implements RandomAccess, serving from cached blocks where possible.
func (c *BlockCache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for total < len(p) {
		pos := off + int64(total)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		blk, err := c.getBlock(index)
		if err != nil {
			return total, err
		}
		if inBlock >= blk.valid {
			if total == 0 {
				return 0, io.EOF
			}
			return total, io.EOF
		}
		n := copy(p[total:], blk.data[inBlock:blk.valid])
		total += n
		if blk.valid < c.blockSize {
			// Short block: end of the backing object.
			if total < len(p) {
				return total, io.EOF
			}
			break
		}
	}
	return total, nil
}

// WriteAt implements RandomAccess: write-through to the backing store, then
// update any cached blocks in place so subsequent reads stay consistent.
func (c *BlockCache) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	n, err := c.backing.WriteAt(p, off)
	if n > 0 {
		c.mu.Lock()
		c.patchLocked(p[:n], off)
		c.mu.Unlock()
	}
	return n, err
}

// patchLocked overlays written bytes onto cached blocks. Called with c.mu
// held.
func (c *BlockCache) patchLocked(p []byte, off int64) {
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		span := c.blockSize - inBlock
		if span > len(p)-done {
			span = len(p) - done
		}
		if el, ok := c.blocks[index]; ok {
			if blk, ok := el.Value.(*cachedBlock); ok {
				copy(blk.data[inBlock:inBlock+span], p[done:done+span])
				if end := inBlock + span; end > blk.valid {
					blk.valid = end
				}
			}
		}
		done += span
	}
}

// Size implements RandomAccess, always consulting the backing store.
func (c *BlockCache) Size() (int64, error) { return c.backing.Size() }

// Truncate implements RandomAccess, dropping every cached block (length
// changes can shorten any block).
func (c *BlockCache) Truncate(n int64) error {
	if err := c.backing.Truncate(n); err != nil {
		return err
	}
	c.InvalidateAll()
	return nil
}

// Invalidate discards cached blocks overlapping [off, off+length), used when
// a remote-update notification reports external modification.
func (c *BlockCache) Invalidate(off, length int64) {
	if length <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	first := off / int64(c.blockSize)
	last := (off + length - 1) / int64(c.blockSize)
	for i := first; i <= last; i++ {
		if el, ok := c.blocks[i]; ok {
			c.lru.Remove(el)
			delete(c.blocks, i)
			c.stats.Invalidations++
		}
	}
}

// InvalidateAll discards every cached block.
func (c *BlockCache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += int64(c.lru.Len())
	c.lru.Init()
	c.blocks = make(map[int64]*list.Element, c.capacity)
}

// Len returns the number of blocks currently cached.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
