package cache

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Stats counts BlockCache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
}

// Shard sizing heuristics. Sharding only pays when each shard still holds a
// useful working set, so small caches stay at one shard — preserving exact
// global LRU order — and larger ones split until shards would drop below
// minBlocksPerShard blocks or reach maxShards.
const (
	minBlocksPerShard = 8
	maxShards         = 16
)

// BlockCache layers an LRU cache of fixed-size blocks over a slower
// RandomAccess (typically a remote source). Reads of hot blocks are served
// locally; writes go through to the backing store and update the cached
// copy. Invalidate discards blocks when a remote update notification
// arrives, keeping the cache consistent with the source.
//
// The cache is split into power-of-two SHARDS, each with its own lock, LRU
// list, and counters; a block's shard is its index masked by shards-1, so
// sequential blocks round-robin across shards and concurrent clients touching
// different blocks rarely contend on the same lock. Each shard keeps the
// singleflight fill discipline: concurrent misses of one block share one
// backing read, and hits on other blocks in the same shard proceed while a
// fill is in flight. Eviction is per shard (capacity is divided among
// shards), so LRU order is approximate across the whole cache but exact
// within a shard; a single-shard cache — the default for small capacities —
// keeps the exact global LRU of the unsharded design.
type BlockCache struct {
	backing   RandomAccess
	blockSize int
	capacity  int

	shards []*blockShard
	mask   int64 // len(shards)-1; shard key = block index & mask

	// epoch is the cache's validity generation, the client half of the
	// lease/epoch invalidation protocol. Every block is tagged with the
	// epoch current when its fill BEGAN (before the backing read, so a bump
	// racing a fill invalidates data that may predate the bump); a hit on a
	// block tagged with an older epoch refetches instead of serving it.
	// SetEpoch therefore invalidates every earlier entry in O(1) — the
	// lease-revoke push path — with the dead entries reaped lazily on access
	// or eviction.
	epoch atomic.Uint64
}

// blockShard is one independently locked slice of the cache.
type blockShard struct {
	capacity int

	mu     sync.Mutex
	blocks map[int64]*list.Element // block index -> lru element
	lru    *list.List              // front = most recently used
	stats  Stats
}

type cachedBlock struct {
	index int64
	data  []byte // exactly blockSize, zero padded past EOF; nil until filled
	valid int    // bytes of data that are real (≤ blockSize)
	epoch uint64 // cache epoch when the fill began; older than current = invalid

	// Singleflight fill state. A block is inserted as a placeholder before
	// its backing read runs, so concurrent readers of the same block share
	// one fault-in while readers of other blocks proceed. ready is closed
	// when the fill settles; filled/err/stale (guarded by the shard mutex)
	// say how: filled means data is usable, err carries a failed backing
	// read, stale means a write or invalidation raced the fill and the
	// reader must refetch.
	ready  chan struct{}
	filled bool
	err    error
	stale  bool
}

var _ RandomAccess = (*BlockCache)(nil)

// defaultShardCount picks the shard count for a capacity: split while every
// shard keeps at least minBlocksPerShard blocks, up to maxShards.
func defaultShardCount(capacity int) int {
	n := 1
	for n < maxShards && capacity/(n*2) >= minBlocksPerShard {
		n *= 2
	}
	return n
}

// NewBlockCache returns a cache of up to capacity blocks of blockSize bytes
// over backing, sharded according to capacity (small caches get one shard
// and exact global LRU).
func NewBlockCache(backing RandomAccess, blockSize, capacity int) (*BlockCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return NewBlockCacheSharded(backing, blockSize, capacity, defaultShardCount(capacity))
}

// NewBlockCacheSharded is NewBlockCache with an explicit shard count, which
// must be a power of two no larger than capacity. Capacity divides across
// shards (remainder to the first shards), so the total never exceeds the
// requested capacity.
func NewBlockCacheSharded(backing RandomAccess, blockSize, capacity, shards int) (*BlockCache, error) {
	if backing == nil {
		return nil, errNoStore
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size %d must be positive", blockSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("cache: shard count %d must be a power of two", shards)
	}
	if shards > capacity {
		return nil, fmt.Errorf("cache: shard count %d exceeds capacity %d", shards, capacity)
	}
	c := &BlockCache{
		backing:   backing,
		blockSize: blockSize,
		capacity:  capacity,
		shards:    make([]*blockShard, shards),
		mask:      int64(shards - 1),
	}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		c.shards[i] = &blockShard{
			capacity: cap,
			blocks:   make(map[int64]*list.Element, cap),
			lru:      list.New(),
		}
	}
	return c, nil
}

// shard returns the shard owning the given block index.
func (c *BlockCache) shard(index int64) *blockShard {
	return c.shards[index&c.mask]
}

// ShardCount reports how many independently locked shards the cache uses.
func (c *BlockCache) ShardCount() int { return len(c.shards) }

// Stats returns a snapshot of the hit/miss/eviction counters summed across
// shards.
func (c *BlockCache) Stats() Stats {
	var total Stats
	for _, s := range c.shards {
		s.mu.Lock()
		total.add(s.stats)
		s.mu.Unlock()
	}
	return total
}

// ShardStats returns each shard's counters, in shard order — the observable
// evidence that load spreads across locks.
func (c *BlockCache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// block returns the ready cached block at index, faulting it in on a miss.
// The backing read runs with the shard mutex RELEASED: a slow remote miss no
// longer blocks other readers — hits on cached blocks proceed, and concurrent
// misses of the same block wait on one shared fill instead of issuing their
// own.
func (c *BlockCache) block(index int64) (*cachedBlock, error) {
	s := c.shard(index)
	for {
		cur := c.epoch.Load()
		s.mu.Lock()
		if el, ok := s.blocks[index]; ok {
			blk, bok := el.Value.(*cachedBlock)
			if !bok {
				s.mu.Unlock()
				return nil, errors.New("cache: corrupt lru entry")
			}
			if blk.epoch != cur {
				// Tagged with a revoked epoch: the entry predates an
				// invalidation push. Drop it (marking an in-flight fill stale
				// so its waiters refetch too) and fault in fresh bytes.
				if !blk.filled {
					blk.stale = true
				}
				s.removeLocked(blk)
				s.stats.Invalidations++
				s.mu.Unlock()
				continue
			}
			s.stats.Hits++
			s.lru.MoveToFront(el)
			if !blk.filled {
				s.mu.Unlock()
				<-blk.ready // a fill is in flight; join it
				s.mu.Lock()
				if blk.err != nil || blk.stale {
					err := blk.err
					s.mu.Unlock()
					if err != nil {
						return nil, err
					}
					continue // the fill lost a race with a write; refetch
				}
			}
			if blk.epoch != c.epoch.Load() {
				s.removeLocked(blk) // epoch advanced while we joined the fill
				s.mu.Unlock()
				continue
			}
			s.mu.Unlock()
			return blk, nil
		}

		s.stats.Misses++
		blk := &cachedBlock{index: index, epoch: cur, ready: make(chan struct{})}
		s.insert(blk)
		s.mu.Unlock()

		data := make([]byte, c.blockSize)
		n, err := c.backing.ReadAt(data, index*int64(c.blockSize))

		s.mu.Lock()
		if err != nil && !errors.Is(err, io.EOF) {
			blk.err = err
			s.removeLocked(blk) // future readers retry the backing store
		} else {
			blk.data = data
			blk.valid = n
			blk.filled = true
			if blk.stale {
				// A write or invalidation landed while the fill was reading;
				// the data may predate it. Drop the entry so everyone
				// refetches.
				s.removeLocked(blk)
			}
		}
		if blk.filled && blk.epoch != c.epoch.Load() {
			// An invalidation (lease revoke, SetEpoch) landed during the
			// backing read: the bytes may predate the event it announced.
			blk.stale = true
			s.removeLocked(blk)
		}
		stale, ferr := blk.stale, blk.err
		close(blk.ready)
		s.mu.Unlock()
		if ferr != nil {
			return nil, ferr
		}
		if stale {
			continue
		}
		return blk, nil
	}
}

// removeLocked drops blk's map/lru entry if it is still the mapped one.
// Called with s.mu held; idempotent.
func (s *blockShard) removeLocked(blk *cachedBlock) {
	if el, ok := s.blocks[blk.index]; ok && el.Value == any(blk) {
		s.lru.Remove(el)
		delete(s.blocks, blk.index)
	}
}

// insert adds blk to the shard, evicting its least recently used block if at
// capacity. Called with s.mu held.
func (s *blockShard) insert(blk *cachedBlock) {
	for s.lru.Len() >= s.capacity {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		old, ok := oldest.Value.(*cachedBlock)
		if ok {
			delete(s.blocks, old.index)
		}
		s.lru.Remove(oldest)
		s.stats.Evictions++
	}
	s.blocks[blk.index] = s.lru.PushFront(blk)
}

// ReadAt implements RandomAccess, serving from cached blocks where possible.
// A shard lock is held only for lookups and copies, never across a backing
// fault-in.
func (c *BlockCache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	total := 0
	for total < len(p) {
		pos := off + int64(total)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		blk, err := c.block(index)
		if err != nil {
			return total, err
		}
		// Copy under the shard lock: writes patch filled blocks in place.
		s := c.shard(index)
		s.mu.Lock()
		if inBlock >= blk.valid {
			s.mu.Unlock()
			return total, io.EOF
		}
		n := copy(p[total:], blk.data[inBlock:blk.valid])
		short := blk.valid < c.blockSize
		s.mu.Unlock()
		total += n
		if short {
			// Short block: end of the backing object.
			if total < len(p) {
				return total, io.EOF
			}
			break
		}
	}
	return total, nil
}

// WriteAt implements RandomAccess: write-through to the backing store, then
// drop any cached blocks the write spans so subsequent reads refetch them.
func (c *BlockCache) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("cache: negative offset")
	}
	n, err := c.backing.WriteAt(p, off)
	c.patch(p[:n], off)
	return n, err
}

// patch invalidates the cached blocks a write spans, locking each spanned
// block's shard in turn.
func (c *BlockCache) patch(p []byte, off int64) {
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		index := pos / int64(c.blockSize)
		inBlock := int(pos % int64(c.blockSize))
		span := c.blockSize - inBlock
		if span > len(p)-done {
			span = len(p) - done
		}
		s := c.shard(index)
		s.mu.Lock()
		if el, ok := s.blocks[index]; ok {
			if blk, ok := el.Value.(*cachedBlock); ok {
				// Drop the block rather than patching it in place: the store
				// write and this cache update are two steps, so two racing
				// writers can patch in the opposite order their writes landed
				// in the store — the cache would keep the loser forever. A
				// removal commutes with other removals, so every interleaving
				// converges on a refetch of the store's winner. Marking an
				// in-flight fill stale makes its waiters refetch too.
				if !blk.filled {
					blk.stale = true
				}
				s.lru.Remove(el)
				delete(s.blocks, index)
			}
		}
		s.mu.Unlock()
		done += span
	}
}

// Size implements RandomAccess, always consulting the backing store.
func (c *BlockCache) Size() (int64, error) { return c.backing.Size() }

// Truncate implements RandomAccess, dropping every cached block (length
// changes can shorten any block).
func (c *BlockCache) Truncate(n int64) error {
	if err := c.backing.Truncate(n); err != nil {
		return err
	}
	c.InvalidateAll()
	return nil
}

// Invalidate discards cached blocks overlapping [off, off+length), used when
// a remote-update notification reports external modification.
func (c *BlockCache) Invalidate(off, length int64) {
	if length <= 0 {
		return
	}
	first := off / int64(c.blockSize)
	last := (off + length - 1) / int64(c.blockSize)
	for i := first; i <= last; i++ {
		s := c.shard(i)
		s.mu.Lock()
		if el, ok := s.blocks[i]; ok {
			if blk, bok := el.Value.(*cachedBlock); bok && !blk.filled {
				blk.stale = true // in-flight fill must not serve stale bytes
			}
			s.lru.Remove(el)
			delete(s.blocks, i)
			s.stats.Invalidations++
		}
		s.mu.Unlock()
	}
}

// SetEpoch advances the cache's validity epoch to e, invalidating every
// block tagged with an earlier epoch in O(1). Epochs are monotonic: a value
// at or below the current epoch is a no-op, so out-of-order lease grants
// cannot resurrect invalidated entries. Dead entries are reaped lazily on
// the next access (counted as Invalidations there) or by eviction.
func (c *BlockCache) SetEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns the cache's current validity epoch.
func (c *BlockCache) Epoch() uint64 { return c.epoch.Load() }

// ResetEpoch rebases the cache onto a NEW epoch regime: the epoch is set to e
// unconditionally — backwards included — and every cached block is discarded.
// SetEpoch's monotonicity assumes all epochs come from one issuer; when the
// issuer changes (a client re-leasing from a different replica, or from a
// server that restarted and reset its counters, each numbering epochs
// independently), old tags are not comparable with new values and could
// collide with them numerically, so nothing cached under the old regime may
// survive the switch. In-flight fills that began under the old regime are
// marked stale by the invalidation sweep, so their bytes are discarded even
// if their tag happens to equal e.
func (c *BlockCache) ResetEpoch(e uint64) {
	c.epoch.Store(e)
	c.InvalidateAll()
}

// InvalidateAll discards every cached block.
func (c *BlockCache) InvalidateAll() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.stats.Invalidations += int64(s.lru.Len())
		for el := s.lru.Front(); el != nil; el = el.Next() {
			if blk, ok := el.Value.(*cachedBlock); ok && !blk.filled {
				blk.stale = true
			}
		}
		s.lru.Init()
		s.blocks = make(map[int64]*list.Element, s.capacity)
		s.mu.Unlock()
	}
}

// Len returns the number of blocks currently cached across all shards.
func (c *BlockCache) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}
