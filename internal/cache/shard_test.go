package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestDefaultShardCountScalesWithCapacity(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {8, 1}, {15, 1},
		{16, 2}, {31, 2}, {32, 4}, {64, 8},
		{128, 16}, {1024, 16}, // capped at maxShards
	}
	for _, tc := range cases {
		if got := defaultShardCount(tc.capacity); got != tc.want {
			t.Errorf("defaultShardCount(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
}

func TestNewBlockCacheShardedValidation(t *testing.T) {
	store := NewMemStore()
	if _, err := NewBlockCacheSharded(store, 64, 16, 3); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if _, err := NewBlockCacheSharded(store, 64, 4, 8); err == nil {
		t.Error("shards > capacity accepted")
	}
	if _, err := NewBlockCacheSharded(nil, 64, 16, 4); err == nil {
		t.Error("nil backing accepted")
	}
	c, err := NewBlockCacheSharded(store, 64, 16, 4)
	if err != nil {
		t.Fatalf("NewBlockCacheSharded: %v", err)
	}
	if c.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", c.ShardCount())
	}
}

func TestShardedCapacityDividesAcrossShards(t *testing.T) {
	store := NewMemStore()
	// 70 blocks of content; capacity 10 over 4 shards -> shard caps 3,3,2,2.
	if _, err := store.WriteAt(bytes.Repeat([]byte{7}, 70*16), 0); err != nil {
		t.Fatal(err)
	}
	c, err := NewBlockCacheSharded(store, 16, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for i := 0; i < 70; i++ {
		if _, err := c.ReadAt(buf, int64(i)*16); err != nil {
			t.Fatalf("read block %d: %v", i, err)
		}
	}
	if got := c.Len(); got > 10 {
		t.Fatalf("Len = %d exceeds capacity 10", got)
	}
	stats := c.Stats()
	if stats.Misses != 70 {
		t.Fatalf("misses = %d, want 70 (every block read once)", stats.Misses)
	}
}

// TestShardedBlockCacheRaceExactCounts is the sharded cache's -race stress
// test: 16 goroutines hammer an overlapping key set and per-shard hit/miss
// counters are asserted EXACTLY. Determinism comes from phasing: a
// single-threaded warm pass takes every miss, then the concurrent pass runs
// entirely on hits (capacity covers the whole working set, so nothing
// evicts).
func TestShardedBlockCacheRaceExactCounts(t *testing.T) {
	const (
		blockSize  = 64
		nBlocks    = 32
		shards     = 4
		goroutines = 16
		rounds     = 25
	)
	store := NewMemStore()
	content := make([]byte, nBlocks*blockSize)
	for i := range content {
		content[i] = byte(i)
	}
	if _, err := store.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	c, err := NewBlockCacheSharded(store, blockSize, nBlocks, shards)
	if err != nil {
		t.Fatal(err)
	}

	// Warm pass: exactly one miss per block, round-robined across shards.
	buf := make([]byte, blockSize)
	for i := 0; i < nBlocks; i++ {
		if _, err := c.ReadAt(buf, int64(i)*blockSize); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			p := make([]byte, blockSize)
			for r := 0; r < rounds; r++ {
				// Every goroutine touches every block: maximal key overlap.
				for i := 0; i < nBlocks; i++ {
					idx := (i + g) % nBlocks // stagger start points
					if _, err := c.ReadAt(p, int64(idx)*blockSize); err != nil {
						t.Errorf("g%d read %d: %v", g, idx, err)
						return
					}
					if p[0] != byte(idx*blockSize) {
						t.Errorf("g%d block %d corrupt", g, idx)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	const (
		blocksPerShard = nBlocks / shards
		wantMisses     = int64(blocksPerShard)                            // warm pass only
		wantHits       = int64(goroutines*rounds) * int64(blocksPerShard) // hot pass
	)
	for i, s := range c.ShardStats() {
		if s.Misses != wantMisses {
			t.Errorf("shard %d misses = %d, want exactly %d", i, s.Misses, wantMisses)
		}
		if s.Hits != wantHits {
			t.Errorf("shard %d hits = %d, want exactly %d", i, s.Hits, wantHits)
		}
		if s.Evictions != 0 || s.Invalidations != 0 {
			t.Errorf("shard %d evictions/invalidations = %d/%d, want 0/0", i, s.Evictions, s.Invalidations)
		}
	}
	total := c.Stats()
	if total.Misses != wantMisses*shards || total.Hits != wantHits*shards {
		t.Errorf("aggregate stats %+v diverge from shard sums", total)
	}
}

// TestShardedBlockCacheConcurrentReadWrite exercises writers racing readers
// across shard boundaries under -race; correctness is checked against the
// backing store afterwards.
func TestShardedBlockCacheConcurrentReadWrite(t *testing.T) {
	const blockSize, nBlocks = 32, 64
	store := NewMemStore()
	if _, err := store.WriteAt(make([]byte, nBlocks*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	c, err := NewBlockCacheSharded(store, blockSize, nBlocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func(g int) { // writer: stamps its lane
			defer wg.Done()
			stamp := bytes.Repeat([]byte{byte(g + 1)}, blockSize)
			for i := 0; i < 50; i++ {
				off := int64(((g*7)+i)%nBlocks) * blockSize
				if _, err := c.WriteAt(stamp, off); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
		go func(g int) { // reader: spans block boundaries
			defer wg.Done()
			p := make([]byte, blockSize*3)
			for i := 0; i < 50; i++ {
				off := int64(((g * 5) + i) % (nBlocks - 3) * blockSize)
				if _, err := c.ReadAt(p, off); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Cached view must now equal the backing store everywhere.
	want := make([]byte, nBlocks*blockSize)
	if _, err := store.ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, nBlocks*blockSize)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache diverged from backing store after concurrent read/write")
	}
}

func TestShardedInvalidateCrossesShards(t *testing.T) {
	const blockSize, nBlocks = 16, 32
	store := NewMemStore()
	if _, err := store.WriteAt(bytes.Repeat([]byte{1}, nBlocks*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	c, err := NewBlockCacheSharded(store, blockSize, nBlocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, nBlocks*blockSize)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != nBlocks {
		t.Fatalf("Len = %d, want %d", c.Len(), nBlocks)
	}
	// Invalidate a range spanning all four shards (blocks 4..11).
	c.Invalidate(4*blockSize, 8*blockSize)
	if got := c.Len(); got != nBlocks-8 {
		t.Fatalf("Len after Invalidate = %d, want %d", got, nBlocks-8)
	}
	if inv := c.Stats().Invalidations; inv != 8 {
		t.Fatalf("invalidations = %d, want 8", inv)
	}
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Fatalf("Len after InvalidateAll = %d, want 0", c.Len())
	}
}

func BenchmarkShardedCacheParallelHits(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const blockSize, nBlocks = 512, 64
			store := NewMemStore()
			if _, err := store.WriteAt(make([]byte, nBlocks*blockSize), 0); err != nil {
				b.Fatal(err)
			}
			c, err := NewBlockCacheSharded(store, blockSize, nBlocks, shards)
			if err != nil {
				b.Fatal(err)
			}
			warm := make([]byte, nBlocks*blockSize)
			if _, err := c.ReadAt(warm, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				p := make([]byte, blockSize)
				i := 0
				for pb.Next() {
					if _, err := c.ReadAt(p, int64(i%nBlocks)*blockSize); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}
