package wire

import (
	"bytes"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
)

// Tests for the submitter seam (PR 10): the portable reference semantics,
// the splice/advance helpers BatchWriter flushes are built from, backend
// selection (probe, kill switch), and — where the kernel grants io_uring —
// byte-equality between the ring path and the portable path.

func TestSpliceRefs(t *testing.T) {
	cases := []struct {
		name string
		buf  string
		refs []payloadRef
		want []string
	}{
		{"empty", "", nil, nil},
		{"inline only", "abcdef", nil, []string{"abcdef"}},
		{"ref mid", "abcd", []payloadRef{{pos: 2, data: []byte("XY")}}, []string{"ab", "XY", "cd"}},
		{"ref at start", "abcd", []payloadRef{{pos: 0, data: []byte("XY")}}, []string{"XY", "abcd"}},
		{"ref at end", "abcd", []payloadRef{{pos: 4, data: []byte("XY")}}, []string{"abcd", "XY"}},
		{"adjacent refs", "ab", []payloadRef{{pos: 2, data: []byte("X")}, {pos: 2, data: []byte("Y")}},
			[]string{"ab", "X", "Y"}},
	}
	for _, tc := range cases {
		segs := spliceRefs([]byte(tc.buf), tc.refs)
		var got []string
		for _, s := range segs {
			got = append(got, string(s))
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: spliceRefs = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestAdvanceBufs(t *testing.T) {
	mk := func() net.Buffers {
		return net.Buffers{[]byte("abc"), []byte("de"), []byte("fghi")}
	}
	flat := func(b net.Buffers) string {
		var sb bytes.Buffer
		for _, s := range b {
			sb.Write(s)
		}
		return sb.String()
	}
	for n, want := range map[int]string{
		0: "abcdefghi", 1: "bcdefghi", 3: "defghi", 4: "efghi", 5: "fghi", 9: "", 12: "",
	} {
		if got := flat(advanceBufs(mk(), n)); got != want {
			t.Errorf("advanceBufs(%d) leaves %q, want %q", n, got, want)
		}
	}
}

func TestPortableSubmit(t *testing.T) {
	var a, b bytes.Buffer
	err := portableSubmit([]Span{
		{W: &a, Bufs: net.Buffers{[]byte("hello "), nil, []byte("world")}},
		{W: &b, Bufs: net.Buffers{[]byte("data")}},
		{W: &a, Bufs: nil}, // empty span is a no-op
	})
	if err != nil {
		t.Fatalf("portableSubmit: %v", err)
	}
	if a.String() != "hello world" || b.String() != "data" {
		t.Fatalf("portableSubmit wrote %q / %q", a.String(), b.String())
	}
}

// TestKillSwitchForcesPortable: AF_NO_URING must veto the backend before
// any probing happens.
func TestKillSwitchForcesPortable(t *testing.T) {
	t.Setenv(envNoURing, "1")
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	if s := newSubmitter(w, nil); s != nil {
		t.Fatalf("submitter engaged despite %s: %s", envNoURing, s.Name())
	}
	if bw := NewBatchWriter(w, nil); bw.Backend() != "portable" {
		t.Fatalf("BatchWriter backend = %q, want portable", bw.Backend())
	}
}

// TestProbeDecidesBackendCleanly: on hosts without io_uring (ENOSYS — e.g.
// sandboxed kernels) the probe must fail silently and leave the portable
// path carrying traffic; where the kernel qualifies, the submitter must
// engage. Either way NewBatchWriter never errors and frames flow.
func TestProbeDecidesBackendCleanly(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	bw := NewBatchWriter(w, nil)
	t.Logf("submission backend on this host: %s", bw.Backend())

	done := make(chan error, 1)
	go func() { done <- bw.WriteRequest(&Request{Op: OpRead, Seq: 7, N: 32}) }()
	req, err := NewReader(r).ReadRequest()
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("WriteRequest: %v", werr)
	}
	if req.Op != OpRead || req.Seq != 7 || req.N != 32 {
		t.Fatalf("frame mangled by %s backend: %+v", bw.Backend(), req)
	}

	// A non-fd writer must never engage the ring backend.
	if bw := NewBatchWriter(io.Discard, nil); bw.Backend() != "portable" {
		t.Fatalf("non-fd writer got backend %q", bw.Backend())
	}
}

// recordingSubmitter captures what writeBatch routes through the seam.
type recordingSubmitter struct {
	spans [][]Span
	out   map[io.Writer]*bytes.Buffer
}

func (r *recordingSubmitter) Name() string { return "recording" }
func (r *recordingSubmitter) Submit(spans []Span) error {
	cp := make([]Span, len(spans))
	copy(cp, spans)
	r.spans = append(r.spans, cp)
	for _, s := range spans {
		for _, b := range s.Bufs {
			r.out[s.W].Write(b)
		}
	}
	return nil
}

// TestBatchWriterRoutesThroughSubmitter: with a submitter installed, every
// flush must arrive as one Submit call whose spans carry exactly the bytes
// the portable path would have written — control first, data second.
func TestBatchWriterRoutesThroughSubmitter(t *testing.T) {
	var wantCtrl, wantData bytes.Buffer
	ref := NewBatchWriter(&wantCtrl, &wantData)
	payload := bytes.Repeat([]byte{0xAB}, 3*inlinePayload) // forces a dataRef
	if err := ref.WritePost(&Request{Op: OpWrite, Seq: 1, N: int64(len(payload))}, payload); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteRequest(&Request{Op: OpRead, Seq: 2, N: 64}); err != nil {
		t.Fatal(err)
	}

	var ctrl, data bytes.Buffer
	rec := &recordingSubmitter{out: map[io.Writer]*bytes.Buffer{}}
	bw := NewBatchWriter(&ctrl, &data)
	bw.sub = rec
	rec.out[&ctrl] = &ctrl
	rec.out[&data] = &data
	if bw.Backend() != "recording" {
		t.Fatalf("Backend() = %q", bw.Backend())
	}
	if err := bw.WritePost(&Request{Op: OpWrite, Seq: 1, N: int64(len(payload))}, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteRequest(&Request{Op: OpRead, Seq: 2, N: 64}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(ctrl.Bytes(), wantCtrl.Bytes()) {
		t.Fatalf("control bytes diverge: submitter %d bytes, portable %d bytes", ctrl.Len(), wantCtrl.Len())
	}
	if !bytes.Equal(data.Bytes(), wantData.Bytes()) {
		t.Fatalf("data bytes diverge: submitter %d bytes, portable %d bytes", data.Len(), wantData.Len())
	}
	if len(rec.spans) == 0 {
		t.Fatal("no Submit calls recorded")
	}
	if got := bw.Stats().Backend; got != "recording" {
		t.Fatalf("Stats().Backend = %q", got)
	}
}
