package wire

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// gateWriter blocks inside Write until released, recording each call's
// length. It lets tests hold a flush open so later submissions provably
// coalesce into the next batch.
type gateWriter struct {
	mu      sync.Mutex
	entered chan struct{} // signaled on each Write entry
	release chan struct{} // each Write waits for one token
	writes  [][]byte
}

func newGateWriter() *gateWriter {
	return &gateWriter{entered: make(chan struct{}, 64), release: make(chan struct{}, 64)}
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	<-g.release
	g.mu.Lock()
	g.writes = append(g.writes, append([]byte(nil), p...))
	g.mu.Unlock()
	return len(p), nil
}

func (g *gateWriter) stream() []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	var all []byte
	for _, w := range g.writes {
		all = append(all, w...)
	}
	return all
}

func (g *gateWriter) calls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.writes)
}

func TestBatchWriterSingleFrameFlushesImmediately(t *testing.T) {
	var out bytes.Buffer
	bw := NewBatchWriter(&out, nil)
	req := &Request{Op: OpRead, Seq: 7, Off: 40, N: 8}
	if err := bw.WriteRequest(req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	got, err := NewReader(&out).ReadRequest()
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.Op != OpRead || got.Seq != 7 || got.Off != 40 || got.N != 8 {
		t.Fatalf("decoded %+v, want the submitted request", got)
	}
	if s := bw.Stats(); s.Flushes != 1 || s.Frames != 1 {
		t.Fatalf("stats = %+v, want 1 flush / 1 frame", s)
	}
}

func TestBatchWriterCoalescesConcurrentSubmissions(t *testing.T) {
	const followers = 6
	g := newGateWriter()
	bw := NewBatchWriter(g, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: its flush blocks in the gate
		defer wg.Done()
		if err := bw.WriteRequest(&Request{Op: OpRead, Seq: 1}); err != nil {
			t.Errorf("leader WriteRequest: %v", err)
		}
	}()
	<-g.entered // leader is inside Write(batch 1)

	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func(seq uint32) {
			defer wg.Done()
			if err := bw.WriteRequest(&Request{Op: OpSize, Seq: seq}); err != nil {
				t.Errorf("follower WriteRequest: %v", err)
			}
		}(uint32(100 + i))
	}
	// Wait until every follower has appended to the accumulating batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bw.mu.Lock()
		n := 0
		if bw.cur != nil {
			n = bw.cur.frames
		}
		bw.mu.Unlock()
		if n == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers accumulated", n, followers)
		}
		time.Sleep(time.Millisecond)
	}

	g.release <- struct{}{} // finish batch 1
	<-g.entered             // leader starts batch 2 (all followers)
	g.release <- struct{}{}
	wg.Wait()

	if got := g.calls(); got != 2 {
		t.Fatalf("writer saw %d writes, want 2 (leader + coalesced batch)", got)
	}
	r := NewReader(bytes.NewReader(g.stream()))
	seen := map[uint32]bool{}
	for i := 0; i < followers+1; i++ {
		req, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		seen[req.Seq] = true
	}
	if !seen[1] || len(seen) != followers+1 {
		t.Fatalf("decoded seqs %v, want leader + %d followers", seen, followers)
	}
	if s := bw.Stats(); s.Flushes != 2 || s.Frames != followers+1 {
		t.Fatalf("stats = %+v, want 2 flushes / %d frames", s, followers+1)
	}
}

func TestBatchWriterLargePayloadByReference(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, inlinePayload*3)
	var out bytes.Buffer
	bw := NewBatchWriter(&out, nil)
	if err := bw.WriteRequest(&Request{Op: OpWrite, Seq: 9, Off: 4, Data: payload}); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	// A small frame after the large one must still land on a clean boundary.
	if err := bw.WriteResponse(&Response{Status: StatusOK, Seq: 9, N: int64(len(payload))}); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	r := NewReader(bytes.NewReader(out.Bytes()))
	req, err := r.ReadRequest()
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if !bytes.Equal(req.Data, payload) {
		t.Fatalf("payload corrupted: got %d bytes", len(req.Data))
	}
	resp, err := r.ReadResponse()
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if resp.Seq != 9 || resp.N != int64(len(payload)) {
		t.Fatalf("trailing response decoded as %+v", resp)
	}
}

func TestBatchWriterLargeResponseDataByReference(t *testing.T) {
	data := bytes.Repeat([]byte{0x5C}, inlinePayload+1)
	var out bytes.Buffer
	bw := NewBatchWriter(&out, nil)
	if err := bw.WriteResponse(&Response{Status: StatusEOF, Seq: 3, Msg: "end", Data: data}); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	resp, err := NewReader(bytes.NewReader(out.Bytes())).ReadResponse()
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if resp.Status != StatusEOF || resp.Msg != "end" || !bytes.Equal(resp.Data, data) {
		t.Fatalf("decoded %+v (%d data bytes)", resp.Status, len(resp.Data))
	}
}

// brokenWriter fails every write.
type brokenWriter struct{ err error }

func (b brokenWriter) Write([]byte) (int, error) { return 0, b.err }

func TestBatchWriterTransportErrorIsSticky(t *testing.T) {
	boom := errors.New("pipe gone")
	bw := NewBatchWriter(brokenWriter{err: boom}, nil)
	if err := bw.WriteRequest(&Request{Op: OpRead}); !errors.Is(err, boom) {
		t.Fatalf("first write err = %v, want %v", err, boom)
	}
	if err := bw.WriteRequest(&Request{Op: OpRead}); !errors.Is(err, boom) {
		t.Fatalf("sticky err = %v, want %v", err, boom)
	}
}

func TestBatchWriterValidationErrorLeavesStreamHealthy(t *testing.T) {
	var out bytes.Buffer
	bw := NewBatchWriter(&out, nil)
	if err := bw.WriteRequest(&Request{Op: Op(200)}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("bad op err = %v, want ErrBadOp", err)
	}
	if err := bw.WriteResponse(&Response{Status: Status(200)}); !errors.Is(err, ErrBadStatus) {
		t.Fatalf("bad status err = %v, want ErrBadStatus", err)
	}
	if err := bw.WriteRequest(&Request{Op: OpSync, Seq: 2}); err != nil {
		t.Fatalf("healthy write after validation error: %v", err)
	}
	req, err := NewReader(&out).ReadRequest()
	if err != nil || req.Op != OpSync {
		t.Fatalf("stream after validation errors: req=%+v err=%v", req, err)
	}
}

func TestBatchWriterPostKeepsDataOrder(t *testing.T) {
	var ctrl, data bytes.Buffer
	bw := NewBatchWriter(&ctrl, &data)
	var want []byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 10+i*300) // crosses the inline threshold
		if err := bw.WritePost(&Request{Op: OpWrite, Seq: uint32(i + 1), N: int64(len(p))}, p); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		want = append(want, p...)
	}
	if !bytes.Equal(data.Bytes(), want) {
		t.Fatalf("data channel bytes diverge from post order")
	}
	r := NewReader(bytes.NewReader(ctrl.Bytes()))
	for i := 0; i < 20; i++ {
		req, err := r.ReadRequest()
		if err != nil || req.Seq != uint32(i+1) {
			t.Fatalf("command %d: req=%+v err=%v", i, req, err)
		}
	}
}

func TestBatchWriterPostWithoutDataChannel(t *testing.T) {
	bw := NewBatchWriter(&bytes.Buffer{}, nil)
	if err := bw.WritePost(&Request{Op: OpWrite, N: 4}, []byte("data")); !errors.Is(err, ErrNoDataChannel) {
		t.Fatalf("err = %v, want ErrNoDataChannel", err)
	}
	if err := bw.WritePost(&Request{Op: OpClose}, nil); err != nil {
		t.Fatalf("payload-less post without data channel: %v", err)
	}
}

func TestBatchWriterConcurrentMixedTraffic(t *testing.T) {
	var ctrl, data lockedBuffer
	bw := NewBatchWriter(&ctrl, &data)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seq := uint32(g*perG + i + 1)
				var err error
				switch i % 3 {
				case 0:
					err = bw.WriteRequest(&Request{Op: OpRead, Seq: seq, N: 64})
				case 1:
					err = bw.WriteRequest(&Request{Op: OpControl, Seq: seq, Data: bytes.Repeat([]byte{byte(g)}, 3000)})
				default:
					err = bw.WritePost(&Request{Op: OpWrite, Seq: seq, N: 8}, []byte("12345678"))
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every frame must decode cleanly from the interleaved stream.
	r := NewReader(bytes.NewReader(ctrl.bytes()))
	decoded := 0
	for {
		if _, err := r.ReadRequest(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("frame %d: stream desynchronized: %v", decoded, err)
			}
			break
		}
		decoded++
	}
	if decoded != goroutines*perG {
		t.Fatalf("decoded %d frames, want %d", decoded, goroutines*perG)
	}
	s := bw.Stats()
	if s.Frames != uint64(goroutines*perG) {
		t.Fatalf("stats.Frames = %d, want %d", s.Frames, goroutines*perG)
	}
	if s.Flushes > s.Frames {
		t.Fatalf("flushes %d exceed frames %d", s.Flushes, s.Frames)
	}
	t.Logf("batching factor: %.2f frames/flush", float64(s.Frames)/float64(s.Flushes))
}

// lockedBuffer is a bytes.Buffer safe for the test's concurrent writers.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *lockedBuffer) bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}
