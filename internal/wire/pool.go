package wire

import "sync"

// PooledBufSize is the capacity of recycled payload buffers. One pooled
// buffer serves any payload up to 64 KiB — far beyond the paper's 2 KiB top
// block size — while keeping an idle session's footprint bounded. Larger
// requests fall back to one-shot allocations that are never parked in the
// pool.
const PooledBufSize = 64 * 1024

// payloadPool recycles payload buffers across concurrent dispatches,
// sessions, and connections. Pointers avoid an allocation per Put.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, PooledBufSize)
		return &b
	},
}

// GetBuf returns a zeroable buffer of length n and the release function that
// recycles it. The caller must invoke release exactly once, after the buffer
// contents have been shipped or copied; the buffer must not be used after
// release. Requests beyond the pooled size are served by a one-shot
// allocation whose release is a no-op, so pooled buffers never exceed
// PooledBufSize: oversized buffers are dropped on return instead of parked.
func GetBuf(n int) ([]byte, func()) {
	if n <= PooledBufSize {
		bp := payloadPool.Get().(*[]byte)
		return (*bp)[:n], func() { putBuf(bp) }
	}
	return make([]byte, n), func() {}
}

// putBuf recycles a pooled buffer, dropping any that grew past the payload
// bound (defensive — GetBuf never hands those out).
func putBuf(bp *[]byte) {
	if cap(*bp) > MaxPayload {
		return
	}
	*bp = (*bp)[:cap(*bp)]
	payloadPool.Put(bp)
}
