//go:build linux

package wire

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// io_uring write backend. One ring per BatchWriter; each flush queues one
// IORING_OP_WRITEV SQE per span and makes a single io_uring_enter that both
// submits and waits for every completion (IORING_ENTER_GETEVENTS), so a
// two-channel batch — control frames plus posted payloads — costs one
// syscall instead of two writev calls.
//
// The backend is feature-probed at first use and engages only when the
// kernel grants IORING_FEAT_FAST_POLL: the fds under BatchWriter (Go pipes
// and net.Conns) are nonblocking, and without fast poll a full pipe would
// bounce -EAGAIN to userspace instead of completing when the reader drains.
// Kernels without io_uring (ENOSYS — e.g. gVisor) fail the probe cleanly
// and the portable write path carries all traffic.
//
// Descriptor discipline: writers must implement syscall.Conn. Each Submit
// resolves fds inside RawConn.Control, which holds the runtime's fd
// reference for the duration of the kernel round trip — a concurrent Close
// cannot recycle the descriptor under an in-flight SQE. Submission is
// synchronous (the enter waits for all CQEs), so buffers and iovec arrays
// are provably live across kernel access without registration.

const (
	sysIOURingSetup = 425
	sysIOURingEnter = 426

	ioringOffSQRing = 0x0
	ioringOffCQRing = 0x8000000
	ioringOffSQEs   = 0x10000000

	ioringEnterGetevents = 1 << 0

	ioringFeatSingleMmap = 1 << 0
	ioringFeatFastPoll   = 1 << 5

	ioringOpWritev = 2

	// uringEntries sizes each ring. A flush submits at most two SQEs (one
	// per span) plus short-write resubmissions, one round at a time.
	uringEntries = 8

	// iovMax mirrors the kernel's UIO_MAXIOV; a span with more segments than
	// one writev accepts is handed back to the portable path whole.
	iovMax = 1024
)

// Ring geometry structs, byte-compatible with the kernel ABI.

type ioSqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type ioCqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type ioUringParams struct {
	sqEntries, cqEntries, flags      uint32
	sqThreadCPU, sqThreadIdle        uint32
	features, wqFd                   uint32
	resv                             [3]uint32
	sqOff                            ioSqringOffsets
	cqOff                            ioCqringOffsets
}

type ioUringSqe struct {
	opcode   uint8
	flags    uint8
	ioprio   uint16
	fd       int32
	off      uint64
	addr     uint64
	length   uint32
	opFlags  uint32
	userData uint64
	pad      [3]uint64
}

type ioUringCqe struct {
	userData uint64
	res      int32
	flags    uint32
}

// uring owns one ring's fd and mappings. All access is serialized by the
// owning submitter (BatchWriter admits one flush leader at a time).
type uring struct {
	fd       int
	features uint32
	single   bool // SQ and CQ share one mapping (IORING_FEAT_SINGLE_MMAP)

	sqMem, cqMem, sqeMem []byte

	sqHead, sqTail, sqMask *uint32
	sqArray                unsafe.Pointer // []uint32 index array
	sqEntries              uint32
	sqes                   unsafe.Pointer // []ioUringSqe

	cqHead, cqTail, cqMask *uint32
	cqes                   unsafe.Pointer // []ioUringCqe
}

func uringEnter(fd int, toSubmit, minComplete, flags uint32) (int, syscall.Errno) {
	r, _, errno := syscall.Syscall6(sysIOURingEnter,
		uintptr(fd), uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
	return int(r), errno
}

func setupURing(entries uint32) (*uring, error) {
	var p ioUringParams
	fd, _, errno := syscall.Syscall(sysIOURingSetup,
		uintptr(entries), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, errno
	}
	r := &uring{fd: int(fd), features: p.features}

	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(ioUringCqe{}))
	single := p.features&ioringFeatSingleMmap != 0
	r.single = single
	if single && cqSize > sqSize {
		sqSize = cqSize
	}
	prot := syscall.PROT_READ | syscall.PROT_WRITE
	flags := syscall.MAP_SHARED | syscall.MAP_POPULATE

	var err error
	if r.sqMem, err = syscall.Mmap(r.fd, ioringOffSQRing, sqSize, prot, flags); err != nil {
		r.close()
		return nil, fmt.Errorf("sq ring mmap: %w", err)
	}
	if single {
		r.cqMem = r.sqMem
	} else if r.cqMem, err = syscall.Mmap(r.fd, ioringOffCQRing, cqSize, prot, flags); err != nil {
		r.close()
		return nil, fmt.Errorf("cq ring mmap: %w", err)
	}
	sqeBytes := int(p.sqEntries) * int(unsafe.Sizeof(ioUringSqe{}))
	if r.sqeMem, err = syscall.Mmap(r.fd, ioringOffSQEs, sqeBytes, prot, flags); err != nil {
		r.close()
		return nil, fmt.Errorf("sqe array mmap: %w", err)
	}

	sq := unsafe.Pointer(&r.sqMem[0])
	r.sqHead = (*uint32)(unsafe.Add(sq, p.sqOff.head))
	r.sqTail = (*uint32)(unsafe.Add(sq, p.sqOff.tail))
	r.sqMask = (*uint32)(unsafe.Add(sq, p.sqOff.ringMask))
	r.sqArray = unsafe.Add(sq, p.sqOff.array)
	r.sqEntries = p.sqEntries
	r.sqes = unsafe.Pointer(&r.sqeMem[0])

	cq := unsafe.Pointer(&r.cqMem[0])
	r.cqHead = (*uint32)(unsafe.Add(cq, p.cqOff.head))
	r.cqTail = (*uint32)(unsafe.Add(cq, p.cqOff.tail))
	r.cqMask = (*uint32)(unsafe.Add(cq, p.cqOff.ringMask))
	r.cqes = unsafe.Add(cq, p.cqOff.cqes)
	return r, nil
}

func (r *uring) close() {
	if r.sqeMem != nil {
		_ = syscall.Munmap(r.sqeMem)
	}
	if r.cqMem != nil && !r.single {
		_ = syscall.Munmap(r.cqMem)
	}
	if r.sqMem != nil {
		_ = syscall.Munmap(r.sqMem)
	}
	_ = syscall.Close(r.fd)
	r.sqMem, r.cqMem, r.sqeMem = nil, nil, nil
}

func (r *uring) sqe(i uint32) *ioUringSqe {
	return (*ioUringSqe)(unsafe.Add(r.sqes, uintptr(i)*unsafe.Sizeof(ioUringSqe{})))
}

func (r *uring) cqe(i uint32) *ioUringCqe {
	return (*ioUringCqe)(unsafe.Add(r.cqes, uintptr(i)*unsafe.Sizeof(ioUringCqe{})))
}

func (r *uring) sqIndex(i uint32) *uint32 {
	return (*uint32)(unsafe.Add(r.sqArray, uintptr(i)*4))
}

// uringOp is one writev to queue: fd plus an assembled iovec array.
type uringOp struct {
	fd    int32
	iov   []syscall.Iovec
	total int
}

// submitAndWait queues every op, crosses the kernel once to submit, waits
// for all completions, and returns each op's raw result (bytes written, or
// a negated errno). The caller guarantees len(ops) <= sqEntries and that no
// other submission is in flight on this ring.
func (r *uring) submitAndWait(ops []uringOp) ([]int32, error) {
	n := uint32(len(ops))
	tail := *r.sqTail
	mask := *r.sqMask
	for i := range ops {
		idx := (tail + uint32(i)) & mask
		sqe := r.sqe(idx)
		*sqe = ioUringSqe{
			opcode:   ioringOpWritev,
			fd:       ops[i].fd,
			addr:     uint64(uintptr(unsafe.Pointer(&ops[i].iov[0]))),
			length:   uint32(len(ops[i].iov)),
			userData: uint64(i),
		}
		*r.sqIndex(idx) = idx
	}
	// Publish the new tail; the store must be observed after the SQE writes.
	atomic.StoreUint32(r.sqTail, tail+n)

	// Submit everything. The first enter also waits for all completions;
	// an EINTR retry degenerates to submit-then-wait rounds.
	rem := n
	for rem > 0 {
		got, errno := uringEnter(r.fd, rem, n, ioringEnterGetevents)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return nil, errno
		}
		rem -= uint32(got)
	}

	res := make([]int32, n)
	reaped := uint32(0)
	for reaped < n {
		head := atomic.LoadUint32(r.cqHead)
		avail := atomic.LoadUint32(r.cqTail) - head
		for ; avail > 0 && reaped < n; avail-- {
			cqe := r.cqe(head & *r.cqMask)
			if cqe.userData < uint64(n) {
				res[cqe.userData] = cqe.res
			}
			head++
			reaped++
		}
		atomic.StoreUint32(r.cqHead, head)
		if reaped < n {
			if _, errno := uringEnter(r.fd, 0, n-reaped, ioringEnterGetevents); errno != 0 && errno != syscall.EINTR {
				return nil, errno
			}
		}
	}
	runtime.KeepAlive(ops)
	return res, nil
}

// uringSupported probes once per process: can a ring be created, and does
// the kernel grant fast poll for nonblocking fds.
var uringSupported = sync.OnceValue(func() bool {
	r, err := setupURing(2)
	if err != nil {
		return false
	}
	ok := r.features&ioringFeatFastPoll != 0
	r.close()
	return ok
})

// uringSubmitter drives one ring for a BatchWriter's writer pair.
type uringSubmitter struct {
	ring *uring
	// conns resolves each writer to its RawConn; fds are extracted inside
	// Control per Submit so the runtime cannot recycle them mid-flight.
	conns map[io.Writer]syscall.RawConn
}

// newURingSubmitter returns an io_uring backend for the writer pair, or nil
// when the kernel or the writers cannot support it (the portable path is
// then the right one). data may be nil.
func newURingSubmitter(w, data io.Writer) Submitter {
	if !uringSupported() {
		return nil
	}
	conns := make(map[io.Writer]syscall.RawConn, 2)
	for _, wr := range []io.Writer{w, data} {
		if wr == nil {
			continue
		}
		sc, ok := wr.(syscall.Conn)
		if !ok {
			return nil
		}
		rc, err := sc.SyscallConn()
		if err != nil {
			return nil
		}
		conns[wr] = rc
	}
	ring, err := setupURing(uringEntries)
	if err != nil {
		return nil
	}
	s := &uringSubmitter{ring: ring, conns: conns}
	// The ring fd lives as long as the BatchWriter; transports hold those
	// for their session lifetime, so reclamation rides the collector.
	runtime.SetFinalizer(s, func(s *uringSubmitter) { s.ring.close() })
	return s
}

func (s *uringSubmitter) Name() string { return "io_uring" }

// Submit ships the spans through the ring, one WRITEV SQE per span and one
// enter per round. Short writes (a nonblocking pipe accepting only part of
// an iovec) resubmit the remainder; shapes the ring cannot take (unknown
// writer, iovec overflow) fall back to the portable path before anything is
// queued. Failures after submission are returned as-is — bytes may be on
// the stream, and BatchWriter's sticky-error discipline owns that.
func (s *uringSubmitter) Submit(spans []Span) error {
	work := make([]Span, len(spans))
	copy(work, spans)
	retries := 0
	for {
		ops := make([]uringOp, 0, len(work))
		spanOf := make([]int, 0, len(work))
		for i := range work {
			bufs := trimEmpty(work[i].Bufs)
			work[i].Bufs = bufs
			if len(bufs) == 0 {
				continue
			}
			if _, known := s.conns[work[i].W]; !known || len(bufs) > iovMax {
				// Nothing queued this round: the remainder is intact, so the
				// portable path can carry it whole.
				return portableSubmit(work)
			}
			iov := make([]syscall.Iovec, len(bufs))
			total := 0
			for j := range bufs {
				iov[j].Base = &bufs[j][0]
				iov[j].SetLen(len(bufs[j]))
				total += len(bufs[j])
			}
			ops = append(ops, uringOp{iov: iov, total: total})
			spanOf = append(spanOf, i)
		}
		if len(ops) == 0 {
			return nil
		}

		res, err := s.submitRound(work, ops, spanOf)
		if err != nil {
			return err
		}
		again := false
		for k, r := range res {
			i := spanOf[k]
			switch {
			case r >= 0:
				work[i].Bufs = advanceBufs(work[i].Bufs, int(r))
				if int(r) < ops[k].total {
					again = true
				}
			case r == -int32(syscall.EINTR), r == -int32(syscall.EAGAIN):
				// Fast poll makes EAGAIN rare; retry bounded, then surface it.
				again = true
				retries++
				if retries > 1024 {
					return syscall.Errno(-r)
				}
			default:
				return fmt.Errorf("io_uring writev: %w", syscall.Errno(-r))
			}
		}
		if !again {
			return nil
		}
	}
}

// submitRound resolves every span's fd inside nested RawConn.Control calls
// (pinning the descriptors) and runs one submitAndWait.
func (s *uringSubmitter) submitRound(work []Span, ops []uringOp, spanOf []int) ([]int32, error) {
	var res []int32
	var err error
	var run func(k int) error
	run = func(k int) error {
		if k == len(ops) {
			res, err = s.ring.submitAndWait(ops)
			return nil
		}
		rc := s.conns[work[spanOf[k]].W]
		var inner error
		if cerr := rc.Control(func(fd uintptr) {
			ops[k].fd = int32(fd)
			inner = run(k + 1)
		}); cerr != nil {
			return cerr
		}
		return inner
	}
	if cerr := run(0); cerr != nil {
		return nil, cerr
	}
	return res, err
}

func trimEmpty(bufs net.Buffers) net.Buffers {
	for len(bufs) > 0 && len(bufs[0]) == 0 {
		bufs = bufs[1:]
	}
	return bufs
}
