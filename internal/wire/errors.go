package wire

import (
	"errors"
	"fmt"
	"io"
)

// Sentinel errors corresponding to protocol statuses. The interpose stubs
// translate these into the errors the application sees, so a legacy program
// observing an active file cannot distinguish it from a passive one: EOF is
// io.EOF, unsupported operations surface ErrUnsupported (the paper's
// "dropped with an appropriate return code"), and so on.
var (
	ErrUnsupported = errors.New("operation not supported by this active file implementation")
	ErrClosed      = errors.New("active file session is closed")
	ErrNotFound    = errors.New("object not found")
	ErrBusy        = errors.New("resource busy")

	// Admission-control rejections, produced by a multi-tenant daemon that
	// bounds its intake instead of queueing without limit. ErrOverloaded is
	// transient — the tenant's in-flight bound is momentarily full and the
	// same request can succeed a moment later. ErrQuotaExceeded is a standing
	// limit (session count, byte budget) the tenant must release resources to
	// get under. ErrShuttingDown means the server is draining: in-flight work
	// finishes, new work is refused, and the connection closes cleanly.
	ErrOverloaded    = errors.New("server overloaded: tenant in-flight bound reached")
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	ErrShuttingDown  = errors.New("server shutting down")
)

// RemoteError is a failure reported by the sentinel with a textual detail.
type RemoteError struct {
	Op  Op
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("sentinel %s: %s", e.Op, e.Msg)
}

// ToError converts a response status (plus its originating op and
// message) into a Go error; StatusOK maps to nil.
func ToError(op Op, st Status, msg string) error {
	switch st {
	case StatusOK:
		return nil
	case StatusEOF:
		return io.EOF
	case StatusUnsupported:
		return ErrUnsupported
	case StatusClosed:
		return ErrClosed
	case StatusNotFound:
		return ErrNotFound
	case StatusBusy:
		return ErrBusy
	case StatusOverloaded:
		return ErrOverloaded
	case StatusQuota:
		return ErrQuotaExceeded
	case StatusShutdown:
		return ErrShuttingDown
	default:
		if msg == "" {
			msg = "unspecified error"
		}
		return &RemoteError{Op: op, Msg: msg}
	}
}

// FromError converts an error produced by a sentinel program into the
// status (and detail message) to send back; nil maps to StatusOK.
func FromError(err error) (Status, string) {
	switch {
	case err == nil:
		return StatusOK, ""
	case errors.Is(err, io.EOF):
		return StatusEOF, ""
	case errors.Is(err, ErrUnsupported):
		return StatusUnsupported, ""
	case errors.Is(err, ErrClosed):
		return StatusClosed, ""
	case errors.Is(err, ErrNotFound):
		return StatusNotFound, ""
	case errors.Is(err, ErrBusy):
		return StatusBusy, ""
	case errors.Is(err, ErrOverloaded):
		return StatusOverloaded, ""
	case errors.Is(err, ErrQuotaExceeded):
		return StatusQuota, ""
	case errors.Is(err, ErrShuttingDown):
		return StatusShutdown, ""
	default:
		return StatusError, err.Error()
	}
}
