package wire

import (
	"io"
	"net"
	"os"
)

// The submitter seam: BatchWriter's flush turns one batch into at most two
// ordered spans — control frames, then posted payloads — and hands them to a
// Submitter in a single call. The portable implementation issues one write
// (or writev via net.Buffers) per span; the Linux io_uring backend queues one
// WRITEV SQE per span and crosses the kernel boundary once for the whole
// batch, halving the submission syscalls of a two-channel flush.
//
// Reads deliberately stay on the portable path. A pending io_uring read
// pins its buffer and fd until the kernel completes or cancels it, which
// turns session teardown into a distributed cancellation problem; the
// DrainReader already amortizes read syscalls by draining readable bytes
// into a user-space buffer, so the submission side is where the remaining
// syscalls live.

// Span is one ordered vectored write destined for a single channel.
type Span struct {
	W    io.Writer
	Bufs net.Buffers
}

// Submitter ships batches of spans. Implementations must preserve byte
// order within each span; ordering across spans of one Submit call is
// unspecified (they target distinct channels). A non-nil error may leave a
// partial span on a stream, so callers must treat it as a sticky transport
// failure — exactly BatchWriter's discipline.
type Submitter interface {
	Submit(spans []Span) error
	// Name identifies the backend ("io_uring") for stats and benchmarks.
	Name() string
}

// envNoURing disables the io_uring backend when set (any non-empty value),
// forcing the portable write path. Kill switch for kernels with io_uring
// present but misbehaving, and for A/B syscall-economy runs.
const envNoURing = "AF_NO_URING"

// newSubmitter picks the best backend for the writer pair, or nil when the
// plain write path is the right one (non-Linux, kernel without io_uring,
// writers that expose no descriptor, or the kill switch). data may be nil.
func newSubmitter(w, data io.Writer) Submitter {
	if os.Getenv(envNoURing) != "" {
		return nil
	}
	return newURingSubmitter(w, data)
}

// portableSubmit is the reference semantics: one Write (or one writev via
// net.Buffers) per span, in span order. It is both the non-Linux path and
// the remainder path when a backend bows out mid-batch.
func portableSubmit(spans []Span) error {
	for _, s := range spans {
		bufs := s.Bufs
		if len(bufs) == 0 {
			continue
		}
		if len(bufs) == 1 {
			if len(bufs[0]) == 0 {
				continue
			}
			if _, err := s.W.Write(bufs[0]); err != nil {
				return err
			}
			continue
		}
		// WriteTo consumes bufs; spans are built fresh per flush, so the
		// caller never observes the drained header.
		if _, err := bufs.WriteTo(s.W); err != nil {
			return err
		}
	}
	return nil
}

// spliceRefs stitches by-reference payloads into buf at their recorded
// positions, producing the vectored form of one span. A nil return means
// the span carries no bytes.
func spliceRefs(buf []byte, refs []payloadRef) net.Buffers {
	if len(refs) == 0 {
		if len(buf) == 0 {
			return nil
		}
		return net.Buffers{buf}
	}
	segs := make(net.Buffers, 0, 2*len(refs)+1)
	prev := 0
	for _, ref := range refs {
		if ref.pos > prev {
			segs = append(segs, buf[prev:ref.pos])
		}
		segs = append(segs, ref.data)
		prev = ref.pos
	}
	if prev < len(buf) {
		segs = append(segs, buf[prev:])
	}
	return segs
}

// advanceBufs drops n written bytes from the front of bufs, trimming a
// partially written buffer in place (the slice header copy, not the bytes).
func advanceBufs(bufs net.Buffers, n int) net.Buffers {
	for n > 0 && len(bufs) > 0 {
		if n >= len(bufs[0]) {
			n -= len(bufs[0])
			bufs = bufs[1:]
			continue
		}
		bufs[0] = bufs[0][n:]
		n = 0
	}
	return bufs
}
