package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoders must never panic on arbitrary input — a corrupt or
// malicious peer can put any bytes on a pipe.

func TestDecodeRequestNeverPanics(t *testing.T) {
	f := func(frame []byte) bool {
		DecodeRequest(frame) // any outcome but panic is acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeResponseNeverPanics(t *testing.T) {
	f := func(frame []byte) bool {
		DecodeResponse(frame)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReaderNeverPanicsOnGarbageStream(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		garbage := make([]byte, int(n)%4096)
		rng.Read(garbage)
		r := NewReader(bytes.NewReader(garbage))
		for i := 0; i < 8; i++ {
			if _, err := r.ReadRequest(); err != nil {
				break
			}
		}
		r2 := NewReader(bytes.NewReader(garbage))
		for i := 0; i < 8; i++ {
			if _, err := r2.ReadResponse(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValidPrefixMutations(t *testing.T) {
	// Start from a valid encoding and corrupt single bytes: decoding must
	// either fail cleanly or produce a structurally valid request.
	base, err := AppendRequest(nil, &Request{Op: OpWrite, Seq: 7, Off: 9, N: 5, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	body := base[4:] // strip the length prefix; DecodeRequest takes the body
	for i := range body {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mutated := append([]byte(nil), body...)
			mutated[i] ^= delta
			req, err := DecodeRequest(mutated)
			if err == nil && !req.Op.Valid() {
				t.Fatalf("mutation at %d decoded invalid op %v", i, req.Op)
			}
		}
	}
}
