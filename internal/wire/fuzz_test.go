package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoders must never panic on arbitrary input — a corrupt or
// malicious peer can put any bytes on a pipe.

func TestDecodeRequestNeverPanics(t *testing.T) {
	f := func(frame []byte) bool {
		DecodeRequest(frame) // any outcome but panic is acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeResponseNeverPanics(t *testing.T) {
	f := func(frame []byte) bool {
		DecodeResponse(frame)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReaderNeverPanicsOnGarbageStream(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		garbage := make([]byte, int(n)%4096)
		rng.Read(garbage)
		r := NewReader(bytes.NewReader(garbage))
		for i := 0; i < 8; i++ {
			if _, err := r.ReadRequest(); err != nil {
				break
			}
		}
		r2 := NewReader(bytes.NewReader(garbage))
		for i := 0; i < 8; i++ {
			if _, err := r2.ReadResponse(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBatchedStreamTornBoundaries covers the decode side of frame batching:
// a BatchWriter-built multi-frame stream truncated at an arbitrary byte —
// mid-batch, mid-frame, mid-payload — must yield every complete frame intact
// and then fail cleanly (io.EOF on a frame boundary, io.ErrUnexpectedEOF
// inside one), never panic or deliver a torn frame as data.
func TestBatchedStreamTornBoundaries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Batch 3..10 request frames with payload sizes straddling the
		// by-value/by-reference threshold, so cuts land in both splice paths.
		nFrames := 3 + rng.Intn(8)
		reqs := make([]Request, nFrames)
		var stream bytes.Buffer
		bw := NewBatchWriter(&stream, nil)
		var ends []int // stream offset after each frame
		for i := range reqs {
			size := rng.Intn(2 * inlinePayload)
			payload := make([]byte, size)
			rng.Read(payload)
			reqs[i] = Request{
				Op:   OpWrite,
				Seq:  uint32(i + 1),
				Off:  rng.Int63(),
				N:    int64(size),
				Data: payload,
			}
			if err := bw.WriteRequest(&reqs[i]); err != nil {
				t.Fatalf("WriteRequest: %v", err)
			}
			ends = append(ends, stream.Len())
		}
		full := stream.Bytes()

		// Sample cut points, always including every frame boundary.
		cuts := append([]int{0, len(full)}, ends...)
		for i := 0; i < 16; i++ {
			cuts = append(cuts, rng.Intn(len(full)+1))
		}
		for _, cut := range cuts {
			r := NewReader(bytes.NewReader(full[:cut]))
			wantComplete := 0
			for _, end := range ends {
				if end <= cut {
					wantComplete++
				}
			}
			var decoded int
			var err error
			for {
				var req Request
				req, err = r.ReadRequest()
				if err != nil {
					break
				}
				if decoded >= len(reqs) {
					t.Fatalf("cut %d: decoded more frames than were written", cut)
				}
				want := reqs[decoded]
				if req.Op != want.Op || req.Seq != want.Seq || req.Off != want.Off || !bytes.Equal(req.Data, want.Data) {
					t.Fatalf("cut %d: frame %d decoded torn/corrupt", cut, decoded)
				}
				decoded++
			}
			if decoded != wantComplete {
				t.Fatalf("cut %d: decoded %d complete frames, want %d (err %v)", cut, decoded, wantComplete, err)
			}
			onBoundary := cut == 0 || wantComplete > 0 && ends[wantComplete-1] == cut
			if onBoundary {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("cut %d on frame boundary: err = %v, want io.EOF", cut, err)
				}
			} else if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d mid-frame: err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValidPrefixMutations(t *testing.T) {
	// Start from a valid encoding and corrupt single bytes: decoding must
	// either fail cleanly or produce a structurally valid request.
	base, err := AppendRequest(nil, &Request{Op: OpWrite, Seq: 7, Off: 9, N: 5, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	body := base[4:] // strip the length prefix; DecodeRequest takes the body
	for i := range body {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mutated := append([]byte(nil), body...)
			mutated[i] ^= delta
			req, err := DecodeRequest(mutated)
			if err == nil && !req.Op.Valid() {
				t.Fatalf("mutation at %d decoded invalid op %v", i, req.Op)
			}
		}
	}
}
