// Package wire implements the framed binary protocol spoken between the
// active-file stubs in the application and the sentinel on the other side of
// the control channel. It corresponds to the command set the paper's
// process-plus-control implementation carries over its third pipe ("read 50",
// "write 30", and every other file operation as a command with arguments).
//
// A request frame is laid out as:
//
//	[4B frame length][1B op][4B seq][8B off][8B n][payload]
//
// and a response frame as:
//
//	[4B frame length][1B status][4B seq][8B n][4B msg length][msg][payload]
//
// All integers are big-endian. The frame length counts everything after the
// length field itself.
//
// # Correlation and pipelining
//
// The Seq field is the correlation key of the protocol: a client may keep
// any number of requests in flight on one channel, and a server may answer
// them in any order — each response carries the Seq of the request it
// answers, and nothing else ties the two together. Clients allocate sequence
// numbers from a SeqCounter (concurrency-safe) and match responses by Seq;
// ipc.Mux implements that matching over a pipe pair. Strict request/response
// lockstep is merely the degenerate single-in-flight case.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Op identifies a file operation forwarded to the sentinel. The set mirrors
// the Win32 file API calls the paper's stubs intercept.
type Op uint8

// Operations carried on the control channel.
const (
	OpOpen     Op = iota + 1 // session establishment
	OpRead                   // read N bytes at Off
	OpWrite                  // write payload at Off
	OpSeek                   // seek to Off relative to whence N
	OpSize                   // GetFileSize
	OpTruncate               // set end of file to Off
	OpSync                   // flush buffers
	OpLock                   // lock byte range [Off, Off+N)
	OpUnlock                 // unlock byte range [Off, Off+N)
	OpStat                   // extended attributes
	OpClose                  // session teardown
	OpControl                // program-specific out-of-band command
)

var opNames = map[Op]string{
	OpOpen:     "open",
	OpRead:     "read",
	OpWrite:    "write",
	OpSeek:     "seek",
	OpSize:     "size",
	OpTruncate: "truncate",
	OpSync:     "sync",
	OpLock:     "lock",
	OpUnlock:   "unlock",
	OpStat:     "stat",
	OpClose:    "close",
	OpControl:  "control",
}

// String returns the lower-case operation name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a known operation.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}

// Status is the result category carried in a response frame.
type Status uint8

// Response statuses.
const (
	StatusOK          Status = iota + 1 // success
	StatusError                         // generic failure; Msg has detail
	StatusUnsupported                   // operation not supported by strategy/program
	StatusEOF                           // end of file reached
	StatusClosed                        // session already closed
	StatusNotFound                      // named object missing
	StatusBusy                          // resource locked by another session
)

var statusNames = map[Status]string{
	StatusOK:          "ok",
	StatusError:       "error",
	StatusUnsupported: "unsupported",
	StatusEOF:         "eof",
	StatusClosed:      "closed",
	StatusNotFound:    "not found",
	StatusBusy:        "busy",
}

// String returns the lower-case status name.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Valid reports whether s names a known status.
func (s Status) Valid() bool {
	_, ok := statusNames[s]
	return ok
}

// SeqCounter allocates correlation sequence numbers for pipelined
// exchanges. It is safe for concurrent use; the zero value is ready. The
// first allocated value is 1, so Seq 0 never names an in-flight request.
type SeqCounter struct {
	n atomic.Uint32
}

// Next returns the next sequence number.
func (c *SeqCounter) Next() uint32 { return c.n.Add(1) }

// Request is one operation sent from the application stubs to the sentinel.
type Request struct {
	Op   Op
	Seq  uint32 // matches the response; assigned by the client
	Off  int64  // offset, seek target, lock start, or truncate length
	N    int64  // count, seek whence, or lock length
	Data []byte // write payload or control argument
}

// Response answers exactly one Request, matched by Seq.
type Response struct {
	Status Status
	Seq    uint32
	N      int64  // bytes moved, new offset, or size
	Msg    string // human-readable detail when Status is not OK
	Data   []byte // read payload or control result
}

// Frame size limits. MaxPayload bounds a single read or write carried on the
// control channel; larger transfers must be chunked by the caller.
const (
	MaxPayload   = 1 << 22 // 4 MiB
	maxFrame     = MaxPayload + 64
	reqHeaderLen = 1 + 4 + 8 + 8
	rspHeaderLen = 1 + 4 + 8 + 4
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortFrame    = errors.New("wire: frame shorter than header")
	ErrBadOp         = errors.New("wire: unknown operation")
	ErrBadStatus     = errors.New("wire: unknown status")
)

// AppendRequest encodes r onto dst and returns the extended slice.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if len(r.Data) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	if !r.Op.Valid() {
		return dst, ErrBadOp
	}
	frameLen := reqHeaderLen + len(r.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint32(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Off))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.N))
	dst = append(dst, r.Data...)
	return dst, nil
}

// AppendResponse encodes r onto dst and returns the extended slice.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if len(r.Data) > MaxPayload || len(r.Msg) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	if !r.Status.Valid() {
		return dst, ErrBadStatus
	}
	frameLen := rspHeaderLen + len(r.Msg) + len(r.Data)
	if frameLen > maxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, byte(r.Status))
	dst = binary.BigEndian.AppendUint32(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.N))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Msg)))
	dst = append(dst, r.Msg...)
	dst = append(dst, r.Data...)
	return dst, nil
}

// DecodeRequest parses a request from frame (the bytes after the length
// prefix). The returned Request's Data aliases frame.
func DecodeRequest(frame []byte) (Request, error) {
	if len(frame) < reqHeaderLen {
		return Request{}, ErrShortFrame
	}
	r := Request{
		Op:  Op(frame[0]),
		Seq: binary.BigEndian.Uint32(frame[1:5]),
		Off: int64(binary.BigEndian.Uint64(frame[5:13])),
		N:   int64(binary.BigEndian.Uint64(frame[13:21])),
	}
	if !r.Op.Valid() {
		return Request{}, ErrBadOp
	}
	if len(frame) > reqHeaderLen {
		r.Data = frame[reqHeaderLen:]
	}
	return r, nil
}

// DecodeResponse parses a response from frame (the bytes after the length
// prefix). The returned Response's Data aliases frame.
func DecodeResponse(frame []byte) (Response, error) {
	if len(frame) < rspHeaderLen {
		return Response{}, ErrShortFrame
	}
	r := Response{
		Status: Status(frame[0]),
		Seq:    binary.BigEndian.Uint32(frame[1:5]),
		N:      int64(binary.BigEndian.Uint64(frame[5:13])),
	}
	if !r.Status.Valid() {
		return Response{}, ErrBadStatus
	}
	msgLen := int(binary.BigEndian.Uint32(frame[13:17]))
	if msgLen < 0 || rspHeaderLen+msgLen > len(frame) {
		return Response{}, ErrShortFrame
	}
	r.Msg = string(frame[rspHeaderLen : rspHeaderLen+msgLen])
	if rest := frame[rspHeaderLen+msgLen:]; len(rest) > 0 {
		r.Data = rest
	}
	return r, nil
}

// readFrame reads one length-prefixed frame into buf (growing it as needed)
// and returns the frame body.
func readFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return body, buf, nil
}

// Writer serializes frames onto an io.Writer, reusing an internal buffer.
// It is not safe for concurrent use.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// WriteRequest encodes and writes one request frame.
func (fw *Writer) WriteRequest(r *Request) error {
	b, err := AppendRequest(fw.buf[:0], r)
	if err != nil {
		return err
	}
	fw.buf = b
	_, err = fw.w.Write(b)
	return err
}

// WriteResponse encodes and writes one response frame.
func (fw *Writer) WriteResponse(r *Response) error {
	b, err := AppendResponse(fw.buf[:0], r)
	if err != nil {
		return err
	}
	fw.buf = b
	_, err = fw.w.Write(b)
	return err
}

// Reader deserializes frames from an io.Reader, reusing an internal buffer.
// Decoded payloads alias that buffer and are only valid until the next read.
// It is not safe for concurrent use.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// ReadRequest reads and decodes one request frame.
func (fr *Reader) ReadRequest() (Request, error) {
	body, buf, err := readFrame(fr.r, fr.buf)
	fr.buf = buf
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(body)
}

// ReadResponse reads and decodes one response frame.
func (fr *Reader) ReadResponse() (Response, error) {
	body, buf, err := readFrame(fr.r, fr.buf)
	fr.buf = buf
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(body)
}
