// Package wire implements the framed binary protocol spoken between the
// active-file stubs in the application and the sentinel on the other side of
// the control channel. It corresponds to the command set the paper's
// process-plus-control implementation carries over its third pipe ("read 50",
// "write 30", and every other file operation as a command with arguments).
//
// A request frame is laid out as:
//
//	[4B frame length][1B op][4B seq][8B off][8B n][payload]
//
// and a response frame as:
//
//	[4B frame length][1B status][4B seq][8B n][4B msg length][msg][payload]
//
// All integers are big-endian. The frame length counts everything after the
// length field itself.
//
// # Correlation and pipelining
//
// The Seq field is the correlation key of the protocol: a client may keep
// any number of requests in flight on one channel, and a server may answer
// them in any order — each response carries the Seq of the request it
// answers, and nothing else ties the two together. Clients allocate sequence
// numbers from a SeqCounter (concurrency-safe) and match responses by Seq;
// ipc.Mux implements that matching over a pipe pair. Strict request/response
// lockstep is merely the degenerate single-in-flight case.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// Op identifies a file operation forwarded to the sentinel. The set mirrors
// the Win32 file API calls the paper's stubs intercept.
type Op uint8

// Operations carried on the control channel.
const (
	OpOpen     Op = iota + 1 // session establishment
	OpRead                   // read N bytes at Off
	OpWrite                  // write payload at Off
	OpSeek                   // seek to Off relative to whence N
	OpSize                   // GetFileSize
	OpTruncate               // set end of file to Off
	OpSync                   // flush buffers
	OpLock                   // lock byte range [Off, Off+N)
	OpUnlock                 // unlock byte range [Off, Off+N)
	OpStat                   // extended attributes
	OpClose                  // session teardown
	OpControl                // program-specific out-of-band command
	OpLease                  // acquire a read lease on the bound object; response N is the lease epoch
	OpLeaseAck               // acknowledge a lease-revoke push; N echoes the revoked epoch
	OpShardMap               // fetch the server's shard map; response Data is the encoded map, N its epoch
	OpApply                  // replica apply forwarded by a shard primary: N=ApplyWrite carries Off+Data, N=ApplyTruncate carries Off
)

// OpApply subkinds, carried in the request's N field.
const (
	ApplyWrite    = 0 // apply a replicated WriteAt(Data, Off)
	ApplyTruncate = 1 // apply a replicated Truncate(Off)
)

// PushSeq is the correlation key of SERVER-INITIATED frames. Clients allocate
// request Seqs starting at 1, so Seq 0 never answers a request; a response
// frame tagged PushSeq is a push (e.g. a lease revoke) routed to the mux's
// push handler instead of a waiter.
const PushSeq uint32 = 0

var opNames = map[Op]string{
	OpOpen:     "open",
	OpRead:     "read",
	OpWrite:    "write",
	OpSeek:     "seek",
	OpSize:     "size",
	OpTruncate: "truncate",
	OpSync:     "sync",
	OpLock:     "lock",
	OpUnlock:   "unlock",
	OpStat:     "stat",
	OpClose:    "close",
	OpControl:  "control",
	OpLease:    "lease",
	OpLeaseAck: "lease-ack",
	OpShardMap: "shardmap",
	OpApply:    "apply",
}

// String returns the lower-case operation name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a known operation.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}

// Status is the result category carried in a response frame.
type Status uint8

// Response statuses.
const (
	StatusOK          Status = iota + 1 // success
	StatusError                         // generic failure; Msg has detail
	StatusUnsupported                   // operation not supported by strategy/program
	StatusEOF                           // end of file reached
	StatusClosed                        // session already closed
	StatusNotFound                      // named object missing
	StatusBusy                          // resource locked by another session
	StatusOverloaded                    // admission control: in-flight bound reached, retry later
	StatusQuota                         // tenant quota exhausted (sessions, bytes)
	StatusShutdown                      // server is draining; no new work accepted
)

var statusNames = map[Status]string{
	StatusOK:          "ok",
	StatusError:       "error",
	StatusUnsupported: "unsupported",
	StatusEOF:         "eof",
	StatusClosed:      "closed",
	StatusNotFound:    "not found",
	StatusBusy:        "busy",
	StatusOverloaded:  "overloaded",
	StatusQuota:       "quota exceeded",
	StatusShutdown:    "shutting down",
}

// String returns the lower-case status name.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Valid reports whether s names a known status.
func (s Status) Valid() bool {
	_, ok := statusNames[s]
	return ok
}

// SeqCounter allocates correlation sequence numbers for pipelined
// exchanges. It is safe for concurrent use; the zero value is ready. The
// first allocated value is 1, so Seq 0 never names an in-flight request.
type SeqCounter struct {
	n atomic.Uint32
}

// Next returns the next sequence number.
func (c *SeqCounter) Next() uint32 { return c.n.Add(1) }

// Set rewinds (or advances) the counter so the next Next returns v+1. It
// exists to stage wraparound in fault tests; production code never needs it.
func (c *SeqCounter) Set(v uint32) { c.n.Store(v) }

// Request is one operation sent from the application stubs to the sentinel.
type Request struct {
	Op   Op
	Seq  uint32 // matches the response; assigned by the client
	Off  int64  // offset, seek target, lock start, or truncate length
	N    int64  // count, seek whence, or lock length
	Data []byte // write payload or control argument
}

// Response answers exactly one Request, matched by Seq.
type Response struct {
	Status Status
	Seq    uint32
	N      int64  // bytes moved, new offset, or size
	Msg    string // human-readable detail when Status is not OK
	Data   []byte // read payload or control result
}

// Frame size limits. MaxPayload bounds a single read or write carried on the
// control channel; larger transfers must be chunked by the caller.
const (
	MaxPayload   = 1 << 22 // 4 MiB
	maxFrame     = MaxPayload + 64
	reqHeaderLen = 1 + 4 + 8 + 8
	rspHeaderLen = 1 + 4 + 8 + 4
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortFrame    = errors.New("wire: frame shorter than header")
	ErrBadOp         = errors.New("wire: unknown operation")
	ErrBadStatus     = errors.New("wire: unknown status")
)

// AppendRequest encodes r onto dst and returns the extended slice.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if len(r.Data) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	if !r.Op.Valid() {
		return dst, ErrBadOp
	}
	frameLen := reqHeaderLen + len(r.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint32(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Off))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.N))
	dst = append(dst, r.Data...)
	return dst, nil
}

// AppendResponse encodes r onto dst and returns the extended slice.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if len(r.Data) > MaxPayload || len(r.Msg) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	if !r.Status.Valid() {
		return dst, ErrBadStatus
	}
	frameLen := rspHeaderLen + len(r.Msg) + len(r.Data)
	if frameLen > maxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, byte(r.Status))
	dst = binary.BigEndian.AppendUint32(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.N))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Msg)))
	dst = append(dst, r.Msg...)
	dst = append(dst, r.Data...)
	return dst, nil
}

// DecodeRequest parses a request from frame (the bytes after the length
// prefix). The returned Request's Data aliases frame.
func DecodeRequest(frame []byte) (Request, error) {
	if len(frame) < reqHeaderLen {
		return Request{}, ErrShortFrame
	}
	r := Request{
		Op:  Op(frame[0]),
		Seq: binary.BigEndian.Uint32(frame[1:5]),
		Off: int64(binary.BigEndian.Uint64(frame[5:13])),
		N:   int64(binary.BigEndian.Uint64(frame[13:21])),
	}
	if !r.Op.Valid() {
		return Request{}, ErrBadOp
	}
	if len(frame) > reqHeaderLen {
		r.Data = frame[reqHeaderLen:]
	}
	return r, nil
}

// DecodeResponse parses a response from frame (the bytes after the length
// prefix). The returned Response's Data aliases frame.
func DecodeResponse(frame []byte) (Response, error) {
	if len(frame) < rspHeaderLen {
		return Response{}, ErrShortFrame
	}
	r := Response{
		Status: Status(frame[0]),
		Seq:    binary.BigEndian.Uint32(frame[1:5]),
		N:      int64(binary.BigEndian.Uint64(frame[5:13])),
	}
	if !r.Status.Valid() {
		return Response{}, ErrBadStatus
	}
	msgLen := int(binary.BigEndian.Uint32(frame[13:17]))
	if msgLen < 0 || rspHeaderLen+msgLen > len(frame) {
		return Response{}, ErrShortFrame
	}
	r.Msg = string(frame[rspHeaderLen : rspHeaderLen+msgLen])
	if rest := frame[rspHeaderLen+msgLen:]; len(rest) > 0 {
		r.Data = rest
	}
	return r, nil
}

// Scratch-buffer tuning for the streaming Writer and Reader.
const (
	// inlinePayload is the largest payload copied into the frame scratch
	// and emitted as a single Write. Larger payloads are emitted vectored
	// (header and payload as separate slices), so they are never memcpy'd
	// into a frame buffer; the threshold keeps small frames — the paper's
	// block sizes — at one write syscall each.
	inlinePayload = 2048
	// scratchCap bounds the scratch a Writer or Reader retains between
	// frames. A frame that forces the scratch past this cap (an oversized
	// error message, a legacy whole-frame read) is served by a one-shot
	// allocation dropped afterwards, so one large frame can no longer pin
	// megabytes for the life of the session.
	scratchCap = 4096
)

// Writer serializes frames onto an io.Writer, reusing a small internal
// scratch for headers and inline payloads. Payloads above inlinePayload are
// written vectored via net.Buffers — on a net.Conn that is one writev, and
// on any other writer two sequential Writes — so the payload bytes are never
// copied into an intermediate frame buffer. It is not safe for concurrent
// use.
type Writer struct {
	w   io.Writer
	buf []byte
	vec [2][]byte
	// bufs is the reusable net.Buffers header for vectored writes. WriteTo
	// takes a pointer receiver, so a per-call local would escape and cost
	// one allocation per large frame; a field does not.
	bufs net.Buffers
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// flush emits the encoded envelope in fw.buf plus payload, vectored when the
// payload is large, then shrinks any oversized scratch.
func (fw *Writer) flush(payload []byte) error {
	var err error
	if len(payload) > inlinePayload {
		fw.vec[0], fw.vec[1] = fw.buf, payload
		fw.bufs = fw.vec[:]
		_, err = fw.bufs.WriteTo(fw.w)
		fw.bufs = nil
		fw.vec[0], fw.vec[1] = nil, nil
	} else {
		fw.buf = append(fw.buf, payload...)
		_, err = fw.w.Write(fw.buf)
	}
	if cap(fw.buf) > scratchCap {
		fw.buf = nil
	}
	return err
}

// WriteRequest encodes and writes one request frame.
func (fw *Writer) WriteRequest(r *Request) error {
	if len(r.Data) > MaxPayload {
		return ErrFrameTooLarge
	}
	if !r.Op.Valid() {
		return ErrBadOp
	}
	frameLen := reqHeaderLen + len(r.Data)
	b := fw.buf[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(frameLen))
	b = append(b, byte(r.Op))
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Off))
	b = binary.BigEndian.AppendUint64(b, uint64(r.N))
	fw.buf = b
	return fw.flush(r.Data)
}

// WriteResponse encodes and writes one response frame.
func (fw *Writer) WriteResponse(r *Response) error {
	if len(r.Data) > MaxPayload || len(r.Msg) > MaxPayload {
		return ErrFrameTooLarge
	}
	if !r.Status.Valid() {
		return ErrBadStatus
	}
	frameLen := rspHeaderLen + len(r.Msg) + len(r.Data)
	if frameLen > maxFrame {
		return ErrFrameTooLarge
	}
	b := fw.buf[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(frameLen))
	b = append(b, byte(r.Status))
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.N))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Msg)))
	b = append(b, r.Msg...)
	fw.buf = b
	return fw.flush(r.Data)
}

// Reader deserializes frames from an io.Reader.
//
// Two decode styles are offered. The whole-frame ReadRequest/ReadResponse
// return payloads aliasing an internal scratch, valid only until the next
// read. The split ReadRequestHeader/ReadResponseHeader read just the
// envelope and leave the payload on the stream, so the caller can land it
// directly in its own (or a pooled) buffer via ReadPayload — the zero-copy
// path ipc.Mux and the file server use. After a header read, the caller must
// consume exactly the reported payload length with ReadPayload (or drop it
// with DiscardPayload) before the next header read.
//
// A Reader is not safe for concurrent use.
type Reader struct {
	r       io.Reader
	buf     []byte
	pending int // unread payload bytes of the current frame
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// scratch returns the retained scratch grown to length n.
func (fr *Reader) scratch(n int) []byte {
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	return fr.buf[:n]
}

// shrink drops scratch that outgrew the retention cap; any payload aliasing
// it stays valid (the reference moves to the caller), and the next frame
// starts from a small allocation.
func (fr *Reader) shrink() {
	if cap(fr.buf) > scratchCap {
		fr.buf = nil
	}
}

// checkHeaderRead validates the combined length-prefix-plus-header read.
// Headers are fixed-size and always present, so both are fetched in one
// ReadFull; a frame-length problem is still diagnosed first — even on a
// truncated stream — as long as the four length bytes arrived.
func checkHeaderRead(hdr []byte, n int, err error, headerLen int) error {
	if n >= 4 {
		frameLen := int(binary.BigEndian.Uint32(hdr[:4]))
		if frameLen > maxFrame {
			return ErrFrameTooLarge
		}
		if frameLen < headerLen {
			return ErrShortFrame
		}
	}
	return err
}

// fill reads exactly len(b) bytes, mapping a mid-frame EOF to
// io.ErrUnexpectedEOF.
func (fr *Reader) fill(b []byte) error {
	if _, err := io.ReadFull(fr.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// ReadRequestHeader reads one request frame's envelope — op, seq, off, n —
// and returns it along with the payload length still on the stream. A clean
// EOF at a frame boundary returns io.EOF.
func (fr *Reader) ReadRequestHeader() (Request, int, error) {
	if err := fr.DiscardPayload(); err != nil {
		return Request{}, 0, err
	}
	fr.shrink()
	hdr := fr.scratch(4 + reqHeaderLen)
	n, err := io.ReadFull(fr.r, hdr)
	if err := checkHeaderRead(hdr, n, err, reqHeaderLen); err != nil {
		return Request{}, 0, err
	}
	frameLen := int(binary.BigEndian.Uint32(hdr[:4]))
	r := Request{
		Op:  Op(hdr[4]),
		Seq: binary.BigEndian.Uint32(hdr[5:9]),
		Off: int64(binary.BigEndian.Uint64(hdr[9:17])),
		N:   int64(binary.BigEndian.Uint64(hdr[17:25])),
	}
	if !r.Op.Valid() {
		return Request{}, 0, ErrBadOp
	}
	fr.pending = frameLen - reqHeaderLen
	return r, fr.pending, nil
}

// ReadResponseHeader reads one response frame's envelope — status, seq, n,
// msg — and returns it along with the payload length still on the stream.
func (fr *Reader) ReadResponseHeader() (Response, int, error) {
	if err := fr.DiscardPayload(); err != nil {
		return Response{}, 0, err
	}
	fr.shrink()
	hdr := fr.scratch(4 + rspHeaderLen)
	n, err := io.ReadFull(fr.r, hdr)
	if err := checkHeaderRead(hdr, n, err, rspHeaderLen); err != nil {
		return Response{}, 0, err
	}
	frameLen := int(binary.BigEndian.Uint32(hdr[:4]))
	r := Response{
		Status: Status(hdr[4]),
		Seq:    binary.BigEndian.Uint32(hdr[5:9]),
		N:      int64(binary.BigEndian.Uint64(hdr[9:17])),
	}
	if !r.Status.Valid() {
		return Response{}, 0, ErrBadStatus
	}
	msgLen := int(binary.BigEndian.Uint32(hdr[17:21]))
	if msgLen < 0 || rspHeaderLen+msgLen > frameLen {
		return Response{}, 0, ErrShortFrame
	}
	if msgLen > 0 {
		m := fr.scratch(msgLen)
		if err := fr.fill(m); err != nil {
			return Response{}, 0, err
		}
		r.Msg = string(m)
	}
	fr.pending = frameLen - rspHeaderLen - msgLen
	return r, fr.pending, nil
}

// ReadPayload fills dst with the next len(dst) payload bytes of the current
// frame. len(dst) must not exceed the pending payload length reported by the
// preceding header read.
func (fr *Reader) ReadPayload(dst []byte) error {
	if len(dst) > fr.pending {
		return ErrShortFrame
	}
	if err := fr.fill(dst); err != nil {
		return err
	}
	fr.pending -= len(dst)
	return nil
}

// Discarder is implemented by sources that can drop pending bytes in place —
// bufio.Reader and the shared-memory ring. DiscardPayload prefers it so a
// skipped payload advances a cursor instead of being copied through scratch.
type Discarder interface {
	Discard(n int) (int, error)
}

// DiscardPayload drains whatever remains of the current frame's payload, so
// the next header read starts at a frame boundary.
func (fr *Reader) DiscardPayload() error {
	if d, ok := fr.r.(Discarder); ok {
		for fr.pending > 0 {
			n, err := d.Discard(fr.pending)
			fr.pending -= n
			if err != nil {
				if errors.Is(err, io.EOF) {
					return io.ErrUnexpectedEOF
				}
				return err
			}
		}
		return nil
	}
	for fr.pending > 0 {
		chunk := fr.pending
		if chunk > scratchCap {
			chunk = scratchCap
		}
		if err := fr.fill(fr.scratch(chunk)); err != nil {
			return err
		}
		fr.pending -= chunk
	}
	return nil
}

// ReadRequest reads and decodes one request frame. The returned Request's
// Data aliases an internal scratch and is only valid until the next read.
func (fr *Reader) ReadRequest() (Request, error) {
	req, n, err := fr.ReadRequestHeader()
	if err != nil {
		return Request{}, err
	}
	if n > 0 {
		data := fr.scratch(n)
		if err := fr.ReadPayload(data); err != nil {
			return Request{}, err
		}
		req.Data = data
	}
	return req, nil
}

// ReadResponse reads and decodes one response frame. The returned Response's
// Data aliases an internal scratch and is only valid until the next read.
func (fr *Reader) ReadResponse() (Response, error) {
	resp, n, err := fr.ReadResponseHeader()
	if err != nil {
		return Response{}, err
	}
	if n > 0 {
		data := fr.scratch(n)
		if err := fr.ReadPayload(data); err != nil {
			return Response{}, err
		}
		resp.Data = data
	}
	return resp, nil
}
