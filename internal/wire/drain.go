package wire

import (
	"io"
	"sync"
	"sync/atomic"
)

// This file holds the syscall-economy seams of the framed protocol: the
// send side's flush-coalescing hook (FlushCoalescer, driven by BatchWriter)
// and the receive side's drain-mode buffer (DrainReader). Together they are
// the io_uring discipline applied at the frame layer — batch submissions,
// suppress redundant wakeups, drain everything available per wakeup.

// FlushCoalescer is implemented by writers that can defer their peer-wakeup
// decision across a group of writes — the shared-memory ring, which rings
// an eventfd doorbell per publish unless told a batch is in progress.
// BatchWriter brackets each group-committed flush with BeginFlush/EndFlush,
// so a batch of N frames costs at most one doorbell instead of N.
//
// Calls come from one flush leader at a time (BatchWriter's leader hand-off
// is mutex-ordered), and brackets do not nest.
type FlushCoalescer interface {
	BeginFlush()
	EndFlush()
}

// SelfBuffered marks stream sources that already amortize wakeups
// internally — each Read drains every available byte without a per-call
// syscall, the way the shared-memory ring serves published bytes straight
// from the mapping. Wrapping such a source in a DrainReader would add a
// memcpy and buy nothing, so mux construction skips it.
type SelfBuffered interface {
	SelfBuffered()
}

// drainBufPool recycles DrainReader buffers across sessions and
// connections, the same discipline payloadPool applies to response buffers.
var drainBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, PooledBufSize)
		return &b
	},
}

// DrainReader is a pooled buffered reader for frame streams: each refill
// issues ONE underlying Read for as many bytes as the source has ready, and
// the frame decoder then consumes every complete frame from the buffer
// without another syscall. On a pipe or TCP receive path that turns "one
// read syscall per frame header, another per payload" into "one read
// syscall per wakeup, however many frames it delivered" — the receive-side
// mirror of BatchWriter's group commit.
//
// Reads larger than the buffer bypass it (a direct read into the caller's
// slice), so bulk payloads keep their zero-copy landing. The buffer comes
// from a pool; Release returns it when the stream is done. Not safe for
// concurrent use — it lives under a single receive loop, like the
// wire.Reader it feeds.
type DrainReader struct {
	src  io.Reader
	bp   *[]byte
	buf  []byte // (*bp), cached
	r, w int    // buffered window: buf[r:w]

	fills atomic.Uint64 // underlying Read calls (wakeup proxy)
	bytes atomic.Uint64 // bytes those reads delivered
}

// NewDrainReader returns a drain-mode reader over src with a pooled buffer.
func NewDrainReader(src io.Reader) *DrainReader {
	bp := drainBufPool.Get().(*[]byte)
	return &DrainReader{src: src, bp: bp, buf: *bp}
}

// WrapDrain prepares src for a frame-decoding receive loop: sources that
// already drain internally (SelfBuffered — the shm ring) pass through with a
// nil DrainReader, everything else is wrapped. The caller keeps the
// DrainReader for Stats and Release.
func WrapDrain(src io.Reader) (io.Reader, *DrainReader) {
	if _, ok := src.(SelfBuffered); ok {
		return src, nil
	}
	d := NewDrainReader(src)
	return d, d
}

// DrainStats snapshots the reader's wakeup amortization.
type DrainStats struct {
	Fills uint64 // underlying Read calls issued
	Bytes uint64 // bytes those calls returned
}

// Stats returns cumulative refill counters. Safe to call concurrently with
// the receive loop.
func (d *DrainReader) Stats() DrainStats {
	return DrainStats{Fills: d.fills.Load(), Bytes: d.bytes.Load()}
}

// Buffered reports how many bytes are ready without touching the source.
func (d *DrainReader) Buffered() int { return d.w - d.r }

// Release returns the pooled buffer. Call exactly once, after the last
// read — the receive loop's exit point. The reader is unusable afterwards.
// A nil receiver is a no-op, so `defer dr.Release()` composes with
// WrapDrain's pass-through case.
func (d *DrainReader) Release() {
	if d == nil || d.bp == nil {
		return
	}
	bp := d.bp
	d.bp, d.buf = nil, nil
	d.r, d.w = 0, 0
	drainBufPool.Put(bp)
}

// fill issues one source Read for everything it will give us. Called only
// with an empty window.
func (d *DrainReader) fill() (int, error) {
	n, err := d.src.Read(d.buf)
	if n > 0 {
		d.fills.Add(1)
		d.bytes.Add(uint64(n))
	}
	d.r, d.w = 0, n
	return n, err
}

// Read serves from the buffered window first; an empty window triggers
// either a direct read (when p can absorb at least a full buffer — bulk
// payloads skip the copy) or one drain-mode refill.
func (d *DrainReader) Read(p []byte) (int, error) {
	if d.r < d.w {
		n := copy(p, d.buf[d.r:d.w])
		d.r += n
		return n, nil
	}
	if len(p) >= len(d.buf) {
		n, err := d.src.Read(p)
		if n > 0 {
			d.fills.Add(1)
			d.bytes.Add(uint64(n))
		}
		return n, err
	}
	n, err := d.fill()
	if n > 0 {
		c := copy(p, d.buf[:n])
		d.r = c
		return c, nil
	}
	if err == nil {
		// A zero-byte, nil-error Read is legal for an io.Reader; surface it
		// unchanged and let the caller retry.
		return 0, nil
	}
	return 0, err
}

// Discard drops up to n pending bytes without copying them to the caller,
// serving wire.Reader.DiscardPayload: buffered bytes are skipped in place,
// and an empty window delegates to the source's own Discarder when it has
// one before falling back to a refill.
func (d *DrainReader) Discard(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if avail := d.w - d.r; avail > 0 {
		if n > avail {
			n = avail
		}
		d.r += n
		return n, nil
	}
	if disc, ok := d.src.(Discarder); ok {
		return disc.Discard(n)
	}
	got, err := d.fill()
	if got > 0 {
		if n > got {
			n = got
		}
		d.r = n
		return n, nil
	}
	return 0, err
}
