package wire

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// chunkySource hands out its backing bytes in large gulps — a pipe whose
// writer got ahead — while counting how many Read calls it served, so tests
// can check the drain buffer's one-syscall-per-wakeup discipline.
type chunkySource struct {
	data  []byte
	reads int
}

func (c *chunkySource) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	c.reads++
	n := copy(p, c.data)
	c.data = c.data[n:]
	return n, nil
}

// TestDrainReaderAmortizesReads: many small frame-sized reads off a source
// with lots of bytes ready must cost one underlying read per buffer-full,
// not one per call.
func TestDrainReaderAmortizesReads(t *testing.T) {
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i)
	}
	src := &chunkySource{data: append([]byte(nil), payload...)}
	d := NewDrainReader(src)
	defer d.Release()

	var got []byte
	buf := make([]byte, 17) // deliberately tiny, frame-header-ish
	for len(got) < len(payload) {
		n, err := d.Read(buf)
		if err != nil {
			t.Fatalf("Read after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("drained bytes corrupted")
	}
	if src.reads != 1 {
		t.Fatalf("8KiB of 17-byte reads cost %d source reads, want 1", src.reads)
	}
	st := d.Stats()
	if st.Fills != 1 || st.Bytes != uint64(len(payload)) {
		t.Fatalf("Stats = %+v, want 1 fill of %d bytes", st, len(payload))
	}
}

// TestDrainReaderDirectBypass: a destination at least one buffer large reads
// straight from the source when the window is empty — bulk payloads keep
// their zero-copy landing.
func TestDrainReaderDirectBypass(t *testing.T) {
	payload := make([]byte, PooledBufSize+4096)
	src := &chunkySource{data: payload}
	d := NewDrainReader(src)
	defer d.Release()

	big := make([]byte, PooledBufSize)
	n, err := d.Read(big)
	if err != nil || n == 0 {
		t.Fatalf("direct read = %d, %v", n, err)
	}
	if d.Buffered() != 0 {
		t.Fatalf("direct read staged %d bytes in the buffer", d.Buffered())
	}
}

// TestDrainReaderDiscard covers all three Discard paths: buffered bytes
// skipped in place, delegation to a source Discarder, and refill.
func TestDrainReaderDiscard(t *testing.T) {
	src := &chunkySource{data: []byte("0123456789abcdef")}
	d := NewDrainReader(src)
	defer d.Release()

	head := make([]byte, 4)
	if _, err := io.ReadFull(d, head); err != nil {
		t.Fatal(err)
	}
	// The chunky source delivered everything on the first fill; discarding
	// must consume from the buffered window without another source read.
	if n, err := d.Discard(8); err != nil || n != 8 {
		t.Fatalf("Discard = %d, %v", n, err)
	}
	rest := make([]byte, 4)
	if _, err := io.ReadFull(d, rest); err != nil || string(rest) != "cdef" {
		t.Fatalf("after discard read %q, %v; want \"cdef\"", rest, err)
	}
	if src.reads != 1 {
		t.Fatalf("discard path cost %d source reads, want 1", src.reads)
	}
}

// TestDrainReaderEmptyWindowDiscardRefills: with nothing buffered and a
// source that is a plain Reader, Discard falls back to a refill.
func TestDrainReaderEmptyWindowDiscardRefills(t *testing.T) {
	src := &chunkySource{data: []byte("abcdef")}
	d := NewDrainReader(src)
	defer d.Release()
	if n, err := d.Discard(4); err != nil || n != 4 {
		t.Fatalf("Discard = %d, %v", n, err)
	}
	rest := make([]byte, 2)
	if _, err := io.ReadFull(d, rest); err != nil || string(rest) != "ef" {
		t.Fatalf("read %q, %v after empty-window discard", rest, err)
	}
}

// selfBufferedSrc marks itself as already draining internally.
type selfBufferedSrc struct{ io.Reader }

func (selfBufferedSrc) SelfBuffered() {}

// TestWrapDrainPassThrough: SelfBuffered sources come back unwrapped with a
// nil DrainReader, and the nil DrainReader's Release is a safe no-op.
func TestWrapDrainPassThrough(t *testing.T) {
	src := selfBufferedSrc{bytes.NewReader([]byte("x"))}
	wrapped, dr := WrapDrain(src)
	if dr != nil {
		t.Fatal("self-buffered source got a drain buffer")
	}
	if _, ok := wrapped.(selfBufferedSrc); !ok {
		t.Fatal("self-buffered source did not pass through unwrapped")
	}
	dr.Release() // nil receiver must not panic

	plain := bytes.NewReader([]byte("y"))
	if _, dr := WrapDrain(plain); dr == nil {
		t.Fatal("plain source was not wrapped")
	} else {
		dr.Release()
	}
}

// TestDrainReaderReleaseIdempotent: double release must not double-pool the
// buffer (which would hand the same backing array to two readers).
func TestDrainReaderReleaseIdempotent(t *testing.T) {
	d := NewDrainReader(bytes.NewReader(nil))
	d.Release()
	d.Release()
	if d.bp != nil || d.buf != nil {
		t.Fatal("release left the buffer attached")
	}
}

// flushRecorder is an io.Writer implementing FlushCoalescer, recording the
// bracket sequence around its writes.
type flushRecorder struct {
	mu     sync.Mutex
	events []string
}

func (f *flushRecorder) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.events = append(f.events, "write")
	f.mu.Unlock()
	return len(p), nil
}
func (f *flushRecorder) BeginFlush() {
	f.mu.Lock()
	f.events = append(f.events, "begin")
	f.mu.Unlock()
}
func (f *flushRecorder) EndFlush() {
	f.mu.Lock()
	f.events = append(f.events, "end")
	f.mu.Unlock()
}

// TestBatchWriterBracketsFlushes: a coalescing control channel must see each
// group-committed flush wrapped in exactly one BeginFlush/EndFlush pair,
// with every write inside the bracket — that is what turns a batch of N
// frames into at most one doorbell.
func TestBatchWriterBracketsFlushes(t *testing.T) {
	rec := &flushRecorder{}
	bw := NewBatchWriter(rec, nil)
	if err := bw.WriteRequest(&Request{Op: OpSize, Seq: 1}); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.events) < 3 || rec.events[0] != "begin" || rec.events[len(rec.events)-1] != "end" {
		t.Fatalf("flush events = %v, want begin ... end", rec.events)
	}
	for _, ev := range rec.events[1 : len(rec.events)-1] {
		if ev != "write" {
			t.Fatalf("unexpected %q inside flush bracket: %v", ev, rec.events)
		}
	}
}

// TestBatchWriterNoCoalescerStillWorks: a plain writer (no FlushCoalescer)
// takes the nil-hook path.
func TestBatchWriterNoCoalescerStillWorks(t *testing.T) {
	var sink bytes.Buffer
	bw := NewBatchWriter(&sink, nil)
	if err := bw.WriteRequest(&Request{Op: OpSize, Seq: 1}); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if sink.Len() == 0 {
		t.Fatal("nothing written")
	}
}
