package wire

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchWriter serializes frames from many goroutines onto one io.Writer,
// opportunistically coalescing concurrent submissions into a single vectored
// write — group commit for the framed protocol.
//
// The discipline is leader/follower. A submitter encodes its frame into the
// current batch under the lock. If no flush is running it becomes the leader:
// it takes the batch, releases the lock, and writes the whole batch in one
// Write (or one net.Buffers writev when large payloads are carried by
// reference). Frames submitted while that write is in flight accumulate into
// the next batch, which the same leader drains before retiring. A lone
// submitter therefore flushes immediately — batching adds no latency — while
// N concurrent submitters share ~1 syscall instead of paying N.
//
// Payloads of at most inlinePayload bytes are copied into the batch buffer
// (one contiguous write); larger payloads are recorded by reference and
// stitched into a net.Buffers at flush time, so bulk data is never memcpy'd.
// Because referenced payloads are read during the flush, a submitter's buffer
// is released only when its submission returns — which is after the flush
// that carried it completes — making pooled buffers safe.
//
// Error discipline matches wire.Writer users' expectations: validation
// failures (ErrFrameTooLarge, ErrBadOp, ErrBadStatus) are reported to the
// submitter before the batch is touched and leave the stream intact. A
// transport failure may have left a partial batch on the stream, so it is
// sticky: the failed batch's submitters all receive the error, and every
// later submission fails immediately with it.
type BatchWriter struct {
	mu       sync.Mutex
	w        io.Writer
	data     io.Writer      // optional side channel for posted payloads
	fc       FlushCoalescer // w's doorbell-deferral hook, when it has one (shm ring)
	sub      Submitter      // batched-syscall backend for fd writers, nil = portable
	cur      *pendingBatch
	flushing bool
	err      error // sticky transport failure

	hint func() int // optional in-flight load estimate, called unlocked

	flushes atomic.Uint64 // write calls issued (syscall proxy)
	frames  atomic.Uint64 // frames carried by those writes
}

// Group-commit courting. Opportunistic coalescing alone only batches frames
// whose submissions physically overlap a flush — but pipelined request/reply
// traffic paces arrivals by response latency (tens of µs) while a pipe write
// lasts ~2µs, so flush windows almost never collide and the batching factor
// stays at 1.0. When a load hint reports a deep pipeline, the flush leader
// instead courts company: it waits up to courtWait for at least one more
// frame to join the batch before writing. A lone submitter (load below
// courtMinLoad) never waits, so unpipelined latency is untouched; courtWait
// is a few percent of the round-trip that deep pipelines already pay, bought
// back immediately by halving (or better) the write syscalls.
const (
	// courtWait bounds how long a leader waits for company.
	courtWait = 50 * time.Microsecond
	// courtMinLoad is the in-flight depth at which courting turns on.
	courtMinLoad = 3
	// courtMaxFrames caps how many frames a leader waits for. Sized to the
	// deepest pipelines the bench sweep drives; beyond it the marginal
	// syscall saved no longer covers the added head-of-batch latency.
	courtMaxFrames = 16
)

// SetLoadHint installs a callback estimating in-flight exchanges (e.g. a
// mux's pending-reply count). It is invoked without BatchWriter's lock held,
// so it may take the caller's own locks. Nil (the default) disables courting.
func (b *BatchWriter) SetLoadHint(hint func() int) {
	b.mu.Lock()
	b.hint = hint
	b.mu.Unlock()
}

// court spins (yielding) until the current batch holds enough company for
// the reported load or the courting window closes. Called by the flush
// leader with flushing set and the lock released.
func (b *BatchWriter) court(load int) {
	want := load
	if want > courtMaxFrames {
		want = courtMaxFrames
	}
	if want < 2 {
		want = 2
	}
	deadline := time.Now().Add(courtWait)
	for {
		b.mu.Lock()
		n := 0
		if b.cur != nil {
			n = b.cur.frames
		}
		b.mu.Unlock()
		if n >= want || !time.Now().Before(deadline) {
			return
		}
		runtime.Gosched()
	}
}

// payloadRef marks a by-reference payload spliced into buf at pos.
type payloadRef struct {
	pos  int
	data []byte
}

// pendingBatch accumulates encoded frames awaiting one flush.
type pendingBatch struct {
	buf      []byte       // encoded envelopes + inline payloads
	refs     []payloadRef // large payloads, by reference
	dataBuf  []byte       // posted payloads for the data side channel
	dataRefs []payloadRef
	frames   int
	done     chan struct{} // closed when the flush completes
	err      error         // flush outcome, valid after done
}

// NewBatchWriter returns a batching frame writer over w. When data is
// non-nil, WritePost streams payloads on it in command order. A w that
// coalesces flushes (FlushCoalescer — the shm ring's doorbell deferral) is
// detected here once and bracketed on every flush. Plain fd writers (pipes,
// net.Conns) instead get the best syscall backend the host offers: io_uring
// when the kernel supports it, the portable write path otherwise.
func NewBatchWriter(w, data io.Writer) *BatchWriter {
	fc, _ := w.(FlushCoalescer)
	b := &BatchWriter{w: w, data: data, fc: fc}
	if fc == nil {
		// Shm rings are already syscall-free on the publish side; only
		// syscall-bound writers benefit from a submitter.
		b.sub = newSubmitter(w, data)
	}
	return b
}

// HasData reports whether a payload side channel is configured.
func (b *BatchWriter) HasData() bool { return b.data != nil }

// BatchStats is a point-in-time snapshot of flush amortization.
type BatchStats struct {
	Flushes uint64 // vectored writes issued
	Frames  uint64 // frames those writes carried
	Backend string // submission backend: "io_uring" or "portable"
}

// Stats returns cumulative flush counters. Frames/Flushes is the batching
// factor: 1.0 means no coalescing, N means N frames per syscall.
func (b *BatchWriter) Stats() BatchStats {
	return BatchStats{Flushes: b.flushes.Load(), Frames: b.frames.Load(), Backend: b.Backend()}
}

// Backend names the submission path flushes take: "io_uring" when batches
// cross the kernel through a ring, "portable" for plain writes (including
// the shm path, whose publishes are not syscalls at all).
func (b *BatchWriter) Backend() string {
	if b.sub != nil {
		return b.sub.Name()
	}
	return "portable"
}

// appendRequestFrame encodes r into the batch: envelope (plus inline payload)
// into buf, oversized payloads by reference. Validation failures leave the
// batch untouched.
func appendRequestFrame(p *pendingBatch, r *Request) error {
	if len(r.Data) <= inlinePayload {
		buf, err := AppendRequest(p.buf, r)
		if err != nil {
			return err
		}
		p.buf = buf
		return nil
	}
	if len(r.Data) > MaxPayload {
		return ErrFrameTooLarge
	}
	if !r.Op.Valid() {
		return ErrBadOp
	}
	hdr := Request{Op: r.Op, Seq: r.Seq, Off: r.Off, N: r.N}
	buf, err := AppendRequest(p.buf, &hdr)
	if err != nil {
		return err
	}
	// Rewrite the announced frame length to include the referenced payload.
	putFrameLen(buf[len(p.buf):], reqHeaderLen+len(r.Data))
	p.buf = buf
	p.refs = append(p.refs, payloadRef{pos: len(p.buf), data: r.Data})
	return nil
}

// appendResponseFrame is appendRequestFrame for responses.
func appendResponseFrame(p *pendingBatch, r *Response) error {
	if len(r.Data) <= inlinePayload {
		buf, err := AppendResponse(p.buf, r)
		if err != nil {
			return err
		}
		p.buf = buf
		return nil
	}
	if len(r.Data) > MaxPayload || len(r.Msg) > MaxPayload {
		return ErrFrameTooLarge
	}
	if !r.Status.Valid() {
		return ErrBadStatus
	}
	if rspHeaderLen+len(r.Msg)+len(r.Data) > maxFrame {
		return ErrFrameTooLarge
	}
	hdr := Response{Status: r.Status, Seq: r.Seq, N: r.N, Msg: r.Msg}
	buf, err := AppendResponse(p.buf, &hdr)
	if err != nil {
		return err
	}
	putFrameLen(buf[len(p.buf):], rspHeaderLen+len(r.Msg)+len(r.Data))
	p.buf = buf
	p.refs = append(p.refs, payloadRef{pos: len(p.buf), data: r.Data})
	return nil
}

// putFrameLen overwrites the 4-byte length prefix at the start of frame.
func putFrameLen(frame []byte, n int) {
	frame[0] = byte(n >> 24)
	frame[1] = byte(n >> 16)
	frame[2] = byte(n >> 8)
	frame[3] = byte(n)
}

// WriteRequest submits one request frame, returning when the flush that
// carried it (or a validation failure) has decided its fate.
func (b *BatchWriter) WriteRequest(r *Request) error {
	return b.submit(func(p *pendingBatch) error { return appendRequestFrame(p, r) })
}

// WriteResponse submits one response frame.
func (b *BatchWriter) WriteResponse(r *Response) error {
	return b.submit(func(p *pendingBatch) error { return appendResponseFrame(p, r) })
}

// WritePost submits a command frame whose payload travels on the data side
// channel. Both are appended to the same batch under one lock acquisition, so
// payload order on the data channel always matches command order on the
// control channel, however many goroutines post concurrently. The frame's N
// field — not an inline payload — tells the peer how many data-channel bytes
// belong to it, matching Mux.Post's wire contract.
func (b *BatchWriter) WritePost(r *Request, payload []byte) error {
	if len(payload) > 0 && b.data == nil {
		return ErrNoDataChannel
	}
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	return b.submit(func(p *pendingBatch) error {
		if err := appendRequestFrame(p, r); err != nil {
			return err
		}
		if len(payload) == 0 {
			return nil
		}
		if len(payload) <= inlinePayload {
			p.dataBuf = append(p.dataBuf, payload...)
		} else {
			p.dataRefs = append(p.dataRefs, payloadRef{pos: len(p.dataBuf), data: payload})
		}
		return nil
	})
}

// ErrNoDataChannel reports a posted payload with no data channel configured.
var ErrNoDataChannel = errNoDataChannel{}

type errNoDataChannel struct{}

func (errNoDataChannel) Error() string { return "wire: no data channel for posted payload" }

// submit encodes one frame into the current batch via add and waits for the
// flush covering it. Exactly one submitter — the leader — performs writes;
// the rest block on their batch's completion.
func (b *BatchWriter) submit(add func(*pendingBatch) error) error {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	if b.cur == nil {
		b.cur = &pendingBatch{done: make(chan struct{})}
	}
	if err := add(b.cur); err != nil {
		// Validation failure: nothing entered the batch, stream unharmed.
		b.mu.Unlock()
		return err
	}
	b.cur.frames++
	mine := b.cur
	if b.flushing {
		b.mu.Unlock()
		<-mine.done
		return mine.err
	}

	// Leader: drain batches until none accumulate, then retire.
	b.flushing = true
	hint := b.hint
	if hint != nil {
		// Court company for the first flush only: followers that arrive
		// during the writes below join later batches in this drain loop and
		// amortize for free.
		b.mu.Unlock()
		if load := hint(); load >= courtMinLoad {
			b.court(load)
		}
		b.mu.Lock()
	}
	myErr := error(nil)
	first := true
	for {
		batch := b.cur
		b.cur = nil
		b.mu.Unlock()

		err := b.writeBatch(batch)
		b.flushes.Add(1)
		b.frames.Add(uint64(batch.frames))
		batch.err = err
		close(batch.done)
		if first {
			myErr = err
			first = false
		}

		b.mu.Lock()
		if err != nil && b.err == nil {
			b.err = err
		}
		if b.err != nil && b.cur != nil {
			// Frames queued behind a failed flush can never ship: the stream
			// may hold a torn batch. Fail them as a group.
			stranded := b.cur
			b.cur = nil
			stranded.err = b.err
			close(stranded.done)
		}
		if b.cur == nil {
			b.flushing = false
			b.mu.Unlock()
			return myErr
		}
	}
}

// writeBatch emits one batch: control bytes first, then any posted payloads
// on the data channel. On a flush-coalescing channel the whole batch rides
// one doorbell decision — the bracket defers the ring's per-publish wake to
// EndFlush, so a group-committed flush rings at most once. Only one leader
// runs at a time (successive leaders are ordered by b.mu), which is what
// lets the coalescer keep plain state.
func (b *BatchWriter) writeBatch(p *pendingBatch) error {
	if b.fc != nil {
		b.fc.BeginFlush()
		defer b.fc.EndFlush()
	}
	if b.sub != nil {
		// Both channels' bytes ride one Submit — on io_uring, one syscall
		// for the whole two-span batch.
		spans := make([]Span, 0, 2)
		if s := spliceRefs(p.buf, p.refs); len(s) > 0 {
			spans = append(spans, Span{W: b.w, Bufs: s})
		}
		if s := spliceRefs(p.dataBuf, p.dataRefs); len(s) > 0 {
			spans = append(spans, Span{W: b.data, Bufs: s})
		}
		if len(spans) == 0 {
			return nil
		}
		return b.sub.Submit(spans)
	}
	if err := writeVectored(b.w, p.buf, p.refs); err != nil {
		return err
	}
	if len(p.dataBuf) > 0 || len(p.dataRefs) > 0 {
		if err := writeVectored(b.data, p.dataBuf, p.dataRefs); err != nil {
			return err
		}
	}
	return nil
}

// writeVectored writes buf with each ref's bytes spliced in at its recorded
// position — one Write when everything is inline, one net.Buffers WriteTo
// (writev on a net.Conn) otherwise.
func writeVectored(w io.Writer, buf []byte, refs []payloadRef) error {
	segs := spliceRefs(buf, refs)
	if len(segs) == 0 {
		return nil
	}
	if len(segs) == 1 {
		_, err := w.Write(segs[0])
		return err
	}
	_, err := segs.WriteTo(w)
	return err
}
