//go:build !linux

package wire

import "io"

// io_uring is Linux-only; everywhere else the portable write path is the
// submitter, which newSubmitter signals with nil.
func newURingSubmitter(w, data io.Writer) Submitter { return nil }
