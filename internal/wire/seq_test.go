package wire

import (
	"sync"
	"testing"
)

func TestSeqCounterSequential(t *testing.T) {
	var c SeqCounter
	for want := uint32(1); want <= 5; want++ {
		if got := c.Next(); got != want {
			t.Fatalf("Next() = %d, want %d", got, want)
		}
	}
}

func TestSeqCounterConcurrentUnique(t *testing.T) {
	const (
		goroutines = 16
		perG       = 500
	)
	var c SeqCounter
	var mu sync.Mutex
	seen := make(map[uint32]bool, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, c.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, s := range local {
				if seen[s] {
					t.Errorf("sequence %d allocated twice", s)
				}
				seen[s] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Errorf("allocated %d unique sequences, want %d", len(seen), goroutines*perG)
	}
	if seen[0] {
		t.Error("sequence 0 was allocated; it must stay reserved")
	}
}
