//go:build linux

package wire

import (
	"bytes"
	"crypto/sha256"
	"io"
	"net"
	"os"
	"sync"
	"testing"
)

// Kernel-gated io_uring tests. On hosts whose kernel lacks io_uring or
// fast poll (the probe fails — e.g. gVisor's ENOSYS) these skip after
// asserting the failure is clean and the portable fallback is the one
// actually selected; where the ring engages they drive real traffic
// through it, including short-write remainders past the pipe capacity.

func requireURing(t *testing.T) {
	t.Helper()
	if os.Getenv(envNoURing) != "" {
		t.Skipf("%s set", envNoURing)
	}
	if !uringSupported() {
		// The probe must fail closed: no panic, and construction must
		// decline so the portable path carries traffic.
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		defer w.Close()
		if s := newURingSubmitter(w, nil); s != nil {
			t.Fatalf("probe failed but constructor returned %s", s.Name())
		}
		t.Skip("kernel does not support io_uring with fast poll; portable fallback verified")
	}
}

// TestURingPipeEndToEnd: frames and posted payloads flushed through the
// ring must arrive byte-identical to the portable encoding, across both
// the control and data channels.
func TestURingPipeEndToEnd(t *testing.T) {
	requireURing(t)
	cr, cw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	defer cw.Close()
	dr, dw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	defer dw.Close()

	bw := NewBatchWriter(cw, dw)
	if bw.Backend() != "io_uring" {
		t.Fatalf("backend = %q, want io_uring", bw.Backend())
	}

	// 256 KiB of posted payload per frame overflows the default 64 KiB pipe
	// buffer several times over: every flush exercises the short-write
	// remainder loop while the reader drains concurrently.
	payload := bytes.Repeat([]byte("uring"), 256*1024/5)
	const frames = 8
	var readerWG sync.WaitGroup
	var ctrlSum, dataSum [32]byte
	readerWG.Add(2)
	go func() {
		defer readerWG.Done()
		h := sha256.New()
		fr := NewReader(cr)
		for i := 0; i < frames; i++ {
			req, err := fr.ReadRequest()
			if err != nil {
				t.Errorf("ReadRequest %d: %v", i, err)
				return
			}
			h.Write([]byte{byte(req.Op), byte(req.Seq)})
		}
		copy(ctrlSum[:], h.Sum(nil))
	}()
	go func() {
		defer readerWG.Done()
		h := sha256.New()
		if _, err := io.CopyN(h, dr, int64(frames*len(payload))); err != nil {
			t.Errorf("data drain: %v", err)
			return
		}
		copy(dataSum[:], h.Sum(nil))
	}()

	for i := 0; i < frames; i++ {
		r := &Request{Op: OpWrite, Seq: uint32(i), N: int64(len(payload))}
		if err := bw.WritePost(r, payload); err != nil {
			t.Fatalf("WritePost %d: %v", i, err)
		}
	}
	readerWG.Wait()

	wantCtrl := sha256.New()
	for i := 0; i < frames; i++ {
		wantCtrl.Write([]byte{byte(OpWrite), byte(i)})
	}
	if !bytes.Equal(ctrlSum[:], wantCtrl.Sum(nil)) {
		t.Fatal("control frames diverged through the ring")
	}
	wantData := sha256.New()
	for i := 0; i < frames; i++ {
		wantData.Write(payload)
	}
	if !bytes.Equal(dataSum[:], wantData.Sum(nil)) {
		t.Fatal("posted payload bytes diverged through the ring")
	}
}

// TestURingTCPEndToEnd: the fileserver's conn path — a net.TCPConn writer —
// must round frames through the ring intact.
func TestURingTCPEndToEnd(t *testing.T) {
	requireURing(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv := <-accepted
	defer srv.Close()

	bw := NewBatchWriter(conn, nil)
	if bw.Backend() != "io_uring" {
		t.Fatalf("TCP backend = %q, want io_uring", bw.Backend())
	}
	payload := bytes.Repeat([]byte{0x5A}, 128*1024)
	done := make(chan error, 1)
	go func() {
		done <- bw.WriteResponse(&Response{Status: StatusOK, Seq: 9, Data: payload})
	}()
	resp, err := NewReader(srv).ReadResponse()
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("WriteResponse: %v", werr)
	}
	if resp.Seq != 9 || !bytes.Equal(resp.Data, payload) {
		t.Fatal("response diverged through the ring on TCP")
	}
}

// TestURingSubmitterUnknownWriterFallsBack: a span whose writer was not part
// of the pair must be carried portably, whole, with no partial ring write.
func TestURingSubmitterUnknownWriterFallsBack(t *testing.T) {
	requireURing(t)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	s := newURingSubmitter(w, nil)
	if s == nil {
		t.Fatal("probe passed but constructor declined")
	}
	var buf bytes.Buffer
	if err := s.Submit([]Span{{W: &buf, Bufs: net.Buffers{[]byte("portable bytes")}}}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if buf.String() != "portable bytes" {
		t.Fatalf("fallback wrote %q", buf.String())
	}
}
