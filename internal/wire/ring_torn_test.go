package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/shm"
)

// TestRingStreamTornBoundaries is the shared-memory counterpart of
// TestBatchedStreamTornBoundaries: a batched frame stream pushed through a
// real shm ring and cut off at an arbitrary byte — the producer closing the
// ring mid-stream, exactly what a dying parent's segment teardown looks
// like — must yield every complete frame intact and then fail with the same
// terminal shapes as a torn pipe: io.EOF on a frame boundary,
// io.ErrUnexpectedEOF inside a frame. The mux poisoning discipline keys on
// those two shapes, so this is what makes crash handling carrier-agnostic.
// Frames are consumed through both payload paths — copied out with
// ReadPayload and skipped with DiscardPayload, the latter exercising the
// ring's copy-free Discarder fast path.
func TestRingStreamTornBoundaries(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm rings unsupported on this platform")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Batch 3..10 request frames with payload sizes straddling the
		// by-value/by-reference threshold and the ring capacity, so cuts land
		// in both splice paths and streams wrap the ring several times.
		nFrames := 3 + rng.Intn(8)
		reqs := make([]Request, nFrames)
		var stream bytes.Buffer
		bw := NewBatchWriter(&stream, nil)
		var ends []int
		for i := range reqs {
			size := rng.Intn(2 * inlinePayload)
			payload := make([]byte, size)
			rng.Read(payload)
			reqs[i] = Request{
				Op:   OpWrite,
				Seq:  uint32(i + 1),
				Off:  rng.Int63(),
				N:    int64(size),
				Data: payload,
			}
			if err := bw.WriteRequest(&reqs[i]); err != nil {
				t.Fatalf("WriteRequest: %v", err)
			}
			ends = append(ends, stream.Len())
		}
		full := stream.Bytes()

		cuts := append([]int{0, len(full)}, ends...)
		for i := 0; i < 6; i++ {
			cuts = append(cuts, rng.Intn(len(full)+1))
		}
		for _, cut := range cuts {
			seg, err := shm.New(4096, 4096)
			if err != nil {
				t.Fatalf("shm.New: %v", err)
			}
			ring := seg.Cmd()
			// The producer: ship the stream's first cut bytes, then tear the
			// ring down — the crash point.
			go func(prefix []byte) {
				ring.Write(prefix)
				ring.Close()
			}(full[:cut])

			wantComplete := 0
			for _, end := range ends {
				if end <= cut {
					wantComplete++
				}
			}
			r := NewReader(ring)
			var decoded int
			for {
				var req Request
				var plen int
				req, plen, err = r.ReadRequestHeader()
				if err != nil {
					break
				}
				if decoded >= len(reqs) {
					t.Fatalf("cut %d: decoded more frames than were written", cut)
				}
				want := reqs[decoded]
				if req.Op != want.Op || req.Seq != want.Seq || req.Off != want.Off || plen != len(want.Data) {
					t.Fatalf("cut %d: frame %d header decoded torn/corrupt", cut, decoded)
				}
				if rng.Intn(2) == 0 {
					if err = r.DiscardPayload(); err != nil {
						break
					}
				} else {
					payload := make([]byte, plen)
					if err = r.ReadPayload(payload); err != nil {
						break
					}
					if !bytes.Equal(payload, want.Data) {
						t.Fatalf("cut %d: frame %d payload corrupt off the ring", cut, decoded)
					}
				}
				decoded++
			}
			if decoded != wantComplete {
				t.Fatalf("cut %d: decoded %d complete frames, want %d (err %v)", cut, decoded, wantComplete, err)
			}
			onBoundary := cut == 0 || wantComplete > 0 && ends[wantComplete-1] == cut
			if onBoundary {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("cut %d on frame boundary: err = %v, want io.EOF", cut, err)
				}
			} else if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d mid-frame: err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
			seg.Close()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
