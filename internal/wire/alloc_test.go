package wire

import (
	"bytes"
	"io"
	"testing"
)

// TestGetBufPoolBounds pins the payload-pool contract: pooled buffers serve
// any size up to PooledBufSize, oversized requests get one-shot allocations
// with a no-op release, and releasing never panics or hands back a shrunken
// buffer.
func TestGetBufPoolBounds(t *testing.T) {
	for _, n := range []int{0, 1, 16, PooledBufSize} {
		buf, release := GetBuf(n)
		if len(buf) != n {
			t.Fatalf("GetBuf(%d) len = %d", n, len(buf))
		}
		if cap(buf) < n {
			t.Fatalf("GetBuf(%d) cap = %d", n, cap(buf))
		}
		release()
	}
	big, release := GetBuf(PooledBufSize + 1)
	if len(big) != PooledBufSize+1 {
		t.Fatalf("oversized GetBuf len = %d", len(big))
	}
	release() // must not park the oversized buffer
	buf, release2 := GetBuf(8)
	if cap(buf) > PooledBufSize {
		t.Fatalf("pool handed back an oversized buffer: cap = %d", cap(buf))
	}
	release2()
}

// TestEncodeAllocsIndependentOfPayload is the zero-copy claim for the write
// path: once the Writer's scratch is warm, encoding a frame performs no
// payload-sized allocation — a 4 KiB payload (vectored) costs no more
// allocations than a 64 B payload (inlined).
func TestEncodeAllocsIndependentOfPayload(t *testing.T) {
	allocsFor := func(size int) float64 {
		payload := make([]byte, size)
		w := NewWriter(io.Discard)
		req := &Request{Op: OpWrite, Seq: 1, N: int64(size), Data: payload}
		if err := w.WriteRequest(req); err != nil { // warm the scratch
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if err := w.WriteRequest(req); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocsFor(64)
	large := allocsFor(4096) // > inlinePayload: takes the vectored path
	if large > small {
		t.Fatalf("4KiB encode allocates more than 64B encode: %v > %v", large, small)
	}
	if large > 0 {
		t.Fatalf("4KiB encode allocates %v objects per op, want 0", large)
	}
}

// TestDecodeAllocsIndependentOfPayload is the zero-copy claim for the read
// path: the split header/ReadPayload decode lands payload bytes straight in
// the caller's buffer, so a warm Reader decodes a 4 KiB response with zero
// allocations.
func TestDecodeAllocsIndependentOfPayload(t *testing.T) {
	allocsFor := func(size int) float64 {
		frame, err := AppendResponse(nil, &Response{
			Status: StatusOK, Seq: 7, N: int64(size), Data: make([]byte, size),
		})
		if err != nil {
			t.Fatal(err)
		}
		var br bytes.Reader
		r := NewReader(&br)
		dst := make([]byte, size)
		decode := func() {
			br.Reset(frame)
			resp, n, err := r.ReadResponseHeader()
			if err != nil {
				t.Fatal(err)
			}
			if resp.Seq != 7 || n != size {
				t.Fatalf("decoded seq %d payload %d", resp.Seq, n)
			}
			if err := r.ReadPayload(dst[:n]); err != nil {
				t.Fatal(err)
			}
		}
		decode() // warm the header scratch
		return testing.AllocsPerRun(200, decode)
	}
	small := allocsFor(64)
	large := allocsFor(4096)
	if large > small {
		t.Fatalf("4KiB decode allocates more than 64B decode: %v > %v", large, small)
	}
	if large > 0 {
		t.Fatalf("4KiB decode allocates %v objects per op, want 0", large)
	}
}

func benchmarkWriteRequest(b *testing.B, size int) {
	payload := make([]byte, size)
	w := NewWriter(io.Discard)
	req := &Request{Op: OpWrite, Seq: 1, N: int64(size), Data: payload}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRequest(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteRequest64(b *testing.B)  { benchmarkWriteRequest(b, 64) }
func BenchmarkWriteRequest4K(b *testing.B)  { benchmarkWriteRequest(b, 4096) }
func BenchmarkWriteRequest64K(b *testing.B) { benchmarkWriteRequest(b, 64*1024) }

func benchmarkReadResponse(b *testing.B, size int) {
	frame, err := AppendResponse(nil, &Response{
		Status: StatusOK, Seq: 7, N: int64(size), Data: make([]byte, size),
	})
	if err != nil {
		b.Fatal(err)
	}
	var br bytes.Reader
	r := NewReader(&br)
	dst := make([]byte, size)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(frame)
		_, n, err := r.ReadResponseHeader()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.ReadPayload(dst[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse64(b *testing.B)  { benchmarkReadResponse(b, 64) }
func BenchmarkReadResponse4K(b *testing.B)  { benchmarkReadResponse(b, 4096) }
func BenchmarkReadResponse64K(b *testing.B) { benchmarkReadResponse(b, 64*1024) }
