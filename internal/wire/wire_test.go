package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		give Op
		want string
	}{
		{OpOpen, "open"},
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpSeek, "seek"},
		{OpSize, "size"},
		{OpTruncate, "truncate"},
		{OpSync, "sync"},
		{OpLock, "lock"},
		{OpUnlock, "unlock"},
		{OpStat, "stat"},
		{OpClose, "close"},
		{OpControl, "control"},
		{Op(0), "op(0)"},
		{Op(200), "op(200)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		give Status
		want string
	}{
		{StatusOK, "ok"},
		{StatusError, "error"},
		{StatusUnsupported, "unsupported"},
		{StatusEOF, "eof"},
		{StatusClosed, "closed"},
		{StatusNotFound, "not found"},
		{StatusBusy, "busy"},
		{Status(0), "status(0)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give Request
	}{
		{name: "read", give: Request{Op: OpRead, Seq: 1, Off: 1024, N: 512}},
		{name: "write", give: Request{Op: OpWrite, Seq: 7, Off: 0, N: 5, Data: []byte("hello")}},
		{name: "seek negative", give: Request{Op: OpSeek, Seq: 2, Off: -16, N: 2}},
		{name: "close empty", give: Request{Op: OpClose, Seq: 0xffffffff}},
		{name: "control payload", give: Request{Op: OpControl, Seq: 9, Data: []byte{0, 1, 2, 255}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteRequest(&tt.give); err != nil {
				t.Fatalf("WriteRequest: %v", err)
			}
			r := NewReader(&buf)
			got, err := r.ReadRequest()
			if err != nil {
				t.Fatalf("ReadRequest: %v", err)
			}
			if got.Op != tt.give.Op || got.Seq != tt.give.Seq ||
				got.Off != tt.give.Off || got.N != tt.give.N ||
				!bytes.Equal(got.Data, tt.give.Data) {
				t.Errorf("round trip = %+v, want %+v", got, tt.give)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give Response
	}{
		{name: "ok", give: Response{Status: StatusOK, Seq: 1, N: 512}},
		{name: "data", give: Response{Status: StatusOK, Seq: 2, N: 3, Data: []byte("abc")}},
		{name: "error msg", give: Response{Status: StatusError, Seq: 3, Msg: "remote source unreachable"}},
		{name: "msg and data", give: Response{Status: StatusEOF, Seq: 4, N: 2, Msg: "short", Data: []byte("xy")}},
		{name: "negative n", give: Response{Status: StatusOK, Seq: 5, N: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteResponse(&tt.give); err != nil {
				t.Fatalf("WriteResponse: %v", err)
			}
			r := NewReader(&buf)
			got, err := r.ReadResponse()
			if err != nil {
				t.Fatalf("ReadResponse: %v", err)
			}
			if got.Status != tt.give.Status || got.Seq != tt.give.Seq ||
				got.N != tt.give.N || got.Msg != tt.give.Msg ||
				!bytes.Equal(got.Data, tt.give.Data) {
				t.Errorf("round trip = %+v, want %+v", got, tt.give)
			}
		})
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	ops := []Op{OpOpen, OpRead, OpWrite, OpSeek, OpSize, OpTruncate, OpSync, OpLock, OpUnlock, OpStat, OpClose, OpControl}
	f := func(opIdx uint8, seq uint32, off, n int64, data []byte) bool {
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		give := Request{Op: ops[int(opIdx)%len(ops)], Seq: seq, Off: off, N: n, Data: data}
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteRequest(&give); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadRequest()
		if err != nil {
			return false
		}
		return got.Op == give.Op && got.Seq == give.Seq && got.Off == give.Off &&
			got.N == give.N && bytes.Equal(got.Data, give.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	sts := []Status{StatusOK, StatusError, StatusUnsupported, StatusEOF, StatusClosed, StatusNotFound, StatusBusy}
	f := func(stIdx uint8, seq uint32, n int64, msg string, data []byte) bool {
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		give := Response{Status: sts[int(stIdx)%len(sts)], Seq: seq, N: n, Msg: msg, Data: data}
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteResponse(&give); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadResponse()
		if err != nil {
			return false
		}
		return got.Status == give.Status && got.Seq == give.Seq && got.N == give.N &&
			got.Msg == give.Msg && bytes.Equal(got.Data, give.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	big := make([]byte, MaxPayload+1)
	if _, err := AppendRequest(nil, &Request{Op: OpWrite, Data: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("AppendRequest(oversized) err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := AppendResponse(nil, &Response{Status: StatusOK, Data: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("AppendResponse(oversized) err = %v, want ErrFrameTooLarge", err)
	}
}

func TestEncodeRejectsInvalidOpAndStatus(t *testing.T) {
	if _, err := AppendRequest(nil, &Request{Op: Op(0)}); !errors.Is(err, ErrBadOp) {
		t.Errorf("AppendRequest(bad op) err = %v, want ErrBadOp", err)
	}
	if _, err := AppendResponse(nil, &Response{Status: Status(0)}); !errors.Is(err, ErrBadStatus) {
		t.Errorf("AppendResponse(bad status) err = %v, want ErrBadStatus", err)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	tests := []struct {
		name    string
		give    []byte
		wantErr error
	}{
		{name: "short", give: []byte{1, 2, 3}, wantErr: ErrShortFrame},
		{name: "bad op", give: append([]byte{0}, make([]byte, reqHeaderLen-1)...), wantErr: ErrBadOp},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeRequest(tt.give); !errors.Is(err, tt.wantErr) {
				t.Errorf("DecodeRequest err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	// Valid header but message length pointing past the frame end.
	frame := make([]byte, rspHeaderLen)
	frame[0] = byte(StatusOK)
	binary.BigEndian.PutUint32(frame[13:17], 1000)
	tests := []struct {
		name    string
		give    []byte
		wantErr error
	}{
		{name: "short", give: []byte{1}, wantErr: ErrShortFrame},
		{name: "bad status", give: append([]byte{0}, make([]byte, rspHeaderLen-1)...), wantErr: ErrBadStatus},
		{name: "msg overrun", give: frame, wantErr: ErrShortFrame},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeResponse(tt.give); !errors.Is(err, tt.wantErr) {
				t.Errorf("DecodeResponse err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestReaderRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	buf.Write(hdr[:])
	if _, err := NewReader(&buf).ReadRequest(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("ReadRequest err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3}) // only 3 of 100 promised bytes
	if _, err := NewReader(&buf).ReadRequest(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("ReadRequest err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReaderCleanEOF(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")).ReadRequest(); !errors.Is(err, io.EOF) {
		t.Errorf("ReadRequest on empty stream err = %v, want io.EOF", err)
	}
}

func TestPipelinedFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const count = 50
	rng := rand.New(rand.NewSource(42))
	var want []Request
	for i := 0; i < count; i++ {
		data := make([]byte, rng.Intn(2048))
		rng.Read(data)
		req := Request{Op: OpWrite, Seq: uint32(i), Off: rng.Int63(), N: int64(len(data)), Data: data}
		want = append(want, req)
		if err := w.WriteRequest(&req); err != nil {
			t.Fatalf("WriteRequest %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < count; i++ {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("ReadRequest %d: %v", i, err)
		}
		if got.Seq != want[i].Seq || got.Off != want[i].Off || !bytes.Equal(got.Data, want[i].Data) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestStatusErrorMapping(t *testing.T) {
	tests := []struct {
		give    Status
		msg     string
		wantErr error
	}{
		{give: StatusOK, wantErr: nil},
		{give: StatusEOF, wantErr: io.EOF},
		{give: StatusUnsupported, wantErr: ErrUnsupported},
		{give: StatusClosed, wantErr: ErrClosed},
		{give: StatusNotFound, wantErr: ErrNotFound},
		{give: StatusBusy, wantErr: ErrBusy},
	}
	for _, tt := range tests {
		t.Run(tt.give.String(), func(t *testing.T) {
			err := ToError(OpRead, tt.give, tt.msg)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("ToError(%v) = %v, want %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestStatusErrorGeneric(t *testing.T) {
	err := ToError(OpWrite, StatusError, "disk full")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("ToError generic = %T, want *RemoteError", err)
	}
	if remote.Op != OpWrite || remote.Msg != "disk full" {
		t.Errorf("RemoteError = %+v", remote)
	}
	if want := "sentinel write: disk full"; err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	tests := []struct {
		name    string
		give    error
		want    Status
		wantMsg string
	}{
		{name: "nil", give: nil, want: StatusOK},
		{name: "eof", give: io.EOF, want: StatusEOF},
		{name: "unsupported", give: ErrUnsupported, want: StatusUnsupported},
		{name: "closed", give: ErrClosed, want: StatusClosed},
		{name: "not found", give: ErrNotFound, want: StatusNotFound},
		{name: "busy", give: ErrBusy, want: StatusBusy},
		{name: "generic", give: errors.New("boom"), want: StatusError, wantMsg: "boom"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st, msg := FromError(tt.give)
			if st != tt.want || msg != tt.wantMsg {
				t.Errorf("FromError(%v) = (%v, %q), want (%v, %q)", tt.give, st, msg, tt.want, tt.wantMsg)
			}
		})
	}
}

func TestErrorStatusRoundTripProperty(t *testing.T) {
	// Any status produced by FromError must map back via ToError to an
	// error that FromError classifies identically (a fixed point).
	f := func(code uint8, msg string) bool {
		st := Status(code%7 + 1)
		if len(msg) > 256 {
			msg = msg[:256]
		}
		err := ToError(OpRead, st, msg)
		got, _ := FromError(err)
		return got == st
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeAliasesBuffer(t *testing.T) {
	// Document (and pin) the aliasing contract: Reader reuses its buffer, so
	// payloads from a previous frame are invalidated by the next read.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(&Request{Op: OpWrite, Seq: 1, Data: []byte("first")}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRequest(&Request{Op: OpWrite, Seq: 2, Data: []byte("secnd")}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	first, err := r.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	saved := string(first.Data) // copy before the next frame
	if _, err := r.ReadRequest(); err != nil {
		t.Fatal(err)
	}
	if saved != "first" {
		t.Errorf("copied payload = %q, want %q", saved, "first")
	}
	if !reflect.DeepEqual(first.Data, []byte("secnd")) {
		t.Errorf("aliased payload after second read = %q, want overwritten to %q", first.Data, "secnd")
	}
}
