// Package backend defines the pluggable storage seam behind the remote tier:
// a Backend is a named collection of random-access objects, the thing a
// sentinel (or a FileServer) binds when an active file names an information
// source. The paper's sentinel mediates between a legacy application and "a
// remote service"; this package makes the service side a first-class,
// swappable layer, so every new backend is a new workload for the same
// strategies and the same conformance contract.
//
// Backends are selected by spec strings so manifests and command-line flags
// can compose them textually:
//
//	mem                               in-memory object store
//	nativefs:/var/data                objects are files under a root directory
//	rofs:<inner spec>                 read-only view of another backend
//	errorfs(rate=0.01,seed=7):<spec>  deterministic fault/latency injection
//	remote:127.0.0.1:9000             dial a FileServer (package remotefs)
//
// The wrapping backends (rofs, errorfs) nest arbitrarily, e.g.
// "errorfs(rate=0.05,seed=1):rofs:nativefs:/srv/ro".
package backend

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Object is one open random-access object of a backend — the same contract
// as a remote source or an active file's data part. All implementations
// follow os.File semantics at the boundary: reads past the end return
// io.EOF, zero-length reads return (0, nil) even at EOF, and writes past the
// end zero-fill the gap.
type Object interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the object's current length.
	Size() (int64, error)
	// Truncate sets the object's length, zero-filling on extension.
	Truncate(n int64) error
	// Close releases the object; further operations fail.
	Close() error
}

// Caps is the capability bitmask a backend advertises.
type Caps uint32

// Capability flags.
const (
	// CapWrite marks a backend whose objects accept WriteAt/Truncate.
	// Without it the backend is read-only and writes fail with ErrReadOnly.
	CapWrite Caps = 1 << iota
	// CapStat marks a backend implementing Stater.
	CapStat
	// CapList marks a backend implementing Lister.
	CapList
)

// Has reports whether every flag in want is set.
func (c Caps) Has(want Caps) bool { return c&want == want }

// String renders the bitmask as "rw+stat+list"-style text.
func (c Caps) String() string {
	var parts []string
	if c.Has(CapWrite) {
		parts = append(parts, "rw")
	} else {
		parts = append(parts, "ro")
	}
	if c.Has(CapStat) {
		parts = append(parts, "stat")
	}
	if c.Has(CapList) {
		parts = append(parts, "list")
	}
	return strings.Join(parts, "+")
}

// Info describes one object of a backend.
type Info struct {
	Name string
	Size int64
}

// Backend is a named collection of objects. Implementations must be safe for
// concurrent use; a writable backend's Open creates the object when it does
// not exist (matching a writable store), a read-only backend's Open fails
// with ErrNotFound instead.
type Backend interface {
	// Kind is the registry name of the implementation ("mem", "nativefs", …).
	Kind() string
	// Caps advertises what the backend supports.
	Caps() Caps
	// Open returns the named object. Concurrent opens of the same name see
	// the same underlying bytes.
	Open(name string) (Object, error)
	// Close releases the backend; objects already open stay usable unless
	// the implementation says otherwise.
	Close() error
}

// Stater is implemented by backends that can describe an object without
// opening it (CapStat).
type Stater interface {
	Stat(name string) (Info, error)
}

// Lister is implemented by backends that can enumerate their objects
// (CapList).
type Lister interface {
	List() ([]Info, error)
}

// Typed errors shared across implementations.
var (
	// ErrReadOnly is returned by writes and truncates on a read-only
	// backend's objects.
	ErrReadOnly = errors.New("backend: read-only")
	// ErrNotFound reports an object a read-only backend does not hold.
	ErrNotFound = errors.New("backend: object not found")
	// ErrObjectClosed is returned by operations on a closed object.
	ErrObjectClosed = errors.New("backend: object closed")
	// ErrUnknownKind reports a spec naming an unregistered backend kind.
	ErrUnknownKind = errors.New("backend: unknown kind")
	// ErrBadSpec reports a malformed backend spec string.
	ErrBadSpec = errors.New("backend: bad spec")
)

// Factory builds a backend from the parsed pieces of a spec: opts from the
// optional "(k=v,…)" group, config is everything after the kind's colon
// (which wrapping backends interpret as an inner spec).
type Factory func(opts map[string]string, config string) (Backend, error)

// registry maps kind names to factories. Built-ins register at init; other
// packages (remotefs) add kinds from their own init.
var registry = struct {
	mu        sync.RWMutex
	factories map[string]Factory
}{factories: make(map[string]Factory)}

// Register installs a factory under kind, replacing any previous one.
func Register(kind string, f Factory) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.factories[kind] = f
}

// Kinds returns the sorted registered kind names.
func Kinds() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for k := range registry.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseSpec splits a spec into kind, options, and config without
// instantiating anything — manifest validation uses it to reject junk early.
func ParseSpec(spec string) (kind string, opts map[string]string, config string, err error) {
	rest := spec
	// Kind runs to the first '(' or ':'.
	idx := strings.IndexAny(rest, "(:")
	if idx == -1 {
		kind, rest = rest, ""
	} else {
		kind, rest = rest[:idx], rest[idx:]
	}
	if kind == "" {
		return "", nil, "", fmt.Errorf("%w: %q names no kind", ErrBadSpec, spec)
	}
	if strings.HasPrefix(rest, "(") {
		end := strings.Index(rest, ")")
		if end == -1 {
			return "", nil, "", fmt.Errorf("%w: %q: unterminated options", ErrBadSpec, spec)
		}
		opts = make(map[string]string)
		for _, pair := range strings.Split(rest[1:end], ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			k, v, found := strings.Cut(pair, "=")
			if !found || k == "" {
				return "", nil, "", fmt.Errorf("%w: %q: option %q is not key=value", ErrBadSpec, spec, pair)
			}
			opts[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
		rest = rest[end+1:]
	}
	if rest != "" {
		if !strings.HasPrefix(rest, ":") {
			return "", nil, "", fmt.Errorf("%w: %q: expected ':' before config", ErrBadSpec, spec)
		}
		config = rest[1:]
	}
	return kind, opts, config, nil
}

// Open instantiates the backend a spec describes, consulting the registry.
func Open(spec string) (Backend, error) {
	kind, opts, config, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	registry.mu.RLock()
	f, ok := registry.factories[kind]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownKind, kind, strings.Join(Kinds(), ", "))
	}
	b, err := f(opts, config)
	if err != nil {
		return nil, fmt.Errorf("backend %q: %w", kind, err)
	}
	return b, nil
}

func init() {
	Register("mem", func(opts map[string]string, config string) (Backend, error) {
		if config != "" {
			return nil, fmt.Errorf("%w: mem takes no config, got %q", ErrBadSpec, config)
		}
		return NewMem(), nil
	})
	Register("nativefs", func(opts map[string]string, config string) (Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: nativefs wants a root directory (nativefs:/path)", ErrBadSpec)
		}
		return NewNativeFS(config)
	})
	Register("rofs", func(opts map[string]string, config string) (Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: rofs wants an inner spec (rofs:<spec>)", ErrBadSpec)
		}
		inner, err := Open(config)
		if err != nil {
			return nil, err
		}
		return NewROFS(inner), nil
	})
	Register("errorfs", func(opts map[string]string, config string) (Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: errorfs wants an inner spec (errorfs(rate=..):<spec>)", ErrBadSpec)
		}
		inner, err := Open(config)
		if err != nil {
			return nil, err
		}
		return NewErrorFSFromOpts(inner, opts)
	})
}
