// Package remotefs provides the network-crossing backends: "remote" dials a
// FileServer (so backends compose across the network — a FileServer can
// itself be serving any backend), and "http" binds objects on any HTTP
// server honouring Range requests. Importing this package registers both
// kinds with the backend registry.
package remotefs

import (
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/remote"
)

func init() {
	backend.Register("remote", func(opts map[string]string, config string) (backend.Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: remote wants a FileServer address (remote:host:port)", backend.ErrBadSpec)
		}
		if len(opts) > 0 {
			return nil, fmt.Errorf("%w: remote takes no options", backend.ErrBadSpec)
		}
		return &RemoteFS{addr: config}, nil
	})
	backend.Register("http", func(opts map[string]string, config string) (backend.Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: http wants a base URL (http:host:port[/prefix])", backend.ErrBadSpec)
		}
		if len(opts) > 0 {
			return nil, fmt.Errorf("%w: http takes no options", backend.ErrBadSpec)
		}
		return NewHTTPFS(config), nil
	})
}

// RemoteFS reaches objects on a remote.FileServer: each Open dials a
// connection and binds one object, with the client's full fault-tolerance
// envelope (pipelining, reconnect, idempotent replay) underneath.
type RemoteFS struct {
	addr string
}

var _ backend.Backend = (*RemoteFS)(nil)

// NewRemoteFS returns a backend dialing the FileServer at addr.
func NewRemoteFS(addr string) *RemoteFS { return &RemoteFS{addr: addr} }

// Kind implements backend.Backend.
func (r *RemoteFS) Kind() string { return "remote" }

// Caps implements backend.Backend: the wire protocol carries reads and
// writes but has no stat/list verbs.
func (r *RemoteFS) Caps() backend.Caps { return backend.CapWrite }

// Open implements backend.Backend. remote.Client's method set is exactly the
// Object contract, so the connection is the object.
func (r *RemoteFS) Open(name string) (backend.Object, error) {
	return remote.Dial(r.addr, name)
}

// Close implements backend.Backend; connections belong to their objects.
func (r *RemoteFS) Close() error { return nil }

// HTTPFS reaches objects over plain HTTP: object "name" lives at
// "<base>/<name>". Writes use read-modify-write PUT (remote.HTTPSource), so
// against a server without PUT the backend degrades to read-only errors from
// the server rather than ErrReadOnly — wrap it in rofs to enforce the policy
// client-side.
type HTTPFS struct {
	base string
}

var _ backend.Backend = (*HTTPFS)(nil)

// NewHTTPFS returns a backend for objects under base (scheme optional,
// "http://" assumed).
func NewHTTPFS(base string) *HTTPFS {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return &HTTPFS{base: strings.TrimSuffix(base, "/")}
}

// Kind implements backend.Backend.
func (h *HTTPFS) Kind() string { return "http" }

// Caps implements backend.Backend.
func (h *HTTPFS) Caps() backend.Caps { return backend.CapWrite }

// Open implements backend.Backend.
func (h *HTTPFS) Open(name string) (backend.Object, error) {
	if name == "" || strings.Contains(name, "..") {
		return nil, fmt.Errorf("http: bad object name %q", name)
	}
	return remote.NewHTTPSource(h.base+"/"+name, nil), nil
}

// Close implements backend.Backend.
func (h *HTTPFS) Close() error { return nil }
