package backend

import (
	"errors"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Mem is the in-memory backend: named byte objects living in the process,
// the promotion of the remote tier's ad-hoc MemSource/MemStore into a
// registry citizen. Opening a missing object creates it (writable-store
// semantics); every open of the same name shares the same bytes.
type Mem struct {
	mu      sync.RWMutex
	objects map[string]*memData
}

var _ Backend = (*Mem)(nil)
var _ Stater = (*Mem)(nil)
var _ Lister = (*Mem)(nil)

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{objects: make(map[string]*memData)}
}

// Kind implements Backend.
func (m *Mem) Kind() string { return "mem" }

// Caps implements Backend.
func (m *Mem) Caps() Caps { return CapWrite | CapStat | CapList }

// Open implements Backend, creating the object when missing.
func (m *Mem) Open(name string) (Object, error) {
	return &memObject{data: m.lookup(name, true)}, nil
}

// Stat implements Stater.
func (m *Mem) Stat(name string) (Info, error) {
	m.mu.RLock()
	d, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return Info{}, ErrNotFound
	}
	return Info{Name: name, Size: d.size()}, nil
}

// List implements Lister, in sorted name order.
func (m *Mem) List() ([]Info, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Info, 0, len(m.objects))
	for name, d := range m.objects {
		out = append(out, Info{Name: name, Size: d.size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Close implements Backend. Objects already open stay usable; the map is
// kept so late opens still resolve (an in-process store has nothing to
// release).
func (m *Mem) Close() error { return nil }

// Put creates or replaces the named object's contents in place, so handles
// already open on the name observe the new bytes.
func (m *Mem) Put(name string, data []byte) {
	d := m.lookup(name, true)
	d.mu.Lock()
	d.buf = append(d.buf[:0], data...)
	d.mu.Unlock()
}

// Get returns a copy of the named object's contents.
func (m *Mem) Get(name string) ([]byte, bool) {
	m.mu.RLock()
	d, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return nil, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]byte(nil), d.buf...), true
}

func (m *Mem) lookup(name string, create bool) *memData {
	m.mu.RLock()
	d, ok := m.objects[name]
	m.mu.RUnlock()
	if ok || !create {
		return d
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok = m.objects[name]; ok {
		return d
	}
	d = &memData{}
	m.objects[name] = d
	return d
}

// memData is the shared byte state of one named object. Reads share an
// RLock so concurrent readers of a hot object do not serialize.
type memData struct {
	mu  sync.RWMutex
	buf []byte
}

func (d *memData) size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.buf))
}

// memObject is one open handle on a memData. Closing a handle invalidates
// only that handle, not the shared bytes.
type memObject struct {
	data   *memData
	closed atomic.Bool
}

var _ Object = (*memObject)(nil)

func (o *memObject) guard() error {
	if o.closed.Load() {
		return ErrObjectClosed
	}
	return nil
}

// ReadAt implements Object with os.File semantics: zero-length reads return
// (0, nil) even at or past EOF; short reads at the tail return io.EOF.
func (o *memObject) ReadAt(p []byte, off int64) (int, error) {
	if err := o.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, errors.New("backend: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	d := o.data
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Object, zero-filling any gap past the current end.
func (o *memObject) WriteAt(p []byte, off int64) (int, error) {
	if err := o.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, errors.New("backend: negative offset")
	}
	d := o.data
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		grown := make([]byte, end)
		copy(grown, d.buf)
		d.buf = grown
	}
	copy(d.buf[off:end], p)
	return len(p), nil
}

// Size implements Object.
func (o *memObject) Size() (int64, error) {
	if err := o.guard(); err != nil {
		return 0, err
	}
	return o.data.size(), nil
}

// Truncate implements Object.
func (o *memObject) Truncate(n int64) error {
	if err := o.guard(); err != nil {
		return err
	}
	if n < 0 {
		return errors.New("backend: negative length")
	}
	d := o.data
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= int64(len(d.buf)) {
		d.buf = d.buf[:n]
		return nil
	}
	grown := make([]byte, n)
	copy(grown, d.buf)
	d.buf = grown
	return nil
}

// Close implements Object; idempotent.
func (o *memObject) Close() error {
	o.closed.Store(true)
	return nil
}
