// Package conformance is the single contract suite every backend — and every
// implementation strategy serving one — must pass. It pins os.File semantics
// at the Object seam: offset math, io.EOF on reads past the end, (0, nil)
// for zero-length reads at EOF, gap-filling writes, truncate-extend
// zero-fill, tolerance of concurrent readers, and errors after Close.
//
// A Factory provisions a fresh object seeded with given content by whatever
// side channel the backend offers (writing through the backend, putting on a
// server, dropping a file in a directory) and registers cleanup on t. RunRO
// exercises the read-only profile; RunRW adds mutation and then runs RunRO
// too. The suites are run both directly against each backend (package
// backend's tests) and end-to-end through every strategy via the manifest
// backend= parameter (package core's matrix), so the contract is enforced at
// the seam and across each transport.
package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// Object is the access contract under test — structurally identical to
// backend.Object, remote.Source, and core.Handle's positioned subset, so any
// of them can be driven without adapters.
type Object interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Truncate(n int64) error
	Close() error
}

// Factory provisions a fresh object whose contents are exactly content,
// registering any cleanup with t. Each call must yield an independent
// object; RunRO/RunRW call it several times.
type Factory func(t *testing.T, content []byte) Object

// seedLen is deliberately not a multiple of common block sizes, so tail
// reads genuinely straddle the end.
const seedLen = 4093

// seedContent returns the deterministic test pattern.
func seedContent(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>8)
	}
	return out
}

// RunRO runs the read-only conformance profile: it never writes through the
// object under test.
func RunRO(t *testing.T, factory Factory) {
	content := seedContent(seedLen)
	size := int64(len(content))

	t.Run("Size", func(t *testing.T) {
		obj := factory(t, content)
		got, err := obj.Size()
		if err != nil {
			t.Fatalf("Size: %v", err)
		}
		if got != size {
			t.Fatalf("Size = %d, want %d", got, size)
		}
	})

	t.Run("OffsetMath", func(t *testing.T) {
		obj := factory(t, content)
		for _, tc := range []struct{ off, n int64 }{
			{0, 1}, {0, 16}, {1, 16}, {511, 513}, {size / 2, 128}, {size - 1, 1},
		} {
			buf := make([]byte, tc.n)
			n, err := obj.ReadAt(buf, tc.off)
			if err != nil || int64(n) != tc.n {
				t.Fatalf("ReadAt(%d bytes @ %d) = (%d, %v), want (%d, nil)", tc.n, tc.off, n, err, tc.n)
			}
			if !bytes.Equal(buf, content[tc.off:tc.off+tc.n]) {
				t.Fatalf("ReadAt(%d bytes @ %d): content mismatch", tc.n, tc.off)
			}
		}
	})

	t.Run("TailRead", func(t *testing.T) {
		obj := factory(t, content)
		// A read straddling the end returns the remaining bytes; the EOF may
		// arrive with them or on the next call, as with os.File both are
		// spec-level (ReaderAt permits either only when n < len(p)).
		buf := make([]byte, 100)
		off := size - 40
		n, err := obj.ReadAt(buf, off)
		if n != 40 {
			t.Fatalf("tail ReadAt = (%d, %v), want 40 bytes", n, err)
		}
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("tail ReadAt error = %v, want nil or io.EOF", err)
		}
		if !bytes.Equal(buf[:40], content[off:]) {
			t.Fatalf("tail ReadAt: content mismatch")
		}
	})

	t.Run("ReadPastEOF", func(t *testing.T) {
		obj := factory(t, content)
		for _, off := range []int64{size, size + 1, size + 4096} {
			buf := make([]byte, 8)
			n, err := obj.ReadAt(buf, off)
			if n != 0 || !errors.Is(err, io.EOF) {
				t.Fatalf("ReadAt @ %d (size %d) = (%d, %v), want (0, io.EOF)", off, size, n, err)
			}
		}
	})

	t.Run("ZeroLenReadAtEOF", func(t *testing.T) {
		obj := factory(t, content)
		// os.File semantics: a zero-length read succeeds everywhere,
		// including exactly at EOF.
		for _, off := range []int64{0, size / 2, size} {
			n, err := obj.ReadAt(nil, off)
			if n != 0 || err != nil {
				t.Fatalf("zero-length ReadAt @ %d = (%d, %v), want (0, nil)", off, n, err)
			}
		}
	})

	t.Run("ConcurrentReaders", func(t *testing.T) {
		obj := factory(t, content)
		const readers = 8
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, 64)
				for i := 0; i < 50; i++ {
					off := int64((g*131 + i*257) % (len(content) - 64))
					n, err := obj.ReadAt(buf, off)
					if err != nil || n != 64 {
						errs <- fmt.Errorf("reader %d: ReadAt@%d = (%d, %v)", g, off, n, err)
						return
					}
					if !bytes.Equal(buf, content[off:off+64]) {
						errs <- fmt.Errorf("reader %d: mismatch @%d", g, off)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})

	t.Run("CloseThenOp", func(t *testing.T) {
		obj := factory(t, content)
		if err := obj.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if n, err := obj.ReadAt(make([]byte, 8), 0); err == nil {
			t.Fatalf("ReadAt after Close = (%d, nil), want error", n)
		}
		if _, err := obj.Size(); err == nil {
			t.Fatalf("Size after Close succeeded, want error")
		}
	})
}

// RunRW runs the full read-write conformance profile, then RunRO.
func RunRW(t *testing.T, factory Factory) {
	content := seedContent(seedLen)
	size := int64(len(content))

	t.Run("WriteReadBack", func(t *testing.T) {
		obj := factory(t, content)
		patch := []byte("0123456789abcdef")
		off := size/2 - 3
		if n, err := obj.WriteAt(patch, off); err != nil || n != len(patch) {
			t.Fatalf("WriteAt = (%d, %v), want (%d, nil)", n, err, len(patch))
		}
		// The patch, and the bytes on either side of it, read back intact.
		buf := make([]byte, len(patch)+8)
		if _, err := obj.ReadAt(buf, off-4); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		want := append(append(append([]byte{}, content[off-4:off]...), patch...), content[off+int64(len(patch)):off+int64(len(patch))+4]...)
		if !bytes.Equal(buf, want) {
			t.Fatalf("read-back mismatch: got %q want %q", buf, want)
		}
		if got, err := obj.Size(); err != nil || got != size {
			t.Fatalf("Size after overwrite = (%d, %v), want (%d, nil)", got, err, size)
		}
	})

	t.Run("GapFillingWrite", func(t *testing.T) {
		obj := factory(t, content)
		tail := []byte("tail")
		gapOff := size + 100
		if n, err := obj.WriteAt(tail, gapOff); err != nil || n != len(tail) {
			t.Fatalf("gap WriteAt = (%d, %v), want (%d, nil)", n, err, len(tail))
		}
		wantSize := gapOff + int64(len(tail))
		if got, err := obj.Size(); err != nil || got != wantSize {
			t.Fatalf("Size after gap write = (%d, %v), want (%d, nil)", got, err, wantSize)
		}
		// The gap reads as zeros, and the tail is where we put it.
		gap := make([]byte, 100)
		if _, err := obj.ReadAt(gap, size); err != nil {
			t.Fatalf("ReadAt gap: %v", err)
		}
		if !bytes.Equal(gap, make([]byte, 100)) {
			t.Fatalf("gap not zero-filled")
		}
		buf := make([]byte, len(tail))
		if _, err := obj.ReadAt(buf, gapOff); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("ReadAt tail: %v", err)
		}
		if !bytes.Equal(buf, tail) {
			t.Fatalf("tail mismatch: got %q", buf)
		}
	})

	t.Run("TruncateExtend", func(t *testing.T) {
		obj := factory(t, content)
		grown := size + 512
		if err := obj.Truncate(grown); err != nil {
			t.Fatalf("Truncate extend: %v", err)
		}
		if got, err := obj.Size(); err != nil || got != grown {
			t.Fatalf("Size after extend = (%d, %v), want (%d, nil)", got, err, grown)
		}
		ext := make([]byte, 512)
		if _, err := obj.ReadAt(ext, size); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("ReadAt extension: %v", err)
		}
		if !bytes.Equal(ext, make([]byte, 512)) {
			t.Fatalf("extension not zero-filled")
		}
		head := make([]byte, 64)
		if _, err := obj.ReadAt(head, 0); err != nil {
			t.Fatalf("ReadAt head: %v", err)
		}
		if !bytes.Equal(head, content[:64]) {
			t.Fatalf("extend clobbered existing content")
		}
	})

	t.Run("TruncateShrinkThenExtend", func(t *testing.T) {
		obj := factory(t, content)
		if err := obj.Truncate(10); err != nil {
			t.Fatalf("Truncate shrink: %v", err)
		}
		if got, err := obj.Size(); err != nil || got != 10 {
			t.Fatalf("Size after shrink = (%d, %v), want (10, nil)", got, err)
		}
		if n, err := obj.ReadAt(make([]byte, 8), 10); n != 0 || !errors.Is(err, io.EOF) {
			t.Fatalf("ReadAt past shrunk end = (%d, %v), want (0, io.EOF)", n, err)
		}
		// Re-extending exposes zeros, not resurrected bytes.
		if err := obj.Truncate(40); err != nil {
			t.Fatalf("Truncate re-extend: %v", err)
		}
		buf := make([]byte, 30)
		if _, err := obj.ReadAt(buf, 10); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("ReadAt re-extended: %v", err)
		}
		if !bytes.Equal(buf, make([]byte, 30)) {
			t.Fatalf("re-extended region not zero-filled: %q", buf)
		}
	})

	t.Run("ConcurrentDisjointWriters", func(t *testing.T) {
		obj := factory(t, make([]byte, 8*512))
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				block := bytes.Repeat([]byte{byte('A' + g)}, 512)
				if _, err := obj.WriteAt(block, int64(g)*512); err != nil {
					errs <- fmt.Errorf("writer %d: %v", g, err)
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		buf := make([]byte, 8*512)
		if _, err := obj.ReadAt(buf, 0); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		for g := 0; g < 8; g++ {
			want := bytes.Repeat([]byte{byte('A' + g)}, 512)
			if !bytes.Equal(buf[g*512:(g+1)*512], want) {
				t.Fatalf("writer %d's block corrupted", g)
			}
		}
	})

	t.Run("CloseThenWrite", func(t *testing.T) {
		obj := factory(t, content)
		if err := obj.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if n, err := obj.WriteAt([]byte("x"), 0); err == nil {
			t.Fatalf("WriteAt after Close = (%d, nil), want error", n)
		}
		if err := obj.Truncate(0); err == nil {
			t.Fatalf("Truncate after Close succeeded, want error")
		}
	})

	RunRO(t, factory)
}

// Stream is the sequential-access contract of the plain process strategy,
// which has no control channel for positioned operations.
type Stream interface {
	io.Reader
	io.Closer
}

// StreamFactory provisions a fresh stream positioned at the start of
// content, registering cleanup with t.
type StreamFactory func(t *testing.T, content []byte) Stream

// RunStreamRO verifies that sequential reads reproduce the seeded content
// exactly — the conformance profile for transports without positioning.
func RunStreamRO(t *testing.T, factory StreamFactory) {
	content := seedContent(seedLen)

	t.Run("SequentialRead", func(t *testing.T) {
		s := factory(t, content)
		got := make([]byte, len(content))
		// Odd-sized chunks so reads straddle any internal block boundaries.
		for off := 0; off < len(got); {
			n := 617
			if off+n > len(got) {
				n = len(got) - off
			}
			if _, err := io.ReadFull(s, got[off:off+n]); err != nil {
				t.Fatalf("sequential read @ %d: %v", off, err)
			}
			off += n
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("sequential read: content mismatch")
		}
	})

	t.Run("CloseThenRead", func(t *testing.T) {
		s := factory(t, content)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if n, err := s.Read(make([]byte, 8)); err == nil {
			t.Fatalf("Read after Close = (%d, nil), want error", n)
		}
	})
}
