package backend

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// NativeFS is the local-filesystem backend: objects are plain files directly
// under a root directory, mirroring the nativefs layout of general-purpose
// VFS stacks. Opening a missing object creates its file. Object names are
// flat — path separators and dot-traversal are rejected so a spec like
// "nativefs:/srv/data" can never reach outside its root.
type NativeFS struct {
	root string
}

var _ Backend = (*NativeFS)(nil)
var _ Stater = (*NativeFS)(nil)
var _ Lister = (*NativeFS)(nil)

// NewNativeFS returns a backend rooted at dir, creating it if necessary.
func NewNativeFS(dir string) (*NativeFS, error) {
	if dir == "" {
		return nil, errors.New("backend: nativefs wants a root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nativefs root: %w", err)
	}
	return &NativeFS{root: dir}, nil
}

// Root returns the backing directory.
func (n *NativeFS) Root() string { return n.root }

// Kind implements Backend.
func (n *NativeFS) Kind() string { return "nativefs" }

// Caps implements Backend.
func (n *NativeFS) Caps() Caps { return CapWrite | CapStat | CapList }

// path validates an object name and maps it under the root.
func (n *NativeFS) path(name string) (string, error) {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("backend: bad object name %q", name)
	}
	return filepath.Join(n.root, name), nil
}

// Open implements Backend, creating the file when missing.
func (n *NativeFS) Open(name string) (Object, error) {
	path, err := n.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nativefs open %q: %w", name, err)
	}
	return &fileObject{f: f}, nil
}

// Stat implements Stater.
func (n *NativeFS) Stat(name string) (Info, error) {
	path, err := n.path(name)
	if err != nil {
		return Info{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return Info{}, fmt.Errorf("nativefs stat %q: %w", name, err)
	}
	if fi.IsDir() {
		return Info{}, fmt.Errorf("%w: %q is a directory", ErrNotFound, name)
	}
	return Info{Name: name, Size: fi.Size()}, nil
}

// List implements Lister: the regular files directly under the root, in
// directory (sorted) order.
func (n *NativeFS) List() ([]Info, error) {
	entries, err := os.ReadDir(n.root)
	if err != nil {
		return nil, fmt.Errorf("nativefs list: %w", err)
	}
	var out []Info
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		out = append(out, Info{Name: e.Name(), Size: fi.Size()})
	}
	return out, nil
}

// Close implements Backend; open objects hold their own descriptors.
func (n *NativeFS) Close() error { return nil }

// fileObject adapts an *os.File to Object. The kernel already provides
// os.File EOF and gap-fill semantics; Size needs a Stat.
type fileObject struct {
	f *os.File
}

var _ Object = (*fileObject)(nil)

func (o *fileObject) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o *fileObject) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

func (o *fileObject) Size() (int64, error) {
	fi, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (o *fileObject) Truncate(n int64) error { return o.f.Truncate(n) }
func (o *fileObject) Close() error           { return o.f.Close() }
