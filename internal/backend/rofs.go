package backend

import "fmt"

// ROFS is a read-only view of another backend: reads, stats, and lists pass
// through; opens never create, and every mutation fails with the typed
// ErrReadOnly so callers (and the wire layer) can distinguish policy from
// failure.
type ROFS struct {
	inner Backend
}

var _ Backend = (*ROFS)(nil)
var _ Stater = (*ROFS)(nil)
var _ Lister = (*ROFS)(nil)

// NewROFS wraps inner in a read-only view.
func NewROFS(inner Backend) *ROFS { return &ROFS{inner: inner} }

// Kind implements Backend.
func (r *ROFS) Kind() string { return "rofs" }

// Caps implements Backend: the inner capabilities minus CapWrite.
func (r *ROFS) Caps() Caps { return r.inner.Caps() &^ CapWrite }

// Open implements Backend. Because a writable inner backend's Open creates
// missing objects, ROFS refuses to open names the inner backend cannot
// already describe — a read-only view must not create.
func (r *ROFS) Open(name string) (Object, error) {
	if st, ok := r.inner.(Stater); ok {
		if _, err := st.Stat(name); err != nil {
			return nil, fmt.Errorf("rofs: %w", err)
		}
	}
	obj, err := r.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return roObject{obj}, nil
}

// Stat implements Stater.
func (r *ROFS) Stat(name string) (Info, error) {
	st, ok := r.inner.(Stater)
	if !ok {
		return Info{}, fmt.Errorf("rofs: inner %q cannot stat", r.inner.Kind())
	}
	return st.Stat(name)
}

// List implements Lister.
func (r *ROFS) List() ([]Info, error) {
	ls, ok := r.inner.(Lister)
	if !ok {
		return nil, fmt.Errorf("rofs: inner %q cannot list", r.inner.Kind())
	}
	return ls.List()
}

// Close implements Backend.
func (r *ROFS) Close() error { return r.inner.Close() }

// roObject passes reads through and rejects mutations.
type roObject struct {
	inner Object
}

var _ Object = roObject{}

func (o roObject) ReadAt(p []byte, off int64) (int, error) { return o.inner.ReadAt(p, off) }
func (o roObject) Size() (int64, error)                    { return o.inner.Size() }
func (o roObject) Close() error                            { return o.inner.Close() }

func (o roObject) WriteAt(p []byte, off int64) (int, error) { return 0, ErrReadOnly }
func (o roObject) Truncate(n int64) error                   { return ErrReadOnly }
