package backend

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/faultinject"
)

// ErrorFS wraps any backend with deterministic, seedable fault and latency
// injection — the errorfs of VFS test stacks, built on the same
// faultinject.Injector the chaos harness uses, so operation-level fault
// injection has exactly one implementation. With rate=0 it is a pure
// (optionally latency-adding) pass-through, which is how the conformance
// suite proves the wrapper itself is semantics-preserving.
type ErrorFS struct {
	inner Backend
	inj   *faultinject.Injector
}

var _ Backend = (*ErrorFS)(nil)
var _ Stater = (*ErrorFS)(nil)
var _ Lister = (*ErrorFS)(nil)

// NewErrorFS wraps inner, rolling every operation (Open, Stat, List, and all
// object operations) against inj.
func NewErrorFS(inner Backend, inj *faultinject.Injector) *ErrorFS {
	return &ErrorFS{inner: inner, inj: inj}
}

// NewErrorFSFromOpts builds an ErrorFS from spec options: rate (0..1,
// default 0), seed (int, default 1), latency (Go duration, default 0).
func NewErrorFSFromOpts(inner Backend, opts map[string]string) (*ErrorFS, error) {
	var (
		rate    float64
		seed    int64 = 1
		latency time.Duration
		err     error
	)
	for k, v := range opts {
		switch k {
		case "rate":
			if rate, err = strconv.ParseFloat(v, 64); err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("%w: errorfs rate %q", ErrBadSpec, v)
			}
		case "seed":
			if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return nil, fmt.Errorf("%w: errorfs seed %q", ErrBadSpec, v)
			}
		case "latency":
			if latency, err = time.ParseDuration(v); err != nil || latency < 0 {
				return nil, fmt.Errorf("%w: errorfs latency %q", ErrBadSpec, v)
			}
		default:
			return nil, fmt.Errorf("%w: errorfs option %q", ErrBadSpec, k)
		}
	}
	return NewErrorFS(inner, faultinject.NewInjector(rate, nil, seed, latency)), nil
}

// Injector exposes the injector for counters and tests.
func (e *ErrorFS) Injector() *faultinject.Injector { return e.inj }

// Kind implements Backend.
func (e *ErrorFS) Kind() string { return "errorfs" }

// Caps implements Backend: faults don't change what the inner backend can do.
func (e *ErrorFS) Caps() Caps { return e.inner.Caps() }

// Open implements Backend.
func (e *ErrorFS) Open(name string) (Object, error) {
	if err := e.inj.Roll(); err != nil {
		return nil, err
	}
	obj, err := e.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &errObject{inner: obj, inj: e.inj}, nil
}

// Stat implements Stater.
func (e *ErrorFS) Stat(name string) (Info, error) {
	st, ok := e.inner.(Stater)
	if !ok {
		return Info{}, fmt.Errorf("errorfs: inner %q cannot stat", e.inner.Kind())
	}
	if err := e.inj.Roll(); err != nil {
		return Info{}, err
	}
	return st.Stat(name)
}

// List implements Lister.
func (e *ErrorFS) List() ([]Info, error) {
	ls, ok := e.inner.(Lister)
	if !ok {
		return nil, fmt.Errorf("errorfs: inner %q cannot list", e.inner.Kind())
	}
	if err := e.inj.Roll(); err != nil {
		return nil, err
	}
	return ls.List()
}

// Close implements Backend; teardown is never fault-injected.
func (e *ErrorFS) Close() error { return e.inner.Close() }

// errObject rolls every data operation against the shared injector.
type errObject struct {
	inner Object
	inj   *faultinject.Injector
}

var _ Object = (*errObject)(nil)

func (o *errObject) ReadAt(p []byte, off int64) (int, error) {
	if err := o.inj.Roll(); err != nil {
		return 0, err
	}
	return o.inner.ReadAt(p, off)
}

func (o *errObject) WriteAt(p []byte, off int64) (int, error) {
	if err := o.inj.Roll(); err != nil {
		return 0, err
	}
	return o.inner.WriteAt(p, off)
}

func (o *errObject) Size() (int64, error) {
	if err := o.inj.Roll(); err != nil {
		return 0, err
	}
	return o.inner.Size()
}

func (o *errObject) Truncate(n int64) error {
	if err := o.inj.Roll(); err != nil {
		return err
	}
	return o.inner.Truncate(n)
}

// Close is never fault-injected: a session must always be able to let go.
func (o *errObject) Close() error { return o.inner.Close() }
