package backend_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
	"repro/internal/faultinject"
)

// TestConformanceMem pins the full read-write contract on the in-memory
// backend.
func TestConformanceMem(t *testing.T) {
	conformance.RunRW(t, func(t *testing.T, content []byte) conformance.Object {
		b := backend.NewMem()
		b.Put("obj", content)
		obj, err := b.Open("obj")
		if err != nil {
			t.Fatalf("mem open: %v", err)
		}
		return obj
	})
}

// TestConformanceNativeFS pins the contract on files under a root directory.
func TestConformanceNativeFS(t *testing.T) {
	conformance.RunRW(t, func(t *testing.T, content []byte) conformance.Object {
		nfs, err := backend.NewNativeFS(t.TempDir())
		if err != nil {
			t.Fatalf("nativefs: %v", err)
		}
		if err := os.WriteFile(filepath.Join(nfs.Root(), "obj"), content, 0o644); err != nil {
			t.Fatalf("seed: %v", err)
		}
		obj, err := nfs.Open("obj")
		if err != nil {
			t.Fatalf("nativefs open: %v", err)
		}
		t.Cleanup(func() { obj.Close() })
		return obj
	})
}

// TestConformanceROFS pins the read-only profile on the read-only view.
func TestConformanceROFS(t *testing.T) {
	conformance.RunRO(t, func(t *testing.T, content []byte) conformance.Object {
		inner := backend.NewMem()
		inner.Put("obj", content)
		obj, err := backend.NewROFS(inner).Open("obj")
		if err != nil {
			t.Fatalf("rofs open: %v", err)
		}
		return obj
	})
}

// TestConformanceErrorFS proves the fault wrapper is semantics-preserving
// when quiet: with rate=0 the full read-write contract holds through it.
func TestConformanceErrorFS(t *testing.T) {
	conformance.RunRW(t, func(t *testing.T, content []byte) conformance.Object {
		inner := backend.NewMem()
		inner.Put("obj", content)
		efs := backend.NewErrorFS(inner, faultinject.NewInjector(0, nil, 1, 0))
		obj, err := efs.Open("obj")
		if err != nil {
			t.Fatalf("errorfs open: %v", err)
		}
		return obj
	})
}

func TestROFSRejectsWritesTyped(t *testing.T) {
	inner := backend.NewMem()
	inner.Put("obj", []byte("data"))
	ro := backend.NewROFS(inner)
	if ro.Caps().Has(backend.CapWrite) {
		t.Fatalf("rofs advertises CapWrite")
	}
	obj, err := ro.Open("obj")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := obj.WriteAt([]byte("x"), 0); !errors.Is(err, backend.ErrReadOnly) {
		t.Fatalf("WriteAt error = %v, want ErrReadOnly", err)
	}
	if err := obj.Truncate(0); !errors.Is(err, backend.ErrReadOnly) {
		t.Fatalf("Truncate error = %v, want ErrReadOnly", err)
	}
	// The view never creates: opening a missing object fails.
	if _, err := ro.Open("missing"); !errors.Is(err, backend.ErrNotFound) {
		t.Fatalf("open missing = %v, want ErrNotFound", err)
	}
	// And the inner object is untouched.
	if data, _ := inner.Get("obj"); string(data) != "data" {
		t.Fatalf("inner mutated: %q", data)
	}
}

func TestErrorFSDeterministicSchedule(t *testing.T) {
	roll := func(seed int64) []bool {
		inj := faultinject.NewInjector(0.5, nil, seed, 0)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Roll() != nil
		}
		return out
	}
	a, b := roll(7), roll(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at roll %d", i)
		}
	}
	c := roll(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestErrorFSInjectsAndCounts(t *testing.T) {
	inner := backend.NewMem()
	inner.Put("obj", make([]byte, 1024))
	efs := backend.NewErrorFS(inner, faultinject.NewInjector(1, nil, 1, 0))
	obj, err := efs.Open("obj")
	if err == nil {
		// rate=1 may fail the open roll itself; if it somehow passed, the
		// read must fail.
		if _, rerr := obj.ReadAt(make([]byte, 8), 0); !errors.Is(rerr, faultinject.ErrInjected) {
			t.Fatalf("read error = %v, want ErrInjected", rerr)
		}
	} else if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("open error = %v, want ErrInjected", err)
	}
	if efs.Injector().Injected() == 0 {
		t.Fatalf("injected counter stayed zero")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec   string
		kind   string
		config string
		opts   map[string]string
		bad    bool
	}{
		{spec: "mem", kind: "mem"},
		{spec: "nativefs:/srv/data", kind: "nativefs", config: "/srv/data"},
		{spec: "rofs:nativefs:/srv/data", kind: "rofs", config: "nativefs:/srv/data"},
		{spec: "errorfs(rate=0.1,seed=7):mem", kind: "errorfs", config: "mem",
			opts: map[string]string{"rate": "0.1", "seed": "7"}},
		{spec: "remote:127.0.0.1:9000", kind: "remote", config: "127.0.0.1:9000"},
		{spec: "", bad: true},
		{spec: ":config", bad: true},
		{spec: "errorfs(rate=0.1:mem", bad: true},
		{spec: "errorfs(rate):mem", bad: true},
	}
	for _, tc := range cases {
		kind, opts, config, err := backend.ParseSpec(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseSpec(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if kind != tc.kind || config != tc.config {
			t.Errorf("ParseSpec(%q) = (%q, %q), want (%q, %q)", tc.spec, kind, config, tc.kind, tc.config)
		}
		for k, v := range tc.opts {
			if opts[k] != v {
				t.Errorf("ParseSpec(%q) opt %q = %q, want %q", tc.spec, k, opts[k], v)
			}
		}
	}
}

func TestRegistryOpenSpecs(t *testing.T) {
	dir := t.TempDir()
	for _, spec := range []string{
		"mem",
		"nativefs:" + dir,
		"rofs:mem",
		"errorfs(rate=0,seed=3):mem",
		"errorfs(rate=0.2,seed=3,latency=1ms):rofs:nativefs:" + dir,
	} {
		b, err := backend.Open(spec)
		if err != nil {
			t.Fatalf("Open(%q): %v", spec, err)
		}
		b.Close()
	}
	if _, err := backend.Open("no-such-kind:zzz"); !errors.Is(err, backend.ErrUnknownKind) {
		t.Fatalf("unknown kind error = %v", err)
	}
	if _, err := backend.Open("errorfs(rate=9):mem"); err == nil {
		t.Fatalf("bad errorfs rate accepted")
	}
	if _, err := backend.Open("nativefs"); err == nil {
		t.Fatalf("nativefs without root accepted")
	}
}

func TestNativeFSNameSandbox(t *testing.T) {
	nfs, err := backend.NewNativeFS(t.TempDir())
	if err != nil {
		t.Fatalf("nativefs: %v", err)
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if _, err := nfs.Open(name); err == nil {
			t.Errorf("Open(%q) succeeded, want rejection", name)
		}
	}
}

func TestStatAndList(t *testing.T) {
	b := backend.NewMem()
	b.Put("alpha", []byte("aaa"))
	b.Put("beta", []byte("bb"))
	if !b.Caps().Has(backend.CapStat | backend.CapList) {
		t.Fatalf("mem caps = %v", b.Caps())
	}
	info, err := b.Stat("alpha")
	if err != nil || info.Size != 3 {
		t.Fatalf("Stat = (%+v, %v)", info, err)
	}
	if _, err := b.Stat("gone"); !errors.Is(err, backend.ErrNotFound) {
		t.Fatalf("Stat missing = %v, want ErrNotFound", err)
	}
	ls, err := b.List()
	if err != nil || len(ls) != 2 || ls[0].Name != "alpha" || ls[1].Name != "beta" {
		t.Fatalf("List = (%+v, %v)", ls, err)
	}

	nfs, err := backend.NewNativeFS(t.TempDir())
	if err != nil {
		t.Fatalf("nativefs: %v", err)
	}
	if err := os.WriteFile(filepath.Join(nfs.Root(), "f1"), []byte("xyzzy"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = nfs.Stat("f1")
	if err != nil || info.Size != 5 {
		t.Fatalf("nativefs Stat = (%+v, %v)", info, err)
	}
	ls, err = nfs.List()
	if err != nil || len(ls) != 1 || ls[0].Name != "f1" {
		t.Fatalf("nativefs List = (%+v, %v)", ls, err)
	}
}

// TestMemSharedVisibility: two opens of one name share bytes; closing one
// handle does not disturb the other.
func TestMemSharedVisibility(t *testing.T) {
	b := backend.NewMem()
	a1, _ := b.Open("obj")
	a2, _ := b.Open("obj")
	if _, err := a1.WriteAt([]byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := a2.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "shared" {
		t.Fatalf("second handle read %q", buf)
	}
	a1.Close()
	if _, err := a2.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("surviving handle broken after sibling close: %v", err)
	}
}
