package filter

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec is a whole-buffer transform whose output length can differ from the
// input. A compression sentinel decodes the stored form on open and encodes
// it back on flush, so "the client application is completely unaware that it
// is interacting with a compressed file" (§3).
type Codec interface {
	// Name identifies the codec in manifests.
	Name() string
	// Encode returns the stored representation of src.
	Encode(src []byte) ([]byte, error)
	// Decode returns the application view of stored bytes.
	Decode(src []byte) ([]byte, error)
}

// Codec construction errors.
var (
	ErrUnknownCodec = errors.New("filter: unknown codec")
	ErrCorrupt      = errors.New("filter: corrupt compressed data")
)

// NewCodec returns the named Codec. Recognized names: "identity" and "lz".
func NewCodec(name string) (Codec, error) {
	switch name {
	case "", "identity":
		return Identity{}, nil
	case "lz":
		return LZ{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
}

// Identity stores bytes verbatim.
type Identity struct{}

var _ Codec = Identity{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// Encode implements Codec.
func (Identity) Encode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Decode implements Codec.
func (Identity) Decode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// LZ is a from-scratch LZ77-style compressor: greedy matching against a
// sliding window, emitting literal runs and (distance, length) copies.
// Overlapping copies make it subsume run-length encoding. The format is:
//
//	header:  magic "AFLZ" + uint32 decoded length
//	tokens:  0x00 u16(len) bytes...   literal run
//	         0x01 u16(dist) u16(len)  copy len bytes from dist back
//
// It favours simplicity and per-file incremental use over ratio, per the
// paper's point that active files allow "different compression algorithms
// for different types of files".
type LZ struct{}

var _ Codec = LZ{}

const (
	lzMagic      = "AFLZ"
	lzMinMatch   = 4
	lzMaxMatch   = 1 << 16
	lzMaxDist    = 1 << 16
	lzMaxLiteral = 1 << 16
)

// Name implements Codec.
func (LZ) Name() string { return "lz" }

// Encode implements Codec.
func (LZ) Encode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)/2+16)
	out = append(out, lzMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(src)))

	// Last position of each 4-byte hash.
	var table [1 << 14]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(i int) uint32 {
		v := binary.LittleEndian.Uint32(src[i:])
		return (v * 2654435761) >> 18
	}

	litStart := 0
	flushLiterals := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > lzMaxLiteral {
				n = lzMaxLiteral
			}
			out = append(out, 0x00)
			out = binary.BigEndian.AppendUint16(out, uint16(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	i := 0
	for i+lzMinMatch <= len(src) {
		h := hash(i)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) < lzMaxDist &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			// Extend the match.
			length := lzMinMatch
			for i+length < len(src) && length < lzMaxMatch-1 &&
				src[int(cand)+length] == src[i+length] {
				length++
			}
			flushLiterals(i)
			out = append(out, 0x01)
			out = binary.BigEndian.AppendUint16(out, uint16(i-int(cand)-1))
			out = binary.BigEndian.AppendUint16(out, uint16(length-1))
			i += length
			litStart = i
			continue
		}
		i++
	}
	flushLiterals(len(src))
	return out, nil
}

// Decode implements Codec.
func (LZ) Decode(src []byte) ([]byte, error) {
	if len(src) < len(lzMagic)+4 || string(src[:4]) != lzMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	decodedLen := int(binary.BigEndian.Uint32(src[4:8]))
	out := make([]byte, 0, decodedLen)
	p := 8
	for p < len(src) {
		tok := src[p]
		p++
		switch tok {
		case 0x00:
			if p+2 > len(src) {
				return nil, fmt.Errorf("%w: truncated literal header", ErrCorrupt)
			}
			n := int(binary.BigEndian.Uint16(src[p:])) + 1
			p += 2
			if p+n > len(src) {
				return nil, fmt.Errorf("%w: truncated literal run", ErrCorrupt)
			}
			out = append(out, src[p:p+n]...)
			p += n
		case 0x01:
			if p+4 > len(src) {
				return nil, fmt.Errorf("%w: truncated copy token", ErrCorrupt)
			}
			dist := int(binary.BigEndian.Uint16(src[p:])) + 1
			length := int(binary.BigEndian.Uint16(src[p+2:])) + 1
			p += 4
			if dist > len(out) {
				return nil, fmt.Errorf("%w: copy distance %d beyond output %d", ErrCorrupt, dist, len(out))
			}
			// Byte-at-a-time copy handles overlapping (RLE-style) matches.
			start := len(out) - dist
			for j := 0; j < length; j++ {
				out = append(out, out[start+j])
			}
		default:
			return nil, fmt.Errorf("%w: unknown token 0x%02x", ErrCorrupt, tok)
		}
	}
	if len(out) != decodedLen {
		return nil, fmt.Errorf("%w: decoded %d bytes, header says %d", ErrCorrupt, len(out), decodedLen)
	}
	return out, nil
}
