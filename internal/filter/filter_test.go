package filter

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewByName(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantErr  bool
	}{
		{give: "", wantName: "null"},
		{give: "null", wantName: "null"},
		{give: "upper", wantName: "upper"},
		{give: "lower", wantName: "lower"},
		{give: "rot13", wantName: "rot13"},
		{give: "xor:key", wantName: "xor:key"},
		{give: "xor:", wantErr: true},
		{give: "gzip", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := New(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Errorf("New(%q) succeeded", tt.give)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%q): %v", tt.give, err)
			}
			if got.Name() != tt.wantName {
				t.Errorf("Name = %q, want %q", got.Name(), tt.wantName)
			}
		})
	}
}

func TestUpperApplyInvert(t *testing.T) {
	p := []byte("Hello, World! 123")
	Upper{}.Apply(p, 0)
	if string(p) != "HELLO, WORLD! 123" {
		t.Errorf("Apply = %q", p)
	}
	Upper{}.Invert(p, 0)
	if string(p) != "hello, world! 123" {
		t.Errorf("Invert = %q", p)
	}
}

func TestLowerIsUpperMirror(t *testing.T) {
	p := []byte("MiXeD")
	Lower{}.Apply(p, 0)
	if string(p) != "mixed" {
		t.Errorf("Apply = %q", p)
	}
	Lower{}.Invert(p, 0)
	if string(p) != "MIXED" {
		t.Errorf("Invert = %q", p)
	}
}

func TestRot13SelfInverse(t *testing.T) {
	p := []byte("Attack at dawn")
	Rot13{}.Apply(p, 0)
	if string(p) != "Nggnpx ng qnja" {
		t.Errorf("Apply = %q", p)
	}
	Rot13{}.Invert(p, 0)
	if string(p) != "Attack at dawn" {
		t.Errorf("Invert = %q", p)
	}
}

func TestXORPositional(t *testing.T) {
	x, err := NewXOR([]byte{0xAA, 0x55})
	if err != nil {
		t.Fatal(err)
	}
	whole := []byte{1, 2, 3, 4, 5, 6}
	enc := append([]byte(nil), whole...)
	x.Apply(enc, 0)

	// Encrypting a middle slice at its own offset must match the slice of
	// the whole-buffer encryption: the positional property random access
	// depends on.
	part := append([]byte(nil), whole[2:5]...)
	x.Apply(part, 2)
	if !bytes.Equal(part, enc[2:5]) {
		t.Errorf("positional encrypt mismatch: %v vs %v", part, enc[2:5])
	}
	x.Invert(enc, 0)
	if !bytes.Equal(enc, whole) {
		t.Errorf("Invert = %v, want %v", enc, whole)
	}
}

func TestByteFilterRoundTripProperty(t *testing.T) {
	filters := []ByteFilter{Null{}, Upper{}, Lower{}, Rot13{}}
	if x, err := NewXOR([]byte("secret")); err == nil {
		filters = append(filters, x)
	}
	f := func(idx uint8, data []byte, off int64) bool {
		flt := filters[int(idx)%len(filters)]
		if off < 0 {
			off = -off
		}
		work := append([]byte(nil), data...)
		flt.Apply(work, off)
		flt.Invert(work, off)
		switch flt.(type) {
		case Upper, Lower:
			// Case mappers are only invertible up to letter case; check
			// case-insensitive equality.
			return bytes.EqualFold(work, data)
		default:
			return bytes.Equal(work, data)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewCodec(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantErr  bool
	}{
		{give: "", wantName: "identity"},
		{give: "identity", wantName: "identity"},
		{give: "lz", wantName: "lz"},
		{give: "zstd", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := NewCodec(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Errorf("NewCodec(%q) succeeded", tt.give)
				}
				return
			}
			if err != nil || got.Name() != tt.wantName {
				t.Errorf("NewCodec(%q) = (%v, %v)", tt.give, got, err)
			}
		})
	}
}

func TestIdentityCodec(t *testing.T) {
	enc, err := Identity{}.Encode([]byte("same"))
	if err != nil || string(enc) != "same" {
		t.Errorf("Encode = (%q, %v)", enc, err)
	}
	dec, err := Identity{}.Decode(enc)
	if err != nil || string(dec) != "same" {
		t.Errorf("Decode = (%q, %v)", dec, err)
	}
	// The copies are independent of the input.
	enc[0] = 'X'
	if string(dec) != "same" {
		t.Error("Decode shares storage with Encode output")
	}
}

func TestLZRoundTripCases(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "single byte", give: []byte("a")},
		{name: "short", give: []byte("abc")},
		{name: "text", give: []byte("the quick brown fox jumps over the lazy dog, the quick brown fox again")},
		{name: "runs", give: bytes.Repeat([]byte("a"), 10_000)},
		{name: "alternating", give: bytes.Repeat([]byte("ab"), 5_000)},
		{name: "binary", give: []byte{0, 1, 2, 3, 0, 0, 0, 0, 255, 254, 0, 0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc, err := LZ{}.Encode(tt.give)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			dec, err := LZ{}.Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !bytes.Equal(dec, tt.give) {
				t.Errorf("round trip mismatch: got %d bytes, want %d", len(dec), len(tt.give))
			}
		})
	}
}

func TestLZCompressesRepetitiveInput(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 1000)
	enc, err := LZ{}.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(src)/4 {
		t.Errorf("compressed %d -> %d; expected at least 4x on repetitive input", len(src), len(enc))
	}
}

func TestLZRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeHint uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeHint) % 8192
		src := make([]byte, n)
		// Mix random and repetitive regions to exercise both token types.
		for i := 0; i < n; {
			if rng.Intn(2) == 0 {
				run := rng.Intn(64) + 1
				b := byte(rng.Intn(256))
				for j := 0; j < run && i < n; j++ {
					src[i] = b
					i++
				}
			} else {
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		enc, err := LZ{}.Encode(src)
		if err != nil {
			return false
		}
		dec, err := LZ{}.Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLZDecodeRejectsCorrupt(t *testing.T) {
	valid, err := LZ{}.Encode([]byte("some reasonable content with content repetition"))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "bad magic", give: []byte("NOPE\x00\x00\x00\x04abcd")},
		{name: "truncated header", give: []byte("AFL")},
		{name: "truncated body", give: valid[:len(valid)-3]},
		{name: "length mismatch", give: append(append([]byte("AFLZ"), 0, 0, 0, 99), valid[8:]...)},
		{name: "bad token", give: append(append([]byte(nil), valid[:8]...), 0x77)},
		{name: "copy before start", give: append(append([]byte(nil), valid[:8]...), 0x01, 0x00, 0x10, 0x00, 0x01)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := (LZ{}).Decode(tt.give); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Decode err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestLZDecodeDoesNotMutateInput(t *testing.T) {
	src := bytes.Repeat([]byte("xyz"), 100)
	enc, err := LZ{}.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), enc...)
	if _, err := (LZ{}).Decode(enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, snapshot) {
		t.Error("Decode mutated its input")
	}
}

func TestLZDecodeNeverPanics(t *testing.T) {
	// Corrupt stored forms must be rejected, never crash the sentinel.
	f := func(data []byte) bool {
		(LZ{}).Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Also with a valid magic prefix and garbage after it.
	g := func(data []byte) bool {
		framed := append([]byte("AFLZ\x00\x00\x01\x00"), data...)
		(LZ{}).Decode(framed)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
