// Package filter provides the data transformations sentinel programs apply
// to bytes entering and leaving an active file — the paper's §3 "input and
// output filtering" action. Two kinds are provided:
//
//   - ByteFilter: stateless positional transforms (case mapping, XOR
//     ciphers). These commute with random access, so a filtering sentinel can
//     apply them per-operation at any offset.
//   - Codec (codec.go): whole-buffer transformations whose output length
//     differs from the input (the compression use); a sentinel decodes on
//     open and re-encodes on flush.
package filter

import (
	"errors"
	"fmt"
)

// ByteFilter is an invertible byte-for-byte transform. Apply mutates p in
// place, where p holds the bytes at file offset off; Invert reverses it.
// Implementations must satisfy Invert(Apply(p)) == p at every offset.
type ByteFilter interface {
	// Name identifies the filter in manifests.
	Name() string
	// Apply transforms application bytes into stored bytes, in place.
	Apply(p []byte, off int64)
	// Invert transforms stored bytes back into application bytes, in place.
	Invert(p []byte, off int64)
}

// ErrUnknownFilter reports an unregistered filter name.
var ErrUnknownFilter = errors.New("filter: unknown filter")

// New returns the named ByteFilter. Recognized names: "null", "upper",
// "lower", "rot13", and "xor:<key>" where key is a non-empty byte string.
func New(name string) (ByteFilter, error) {
	switch {
	case name == "" || name == "null":
		return Null{}, nil
	case name == "upper":
		return Upper{}, nil
	case name == "lower":
		return Lower{}, nil
	case name == "rot13":
		return Rot13{}, nil
	case len(name) > 4 && name[:4] == "xor:":
		return NewXOR([]byte(name[4:]))
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownFilter, name)
	}
}

// Null passes data through unchanged; an active file with a null filter has
// the semantics of a passive file (§2.2).
type Null struct{}

var _ ByteFilter = Null{}

// Name implements ByteFilter.
func (Null) Name() string { return "null" }

// Apply implements ByteFilter.
func (Null) Apply([]byte, int64) {}

// Invert implements ByteFilter.
func (Null) Invert([]byte, int64) {}

// Upper stores ASCII text upper-cased and returns it lower-cased, a visible
// (and easily testable) content filter.
type Upper struct{}

var _ ByteFilter = Upper{}

// Name implements ByteFilter.
func (Upper) Name() string { return "upper" }

// Apply implements ByteFilter.
func (Upper) Apply(p []byte, _ int64) {
	for i, b := range p {
		if 'a' <= b && b <= 'z' {
			p[i] = b - 'a' + 'A'
		}
	}
}

// Invert implements ByteFilter.
func (Upper) Invert(p []byte, _ int64) {
	for i, b := range p {
		if 'A' <= b && b <= 'Z' {
			p[i] = b - 'A' + 'a'
		}
	}
}

// Lower is the mirror image of Upper.
type Lower struct{}

var _ ByteFilter = Lower{}

// Name implements ByteFilter.
func (Lower) Name() string { return "lower" }

// Apply implements ByteFilter.
func (Lower) Apply(p []byte, off int64) { Upper{}.Invert(p, off) }

// Invert implements ByteFilter.
func (Lower) Invert(p []byte, off int64) { Upper{}.Apply(p, off) }

// Rot13 rotates ASCII letters by 13, its own inverse.
type Rot13 struct{}

var _ ByteFilter = Rot13{}

// Name implements ByteFilter.
func (Rot13) Name() string { return "rot13" }

func rot13(p []byte) {
	for i, b := range p {
		switch {
		case 'a' <= b && b <= 'z':
			p[i] = 'a' + (b-'a'+13)%26
		case 'A' <= b && b <= 'Z':
			p[i] = 'A' + (b-'A'+13)%26
		}
	}
}

// Apply implements ByteFilter.
func (Rot13) Apply(p []byte, _ int64) { rot13(p) }

// Invert implements ByteFilter.
func (Rot13) Invert(p []byte, _ int64) { rot13(p) }

// XOR is a positional XOR stream cipher keyed by a repeating byte key. The
// key position depends on the file offset, so random-access operations
// encrypt and decrypt consistently.
type XOR struct {
	key []byte
}

var _ ByteFilter = (*XOR)(nil)

// NewXOR returns an XOR filter over a copy of key.
func NewXOR(key []byte) (*XOR, error) {
	if len(key) == 0 {
		return nil, errors.New("filter: empty xor key")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &XOR{key: k}, nil
}

// Name implements ByteFilter.
func (x *XOR) Name() string { return "xor:" + string(x.key) }

func (x *XOR) xor(p []byte, off int64) {
	k := int64(len(x.key))
	for i := range p {
		p[i] ^= x.key[(off+int64(i))%k]
	}
}

// Apply implements ByteFilter.
func (x *XOR) Apply(p []byte, off int64) { x.xor(p, off) }

// Invert implements ByteFilter.
func (x *XOR) Invert(p []byte, off int64) { x.xor(p, off) }
