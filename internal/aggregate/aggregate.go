// Package aggregate implements the sentinel action of collecting information
// from several sources and presenting it "to client applications as a
// conventional file" (§3, Aggregation). Aggregators produce a byte snapshot
// from one or more remote sources; an aggregation sentinel refreshes the
// snapshot when the active file is opened (the paper's stock-quote and inbox
// examples re-fetch on every open).
package aggregate

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/remote"
)

// Aggregator produces the current aggregated content.
type Aggregator interface {
	// Aggregate fetches from every source and returns the combined bytes.
	Aggregate() ([]byte, error)
}

// ErrNoSources reports an aggregator constructed with nothing to aggregate.
var ErrNoSources = errors.New("aggregate: no sources")

// readAll drains a Source from offset zero.
func readAll(src remote.Source) ([]byte, error) {
	size, err := src.Size()
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	var off int64
	for off < size {
		n, rerr := src.ReadAt(out[off:], off)
		off += int64(n)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
		if n == 0 {
			break
		}
	}
	return out[:off], nil
}

// Concat merges sources by concatenation, optionally separating them — the
// sentinel that "can also merge multiple remote files into a single local
// file".
type Concat struct {
	sources   []remote.Source
	separator []byte
}

var _ Aggregator = (*Concat)(nil)

// NewConcat returns a concatenating aggregator over sources, inserting
// separator between each (nil for none).
func NewConcat(sources []remote.Source, separator []byte) (*Concat, error) {
	if len(sources) == 0 {
		return nil, ErrNoSources
	}
	sep := make([]byte, len(separator))
	copy(sep, separator)
	return &Concat{sources: sources, separator: sep}, nil
}

// Aggregate implements Aggregator.
func (c *Concat) Aggregate() ([]byte, error) {
	var buf bytes.Buffer
	for i, src := range c.sources {
		if i > 0 && len(c.separator) > 0 {
			buf.Write(c.separator)
		}
		part, err := readAll(src)
		if err != nil {
			return nil, fmt.Errorf("aggregate source %d: %w", i, err)
		}
		buf.Write(part)
	}
	return buf.Bytes(), nil
}

// Interleave merges line-oriented sources round-robin, the shape of a
// sentinel that folds several event feeds into one chronological view.
type Interleave struct {
	sources []remote.Source
}

var _ Aggregator = (*Interleave)(nil)

// NewInterleave returns a line-interleaving aggregator over sources.
func NewInterleave(sources []remote.Source) (*Interleave, error) {
	if len(sources) == 0 {
		return nil, ErrNoSources
	}
	return &Interleave{sources: sources}, nil
}

// Aggregate implements Aggregator.
func (iv *Interleave) Aggregate() ([]byte, error) {
	lines := make([][][]byte, len(iv.sources))
	for i, src := range iv.sources {
		raw, err := readAll(src)
		if err != nil {
			return nil, fmt.Errorf("aggregate source %d: %w", i, err)
		}
		lines[i] = splitLines(raw)
	}
	var buf bytes.Buffer
	for row := 0; ; row++ {
		wrote := false
		for i := range lines {
			if row < len(lines[i]) {
				buf.Write(lines[i][row])
				buf.WriteByte('\n')
				wrote = true
			}
		}
		if !wrote {
			break
		}
	}
	return buf.Bytes(), nil
}

func splitLines(raw []byte) [][]byte {
	if len(raw) == 0 {
		return nil
	}
	raw = bytes.TrimSuffix(raw, []byte("\n"))
	if len(raw) == 0 {
		return nil
	}
	return bytes.Split(raw, []byte("\n"))
}

// Func adapts a function to the Aggregator interface, for sentinels whose
// aggregation is computed (stock quotes, mail retrieval).
type Func func() ([]byte, error)

var _ Aggregator = (Func)(nil)

// Aggregate implements Aggregator.
func (f Func) Aggregate() ([]byte, error) { return f() }
