package aggregate

import (
	"errors"
	"testing"

	"repro/internal/remote"
)

func sources(contents ...string) []remote.Source {
	out := make([]remote.Source, len(contents))
	for i, c := range contents {
		out[i] = remote.NewMemSource([]byte(c))
	}
	return out
}

func TestConcat(t *testing.T) {
	tests := []struct {
		name string
		give []string
		sep  string
		want string
	}{
		{name: "two parts", give: []string{"alpha", "beta"}, want: "alphabeta"},
		{name: "with separator", give: []string{"a", "b", "c"}, sep: "|", want: "a|b|c"},
		{name: "single", give: []string{"solo"}, sep: "|", want: "solo"},
		{name: "empty parts", give: []string{"", "x", ""}, sep: "-", want: "-x-"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			agg, err := NewConcat(sources(tt.give...), []byte(tt.sep))
			if err != nil {
				t.Fatal(err)
			}
			got, err := agg.Aggregate()
			if err != nil || string(got) != tt.want {
				t.Errorf("Aggregate = (%q, %v), want %q", got, err, tt.want)
			}
		})
	}
}

func TestConcatRequiresSources(t *testing.T) {
	if _, err := NewConcat(nil, nil); !errors.Is(err, ErrNoSources) {
		t.Errorf("err = %v, want ErrNoSources", err)
	}
}

func TestConcatPropagatesSourceError(t *testing.T) {
	boom := errors.New("source down")
	flaky := remote.NewFlakySource(remote.NewMemSource([]byte("x")))
	flaky.Trip(boom)
	agg, err := NewConcat([]remote.Source{remote.NewMemSource([]byte("ok")), flaky}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Aggregate(); !errors.Is(err, boom) {
		t.Errorf("Aggregate err = %v, want wrapped %v", err, boom)
	}
}

func TestConcatSeesSourceUpdates(t *testing.T) {
	src := remote.NewMemSource([]byte("v1"))
	agg, err := NewConcat([]remote.Source{src}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := agg.Aggregate(); string(got) != "v1" {
		t.Fatalf("first = %q", got)
	}
	src.WriteAt([]byte("v2"), 0)
	// Each aggregation re-reads the live sources — the decoupling problem
	// the paper's intermediary approach suffers and active files avoid.
	if got, _ := agg.Aggregate(); string(got) != "v2" {
		t.Errorf("second = %q, want updated v2", got)
	}
}

func TestInterleave(t *testing.T) {
	tests := []struct {
		name string
		give []string
		want string
	}{
		{
			name: "even feeds",
			give: []string{"a1\na2\n", "b1\nb2\n"},
			want: "a1\nb1\na2\nb2\n",
		},
		{
			name: "ragged feeds",
			give: []string{"a1\n", "b1\nb2\nb3\n"},
			want: "a1\nb1\nb2\nb3\n",
		},
		{
			name: "empty feed",
			give: []string{"", "only\n"},
			want: "only\n",
		},
		{
			name: "no trailing newline",
			give: []string{"x", "y"},
			want: "x\ny\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			agg, err := NewInterleave(sources(tt.give...))
			if err != nil {
				t.Fatal(err)
			}
			got, err := agg.Aggregate()
			if err != nil || string(got) != tt.want {
				t.Errorf("Aggregate = (%q, %v), want %q", got, err, tt.want)
			}
		})
	}
}

func TestInterleaveRequiresSources(t *testing.T) {
	if _, err := NewInterleave(nil); !errors.Is(err, ErrNoSources) {
		t.Errorf("err = %v, want ErrNoSources", err)
	}
}

func TestFuncAggregator(t *testing.T) {
	calls := 0
	agg := Func(func() ([]byte, error) {
		calls++
		return []byte("computed"), nil
	})
	got, err := agg.Aggregate()
	if err != nil || string(got) != "computed" || calls != 1 {
		t.Errorf("Aggregate = (%q, %v), calls = %d", got, err, calls)
	}
}
