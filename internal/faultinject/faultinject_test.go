package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestPartialWriterTearsMidWrite(t *testing.T) {
	var sink bytes.Buffer
	boom := errors.New("cable cut")
	pw := NewPartialWriter(&sink, 5, boom)

	if n, err := pw.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("within budget: (%d, %v)", n, err)
	}
	n, err := pw.Write([]byte("defgh"))
	if n != 2 || !errors.Is(err, boom) {
		t.Fatalf("crossing budget: (%d, %v), want (2, %v)", n, err, boom)
	}
	if got := sink.String(); got != "abcde" {
		t.Fatalf("sink holds %q, want the torn prefix \"abcde\"", got)
	}
	if n, err := pw.Write([]byte("x")); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("after trip: (%d, %v)", n, err)
	}
	if pw.Written() != 5 {
		t.Fatalf("Written = %d", pw.Written())
	}
}

// echoListener accepts connections and echoes bytes back until they close.
func echoListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestProxyForwardsAndDrops(t *testing.T) {
	LeakCheck(t)
	p := NewProxy(echoListener(t))
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}

	p.DropActive()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded on a dropped link")
	}
	if p.Drops() == 0 {
		t.Fatal("drop not recorded")
	}
}

func TestProxyTruncatesResponse(t *testing.T) {
	LeakCheck(t)
	p := NewProxy(echoListener(t))
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	p.TruncateNextResponse(3)
	if _, err := conn.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(conn) // torn prefix, then EOF from the severed link
	if len(got) > 3 {
		t.Fatalf("received %d bytes through a 3-byte truncation (%q, err=%v)", len(got), got, err)
	}
}
