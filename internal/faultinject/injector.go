package faultinject

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Injector is the one implementation of seeded, probabilistic OPERATION-level
// fault and latency injection. The wire-level tools in this package break
// bytes; Injector breaks (or delays) whole operations, and is shared by
// everything that needs that: the errorfs backend wraps any other backend
// with one, and remote.ChaosSource delegates its rolls here instead of
// keeping a near-duplicate RNG. Same seed, same fault schedule — a chaos run
// is reproducible.
type Injector struct {
	fault   error
	latency time.Duration

	mu   sync.Mutex
	rate float64
	rng  *rand.Rand

	injected atomic.Uint64
}

// NewInjector returns an injector failing each rolled operation with
// probability rate (clamped to [0,1]) returning fault (ErrInjected when
// nil), after sleeping latency (which also applies to operations that pass).
func NewInjector(rate float64, fault error, seed int64, latency time.Duration) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if fault == nil {
		fault = ErrInjected
	}
	return &Injector{
		fault:   fault,
		latency: latency,
		rate:    rate,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Injected reports how many operations have been failed so far.
func (i *Injector) Injected() uint64 { return i.injected.Load() }

// Roll applies the configured latency, then decides this operation's fate:
// nil to proceed, or the configured fault.
func (i *Injector) Roll() error {
	if i.latency > 0 {
		time.Sleep(i.latency)
	}
	if i.rate == 0 {
		return nil
	}
	i.mu.Lock()
	hit := i.rng.Float64() < i.rate
	i.mu.Unlock()
	if hit {
		i.injected.Add(1)
		return i.fault
	}
	return nil
}
