// Package faultinject is the chaos harness for the transport stack. It
// injects failures at the WIRE layer — below the protocol, where real
// networks and dying processes misbehave: connections drop mid-frame, bytes
// stall, writes land partially. Protocol-level fault injection (a server
// answering with errors) lives with the remote package's fault sources; this
// package breaks the bytes themselves.
package faultinject

import (
	"errors"
	"io"
	"sync"
)

// ErrInjected is the base error for injected wire faults.
var ErrInjected = errors.New("faultinject: injected wire fault")

// PartialWriter passes writes through until limit total bytes have shipped,
// then fails every write — after emitting any remaining budget, so the
// victim observes a PARTIAL write (n > 0 with an error), the hardest case
// for framed protocols: the stream now holds a torn frame.
type PartialWriter struct {
	mu      sync.Mutex
	w       io.Writer
	limit   int
	written int
	err     error
}

// NewPartialWriter wraps w, allowing limit bytes through before failing with
// err (ErrInjected when err is nil).
func NewPartialWriter(w io.Writer, limit int, err error) *PartialWriter {
	if err == nil {
		err = ErrInjected
	}
	return &PartialWriter{w: w, limit: limit, err: err}
}

// Write implements io.Writer.
func (p *PartialWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	budget := p.limit - p.written
	if budget <= 0 {
		return 0, p.err
	}
	if len(b) <= budget {
		n, err := p.w.Write(b)
		p.written += n
		return n, err
	}
	n, err := p.w.Write(b[:budget])
	p.written += n
	if err != nil {
		return n, err
	}
	return n, p.err
}

// Written reports how many bytes passed through before the fault tripped.
func (p *PartialWriter) Written() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.written
}
