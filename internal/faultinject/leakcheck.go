package faultinject

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the baseline by test end
// (polling briefly, since legitimate teardown is asynchronous). Call it
// FIRST in a test whose failure mode is an orphaned waiter or receive loop.
//
// It compares counts, not goroutine identities, so unrelated parallel tests
// can confuse it — keep leak-checked tests out of t.Parallel().
func LeakCheck(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var buf bytes.Buffer
		pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf.String())
	})
}
