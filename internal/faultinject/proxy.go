package faultinject

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a TCP man-in-the-middle for chaos runs: traffic between a client
// and target flows through it, and faults are injected on command —
// connection drops, stalls, and mid-frame truncation. It stands where a real
// network failure would, so the code under test exercises exactly the error
// paths production would see.
type Proxy struct {
	target string

	mu     sync.Mutex
	ln     net.Listener
	links  map[*link]struct{}
	closed bool
	wg     sync.WaitGroup

	stall        atomic.Int64 // per-chunk delay, nanoseconds
	truncateNext atomic.Int64 // >=0: cut the next server->client chunk to this many bytes, then drop the link

	drops atomic.Uint64
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
}

func (l *link) teardown() {
	l.client.Close()
	l.server.Close()
}

// NewProxy returns a proxy forwarding to target; call Start to begin.
func NewProxy(target string) *Proxy {
	p := &Proxy{target: target, links: make(map[*link]struct{})}
	p.truncateNext.Store(-1)
	return p
}

// Start listens on an ephemeral localhost port and returns its address —
// dial this instead of the real target.
func (p *Proxy) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("proxy listen: %w", err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		l := &link{client: conn, server: server}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.teardown()
			return
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, l.client, l.server, false)
		go p.pump(l, l.server, l.client, true)
	}
}

// pump copies one direction of a link chunk by chunk, applying the fault
// knobs between chunks. fromServer marks the server->client direction, the
// one truncation targets (a torn RESPONSE frame is what a crashing server
// leaves behind).
func (p *Proxy) pump(l *link, src, dst net.Conn, fromServer bool) {
	defer p.wg.Done()
	defer p.retire(l)
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.stall.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			out := buf[:n]
			if fromServer {
				if cut := p.truncateNext.Swap(-1); cut >= 0 {
					// Forward a prefix of the frame, then kill the link:
					// the client holds a torn frame and a dead conn.
					if int(cut) < len(out) {
						out = out[:cut]
					}
					dst.Write(out)
					return
				}
			}
			if _, werr := dst.Write(out); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// retire removes a link and closes both halves (idempotent).
func (p *Proxy) retire(l *link) {
	p.mu.Lock()
	_, live := p.links[l]
	delete(p.links, l)
	p.mu.Unlock()
	if live {
		l.teardown()
	}
}

// DropActive severs every live proxied connection — the wire goes dead under
// the protocol, mid-frame if traffic is flowing.
func (p *Proxy) DropActive() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		p.drops.Add(1)
		l.teardown()
	}
}

// Drops reports how many links have been severed by DropActive.
func (p *Proxy) Drops() uint64 { return p.drops.Load() }

// SetStall delays every forwarded chunk by d (0 restores full speed) — a
// congested or wedged path rather than a dead one.
func (p *Proxy) SetStall(d time.Duration) { p.stall.Store(int64(d)) }

// TruncateNextResponse cuts the next server-to-client chunk to n bytes and
// then severs that link: the client receives a torn frame followed by EOF.
func (p *Proxy) TruncateNextResponse(n int) { p.truncateNext.Store(int64(n)) }

// Close stops the listener and severs all links.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, l := range links {
		l.teardown()
	}
	p.wg.Wait()
	return nil
}
