package ipc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestMuxSeqWraparoundCollision stages the Seq-counter wraparound: a slow
// exchange holds Seq 1 when the counter comes back around and would hand 1
// out again. The second exchange must be retagged onto a free key — before
// the fix, it silently overwrote the pending entry, orphaning the first
// waiter forever and cross-delivering its response.
func TestMuxSeqWraparoundCollision(t *testing.T) {
	h := newMuxHarness()
	defer h.close()

	reqs := wire.NewReader(h.ctrl)
	resps := wire.NewWriter(h.resp)

	// Exchange A takes Seq 1 and stays in flight.
	aDone := make(chan muxResult, 1)
	go func() {
		resp, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: 100, N: 1}, nil)
		aDone <- muxResult{resp: resp, err: err}
	}()
	reqA, err := reqs.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if reqA.Seq != 1 {
		t.Fatalf("first exchange Seq = %d, want 1", reqA.Seq)
	}

	// Wrap the counter: the next allocation collides with in-flight Seq 1.
	h.mux.seq.Set(0)

	bDone := make(chan muxResult, 1)
	go func() {
		resp, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: 200, N: 1}, nil)
		bDone <- muxResult{resp: resp, err: err}
	}()
	reqB, err := reqs.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if reqB.Seq == reqA.Seq {
		t.Fatalf("colliding exchange reused in-flight Seq %d", reqB.Seq)
	}

	// Answer both; each waiter must get its own response (N echoes Off).
	for _, r := range []wire.Request{reqA, reqB} {
		if err := resps.WriteResponse(&wire.Response{Status: wire.StatusOK, Seq: r.Seq, N: r.Off}); err != nil {
			t.Fatal(err)
		}
	}
	for name, ch := range map[string]chan muxResult{"A": aDone, "B": bDone} {
		select {
		case res := <-ch:
			if res.err != nil {
				t.Errorf("exchange %s: %v", name, res.err)
			}
			want := int64(100)
			if name == "B" {
				want = 200
			}
			if res.resp.N != want {
				t.Errorf("exchange %s got N=%d, want %d (cross-delivered)", name, res.resp.N, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("exchange %s never completed: waiter orphaned by Seq collision", name)
		}
	}
}

// failAfterWriter writes through until limit total bytes, then fails —
// a partial write, the half-written-frame chaos case.
type failAfterWriter struct {
	mu      sync.Mutex
	limit   int
	written int
	err     error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	room := w.limit - w.written
	if room >= len(p) {
		w.written += len(p)
		return len(p), nil
	}
	if room < 0 {
		room = 0
	}
	w.written += room
	return room, w.err
}

// TestMuxPostPayloadDesyncFailsMux pins the data-channel discipline: a
// partial payload write leaves the stream desynchronized, so the mux must
// refuse every later exchange instead of carrying on with corrupt offsets.
func TestMuxPostPayloadDesyncFailsMux(t *testing.T) {
	boom := errors.New("pipe shrank")
	ctrl := NewPipe(1 << 16)
	resp := NewPipe(1 << 16)
	defer ctrl.CloseWrite()
	defer resp.CloseWrite()
	data := &failAfterWriter{limit: 2, err: boom}
	m := NewMux(ctrl, resp, data)

	err := m.Post(&wire.Request{Op: wire.OpWrite, N: 8}, []byte("12345678"))
	if !errors.Is(err, boom) {
		t.Fatalf("Post with partial payload err = %v, want %v", err, boom)
	}

	// The mux is poisoned: later posts and round trips fail fast.
	if err := m.Post(&wire.Request{Op: wire.OpWrite, N: 1}, []byte("x")); err == nil {
		t.Error("Post after payload desync succeeded; data stream would be corrupt")
	} else if !strings.Contains(err.Error(), "desynchronized") {
		t.Errorf("Post after desync err = %v, want desynchronization error", err)
	}
	if _, err := m.RoundTrip(&wire.Request{Op: wire.OpSize}, nil); err == nil {
		t.Error("RoundTrip after payload desync succeeded")
	}
}

// TestMuxCommandWriteFailurePoisons: a failed command-frame write may leave
// a partial frame on the control channel; the mux must become terminal.
func TestMuxCommandWriteFailurePoisons(t *testing.T) {
	boom := errors.New("ctrl torn")
	ctrl := &failAfterWriter{limit: 3, err: boom}
	resp := NewPipe(1 << 16)
	defer resp.CloseWrite()
	m := NewMux(ctrl, resp, nil)

	if _, err := m.RoundTrip(&wire.Request{Op: wire.OpSize}, nil); !errors.Is(err, boom) {
		t.Fatalf("RoundTrip over torn channel err = %v, want %v", err, boom)
	}
	if err := m.Post(&wire.Request{Op: wire.OpSync}, nil); err == nil {
		t.Error("Post after command-channel desync succeeded")
	}
}

// TestMuxValidationErrorsDoNotPoison: encode-time rejections happen before
// any bytes ship, so the mux stays healthy.
func TestMuxValidationErrorsDoNotPoison(t *testing.T) {
	h := newMuxHarness()
	defer h.close()

	if _, err := h.mux.RoundTrip(&wire.Request{Op: wire.Op(200)}, nil); !errors.Is(err, wire.ErrBadOp) {
		t.Fatalf("bad-op round trip err = %v, want ErrBadOp", err)
	}

	serverDone := echoServer(t, h.ctrl, h.resp, 1)
	if _, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: 1, N: 8}, make([]byte, 8)); err != nil {
		t.Errorf("round trip after validation error: %v", err)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestMuxRoundTripContextDeadline: a waiter abandons at its deadline while
// the request stays on the wire; the late response is discarded and the mux
// keeps serving later exchanges in sync.
func TestMuxRoundTripContextDeadline(t *testing.T) {
	h := newMuxHarness()
	defer h.close()

	reqs := wire.NewReader(h.ctrl)
	resps := wire.NewWriter(h.resp)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := h.mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpRead, Off: 7, N: 4}, make([]byte, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline round trip err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("deadline fired after %v; wait was unbounded", waited)
	}

	// The peer eventually answers the abandoned exchange — with a payload —
	// then answers a fresh one. The stale frame must be skipped cleanly.
	stale, err := reqs.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := resps.WriteResponse(&wire.Response{
		Status: wire.StatusOK, Seq: stale.Seq, N: 4, Data: []byte("late"),
	}); err != nil {
		t.Fatal(err)
	}

	fresh := make(chan muxResult, 1)
	go func() {
		resp, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: 9, N: 4}, make([]byte, 4))
		fresh <- muxResult{resp: resp, err: err}
	}()
	req2, err := reqs.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := resps.WriteResponse(&wire.Response{
		Status: wire.StatusOK, Seq: req2.Seq, N: 4, Data: []byte("good"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-fresh:
		if res.err != nil {
			t.Fatalf("round trip after abandoned exchange: %v", res.err)
		}
		if string(res.resp.Data) != "good" {
			t.Errorf("payload = %q, want %q (stale response misrouted)", res.resp.Data, "good")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exchange after abandonment never completed: stream out of sync")
	}
}

// TestMuxRoundTripContextCancelRace: when the response and the cancellation
// race, the delivered response wins — no spurious error, and the payload
// lands in the caller's buffer, never written after return.
func TestMuxRoundTripContextCancelRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		h := newMuxHarness()
		serverDone := echoServer(t, h.ctrl, h.resp, 1)
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // race the reply
		resp, err := h.mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpRead, Off: 3, N: 8}, make([]byte, 8))
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: err = %v", i, err)
			}
		} else if len(resp.Data) != 8 {
			t.Fatalf("round %d: short payload %d", i, len(resp.Data))
		}
		<-serverDone
		h.close()
	}
}
