package ipc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeBasicReadWrite(t *testing.T) {
	p := NewPipe(16)
	if n, err := p.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("Write = (%d, %v), want (5, nil)", n, err)
	}
	buf := make([]byte, 10)
	n, err := p.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := string(buf[:n]); got != "hello" {
		t.Errorf("Read = %q, want %q", got, "hello")
	}
}

func TestPipeZeroLengthRead(t *testing.T) {
	p := NewPipe(4)
	if n, err := p.Read(nil); n != 0 || err != nil {
		t.Errorf("Read(nil) = (%d, %v), want (0, nil)", n, err)
	}
}

func TestPipeWrapAround(t *testing.T) {
	p := NewPipe(8)
	buf := make([]byte, 8)
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3), byte(i + 4)}
		if _, err := p.Write(msg); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		n, err := p.Read(buf)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Fatalf("iteration %d: read %v, want %v", i, buf[:n], msg)
		}
	}
}

func TestPipeBlockingWriteUnblockedByRead(t *testing.T) {
	p := NewPipe(4)
	if _, err := p.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte("efgh")) // must block until reader drains
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("Write completed before reader drained a full pipe")
	case <-time.After(20 * time.Millisecond):
	}
	got := make([]byte, 8)
	if _, err := io.ReadFull(p, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Write: %v", err)
	}
	if string(got) != "abcdefgh" {
		t.Errorf("read %q, want %q", got, "abcdefgh")
	}
}

func TestPipeBlockingReadUnblockedByWrite(t *testing.T) {
	p := NewPipe(4)
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 4)
		n, err := p.Read(buf)
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(buf[:n])
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := p.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if g := <-got; g != "xy" {
		t.Errorf("blocked Read got %q, want %q", g, "xy")
	}
}

func TestPipeCloseWriteDrainsThenEOF(t *testing.T) {
	p := NewPipe(16)
	if _, err := p.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	p.CloseWrite()
	buf := make([]byte, 16)
	n, err := p.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("Read after CloseWrite = (%q, %v), want (\"tail\", nil)", buf[:n], err)
	}
	if _, err := p.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("Read on drained closed pipe err = %v, want io.EOF", err)
	}
	if _, err := p.Write([]byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Errorf("Write after CloseWrite err = %v, want ErrClosedPipe", err)
	}
}

func TestPipeCloseReadFailsWriters(t *testing.T) {
	p := NewPipe(4)
	p.CloseRead()
	if _, err := p.Write([]byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Errorf("Write after CloseRead err = %v, want ErrClosedPipe", err)
	}
	if _, err := p.Read(make([]byte, 1)); !errors.Is(err, ErrClosedPipe) {
		t.Errorf("Read after CloseRead err = %v, want ErrClosedPipe", err)
	}
}

func TestPipeCloseReadUnblocksWriter(t *testing.T) {
	p := NewPipe(2)
	if _, err := p.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte("cd"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.CloseRead()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosedPipe) {
			t.Errorf("blocked Write err = %v, want ErrClosedPipe", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Write still blocked after CloseRead")
	}
}

func TestPipeCloseUnblocksReader(t *testing.T) {
	p := NewPipe(4)
	done := make(chan error, 1)
	go func() {
		_, err := p.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked Read returned nil error after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Read still blocked after Close")
	}
}

func TestPipeBuffered(t *testing.T) {
	p := NewPipe(8)
	if got := p.Buffered(); got != 0 {
		t.Errorf("Buffered empty = %d, want 0", got)
	}
	p.Write([]byte("abc"))
	if got := p.Buffered(); got != 3 {
		t.Errorf("Buffered = %d, want 3", got)
	}
}

func TestPipeDefaultCapacity(t *testing.T) {
	p := NewPipe(0)
	if len(p.buf) != DefaultCapacity {
		t.Errorf("capacity = %d, want %d", len(p.buf), DefaultCapacity)
	}
}

func TestPipeStreamIntegrityProperty(t *testing.T) {
	// Whatever byte sequence goes in one end comes out the other, across any
	// segmentation of writes, for a variety of pipe capacities.
	f := func(seed int64, capacity uint16) bool {
		cap := int(capacity)%200 + 1
		p := NewPipe(cap)
		rng := rand.New(rand.NewSource(seed))
		want := make([]byte, 4096)
		rng.Read(want)

		go func() {
			rest := want
			for len(rest) > 0 {
				n := rng.Intn(300) + 1
				if n > len(rest) {
					n = len(rest)
				}
				if _, err := p.Write(rest[:n]); err != nil {
					return
				}
				rest = rest[n:]
			}
			p.CloseWrite()
		}()

		var got bytes.Buffer
		if _, err := io.Copy(&got, p); err != nil {
			return false
		}
		return bytes.Equal(got.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPipeConcurrentWriters(t *testing.T) {
	p := NewPipe(64)
	const writers = 4
	const perWriter = 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte{byte('A' + w)}
			for i := 0; i < perWriter; i++ {
				if _, err := p.Write(payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		p.CloseWrite()
	}()

	counts := make(map[byte]int)
	buf := make([]byte, 128)
	for {
		n, err := p.Read(buf)
		for _, b := range buf[:n] {
			counts[b]++
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	for w := 0; w < writers; w++ {
		if got := counts[byte('A'+w)]; got != perWriter {
			t.Errorf("writer %d delivered %d bytes, want %d", w, got, perWriter)
		}
	}
}
