package ipc

import (
	"errors"
	"sync"
)

// ErrRendezvousClosed is returned once either side of a Rendezvous shuts
// down.
var ErrRendezvousClosed = errors.New("ipc: rendezvous closed")

// Rendezvous is a synchronous request/response channel between exactly one
// caller goroutine at a time and one server goroutine. It is the in-process
// analogue of the paper's DLL-with-thread mechanism, where "messages are
// implemented using events and shared memory": Call hands a request to the
// sentinel thread and blocks until the reply event fires, costing one
// goroutine handoff and no kernel crossing.
type Rendezvous[Req any, Resp any] struct {
	calls chan rendezvousCall[Req, Resp]

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

type rendezvousCall[Req any, Resp any] struct {
	req   Req
	reply chan Resp
}

// rendezvousQueue is the request-queue depth. Each caller still blocks for
// its own reply — the exchange stays synchronous — but buffering the queue
// lets a server goroutine drain several pending calls per scheduling quantum
// instead of paying a wakeup handoff for every one, which is where the
// speedup of concurrent callers on few cores comes from.
const rendezvousQueue = 64

// NewRendezvous returns an open rendezvous.
func NewRendezvous[Req any, Resp any]() *Rendezvous[Req, Resp] {
	return &Rendezvous[Req, Resp]{
		calls: make(chan rendezvousCall[Req, Resp], rendezvousQueue),
		done:  make(chan struct{}),
	}
}

// Call delivers req to the server and blocks until the reply arrives or the
// rendezvous closes.
func (r *Rendezvous[Req, Resp]) Call(req Req) (Resp, error) {
	var zero Resp
	c := rendezvousCall[Req, Resp]{req: req, reply: make(chan Resp, 1)}
	select {
	case r.calls <- c:
	case <-r.done:
		return zero, ErrRendezvousClosed
	}
	select {
	case resp := <-c.reply:
		return resp, nil
	case <-r.done:
		return zero, ErrRendezvousClosed
	}
}

// Next blocks until a caller arrives, returning the request and a reply
// function the server must invoke exactly once.
func (r *Rendezvous[Req, Resp]) Next() (Req, func(Resp), error) {
	var zero Req
	select {
	case c := <-r.calls:
		return c.req, func(resp Resp) { c.reply <- resp }, nil
	case <-r.done:
		return zero, nil, ErrRendezvousClosed
	}
}

// Close releases both sides; blocked Call and Next invocations return
// ErrRendezvousClosed. Close is idempotent.
func (r *Rendezvous[Req, Resp]) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.closed = true
		close(r.done)
	}
	return nil
}
