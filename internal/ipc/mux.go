package ipc

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/wire"
)

// ErrMuxClosed reports an exchange attempted on (or interrupted by) a closed
// Mux.
var ErrMuxClosed = errors.New("ipc: mux closed")

// muxResult is what a waiter receives: the matched response or the terminal
// channel error.
type muxResult struct {
	resp wire.Response
	err  error
}

// muxPending is one in-flight exchange, keyed by its request's Seq.
type muxPending struct {
	dst []byte // optional destination for the response payload
	ch  chan muxResult
}

// Mux multiplexes concurrent request/response exchanges over one ordered
// command channel and one ordered response channel — the procctl pipe pair.
// Any number of goroutines may have exchanges in flight at once; each
// request is tagged with a fresh Seq, and a single receive loop routes every
// response (in whatever order the peer produced it) to the matching waiter.
// This replaces strict request/response lockstep: the channel pair carries a
// pipeline, and wire.Request.Seq is the correlation key.
type Mux struct {
	sendMu sync.Mutex // serializes command frames (and Post payloads) onto the channel
	ctrl   *wire.Writer
	data   io.Writer // side channel for Post payloads; may be nil

	seq wire.SeqCounter

	mu      sync.Mutex
	pending map[uint32]muxPending
	err     error // terminal failure; set once, fails all current and future exchanges
}

// NewMux returns a mux sending command frames on ctrl, matching response
// frames read from resp, and (optionally, for Post) streaming payloads on
// data. The receive loop runs until resp errors or the mux is closed.
func NewMux(ctrl io.Writer, resp io.Reader, data io.Writer) *Mux {
	m := &Mux{
		ctrl:    wire.NewWriter(ctrl),
		data:    data,
		pending: make(map[uint32]muxPending),
	}
	go m.receive(wire.NewReader(resp))
	return m
}

// receive routes response frames to waiters by Seq until the channel fails.
// Payloads are read off the stream directly into the waiter's destination
// buffer — the split header/payload decode means the channel-to-caller copy
// is the only one on the read path.
func (m *Mux) receive(r *wire.Reader) {
	for {
		resp, payloadLen, err := r.ReadResponseHeader()
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		p, ok := m.pending[resp.Seq]
		delete(m.pending, resp.Seq)
		m.mu.Unlock()
		if !ok {
			// Response for an abandoned exchange; drop its payload too.
			if err := r.DiscardPayload(); err != nil {
				m.fail(err)
				return
			}
			continue
		}
		if payloadLen > 0 {
			dst := p.dst
			if len(dst) >= payloadLen {
				dst = dst[:payloadLen]
			} else {
				// Destination missing or too small — rare cold path.
				dst = make([]byte, payloadLen)
			}
			if err := r.ReadPayload(dst); err != nil {
				p.ch <- muxResult{err: err}
				m.fail(err)
				return
			}
			resp.Data = dst
		}
		p.ch <- muxResult{resp: resp}
	}
}

// fail records the first terminal error and releases every waiter with it.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	err = m.err
	for seq, p := range m.pending {
		delete(m.pending, seq)
		p.ch <- muxResult{err: err}
	}
	m.mu.Unlock()
}

// RoundTrip assigns req a fresh Seq, sends it, and blocks until the matching
// response arrives — however many other exchanges are in flight and in
// whatever order the peer answers. When dst is non-nil and large enough, the
// response payload lands in dst (the returned Response's Data aliases it);
// otherwise a fresh buffer is allocated.
func (m *Mux) RoundTrip(req *wire.Request, dst []byte) (wire.Response, error) {
	req.Seq = m.seq.Next()
	p := muxPending{dst: dst, ch: make(chan muxResult, 1)}

	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%s exchange: %w", req.Op, m.err)
	}
	m.pending[req.Seq] = p
	m.mu.Unlock()

	m.sendMu.Lock()
	err := m.ctrl.WriteRequest(req)
	m.sendMu.Unlock()
	if err != nil {
		m.mu.Lock()
		delete(m.pending, req.Seq)
		m.mu.Unlock()
		return wire.Response{}, fmt.Errorf("send %s command: %w", req.Op, err)
	}

	res := <-p.ch
	if res.err != nil {
		return wire.Response{}, fmt.Errorf("read %s response: %w", req.Op, res.err)
	}
	return res.resp, nil
}

// Post sends req without waiting for any response — the procctl write path,
// where "writes are issued without waiting for their completion". When
// payload is non-empty it is streamed on the data channel atomically with
// the command frame, so the payload order on the data channel always matches
// the command order on the control channel, no matter how many goroutines
// post concurrently.
func (m *Mux) Post(req *wire.Request, payload []byte) error {
	req.Seq = m.seq.Next()

	m.mu.Lock()
	err := m.err
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%s exchange: %w", req.Op, err)
	}

	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	if err := m.ctrl.WriteRequest(req); err != nil {
		return fmt.Errorf("send %s command: %w", req.Op, err)
	}
	if len(payload) > 0 {
		if m.data == nil {
			return fmt.Errorf("send %s payload: no data channel", req.Op)
		}
		if _, err := m.data.Write(payload); err != nil {
			return fmt.Errorf("stream %s payload: %w", req.Op, err)
		}
	}
	return nil
}

// Close fails every pending and future exchange with ErrMuxClosed. It does
// not close the underlying channels — their owner does, which also unblocks
// the receive loop. Close is idempotent; an earlier terminal error wins.
func (m *Mux) Close() error {
	m.fail(ErrMuxClosed)
	return nil
}
