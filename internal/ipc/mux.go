package ipc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// ErrMuxClosed reports an exchange attempted on (or interrupted by) a closed
// Mux.
var ErrMuxClosed = errors.New("ipc: mux closed")

// ErrSeqExhausted reports that no free correlation key could be found for a
// new exchange: every retag attempt collided with an in-flight Seq. It can
// only occur when ~2^32 exchanges are pending, i.e. never in practice — it
// exists so a wrapped counter degrades into an error instead of silently
// orphaning the waiter that held the colliding key.
var ErrSeqExhausted = errors.New("ipc: no free sequence number for exchange")

// seqRetagLimit bounds how many fresh Seqs RoundTrip tries before giving up
// with ErrSeqExhausted.
const seqRetagLimit = 64

// muxResult is what a waiter receives: the matched response or the terminal
// channel error.
type muxResult struct {
	resp wire.Response
	err  error
}

// muxPending is one in-flight exchange, keyed by its request's Seq.
type muxPending struct {
	dst []byte // optional destination for the response payload
	ch  chan muxResult
}

// Mux multiplexes concurrent request/response exchanges over one ordered
// command channel and one ordered response channel — the procctl pipe pair.
// Any number of goroutines may have exchanges in flight at once; each
// request is tagged with a fresh Seq, and a single receive loop routes every
// response (in whatever order the peer produced it) to the matching waiter.
// This replaces strict request/response lockstep: the channel pair carries a
// pipeline, and wire.Request.Seq is the correlation key.
//
// Failure discipline: the framed streams carry no resynchronization points,
// so any error that may have left a partial frame on a channel — a short
// command write, a truncated payload — poisons the whole mux via Fail, and
// every current and future exchange reports the terminal error promptly.
// Waits are cancellable (RoundTripContext): an abandoned waiter's response
// is read and discarded when it eventually arrives, keeping the response
// stream in sync for every other exchange.
//
// Send path: command frames from concurrent exchanges are group-committed by
// a wire.BatchWriter — the first sender flushes every frame accumulated while
// it held the channel in one vectored write, so N pipelined exchanges cost
// ~1 write syscall instead of N. A lone exchange still flushes immediately.
//
// Receive path: the response stream is read through a drain-mode buffer
// (wire.DrainReader) — one read syscall pulls every byte the channel has
// ready, and the loop then decodes frame after frame out of the buffer, so
// N pipelined responses arriving together cost ~1 wakeup instead of N. A
// self-buffered source (the shm ring) is decoded directly; it already
// drains without syscalls.
type Mux struct {
	bw *wire.BatchWriter // batching command-frame writer (plus Post payload channel)
	dr *wire.DrainReader // response drain buffer; nil over a self-buffered source

	seq        wire.SeqCounter
	recvFrames atomic.Uint64 // response frames routed by the receive loop

	mu      sync.Mutex
	pending map[uint32]muxPending
	err     error // terminal failure; set once, fails all current and future exchanges

	// push receives server-initiated frames (Seq == wire.PushSeq) — lease
	// revokes and other notifications the peer sends without a request.
	// Guarded by mu; called from the receive loop, so it must not block on
	// another exchange's response (sending with Post is fine).
	push func(wire.Response)
}

// NewMux returns a mux sending command frames on ctrl, matching response
// frames read from resp, and (optionally, for Post) streaming payloads on
// data. The receive loop runs until resp errors or the mux is closed.
func NewMux(ctrl io.Writer, resp io.Reader, data io.Writer) *Mux {
	src, dr := wire.WrapDrain(resp)
	m := &Mux{
		bw:      wire.NewBatchWriter(ctrl, data),
		dr:      dr,
		pending: make(map[uint32]muxPending),
	}
	// The pending-reply count tells the batch writer how deep the pipeline
	// is, letting its flush leader court company when callers overlap.
	// Safe lock order: frames are submitted outside m.mu, so the hint may
	// take it.
	m.bw.SetLoadHint(func() int {
		m.mu.Lock()
		n := len(m.pending)
		m.mu.Unlock()
		return n
	})
	go m.receive(wire.NewReader(src))
	return m
}

// BatchStats reports the send path's flush amortization — how many frames
// each vectored write carried on average.
func (m *Mux) BatchStats() wire.BatchStats { return m.bw.Stats() }

// RecvStats snapshots the receive path's wakeup amortization: response
// frames decoded versus read syscalls that delivered them. Wakeups is zero
// over a self-buffered source (shm rings), where the receive path makes no
// read syscalls at all on the hot path.
type RecvStats struct {
	Frames  uint64 // response frames routed to waiters (or discarded)
	Wakeups uint64 // read syscalls the drain buffer issued to get them
}

// RecvStatsSnapshot reports the receive loop's drain amortization.
func (m *Mux) RecvStatsSnapshot() RecvStats {
	s := RecvStats{Frames: m.recvFrames.Load()}
	if m.dr != nil {
		s.Wakeups = m.dr.Stats().Fills
	}
	return s
}

// receive routes response frames to waiters by Seq until the channel fails.
// Payloads are read off the stream directly into the waiter's destination
// buffer — the split header/payload decode means the channel-to-caller copy
// is the only one on the read path. Behind a DrainReader, every complete
// frame a wakeup delivered is decoded before the loop can block again; the
// pooled drain buffer is released when the loop exits.
func (m *Mux) receive(r *wire.Reader) {
	if m.dr != nil {
		defer m.dr.Release()
	}
	for {
		resp, payloadLen, err := r.ReadResponseHeader()
		if err != nil {
			m.Fail(err)
			return
		}
		m.recvFrames.Add(1)
		if resp.Seq == wire.PushSeq {
			// Server-initiated frame: no waiter holds this Seq. The payload
			// lands in a fresh buffer (pushes are rare and small) and the
			// handler runs on the receive loop, so by the time the next frame
			// is decoded the push has been fully acted on — the ordering the
			// lease protocol relies on.
			if payloadLen > 0 {
				data := make([]byte, payloadLen)
				if err := r.ReadPayload(data); err != nil {
					m.Fail(err)
					return
				}
				resp.Data = data
			}
			m.mu.Lock()
			h := m.push
			m.mu.Unlock()
			if h != nil {
				h(resp)
			}
			continue
		}
		m.mu.Lock()
		p, ok := m.pending[resp.Seq]
		delete(m.pending, resp.Seq)
		m.mu.Unlock()
		if !ok {
			// Response for an abandoned exchange; drop its payload too.
			if err := r.DiscardPayload(); err != nil {
				m.Fail(err)
				return
			}
			continue
		}
		if payloadLen > 0 {
			dst := p.dst
			if len(dst) >= payloadLen {
				dst = dst[:payloadLen]
			} else {
				// Destination missing or too small — rare cold path.
				dst = make([]byte, payloadLen)
			}
			if err := r.ReadPayload(dst); err != nil {
				p.ch <- muxResult{err: err}
				m.Fail(err)
				return
			}
			resp.Data = dst
		}
		p.ch <- muxResult{resp: resp}
	}
}

// Fail records err as the mux's terminal error (first failure wins) and
// releases every waiter with it. It is how external supervisors — a sentinel
// child watcher noticing the subprocess died, a connection owner tearing
// down — convert a dead peer into prompt errors instead of indefinite
// blocks. Safe to call any number of times from any goroutine.
func (m *Mux) Fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	err = m.err
	for seq, p := range m.pending {
		delete(m.pending, seq)
		p.ch <- muxResult{err: err}
	}
	m.mu.Unlock()
}

// Err returns the mux's terminal error, or nil while it is healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// SetPushHandler installs h for server-initiated frames (Seq ==
// wire.PushSeq). h runs on the receive loop: it must not wait for another
// exchange's response, but may send (Post) — the lease-ack path. A nil h
// drops pushes.
func (m *Mux) SetPushHandler(h func(wire.Response)) {
	m.mu.Lock()
	m.push = h
	m.mu.Unlock()
}

// sendValidationErr reports whether err is a pure encode-time validation
// failure, raised before any bytes reach the channel. Every other send error
// may have left a partial frame on the stream and must poison the mux.
func sendValidationErr(err error) bool {
	return errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrBadOp)
}

// RoundTrip assigns req a fresh Seq, sends it, and blocks until the matching
// response arrives — however many other exchanges are in flight and in
// whatever order the peer answers. When dst is non-nil and large enough, the
// response payload lands in dst (the returned Response's Data aliases it);
// otherwise a fresh buffer is allocated.
func (m *Mux) RoundTrip(req *wire.Request, dst []byte) (wire.Response, error) {
	return m.RoundTripContext(context.Background(), req, dst)
}

// RoundTripContext is RoundTrip with a cancellation point: when ctx expires
// before the response arrives, the exchange is abandoned and ctx's error
// returned. Abandonment keeps the stream in sync — the request stays on the
// wire, and the receive loop discards the late response (header and payload)
// when the peer eventually produces it. The mux itself stays healthy; only
// this waiter gives up. If the response raced the cancellation, it is
// delivered normally.
func (m *Mux) RoundTripContext(ctx context.Context, req *wire.Request, dst []byte) (wire.Response, error) {
	req.Seq = m.seq.Next()
	p := muxPending{dst: dst, ch: make(chan muxResult, 1)}

	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%s exchange: %w", req.Op, m.err)
	}
	// A wrapped Seq counter could hand out a key some slow exchange still
	// holds; registering the new waiter under it would orphan the old one
	// (its response would be routed here and its goroutine blocked forever).
	// Retag until the key is free. wire.PushSeq is never free: it names
	// server-initiated frames, so a wrapped counter skips it too.
	for retags := 0; ; retags++ {
		if _, dup := m.pending[req.Seq]; !dup && req.Seq != wire.PushSeq {
			break
		}
		if retags == seqRetagLimit {
			m.mu.Unlock()
			return wire.Response{}, fmt.Errorf("%s exchange: %w", req.Op, ErrSeqExhausted)
		}
		req.Seq = m.seq.Next()
	}
	m.pending[req.Seq] = p
	m.mu.Unlock()

	if err := m.bw.WriteRequest(req); err != nil {
		m.mu.Lock()
		delete(m.pending, req.Seq)
		m.mu.Unlock()
		if !sendValidationErr(err) {
			// The command frame may be partially written: the control stream
			// can no longer be trusted to carry aligned frames.
			m.Fail(fmt.Errorf("ipc: command channel desynchronized: %w", err))
		}
		return wire.Response{}, fmt.Errorf("send %s command: %w", req.Op, err)
	}

	select {
	case res := <-p.ch:
		return finishRoundTrip(req.Op, res)
	case <-ctx.Done():
	}

	// Cancelled. If the waiter is still registered, abandon it: the receive
	// loop will discard the late response. If it is gone, the response (or a
	// terminal error) is already in flight to p.ch — possibly mid-copy into
	// dst — so it must be awaited, not abandoned.
	m.mu.Lock()
	if _, still := m.pending[req.Seq]; still {
		delete(m.pending, req.Seq)
		m.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%s exchange: %w", req.Op, ctx.Err())
	}
	m.mu.Unlock()
	return finishRoundTrip(req.Op, <-p.ch)
}

// finishRoundTrip unwraps a waiter's result into RoundTrip's return shape.
func finishRoundTrip(op wire.Op, res muxResult) (wire.Response, error) {
	if res.err != nil {
		return wire.Response{}, fmt.Errorf("read %s response: %w", op, res.err)
	}
	return res.resp, nil
}

// Post sends req without waiting for any response — the procctl write path,
// where "writes are issued without waiting for their completion". When
// payload is non-empty it is appended to the same send batch as the command
// frame, so the payload order on the data channel always matches the command
// order on the control channel, no matter how many goroutines post
// concurrently.
//
// A failed or partial batch write desynchronizes the stream — the peer would
// misattribute every later frame or payload byte — so it poisons the mux:
// all subsequent exchanges fail with the recorded error instead of silently
// corrupting offsets.
func (m *Mux) Post(req *wire.Request, payload []byte) error {
	req.Seq = m.seq.Next()
	if req.Seq == wire.PushSeq { // wrapped counter; the echo would look like a push
		req.Seq = m.seq.Next()
	}

	m.mu.Lock()
	err := m.err
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%s exchange: %w", req.Op, err)
	}
	if len(payload) > 0 && !m.bw.HasData() {
		// Validated before the command frame ships: announcing a payload the
		// data channel cannot carry would wedge the peer waiting for bytes
		// that never come.
		return fmt.Errorf("send %s payload: no data channel", req.Op)
	}

	if err := m.bw.WritePost(req, payload); err != nil {
		if !sendValidationErr(err) {
			m.Fail(fmt.Errorf("ipc: channel desynchronized mid-batch: %w", err))
		}
		return fmt.Errorf("send %s command: %w", req.Op, err)
	}
	return nil
}

// Close fails every pending and future exchange with ErrMuxClosed. It does
// not close the underlying channels — their owner does, which also unblocks
// the receive loop. Close is idempotent; an earlier terminal error wins.
func (m *Mux) Close() error {
	m.Fail(ErrMuxClosed)
	return nil
}
