package ipc

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/wire"
)

// muxHarness wires a Mux to an in-process server over Pipes, mirroring the
// procctl layout: ctrl carries commands, resp carries responses, data
// carries unacknowledged write payloads.
type muxHarness struct {
	mux *Mux

	ctrl *Pipe // client writes commands, server reads
	resp *Pipe // server writes responses, client (mux) reads
	data *Pipe // client streams payloads, server reads
}

func newMuxHarness() *muxHarness {
	h := &muxHarness{
		ctrl: NewPipe(1 << 16),
		resp: NewPipe(1 << 16),
		data: NewPipe(1 << 16),
	}
	h.mux = NewMux(h.ctrl, h.resp, h.data)
	return h
}

func (h *muxHarness) close() {
	h.ctrl.CloseWrite()
	h.resp.CloseWrite()
	h.data.CloseWrite()
}

func TestMuxMatchesOutOfOrderResponses(t *testing.T) {
	h := newMuxHarness()
	defer h.close()

	// Server: read two requests, answer them in reverse order, echoing the
	// request offset so each waiter can verify it got its own response.
	serverDone := make(chan error, 1)
	go func() {
		reqs := wire.NewReader(h.ctrl)
		resps := wire.NewWriter(h.resp)
		var got []wire.Request
		for i := 0; i < 2; i++ {
			r, err := reqs.ReadRequest()
			if err != nil {
				serverDone <- err
				return
			}
			got = append(got, r)
		}
		for i := len(got) - 1; i >= 0; i-- {
			r := got[i]
			if err := resps.WriteResponse(&wire.Response{
				Status: wire.StatusOK, Seq: r.Seq, N: r.Off,
			}); err != nil {
				serverDone <- err
				return
			}
		}
		serverDone <- nil
	}()

	var wg sync.WaitGroup
	results := make([]wire.Response, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = h.mux.RoundTrip(&wire.Request{
				Op: wire.OpRead, Off: int64(100 + i), N: 1,
			}, nil)
		}()
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("round trip %d: %v", i, errs[i])
		}
		if results[i].N != int64(100+i) {
			t.Errorf("round trip %d got response N=%d, want %d (misrouted)", i, results[i].N, 100+i)
		}
	}
}

// echoServer answers every read request with its offset encoded into the
// payload, exercising payload routing under heavy interleaving.
func echoServer(t *testing.T, ctrl io.Reader, resp io.Writer, ops int) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		reqs := wire.NewReader(ctrl)
		resps := wire.NewWriter(resp)
		for i := 0; i < ops; i++ {
			r, err := reqs.ReadRequest()
			if err != nil {
				done <- err
				return
			}
			payload := make([]byte, 8)
			binary.BigEndian.PutUint64(payload, uint64(r.Off))
			if err := resps.WriteResponse(&wire.Response{
				Status: wire.StatusOK, Seq: r.Seq, N: 8, Data: payload,
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

func TestMuxConcurrentRoundTrips(t *testing.T) {
	const (
		goroutines = 16
		perG       = 50
	)
	h := newMuxHarness()
	defer h.close()
	serverDone := echoServer(t, h.ctrl, h.resp, goroutines*perG)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 8)
			for i := 0; i < perG; i++ {
				off := int64(g*perG + i)
				resp, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: off, N: 8}, dst)
				if err != nil {
					t.Errorf("round trip: %v", err)
					return
				}
				if len(resp.Data) != 8 {
					t.Errorf("payload %d bytes, want 8", len(resp.Data))
					return
				}
				if &resp.Data[0] != &dst[0] {
					t.Error("payload not delivered into caller's destination buffer")
					return
				}
				if got := int64(binary.BigEndian.Uint64(resp.Data)); got != off {
					t.Errorf("payload says offset %d, want %d (cross-delivered)", got, off)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestMuxPostKeepsPayloadOrder(t *testing.T) {
	const posts = 64
	h := newMuxHarness()
	defer h.close()

	// Concurrent posters: each command's N encodes its payload byte, so the
	// server can verify that the k-th payload on the data channel belongs to
	// the k-th command on the control channel.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < posts/8; i++ {
				b := byte(g*8 + i)
				err := h.mux.Post(&wire.Request{Op: wire.OpWrite, N: 1, Off: int64(b)}, []byte{b})
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	reqs := wire.NewReader(h.ctrl)
	one := make([]byte, 1)
	for i := 0; i < posts; i++ {
		r, err := reqs.ReadRequest()
		if err != nil {
			t.Fatalf("read command %d: %v", i, err)
		}
		if _, err := io.ReadFull(h.data, one); err != nil {
			t.Fatalf("read payload %d: %v", i, err)
		}
		if int64(one[0]) != r.Off {
			t.Fatalf("payload %d carries %d, command says %d: order broken", i, one[0], r.Off)
		}
	}
}

func TestMuxChannelFailureReleasesWaiters(t *testing.T) {
	h := newMuxHarness()

	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		close(started)
		_, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpSize}, nil)
		errCh <- err
	}()
	<-started
	// Drain the command so the exchange is truly in flight, then kill the
	// response channel.
	if _, err := wire.NewReader(h.ctrl).ReadRequest(); err != nil {
		t.Fatal(err)
	}
	h.resp.CloseWrite()

	if err := <-errCh; err == nil || !errors.Is(err, io.EOF) {
		t.Errorf("waiter error = %v, want io.EOF", err)
	}
	// Future exchanges fail fast with the recorded error.
	if _, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpSize}, nil); err == nil {
		t.Error("round trip after channel failure succeeded")
	}
	if err := h.mux.Post(&wire.Request{Op: wire.OpWrite}, nil); err == nil {
		t.Error("post after channel failure succeeded")
	}
}

func TestMuxCloseReleasesWaiters(t *testing.T) {
	h := newMuxHarness()
	defer h.close()

	errCh := make(chan error, 1)
	go func() {
		_, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpSync}, nil)
		errCh <- err
	}()
	// Wait until the exchange is registered and sent.
	if _, err := wire.NewReader(h.ctrl).ReadRequest(); err != nil {
		t.Fatal(err)
	}
	h.mux.Close()
	if err := <-errCh; !errors.Is(err, ErrMuxClosed) {
		t.Errorf("waiter error = %v, want ErrMuxClosed", err)
	}
	if _, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpSync}, nil); !errors.Is(err, ErrMuxClosed) {
		t.Errorf("post-close round trip error = %v, want ErrMuxClosed", err)
	}
}

func TestMuxAllocatesWhenDestinationTooSmall(t *testing.T) {
	h := newMuxHarness()
	defer h.close()
	serverDone := echoServer(t, h.ctrl, h.resp, 1)

	dst := make([]byte, 4) // smaller than the 8-byte payload
	resp, err := h.mux.RoundTrip(&wire.Request{Op: wire.OpRead, Off: 7, N: 8}, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 8 {
		t.Fatalf("payload %d bytes, want 8", len(resp.Data))
	}
	if got := binary.BigEndian.Uint64(resp.Data); got != 7 {
		t.Errorf("payload = %d, want 7", got)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
}
