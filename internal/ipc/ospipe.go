package ipc

import (
	"fmt"
	"os"
)

// ChannelFiles is the set of OS pipe file descriptors wired between the
// application process and a sentinel subprocess. The parent keeps one end of
// each pipe; the child inherits the other three as extra files (fds 3, 4, 5
// in order: its stdin-equivalent read pipe, stdout-equivalent write pipe,
// and the control pipe for the process-plus-control strategy).
type ChannelFiles struct {
	// Parent-side ends.
	ToChild     *os.File // parent writes application data destined for the sentinel
	FromChild   *os.File // parent reads data the sentinel produced
	CtrlToChild *os.File // parent writes control frames (nil without control channel)

	// Child-side ends, passed via exec.Cmd.ExtraFiles and closed in the
	// parent after spawning.
	ChildRead  *os.File
	ChildWrite *os.File
	ChildCtrl  *os.File // nil without control channel
}

// NewChannelFiles creates the OS pipes for a sentinel subprocess. withControl
// adds the third (control) pipe used by the process-plus-control strategy.
func NewChannelFiles(withControl bool) (*ChannelFiles, error) {
	cf := &ChannelFiles{}
	var err error
	cf.ChildRead, cf.ToChild, err = os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("data pipe to sentinel: %w", err)
	}
	cf.FromChild, cf.ChildWrite, err = os.Pipe()
	if err != nil {
		cf.Close()
		return nil, fmt.Errorf("data pipe from sentinel: %w", err)
	}
	if withControl {
		cf.ChildCtrl, cf.CtrlToChild, err = os.Pipe()
		if err != nil {
			cf.Close()
			return nil, fmt.Errorf("control pipe: %w", err)
		}
	}
	return cf, nil
}

// ChildFiles returns the child-side files in the fd order the sentinel
// expects (3: read, 4: write, 5: control if present).
func (cf *ChannelFiles) ChildFiles() []*os.File {
	files := []*os.File{cf.ChildRead, cf.ChildWrite}
	if cf.ChildCtrl != nil {
		files = append(files, cf.ChildCtrl)
	}
	return files
}

// CloseChildEnds closes the child-side ends in the parent once the subprocess
// has inherited them.
func (cf *ChannelFiles) CloseChildEnds() {
	for _, f := range []*os.File{cf.ChildRead, cf.ChildWrite, cf.ChildCtrl} {
		if f != nil {
			f.Close()
		}
	}
	cf.ChildRead, cf.ChildWrite, cf.ChildCtrl = nil, nil, nil
}

// Close closes every file that is still open. It is safe to call repeatedly.
func (cf *ChannelFiles) Close() error {
	for _, f := range []*os.File{
		cf.ToChild, cf.FromChild, cf.CtrlToChild,
		cf.ChildRead, cf.ChildWrite, cf.ChildCtrl,
	} {
		if f != nil {
			f.Close()
		}
	}
	cf.ToChild, cf.FromChild, cf.CtrlToChild = nil, nil, nil
	cf.ChildRead, cf.ChildWrite, cf.ChildCtrl = nil, nil, nil
	return nil
}
