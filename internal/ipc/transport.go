package ipc

import "io"

// FrameConn is one endpoint's view of the framed conduit carrying a procctl
// session: an ordered stream of command frames out to the peer, an ordered
// stream of response frames back, and a bulk data stream for write payloads.
// The pipe trio and the shared-memory ring pair both satisfy it, which is
// what lets the Mux, the batch writer, and the whole failure discipline run
// identically over either carrier.
//
// Close releases the conduit's resources and must unblock any reader parked
// on Resp — the Mux receive loop relies on that to terminate.
type FrameConn interface {
	Ctrl() io.Writer // command frames to the peer
	Resp() io.Reader // response frames from the peer
	Data() io.Writer // bulk write payloads to the peer; may be nil
	Close() error
}

// NewMuxConn builds a Mux over a FrameConn's three streams.
func NewMuxConn(c FrameConn) *Mux {
	return NewMux(c.Ctrl(), c.Resp(), c.Data())
}

// PipeConn adapts the parent-side ends of a ChannelFiles pipe trio into a
// FrameConn: commands on the control pipe, responses on the from-child data
// pipe, write payloads on the to-child data pipe.
type PipeConn struct {
	CF *ChannelFiles
}

func (p PipeConn) Ctrl() io.Writer { return p.CF.CtrlToChild }
func (p PipeConn) Resp() io.Reader { return p.CF.FromChild }
func (p PipeConn) Data() io.Writer { return p.CF.ToChild }
func (p PipeConn) Close() error    { return p.CF.Close() }
