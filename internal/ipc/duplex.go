package ipc

import "io"

// End is one side of a duplex connection. Reads come from the peer's writes
// and vice versa.
type End struct {
	in  *Pipe // peer writes here, we read
	out *Pipe // we write here, peer reads
}

var _ io.ReadWriteCloser = (*End)(nil)

// Read reads bytes written by the peer end.
func (e *End) Read(p []byte) (int, error) { return e.in.Read(p) }

// Write makes bytes available to the peer end.
func (e *End) Write(p []byte) (int, error) { return e.out.Write(p) }

// Close shuts down both directions of this end: the peer's reads drain and
// then see io.EOF, and the peer's writes fail.
func (e *End) Close() error {
	e.out.CloseWrite()
	e.in.CloseRead()
	return nil
}

// CloseWrite half-closes the outgoing direction only (peer reads drain to
// io.EOF); this end can still read.
func (e *End) CloseWrite() error { return e.out.CloseWrite() }

// NewDuplex returns two connected ends, each buffering up to capacity bytes
// per direction. It models a pair of anonymous pipes cross-connected between
// the application stubs and the sentinel.
func NewDuplex(capacity int) (*End, *End) {
	ab := NewPipe(capacity)
	ba := NewPipe(capacity)
	return &End{in: ba, out: ab}, &End{in: ab, out: ba}
}
