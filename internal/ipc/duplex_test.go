package ipc

import (
	"errors"
	"io"
	"testing"
)

func TestDuplexBothDirections(t *testing.T) {
	a, b := NewDuplex(32)
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("b read = (%q, %v)", buf, err)
	}
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("a read = (%q, %v)", buf, err)
	}
}

func TestDuplexCloseSignalsPeer(t *testing.T) {
	a, b := NewDuplex(32)
	a.Write([]byte("last"))
	a.Close()

	// Peer drains remaining bytes, then sees EOF.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "last" {
		t.Fatalf("drain = (%q, %v)", buf, err)
	}
	if _, err := b.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("peer read after close err = %v, want io.EOF", err)
	}
	// Peer writes fail because the closed end no longer reads.
	if _, err := b.Write([]byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Errorf("peer write after close err = %v, want ErrClosedPipe", err)
	}
}

func TestDuplexCloseWriteHalfClose(t *testing.T) {
	a, b := NewDuplex(32)
	a.Write([]byte("fin"))
	a.CloseWrite()

	buf := make([]byte, 3)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "fin" {
		t.Fatalf("drain = (%q, %v)", buf, err)
	}
	if _, err := b.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("read err = %v, want io.EOF", err)
	}
	// The reverse direction still works after the half close.
	if _, err := b.Write([]byte("ack")); err != nil {
		t.Fatalf("reverse write: %v", err)
	}
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "ack" {
		t.Fatalf("reverse read = (%q, %v)", buf, err)
	}
}

func TestRendezvousCallAndServe(t *testing.T) {
	r := NewRendezvous[int, int]()
	go func() {
		for {
			req, reply, err := r.Next()
			if err != nil {
				return
			}
			reply(req * 2)
		}
	}()
	for i := 0; i < 100; i++ {
		got, err := r.Call(i)
		if err != nil {
			t.Fatalf("Call(%d): %v", i, err)
		}
		if got != i*2 {
			t.Fatalf("Call(%d) = %d, want %d", i, got, i*2)
		}
	}
	r.Close()
}

func TestRendezvousCloseUnblocksCaller(t *testing.T) {
	r := NewRendezvous[int, int]()
	done := make(chan error, 1)
	go func() {
		_, err := r.Call(1) // no server; must unblock on Close
		done <- err
	}()
	r.Close()
	if err := <-done; !errors.Is(err, ErrRendezvousClosed) {
		t.Errorf("Call err = %v, want ErrRendezvousClosed", err)
	}
}

func TestRendezvousCloseUnblocksServer(t *testing.T) {
	r := NewRendezvous[int, int]()
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Next()
		done <- err
	}()
	r.Close()
	if err := <-done; !errors.Is(err, ErrRendezvousClosed) {
		t.Errorf("Next err = %v, want ErrRendezvousClosed", err)
	}
}

func TestRendezvousCloseIdempotent(t *testing.T) {
	r := NewRendezvous[int, int]()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelFilesWithControl(t *testing.T) {
	cf, err := NewChannelFiles(true)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.CtrlToChild == nil || cf.ChildCtrl == nil {
		t.Fatal("control pipe missing")
	}
	if got := len(cf.ChildFiles()); got != 3 {
		t.Fatalf("ChildFiles count = %d, want 3", got)
	}

	// Data flows parent -> child and child -> parent through real OS pipes.
	if _, err := cf.ToChild.Write([]byte("down")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(cf.ChildRead, buf); err != nil || string(buf) != "down" {
		t.Fatalf("child read = (%q, %v)", buf, err)
	}
	if _, err := cf.ChildWrite.Write([]byte("up!!")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(cf.FromChild, buf); err != nil || string(buf) != "up!!" {
		t.Fatalf("parent read = (%q, %v)", buf, err)
	}
}

func TestChannelFilesWithoutControl(t *testing.T) {
	cf, err := NewChannelFiles(false)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.CtrlToChild != nil || cf.ChildCtrl != nil {
		t.Error("unexpected control pipe")
	}
	if got := len(cf.ChildFiles()); got != 2 {
		t.Errorf("ChildFiles count = %d, want 2", got)
	}
}

func TestChannelFilesCloseChildEnds(t *testing.T) {
	cf, err := NewChannelFiles(true)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	cf.CloseChildEnds()
	if cf.ChildRead != nil || cf.ChildWrite != nil || cf.ChildCtrl != nil {
		t.Error("child ends not cleared")
	}
	// Parent ends must still be open: write end of ToChild reports EPIPE-like
	// errors only on write, so verify FromChild read sees EOF (child write end
	// closed), proving it was still open to observe that.
	buf := make([]byte, 1)
	if _, err := cf.FromChild.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("FromChild read err = %v, want io.EOF", err)
	}
}
