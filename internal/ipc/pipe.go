// Package ipc provides the interprocess and intraprocess plumbing the
// active-file strategies are built on: blocking in-memory byte pipes (the
// user-level analogue of the anonymous pipes the paper's process strategies
// create), duplex connections, a synchronous rendezvous (the analogue of the
// thread strategy's shared-memory buffer plus event signalling), and helpers
// for handing OS pipes to sentinel subprocesses.
package ipc

import (
	"errors"
	"io"
	"sync"
)

// ErrClosedPipe is returned for writes to a pipe whose read end is gone and
// for operations on fully closed pipes.
var ErrClosedPipe = errors.New("ipc: read/write on closed pipe")

// DefaultCapacity is the pipe buffer size used when none is specified. It
// matches the 64 KiB default of NT anonymous pipes.
const DefaultCapacity = 64 * 1024

// Pipe is a unidirectional, blocking, fixed-capacity byte stream. A Write
// blocks while the buffer is full; a Read blocks while it is empty. Closing
// the write end drains remaining bytes to readers and then yields io.EOF;
// closing the read end makes writes fail with ErrClosedPipe.
//
// Pipe is safe for concurrent use by one reader and one writer (and tolerates
// multiple of each; bytes are then interleaved at call granularity).
type Pipe struct {
	mu          sync.Mutex
	cond        sync.Cond
	buf         []byte
	start, size int
	readClosed  bool
	writeClosed bool
}

// NewPipe returns a pipe buffering up to capacity bytes; a non-positive
// capacity selects DefaultCapacity.
func NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	p := &Pipe{buf: make([]byte, capacity)}
	p.cond.L = &p.mu
	return p
}

// Read fills p with buffered bytes, blocking until at least one byte is
// available or the write end closes.
func (pp *Pipe) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for pp.size == 0 {
		if pp.readClosed {
			return 0, ErrClosedPipe
		}
		if pp.writeClosed {
			return 0, io.EOF
		}
		pp.cond.Wait()
	}
	if pp.readClosed {
		return 0, ErrClosedPipe
	}
	n := len(p)
	if n > pp.size {
		n = pp.size
	}
	for i := 0; i < n; i++ {
		p[i] = pp.buf[(pp.start+i)%len(pp.buf)]
	}
	pp.start = (pp.start + n) % len(pp.buf)
	pp.size -= n
	pp.cond.Broadcast()
	return n, nil
}

// Write copies p into the pipe, blocking while the buffer is full. It returns
// the number of bytes written and ErrClosedPipe if the read end closes before
// all of p is accepted.
func (pp *Pipe) Write(p []byte) (int, error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	written := 0
	for written < len(p) {
		if pp.readClosed || pp.writeClosed {
			return written, ErrClosedPipe
		}
		free := len(pp.buf) - pp.size
		if free == 0 {
			pp.cond.Wait()
			continue
		}
		n := len(p) - written
		if n > free {
			n = free
		}
		end := (pp.start + pp.size) % len(pp.buf)
		for i := 0; i < n; i++ {
			pp.buf[(end+i)%len(pp.buf)] = p[written+i]
		}
		pp.size += n
		written += n
		pp.cond.Broadcast()
	}
	return written, nil
}

// CloseWrite closes the write end: pending data remains readable, after which
// readers see io.EOF. It is idempotent.
func (pp *Pipe) CloseWrite() error {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.writeClosed = true
	pp.cond.Broadcast()
	return nil
}

// CloseRead closes the read end: buffered data is discarded and writers fail
// with ErrClosedPipe. It is idempotent.
func (pp *Pipe) CloseRead() error {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.readClosed = true
	pp.size = 0
	pp.cond.Broadcast()
	return nil
}

// Close closes both ends.
func (pp *Pipe) Close() error {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.readClosed = true
	pp.writeClosed = true
	pp.size = 0
	pp.cond.Broadcast()
	return nil
}

// Buffered returns the number of bytes currently queued in the pipe.
func (pp *Pipe) Buffered() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.size
}
