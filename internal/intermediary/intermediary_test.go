package intermediary_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/intermediary"
	"repro/internal/program"
	"repro/internal/remote"
	"repro/internal/vfs"
)

func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

func TestStageAndCollect(t *testing.T) {
	src := remote.NewMemSource([]byte("remote content"))
	path := filepath.Join(t.TempDir(), "staged.txt")
	if err := intermediary.Stage(src, path); err != nil {
		t.Fatalf("Stage: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "remote content" {
		t.Fatalf("staged = (%q, %v)", got, err)
	}

	if err := os.WriteFile(path, []byte("edited locally"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := intermediary.Collect(path, src); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if string(src.Bytes()) != "edited locally" {
		t.Errorf("source after Collect = %q", src.Bytes())
	}
}

// TestDecouplingProblem reproduces the paper's §1 critique as executable
// fact: with an intermediary, "an end application that searches through a
// collection of distributed databases cannot see changes in these
// databases"; with an active file it can.
func TestDecouplingProblem(t *testing.T) {
	dir := t.TempDir()

	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("db", []byte("version-1"))

	// --- Intermediary approach: stage, then the source changes.
	staged := filepath.Join(dir, "staged.txt")
	client, err := remote.Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	if err := intermediary.Stage(client, staged); err != nil {
		t.Fatal(err)
	}
	client.Close()

	srv.Put("db", []byte("version-2")) // the source moves on

	stale, err := os.ReadFile(staged)
	if err != nil {
		t.Fatal(err)
	}
	if string(stale) != "version-1" {
		t.Fatalf("staged copy = %q", stale)
	}
	// The legacy application reads version-1 forever: decoupled.

	// --- Active file approach: the sentinel talks to the live source.
	afPath := filepath.Join(dir, "db.af")
	if err := vfs.Create(afPath, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "db"},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := core.Open(afPath, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	live, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(live) != "version-2" {
		t.Errorf("active file read = %q, want the live version-2", live)
	}

	// And mid-session updates are visible too.
	srv.Put("db", []byte("version-3"))
	buf := make([]byte, 9)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "version-3" {
		t.Errorf("mid-session read = %q, want version-3", buf)
	}
}

// TestWritePropagationGap shows the reverse decoupling: application writes
// through an intermediary only reach the source at the explicit Collect,
// while an active file propagates them as part of normal file use.
func TestWritePropagationGap(t *testing.T) {
	dir := t.TempDir()
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("out", nil)

	// Intermediary: a local edit is invisible remotely until Collect runs.
	staged := filepath.Join(dir, "out.txt")
	client, err := remote.Dial(addr, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := intermediary.Stage(client, staged); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(staged, []byte("result"), 0o644)
	if obj, _ := srv.Get("out"); len(obj) != 0 {
		t.Fatalf("remote saw the write without Collect: %q", obj)
	}

	// Active file: the same write goes through the sentinel to the source.
	afPath := filepath.Join(dir, "out.af")
	if err := vfs.Create(afPath, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "out"},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := core.Open(afPath, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("result")); err != nil {
		t.Fatal(err)
	}
	obj, _ := srv.Get("out")
	if string(obj) != "result" {
		t.Errorf("remote after active write = %q", obj)
	}
}

func TestStageErrors(t *testing.T) {
	flaky := remote.NewFlakySource(remote.NewMemSource([]byte("x")))
	flaky.Trip(os.ErrDeadlineExceeded)
	if err := intermediary.Stage(flaky, filepath.Join(t.TempDir(), "s.txt")); err == nil {
		t.Error("Stage with failing source succeeded")
	}
	if err := intermediary.Stage(remote.NewMemSource(nil), "/nonexistent-dir/x.txt"); err == nil {
		t.Error("Stage into unwritable path succeeded")
	}
}

func TestCollectErrors(t *testing.T) {
	if err := intermediary.Collect(filepath.Join(t.TempDir(), "missing.txt"), remote.NewMemSource(nil)); err == nil {
		t.Error("Collect of missing staging file succeeded")
	}
}
