// Package intermediary implements the approach the paper's introduction
// positions active files against: "the ad hoc use of intermediary
// applications that isolate the end application from the data sources.
// These intermediaries perform necessary operations ... before aggregating
// the data into a passive file that can be handed down to legacy
// applications."
//
// It exists as a comparison baseline. Its disadvantage — demonstrated by the
// tests beside it — is exactly the paper's: "the data collected by the
// intermediary is completely decoupled from both the original sources of the
// information and the end application. Consequently, it is unable to track
// changes in the original sources or be controlled by the end application."
package intermediary

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/remote"
)

// Stage copies the remote object's current contents into the passive file
// at path — the intermediary's one-shot aggregation step. The legacy
// application is then run against path.
func Stage(src remote.Source, path string) error {
	size, err := src.Size()
	if err != nil {
		return fmt.Errorf("intermediary: source size: %w", err)
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("intermediary: create staging file: %w", err)
	}
	defer out.Close()

	buf := make([]byte, 64*1024)
	var off int64
	for off < size {
		n := len(buf)
		if int64(n) > size-off {
			n = int(size - off)
		}
		rn, rerr := src.ReadAt(buf[:n], off)
		if rn > 0 {
			if _, werr := out.Write(buf[:rn]); werr != nil {
				return fmt.Errorf("intermediary: write staging file: %w", werr)
			}
			off += int64(rn)
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return fmt.Errorf("intermediary: read source: %w", rerr)
		}
		if rn == 0 {
			break
		}
	}
	return out.Sync()
}

// Collect pushes the passive file's contents back to the remote object —
// the intermediary's best effort at propagating results after the legacy
// application exits. Anything the application expects to happen between
// Stage and Collect (tracking source changes, influencing the aggregation)
// cannot.
func Collect(path string, dst remote.Source) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("intermediary: read staging file: %w", err)
	}
	if err := dst.Truncate(int64(len(data))); err != nil {
		return fmt.Errorf("intermediary: truncate source: %w", err)
	}
	if _, err := dst.WriteAt(data, 0); err != nil {
		return fmt.Errorf("intermediary: write source: %w", err)
	}
	return nil
}
