package fleet

import (
	"fmt"
	"testing"
)

func TestMapOwners(t *testing.T) {
	addrs := []string{"h1:1", "h2:1", "h3:1", "h4:1"}
	m, err := NewMap(3, addrs, 2, []string{"hot/*"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", m.Epoch())
	}

	cold := m.Owners("cold/file")
	if len(cold) != 1 {
		t.Fatalf("cold file owners = %v, want exactly one", cold)
	}
	hot := m.Owners("hot/file")
	if len(hot) != 2 {
		t.Fatalf("hot file owners = %v, want two", hot)
	}
	if hot[0] == hot[1] {
		t.Fatalf("hot replicas not distinct: %v", hot)
	}
	if m.Primary("hot/file") != hot[0] {
		t.Fatalf("Primary disagrees with Owners[0]")
	}

	// Placement is deterministic.
	for i := 0; i < 10; i++ {
		again := m.Owners("hot/file")
		if len(again) != 2 || again[0] != hot[0] || again[1] != hot[1] {
			t.Fatalf("owners changed across calls: %v vs %v", again, hot)
		}
	}
}

func TestMapHotGlobs(t *testing.T) {
	m, err := NewMap(1, []string{"a:1", "b:1"}, 2, []string{"hot/*", "exact"})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{
		"hot/x":    true,
		"exact":    true,
		"cold/x":   false,
		"hot/x/y":  false, // path.Match: * does not cross /
		"exactish": false,
	} {
		if got := m.Hot(name); got != want {
			t.Errorf("Hot(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestMapReplicasCappedAtFleetSize(t *testing.T) {
	m, err := NewMap(1, []string{"a:1", "b:1"}, 5, []string{"*"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Owners("x")); got != 2 {
		t.Fatalf("owners = %d, want capped at 2", got)
	}
}

func TestMapBalance(t *testing.T) {
	addrs := []string{"h1:1", "h2:1", "h3:1", "h4:1"}
	m, err := NewMap(1, addrs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const names = 4000
	for i := 0; i < names; i++ {
		counts[m.Primary(fmt.Sprintf("obj/%d", i))]++
	}
	for _, a := range addrs {
		if counts[a] < names/4/3 {
			t.Fatalf("shard %s got %d of %d names — ring badly unbalanced: %v", a, counts[a], names, counts)
		}
	}
}

func TestMapStabilityUnderGrowth(t *testing.T) {
	// Consistent hashing: adding a shard must keep most placements.
	m4, _ := NewMap(1, []string{"h1:1", "h2:1", "h3:1", "h4:1"}, 1, nil)
	m5, _ := NewMap(1, []string{"h1:1", "h2:1", "h3:1", "h4:1", "h5:1"}, 1, nil)
	moved := 0
	const names = 2000
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("obj/%d", i)
		if m4.Primary(name) != m5.Primary(name) {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow generous slack for vnode variance.
	if moved > names*35/100 {
		t.Fatalf("%d/%d names moved when adding one shard — not consistent hashing", moved, names)
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m, err := NewMap(7, []string{"10.0.0.2:9000", "10.0.0.1:9000", "10.0.0.3:9001"}, 2, []string{"hot/*", "idx-?"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Epoch() != m.Epoch() || back.Replicas() != m.Replicas() {
		t.Fatalf("epoch/replicas changed: %d/%d vs %d/%d", back.Epoch(), back.Replicas(), m.Epoch(), m.Replicas())
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("hot/%d", i)
		a, b := m.Owners(name), back.Owners(name)
		if len(a) != len(b) {
			t.Fatalf("owner count differs for %q", name)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("placement differs after roundtrip for %q: %v vs %v", name, a, b)
			}
		}
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := NewMap(1, nil, 1, nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewMap(1, []string{"a:1", "a:1"}, 1, nil); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := NewMap(1, []string{"a:1"}, 0, nil); err == nil {
		t.Error("zero replication accepted")
	}
	if _, err := NewMap(1, []string{"a:1"}, 1, []string{"[bad"}); err == nil {
		t.Error("malformed glob accepted")
	}
	for _, doc := range []string{
		"",
		"garbage",
		"afmap/v1\nepoch x\nreplicas 1\naddr a:1\n",
		"afmap/v1\nreplicas 1\naddr a:1\n",
		"afmap/v1\nepoch 1\nreplicas 1\n",
		"afmap/v1\nepoch 1\nreplicas 1\nwhat now\naddr a:1\n",
	} {
		if _, err := DecodeMap([]byte(doc)); err == nil {
			t.Errorf("DecodeMap(%q) accepted", doc)
		}
	}
}
