package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/faultinject"
	"repro/internal/remote"
	"repro/internal/wire"
)

// startShards boots n FileServers on ephemeral ports, builds one shard map
// over them (epoch 1), and installs fleet membership on every server. The
// returned index maps each address back to its server for store inspection.
func startShards(t *testing.T, n, replicas int, hot []string) (*Map, map[string]*remote.FileServer) {
	t.Helper()
	addrs := make([]string, n)
	byAddr := make(map[string]*remote.FileServer, n)
	for i := 0; i < n; i++ {
		srv := remote.NewFileServer()
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("shard %d start: %v", i, err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
		byAddr[addr] = srv
	}
	m, err := NewMap(1, addrs, replicas, hot)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	for addr, srv := range byAddr {
		srv.SetFleet(m, addr)
	}
	return m, byAddr
}

// openObj opens name through fl and returns the concrete fleet object.
func openObj(t *testing.T, fl *Fleet, name string) *Object {
	t.Helper()
	obj, err := fl.Open(name)
	if err != nil {
		t.Fatalf("open %q: %v", name, err)
	}
	return obj.(*Object)
}

// fastDial keeps failover snappy in tests: quick backoff, bounded ops.
var fastDial = remote.DialOptions{
	OpTimeout:   2 * time.Second,
	BackoffBase: time.Millisecond,
	BackoffMax:  5 * time.Millisecond,
	DialTimeout: 250 * time.Millisecond,
}

// TestFleetRoutingWriteReplication: a write through the fleet lands on every
// owner of a hot file (synchronously, before the write returns) and only on
// the primary of a cold one.
func TestFleetRoutingWriteReplication(t *testing.T) {
	m, byAddr := startShards(t, 3, 2, []string{"hot/*"})
	fl := New(m, Options{Dial: fastDial})

	hotObj, err := fl.Open("hot/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer hotObj.Close()
	payload := []byte("replicated before the write returned")
	if _, err := hotObj.WriteAt(payload, 0); err != nil {
		t.Fatalf("hot write: %v", err)
	}

	hotOwners := m.Owners("hot/obj")
	if len(hotOwners) != 2 {
		t.Fatalf("hot owners = %v, want 2", hotOwners)
	}
	for _, addr := range hotOwners {
		got, ok := byAddr[addr].Get("hot/obj")
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("owner %s store = (%q, %v), want the written payload", addr, got, ok)
		}
	}
	for addr, srv := range byAddr {
		if addr == hotOwners[0] || addr == hotOwners[1] {
			continue
		}
		if _, ok := srv.Get("hot/obj"); ok {
			t.Fatalf("non-owner %s has a copy of hot/obj", addr)
		}
	}
	if fwd := byAddr[hotOwners[0]].ApplyForwards(); fwd == 0 {
		t.Fatal("primary forwarded no applies despite a replicated write")
	}

	coldObj, err := fl.Open("cold/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer coldObj.Close()
	if _, err := coldObj.WriteAt([]byte("single copy"), 0); err != nil {
		t.Fatalf("cold write: %v", err)
	}
	coldOwners := m.Owners("cold/obj")
	if len(coldOwners) != 1 {
		t.Fatalf("cold owners = %v, want 1", coldOwners)
	}
	for addr, srv := range byAddr {
		_, ok := srv.Get("cold/obj")
		if want := addr == coldOwners[0]; ok != want {
			t.Fatalf("shard %s has cold/obj = %v, want %v", addr, ok, want)
		}
	}

	// Reads through a fresh fleet handle see the replicated bytes whichever
	// replica they land on.
	fl2 := New(m, Options{Dial: fastDial})
	for i := 0; i < 8; i++ {
		obj, err := fl2.Open("hot/obj")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(payload))
		if _, err := obj.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, payload) {
			t.Fatalf("fanned-out read = (%q, %v)", buf, err)
		}
		obj.Close()
	}
}

// TestFleetWriteRefusedOnNonPrimary: a client that dials a replica directly
// cannot write through it — placement is enforced server-side, not by client
// etiquette.
func TestFleetWriteRefusedOnNonPrimary(t *testing.T) {
	m, _ := startShards(t, 3, 2, []string{"hot/*"})
	owners := m.Owners("hot/obj")

	c, err := remote.DialWith(owners[1], "hot/obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, werr := c.WriteAt([]byte("sneaky"), 0)
	var re *wire.RemoteError
	if !errors.As(werr, &re) {
		t.Fatalf("write via replica = %v, want a remote refusal", werr)
	}

	// The same write through the primary is accepted.
	p, err := remote.DialWith(owners[0], "hot/obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.WriteAt([]byte("proper"), 0); err != nil {
		t.Fatalf("write via primary: %v", err)
	}
}

// TestFleetHotReadFanout: replicated reads spread across both owners instead
// of pinning to one.
func TestFleetHotReadFanout(t *testing.T) {
	m, byAddr := startShards(t, 2, 2, []string{"*"})
	fl := New(m, Options{Dial: fastDial})
	obj := openObj(t, fl, "obj")
	defer obj.Close()
	if _, err := obj.WriteAt([]byte("fan this out"), 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var readErrs atomic.Uint64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 12)
			for i := 0; i < 50; i++ {
				if _, err := obj.ReadAt(buf, 0); err != nil {
					readErrs.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d read errors during fan-out", n)
	}

	// Every shard granted no lease (caching off) but each should have served
	// some of the 400 reads; with power-of-two-choices the odds of total
	// starvation are negligible.
	for addr, srv := range byAddr {
		data, ok := srv.Get("obj")
		if !ok || string(data) != "fan this out" {
			t.Fatalf("shard %s lost the object: (%q, %v)", addr, data, ok)
		}
	}
	if obj.Failovers() != 0 {
		t.Fatalf("failovers = %d on a healthy fleet", obj.Failovers())
	}
}

// TestLeaseInvalidationNoStaleRead is the acceptance test for lease-based
// client caching: a cached reader NEVER observes bytes older than the last
// committed write, because the conflicting write revokes the reader's lease
// (bumping its cache epoch) before it commits — on the primary and, for
// replicated files, on every replica the reader might have leased from.
func TestLeaseInvalidationNoStaleRead(t *testing.T) {
	m, _ := startShards(t, 3, 2, []string{"hot/*"})

	reader := New(m, Options{Dial: fastDial, CacheBlocks: 8, CacheBlockSize: 64})
	robj := openObj(t, reader, "hot/obj")
	defer robj.Close()

	writer := New(m, Options{Dial: fastDial})
	wobj, err := writer.Open("hot/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer wobj.Close()

	const rounds = 20
	val := func(i int) []byte {
		return []byte(fmt.Sprintf("version %03d padded to one cache block boundary ....", i))
	}
	if _, err := wobj.WriteAt(val(0), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(val(0)))
	for i := 1; i <= rounds; i++ {
		// Warm the cache: repeated reads of the current version must hit.
		for j := 0; j < 3; j++ {
			if _, err := robj.ReadAt(buf, 0); err != nil {
				t.Fatalf("round %d warm read: %v", i, err)
			}
			if want := val(i - 1); !bytes.Equal(buf, want) {
				t.Fatalf("round %d warm read = %q, want %q", i, buf, want)
			}
		}
		// Conflicting write: by the time WriteAt returns, every lease is
		// revoked and every replica has applied.
		if _, err := wobj.WriteAt(val(i), 0); err != nil {
			t.Fatalf("round %d write: %v", i, err)
		}
		// The very next cached read must see the new version — no grace
		// period, no eventual consistency.
		if _, err := robj.ReadAt(buf, 0); err != nil {
			t.Fatalf("round %d read after write: %v", i, err)
		}
		if want := val(i); !bytes.Equal(buf, want) {
			t.Fatalf("STALE READ after round %d write: got %q, want %q", i, buf, want)
		}
	}

	stats, ok := robj.CacheStats()
	if !ok {
		t.Fatal("caching object reports no cache")
	}
	if stats.Hits == 0 {
		t.Fatalf("cache never hit (stats %+v) — the test exercised no cached path", stats)
	}
	if stats.Invalidations == 0 {
		t.Fatalf("cache never invalidated (stats %+v) — revokes are not reaching the cache", stats)
	}
}

// TestLeaseRevokeAcrossReplicaLease: the reader leases from a NON-primary
// replica explicitly; a write through the primary must still revoke it
// (via the replica's own revoke round during OpApply) before committing.
func TestLeaseRevokeAcrossReplicaLease(t *testing.T) {
	m, _ := startShards(t, 2, 2, []string{"*"})
	owners := m.Owners("obj")

	// Seed through the primary.
	p, err := remote.DialWith(owners[0], "obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.WriteAt([]byte("v1"), 0); err != nil {
		t.Fatal(err)
	}

	// Lease on the replica.
	r, err := remote.DialWith(owners[1], "obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var revoked atomic.Uint64
	r.SetRevokeHandler(func(_ string, epoch, _ uint64) { revoked.Store(epoch) })
	if _, err := r.Lease(); err != nil {
		t.Fatalf("lease on replica: %v", err)
	}

	if _, err := p.WriteAt([]byte("v2"), 0); err != nil {
		t.Fatalf("write with an outstanding replica lease: %v", err)
	}
	// The write's return means the replica applied, which means its revoke
	// round finished first — the push must already be here.
	deadline := time.Now().Add(time.Second)
	for revoked.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if revoked.Load() == 0 {
		t.Fatal("replica lease never revoked by a primary write")
	}
	buf := make([]byte, 2)
	if _, err := r.ReadAt(buf, 0); err != nil || string(buf) != "v2" {
		t.Fatalf("replica read after revoke = (%q, %v)", buf, err)
	}
}

// TestFleetRefusalDoesNotFailover: a typed admission refusal from a shard is
// policy, not a fault — the fleet client must surface it immediately instead
// of hammering the remaining replicas with the refused work.
func TestFleetRefusalDoesNotFailover(t *testing.T) {
	m, byAddr := startShards(t, 2, 2, []string{"*"})
	for _, srv := range byAddr {
		srv.SetRegistry(daemon.NewRegistry(daemon.Quotas{}))
		srv.Registry().Drain(0)
	}
	// Huge backoff: any retry or failover attempt shows up as a stall.
	fl := New(m, Options{Dial: remote.DialOptions{
		MaxRetries:  5,
		BackoffBase: 500 * time.Millisecond,
		BackoffMax:  2 * time.Second,
	}})
	obj := openObj(t, fl, "obj")
	defer obj.Close()

	start := time.Now()
	_, err := obj.ReadAt(make([]byte, 8), 0)
	waited := time.Since(start)
	if !errors.Is(err, wire.ErrShuttingDown) {
		t.Fatalf("read against draining fleet = %v, want wire.ErrShuttingDown", err)
	}
	if waited >= 400*time.Millisecond {
		t.Fatalf("refusal took %v — it went through retry/failover", waited)
	}
	if obj.Failovers() != 0 {
		t.Fatalf("refusal triggered %d failovers", obj.Failovers())
	}
}

// TestFleetShardKillFailoverChaos SIGKILLs one owner of a replicated file
// while a pipeline of readers is running flat out. Every read must recover
// via the surviving replica — zero unrecovered errors.
func TestFleetShardKillFailoverChaos(t *testing.T) {
	faultinject.LeakCheck(t)
	m, byAddr := startShards(t, 3, 2, []string{"hot/*"})
	fl := New(m, Options{Dial: fastDial})

	obj, err := fl.Open("hot/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	payload := bytes.Repeat([]byte("failover-chaos-"), 64)
	if _, err := obj.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		reads   atomic.Uint64
		badErrs atomic.Uint64
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(payload))
			for !stop.Load() {
				n, err := obj.ReadAt(buf, 0)
				if err != nil || n != len(payload) || !bytes.Equal(buf, payload) {
					badErrs.Add(1)
					t.Errorf("read under chaos = (%d, %v)", n, err)
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Let the pipeline reach steady state, then kill one owner abruptly —
	// no drain, no goodbye, connections torn mid-exchange.
	for reads.Load() < 100 {
		time.Sleep(time.Millisecond)
	}
	owners := m.Owners("hot/obj")
	byAddr[owners[1]].Kill()

	// The survivors must keep serving; require substantial post-kill
	// progress before stopping.
	target := reads.Load() + 500
	deadline := time.Now().Add(10 * time.Second)
	for reads.Load() < target && badErrs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if badErrs.Load() != 0 {
		t.Fatalf("%d unrecovered read errors after shard kill", badErrs.Load())
	}
	if reads.Load() < target {
		t.Fatalf("reads stalled after shard kill: %d done, wanted %d", reads.Load(), target)
	}
}

// restartShard boots a replacement FileServer on addr (a shard killed
// earlier), seeds it with contents, and installs fleet membership — a shard
// process restart: same address, same data, but FRESH in-memory lease state,
// so its lease epochs restart from scratch.
func restartShard(t *testing.T, m *Map, addr string, contents map[string][]byte) *remote.FileServer {
	t.Helper()
	srv := remote.NewFileServer()
	for name, data := range contents {
		srv.Put(name, data)
	}
	srv.SetFleet(m, addr)
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err = srv.Start(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart shard %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond) // the killed listener's port may linger briefly
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestFleetFailoverEpochRegimeReset: lease epochs are independent per-server
// counters, so after failing over from a replica with a HIGH epoch to an
// owner with a LOW one (here: a restarted primary, whose in-memory lease
// table reset), the new grants and revokes carry smaller numbers than the
// cache's tags. The cache must be rebased onto the new owner's epoch regime
// at failover — with only the monotonic SetEpoch, every later revoke would
// be a no-op and a committed write would never invalidate the cached blocks.
func TestFleetFailoverEpochRegimeReset(t *testing.T) {
	faultinject.LeakCheck(t)
	m, byAddr := startShards(t, 2, 2, []string{"*"})
	owners := m.Owners("obj")

	// Seed several write rounds so both owners' lease epochs climb well above
	// what the restarted primary will restart at.
	w, err := remote.DialWith(owners[0], "obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.WriteAt([]byte("v1 — the bytes every owner holds"), 0); err != nil {
			t.Fatalf("seed write %d: %v", i, err)
		}
	}
	w.Close()
	v1, _ := byAddr[owners[0]].Get("obj")

	// A cached reader leasing from the REPLICA (owner index 1), whose epoch
	// is now high; its cached blocks are tagged with that epoch.
	fl := New(m, Options{Dial: fastDial, CacheBlocks: 8, CacheBlockSize: 64})
	robj := openObj(t, fl, "obj")
	defer robj.Close()
	robj.ledIdx = 1 // steer the first lease to the replica
	buf := make([]byte, len(v1))
	if _, err := robj.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, v1) {
		t.Fatalf("warm read = (%q, %v), want %q", buf, err, v1)
	}
	robj.mu.Lock()
	leasedReplica := robj.leased && robj.ledIdx == 1
	robj.mu.Unlock()
	if !leasedReplica {
		t.Fatal("test setup: reader did not lease from the replica")
	}

	// The primary crash-restarts: same address and data, but its lease
	// epochs restart far BELOW the replica's. Then the replica dies, forcing
	// the reader to fail over to the low-epoch primary.
	byAddr[owners[0]].Kill()
	restarted := restartShard(t, m, owners[0], map[string][]byte{"obj": v1})
	byAddr[owners[1]].Kill()

	// A committed write through the restarted primary. Its replica is dead,
	// so the write reports failure — yet it HAS applied locally (documented
	// partial-application semantics) and its revoke round ran, carrying a
	// small epoch number.
	v2 := []byte("v2: committed right after failover")
	if len(v2) != len(v1) {
		t.Fatalf("test wants equal-length versions: %d vs %d", len(v2), len(v1))
	}
	w2, err := remote.DialWith(owners[0], "obj", fastDial)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Fail over first, so the reader holds a low-epoch lease on the primary
	// with blocks that were tagged under the replica's high-epoch regime —
	// the dangerous configuration. Transport-failure detection is
	// asynchronous, so nudge with reads until the lease has moved.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := robj.ReadAt(buf, 0); err == nil && !bytes.Equal(buf, v1) {
			t.Fatalf("read during failover = %q, want %q", buf, v1)
		}
		robj.mu.Lock()
		onPrimary := robj.leased && robj.ledIdx == 0
		robj.mu.Unlock()
		if onPrimary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reader never re-leased from the restarted primary")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, werr := w2.WriteAt(v2, 0); werr == nil {
		t.Fatal("write with a dead replica reported success, want a replication error")
	}
	if got, _ := restarted.Get("obj"); !bytes.Equal(got, v2) {
		t.Fatalf("primary store after failed-replication write = %q, want %q applied locally", got, v2)
	}

	// The reader holds a live lease on the primary, so the write's revoke
	// round completed against it before the bytes applied: the VERY NEXT
	// cached read must observe the committed write. Without the regime
	// rebase the revoke's small epoch is a no-op on the cache and the reader
	// serves v1 forever.
	if n, rerr := robj.ReadAt(buf, 0); rerr != nil || n != len(v2) {
		t.Fatalf("read after write = (%d, %v)", n, rerr)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatalf("STALE READ after failover + write: got %q, want %q", buf, v2)
	}
}

// TestFleetCachedHitPathDetectsLeaseLoss: a fully cached working set issues
// no fills, so without a liveness check on the HIT path a reader whose
// leased connection died would keep serving its cache indefinitely — the
// server has forgotten the lease and commits writes without revoking it.
// Killing the only shard and restarting it with different bytes (a stand-in
// for "writes happened while we were gone") must be observed by the very
// next cached read.
func TestFleetCachedHitPathDetectsLeaseLoss(t *testing.T) {
	faultinject.LeakCheck(t)
	m, byAddr := startShards(t, 1, 1, nil)
	addr := m.Owners("obj")[0]
	old := []byte("old bytes, cached and leased")
	byAddr[addr].Put("obj", old)

	fl := New(m, Options{Dial: fastDial, CacheBlocks: 8, CacheBlockSize: 64})
	robj := openObj(t, fl, "obj")
	defer robj.Close()
	buf := make([]byte, len(old))
	for i := 0; i < 3; i++ { // warm until reads are pure cache hits
		if _, err := robj.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, old) {
			t.Fatalf("warm read %d = (%q, %v)", i, buf, err)
		}
	}
	stats, _ := robj.CacheStats()
	if stats.Hits == 0 {
		t.Fatal("test setup: working set never hit the cache")
	}

	// The shard dies and comes back with new bytes and a fresh lease table;
	// the reader's lease died with the old process.
	byAddr[addr].Kill()
	newer := []byte("NEW bytes the reader must see")
	restartShard(t, m, addr, map[string][]byte{"obj": newer})

	// Wait until the client's transport has noticed the dead session — the
	// signal the hit path consults — then read. The read must renew the
	// lease and refill rather than trust the orphaned cache.
	robj.mu.Lock()
	c, session := robj.clients[robj.ledIdx], robj.leaseSession
	robj.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for c.SessionLive(session) {
		if time.Now().After(deadline) {
			t.Fatal("dead session still reports live")
		}
		time.Sleep(time.Millisecond)
	}
	got := make([]byte, len(newer))
	deadline = time.Now().Add(5 * time.Second)
	for {
		n, rerr := robj.ReadAt(got, 0)
		if rerr == nil && n == len(newer) {
			if bytes.Equal(got, newer) {
				break
			}
			t.Fatalf("STALE READ from orphaned cache: got %q, want %q", got, newer)
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never recovered after restart: (%d, %v)", n, rerr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetCachedReaderSurvivesLeaseServerKill: killing the shard a cached
// reader leased from must not wedge or poison it — the reader re-leases from
// the surviving replica and keeps answering correctly.
func TestFleetCachedReaderSurvivesLeaseServerKill(t *testing.T) {
	faultinject.LeakCheck(t)
	m, byAddr := startShards(t, 2, 2, []string{"*"})
	fl := New(m, Options{Dial: fastDial, CacheBlocks: 8, CacheBlockSize: 64})

	obj, err := fl.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	payload := []byte("cached across a lease-server funeral")
	if _, err := obj.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := obj.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("pre-kill read = (%q, %v)", buf, err)
	}

	// Kill whichever shard granted the lease. We don't know which owner that
	// was, so kill one and make sure reads still work, covering both cases
	// (lease holder dead → re-lease elsewhere; other shard dead → no-op).
	owners := m.Owners("obj")
	byAddr[owners[1]].Kill()

	deadline := time.Now().Add(5 * time.Second)
	for {
		n, rerr := obj.ReadAt(buf, 0)
		if rerr == nil && n == len(payload) && bytes.Equal(buf, payload) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never recovered after lease-server kill: (%d, %v)", n, rerr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
