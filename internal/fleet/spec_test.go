package fleet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/backend/conformance"
)

// specFactory provisions fresh, uniquely named objects through a backend
// opened from a fleet spec string, seeding each with the requested content.
func specFactory(t *testing.T, spec, prefix string) conformance.Factory {
	t.Helper()
	b, err := backend.Open(spec)
	if err != nil {
		t.Fatalf("open %q: %v", spec, err)
	}
	t.Cleanup(func() { b.Close() })
	serial := 0
	return func(t *testing.T, content []byte) conformance.Object {
		serial++
		obj, err := b.Open(fmt.Sprintf("%s/obj-%d", prefix, serial))
		if err != nil {
			t.Fatalf("open object: %v", err)
		}
		t.Cleanup(func() { obj.Close() })
		if err := obj.Truncate(0); err != nil {
			t.Fatalf("seed truncate: %v", err)
		}
		if len(content) > 0 {
			if _, err := obj.WriteAt(content, 0); err != nil {
				t.Fatalf("seed write: %v", err)
			}
		}
		return obj
	}
}

// TestConformanceFleetSpec pins the full read-write contract on a 3-shard
// fleet reached through the spec registry ("fleet:addr,addr,addr") — routed,
// unreplicated, uncached.
func TestConformanceFleetSpec(t *testing.T) {
	m, _ := startShards(t, 3, 1, nil)
	spec := "fleet:" + strings.Join(m.Addrs(), ",")
	conformance.RunRW(t, specFactory(t, spec, "conf"))
}

// TestConformanceFleetSpecCachedReplicated pins the same contract with every
// fleet feature on at once: hot-file replication across 2 shards plus
// lease-protected client caching with a small block size, so conformance
// traffic crosses block boundaries, replica fan-out, and revoke rounds.
func TestConformanceFleetSpecCachedReplicated(t *testing.T) {
	m, _ := startShards(t, 3, 2, []string{"hot/*"})
	spec := fmt.Sprintf("fleet(cache=16,bsize=32,replicas=2,hot=hot/*):%s",
		strings.Join(m.Addrs(), ","))
	conformance.RunRW(t, specFactory(t, spec, "hot"))
}
