// Package fleet turns a set of independent FileServers into one sharded
// store. A Map places each object name on a shard with a consistent-hash
// ring (so adding a shard moves ~1/N of the keyspace, not all of it) and
// designates HOT files — matched by glob patterns — for replication across
// R shards. Maps carry an epoch number so every participant can tell a stale
// map from a current one; the Source in this package routes client traffic
// with a Map, and remote.FileServer serves and enforces one.
package fleet

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"strconv"
	"strings"
)

// vnodesPerAddr is how many virtual nodes each address contributes to the
// ring. More vnodes smooth the keyspace split between shards; 64 keeps the
// max/min shard load ratio under ~1.3 for small fleets while the ring stays
// a few KiB.
const vnodesPerAddr = 64

// Map is an immutable placement description: an epoch-numbered
// consistent-hash ring over shard addresses plus a replication rule for hot
// files. Construct with NewMap or DecodeMap; a Map is safe for concurrent
// use because nothing mutates it after construction.
type Map struct {
	epoch    uint64
	addrs    []string // distinct shard addresses, sorted
	replicas int      // replication factor R for hot files (1 = no replication)
	hot      []string // glob patterns (path.Match) naming replicated files
	ring     []vnode  // sorted by hash
}

type vnode struct {
	hash uint32
	addr int // index into addrs
}

// NewMap builds a Map with the given epoch over addrs. Hot files — object
// names matching any of the hot globs — are replicated on replicas distinct
// shards (capped at the fleet size); every other file lives on exactly one.
func NewMap(epoch uint64, addrs []string, replicas int, hot []string) (*Map, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleet: map needs at least one shard address")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("fleet: replication factor %d must be at least 1", replicas)
	}
	seen := make(map[string]bool, len(addrs))
	sorted := make([]string, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("fleet: empty shard address")
		}
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate shard address %q", a)
		}
		seen[a] = true
		sorted = append(sorted, a)
	}
	sort.Strings(sorted)
	for _, g := range hot {
		if _, err := path.Match(g, "probe"); err != nil {
			return nil, fmt.Errorf("fleet: bad hot glob %q: %w", g, err)
		}
	}
	if replicas > len(sorted) {
		replicas = len(sorted)
	}
	m := &Map{
		epoch:    epoch,
		addrs:    sorted,
		replicas: replicas,
		hot:      append([]string(nil), hot...),
		ring:     make([]vnode, 0, len(sorted)*vnodesPerAddr),
	}
	for i, a := range sorted {
		for v := 0; v < vnodesPerAddr; v++ {
			m.ring = append(m.ring, vnode{hash: hash32(a + "#" + strconv.Itoa(v)), addr: i})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].addr < m.ring[j].addr // deterministic on (rare) collisions
	})
	return m, nil
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	x := h.Sum32()
	// Murmur3-style finalizer: raw FNV-1a clusters badly on the short,
	// near-identical keys a ring is built from ("host:port#3" vs "#4"),
	// skewing shard loads by integer factors. The extra mix buys full
	// avalanche for two multiplies.
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Epoch returns the map's version number.
func (m *Map) Epoch() uint64 { return m.epoch }

// Addrs returns the fleet's shard addresses, sorted. Callers must not
// mutate the returned slice.
func (m *Map) Addrs() []string { return m.addrs }

// Replicas returns the replication factor applied to hot files.
func (m *Map) Replicas() int { return m.replicas }

// Hot reports whether name is designated hot (replicated). Matching uses
// path.Match against each configured glob.
func (m *Map) Hot(name string) bool {
	for _, g := range m.hot {
		if ok, _ := path.Match(g, name); ok {
			return true
		}
	}
	return false
}

// Owners returns the addresses serving name, primary first. Cold files get
// exactly one owner; hot files get Replicas distinct owners found by walking
// the ring clockwise from the name's hash point, so each replica set is
// stable under shard addition/removal the same way primaries are.
func (m *Map) Owners(name string) []string {
	want := 1
	if m.Hot(name) {
		want = m.replicas
	}
	h := hash32(name)
	start := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	owners := make([]string, 0, want)
	taken := make(map[int]bool, want)
	for i := 0; len(owners) < want && i < len(m.ring); i++ {
		vn := m.ring[(start+i)%len(m.ring)]
		if !taken[vn.addr] {
			taken[vn.addr] = true
			owners = append(owners, m.addrs[vn.addr])
		}
	}
	return owners
}

// Primary returns the first owner of name — the shard that serves cold
// traffic and orders all writes.
func (m *Map) Primary(name string) string { return m.Owners(name)[0] }

// Encode serializes the map in the afmap/v1 wire form served by OpShardMap.
// The ring itself is not encoded: it is a pure function of the addresses, so
// DecodeMap rebuilds it and every decoder agrees on placement.
func (m *Map) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "afmap/v1\nepoch %d\nreplicas %d\n", m.epoch, m.replicas)
	for _, a := range m.addrs {
		fmt.Fprintf(&b, "addr %s\n", a)
	}
	for _, g := range m.hot {
		fmt.Fprintf(&b, "hot %s\n", g)
	}
	return b.Bytes()
}

// DecodeMap parses an Encode'd map and rebuilds its ring.
func DecodeMap(data []byte) (*Map, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || sc.Text() != "afmap/v1" {
		return nil, fmt.Errorf("fleet: not an afmap/v1 document")
	}
	var (
		epoch    uint64
		replicas int
		addrs    []string
		hot      []string
		haveE    bool
		haveR    bool
	)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("fleet: malformed map line %q", line)
		}
		switch key {
		case "epoch":
			e, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: bad epoch %q: %w", val, err)
			}
			epoch, haveE = e, true
		case "replicas":
			r, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fleet: bad replicas %q: %w", val, err)
			}
			replicas, haveR = r, true
		case "addr":
			addrs = append(addrs, val)
		case "hot":
			hot = append(hot, val)
		default:
			return nil, fmt.Errorf("fleet: unknown map key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveE || !haveR {
		return nil, fmt.Errorf("fleet: map missing epoch or replicas")
	}
	return NewMap(epoch, addrs, replicas, hot)
}
