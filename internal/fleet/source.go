package fleet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/remote"
	"repro/internal/wire"
)

// Options tunes a fleet client.
type Options struct {
	// Dial configures every per-shard remote.Client.
	Dial remote.DialOptions
	// CacheBlocks enables lease-protected client caching: each object gets a
	// cache.BlockCache of this many blocks whose entries are tagged with the
	// object's lease epoch, so cached reads cost no network round trip and a
	// conflicting write anywhere in the fleet invalidates them (via the
	// lease-revoke push) before it commits. Zero disables caching.
	CacheBlocks int
	// CacheBlockSize is the cache's block size (default 4096).
	CacheBlockSize int
}

const defaultCacheBlockSize = 4096

// Fleet is a client-side handle on a sharded FileServer fleet: a Backend
// whose objects are routed by a shard Map. Each object dials its owners
// lazily and keeps those connections pooled for the object's lifetime —
// reads on hot files fan out across replicas by power-of-two-choices on the
// clients' in-flight gauges, writes pin to the primary (which replicates
// synchronously server-side), and failover retires a shard's connection and
// carries on with the remaining replicas.
type Fleet struct {
	m    *Map
	opts Options
}

var _ backend.Backend = (*Fleet)(nil)

// New returns a fleet client over m.
func New(m *Map, opts Options) *Fleet {
	if opts.CacheBlockSize <= 0 {
		opts.CacheBlockSize = defaultCacheBlockSize
	}
	return &Fleet{m: m, opts: opts}
}

// Fetch bootstraps routing by retrieving the shard map from the first
// reachable of addrs — any shard serves the authoritative map.
func Fetch(addrs []string, d remote.DialOptions) (*Map, error) {
	var firstErr error
	for _, a := range addrs {
		data, _, err := remote.FetchShardMap(a, d)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return DecodeMap(data)
	}
	return nil, fmt.Errorf("fleet: no shard served a map: %w", firstErr)
}

// Map returns the shard map routing this fleet.
func (f *Fleet) Map() *Map { return f.m }

// Kind implements backend.Backend.
func (f *Fleet) Kind() string { return "fleet" }

// Caps implements backend.Backend.
func (f *Fleet) Caps() backend.Caps { return backend.CapWrite }

// Close implements backend.Backend; connections belong to the objects.
func (f *Fleet) Close() error { return nil }

// Open implements backend.Backend, returning a routed (and, when configured,
// lease-cached) object.
func (f *Fleet) Open(name string) (backend.Object, error) {
	owners := f.m.Owners(name)
	o := &Object{
		f:          f,
		name:       name,
		owners:     owners,
		ledIdx:     -1,
		epochOwner: -1,
		acqIdx:     -1,
		clients:    make([]*remote.Client, len(owners)),
	}
	if f.opts.CacheBlocks > 0 {
		c, err := cache.NewBlockCache(&leaseRouter{o: o}, f.opts.CacheBlockSize, f.opts.CacheBlocks)
		if err != nil {
			return nil, err
		}
		o.cache = c
	}
	return o, nil
}

// Object is one fleet-routed object. It implements remote.Source (and so
// backend.Object): reads fan out over the object's owners, writes go to the
// primary. With caching enabled, reads are served from an epoch-tagged block
// cache kept coherent by the lease protocol.
type Object struct {
	f      *Fleet
	name   string
	owners []string // primary first

	cache *cache.BlockCache // nil when caching is off

	mu      sync.Mutex
	clients []*remote.Client // lazily dialed, parallel to owners
	closed  bool

	// Lease state, meaningful only with caching. A lease is live while it
	// has not been revoked AND the session it was granted on survives: the
	// grant is connection-scoped on the server, so a reconnect (leaseSession
	// no longer matching the client's Reconnects count) means the server has
	// already forgotten us and the cache must not be trusted until a fresh
	// lease re-tags it.
	leased       bool
	ledIdx       int // owner index the lease was granted by
	leaseSession uint64

	// Epoch REGIME of the cache's tags. Lease epochs are per-server counters:
	// a different replica — or the same server after a restart — numbers them
	// independently, so epoch values are only comparable while both the owner
	// index and the session they arrived on are unchanged. A grant from any
	// other (owner, session) pair rebases the cache (ResetEpoch) instead of
	// advancing it monotonically; without the rebase, failing over from a
	// high-epoch replica to a low-epoch one would make every subsequent grant
	// and revoke a no-op on the cache and committed writes would stop
	// invalidating cached blocks.
	epochOwner   int // owner index the cache's epochs come from; -1 = none yet
	epochSession uint64

	// Acquisition window (guarded by mu; serialized by acqMu). The server may
	// emit a revoke for a just-granted lease before the grant's reply is even
	// processed — frames are concurrent server-side and the granting RPC's
	// waiter races the push handler client-side. While a grant is in flight
	// the handler banks such revokes in pendingRevoke instead of dropping
	// them, and the acquirer folds the banked epoch in before publishing.
	acqIdx        int // owner index of the grant in flight; -1 = none
	acqSession    uint64
	pendingRevoke uint64

	// acqMu serializes lease acquisition so concurrent fills don't interleave
	// their acquisition windows. Lock order: acqMu before mu; the revoke
	// handler takes only mu.
	acqMu sync.Mutex

	failovers uint64 // reads re-routed to another replica after a transport error
}

var _ remote.Source = (*Object)(nil)

// client returns the pooled connection to owner i, dialing on first use (or
// after a failover retired the previous one).
func (o *Object) client(i int) (*remote.Client, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil, remote.ErrSourceClosed
	}
	if c := o.clients[i]; c != nil {
		o.mu.Unlock()
		return c, nil
	}
	addr := o.owners[i]
	o.mu.Unlock()

	c, err := remote.DialWith(addr, o.name, o.f.opts.Dial)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		c.Close()
		return nil, remote.ErrSourceClosed
	}
	if prev := o.clients[i]; prev != nil {
		o.mu.Unlock()
		c.Close()
		return prev, nil
	}
	o.clients[i] = c
	o.mu.Unlock()
	return c, nil
}

// dropClient retires owner i's connection after a transport failure; the
// next use redials, so a recovered shard rejoins the rotation.
func (o *Object) dropClient(i int, c *remote.Client) {
	o.mu.Lock()
	if o.clients[i] == c {
		o.clients[i] = nil
	} else {
		c = nil
	}
	if o.leased && o.ledIdx == i {
		o.leased = false // the lease lived on that connection
	}
	o.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// pick chooses the owner index to read from: power of two choices on the
// clients' in-flight gauges, with an undialed owner counting as idle — two
// random owners are sampled and the less loaded one wins, which keeps the
// fan-out balanced without any shared coordination.
func (o *Object) pick() int {
	n := len(o.owners)
	if n == 1 {
		return 0
	}
	a := rand.Intn(n)
	b := rand.Intn(n - 1)
	if b >= a {
		b++
	}
	o.mu.Lock()
	la, lb := int64(0), int64(0)
	if c := o.clients[a]; c != nil {
		la = c.InFlight()
	}
	if c := o.clients[b]; c != nil {
		lb = c.InFlight()
	}
	o.mu.Unlock()
	if lb < la {
		return b
	}
	return a
}

// shouldFailover reports whether err warrants trying another replica: only
// transport-level failures do. Application answers (EOF, not-found, remote
// errors) are deterministic and replica-independent, and typed admission
// refusals are policy — failing over would route around admission control.
func shouldFailover(err error) bool {
	if err == nil || remote.IsRefusal(err) {
		return false
	}
	// Plain io.EOF is the application's end-of-object answer; a transport EOF
	// (peer died mid-exchange) reaches us wrapped and must fail over.
	if err == io.EOF {
		return false
	}
	if errors.Is(err, wire.ErrUnsupported) ||
		errors.Is(err, wire.ErrClosed) || errors.Is(err, wire.ErrNotFound) ||
		errors.Is(err, wire.ErrBusy) {
		return false
	}
	var re *wire.RemoteError
	return !errors.As(err, &re)
}

// readDirect reads from one of the object's owners, failing over across
// replicas on transport errors. Reads are idempotent, so a partially
// transferred attempt is simply reissued in full elsewhere.
func (o *Object) readDirect(p []byte, off int64) (int, error) {
	start := o.pick()
	var lastErr error
	for i := 0; i < len(o.owners); i++ {
		idx := (start + i) % len(o.owners)
		c, err := o.client(idx)
		if err != nil {
			if !shouldFailover(err) && !errors.Is(err, remote.ErrSourceClosed) {
				return 0, err
			}
			if errors.Is(err, remote.ErrSourceClosed) && o.isClosed() {
				return 0, remote.ErrSourceClosed
			}
			lastErr = err
			continue
		}
		n, rerr := c.ReadAt(p, off)
		if rerr == nil || !shouldFailover(rerr) {
			if errors.Is(rerr, remote.ErrSourceClosed) && !o.isClosed() {
				// A concurrent failover closed this client under us, not the
				// object; try the next replica.
				lastErr = rerr
				continue
			}
			return n, rerr
		}
		o.dropClient(idx, c)
		o.mu.Lock()
		o.failovers++
		o.mu.Unlock()
		lastErr = rerr
	}
	return 0, fmt.Errorf("fleet: every owner of %q failed: %w", o.name, lastErr)
}

func (o *Object) isClosed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.closed
}

// CacheStats reports the object's block-cache counters; ok is false when
// caching is off.
func (o *Object) CacheStats() (cache.Stats, bool) {
	if o.cache == nil {
		return cache.Stats{}, false
	}
	return o.cache.Stats(), true
}

// Failovers reports how many reads were re-routed to another replica.
func (o *Object) Failovers() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.failovers
}

// ReadAt implements remote.Source. Cached reads first verify the lease's
// revoke channel is still live — a hit must never outlive the lease that
// keeps it coherent.
func (o *Object) ReadAt(p []byte, off int64) (int, error) {
	if o.cache != nil {
		o.ensureLive()
		return o.cache.ReadAt(p, off)
	}
	return o.readDirect(p, off)
}

// WriteAt implements remote.Source: writes pin to the primary, which revokes
// read leases, applies, and synchronously replicates before answering. No
// failover — a non-primary shard would refuse, and replaying a write that
// may have applied is never safe.
func (o *Object) WriteAt(p []byte, off int64) (int, error) {
	if o.cache != nil {
		return o.cache.WriteAt(p, off)
	}
	return o.writeDirect(p, off)
}

func (o *Object) writeDirect(p []byte, off int64) (int, error) {
	c, err := o.client(0)
	if err != nil {
		return 0, err
	}
	return c.WriteAt(p, off)
}

// Size implements remote.Source (idempotent; fails over like reads).
func (o *Object) Size() (int64, error) {
	if o.cache != nil {
		return o.cache.Size()
	}
	return o.sizeDirect()
}

func (o *Object) sizeDirect() (int64, error) {
	start := o.pick()
	var lastErr error
	for i := 0; i < len(o.owners); i++ {
		idx := (start + i) % len(o.owners)
		c, err := o.client(idx)
		if err != nil {
			lastErr = err
			continue
		}
		n, serr := c.Size()
		if serr == nil || !shouldFailover(serr) {
			if errors.Is(serr, remote.ErrSourceClosed) && !o.isClosed() {
				lastErr = serr
				continue
			}
			return n, serr
		}
		o.dropClient(idx, c)
		lastErr = serr
	}
	return 0, fmt.Errorf("fleet: every owner of %q failed: %w", o.name, lastErr)
}

// Truncate implements remote.Source; primary-pinned like writes.
func (o *Object) Truncate(n int64) error {
	if o.cache != nil {
		return o.cache.Truncate(n)
	}
	return o.truncateDirect(n)
}

func (o *Object) truncateDirect(n int64) error {
	c, err := o.client(0)
	if err != nil {
		return err
	}
	return c.Truncate(n)
}

// Close implements remote.Source, releasing every pooled connection.
func (o *Object) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	o.leased = false
	clients := o.clients
	o.clients = make([]*remote.Client, len(o.owners))
	o.mu.Unlock()
	for _, c := range clients {
		if c != nil {
			c.Close()
		}
	}
	return nil
}

// ensureLive guards the cached-read hit path. Cache hits cost no network
// traffic, so without this check a fully cached working set would keep
// being served after the leased connection died: the server forgets a dead
// connection's lease and commits writes without revoking this client, yet
// every hit would still validate. Before any cached byte is trusted the
// lease's session must be the live one; when it is not, re-leasing either
// rebases the cache onto the new grant's epoch regime (discarding anything
// a missed write may have invalidated) or, if no owner will grant a lease,
// discards everything — with no revoke channel nothing cached may be served.
func (o *Object) ensureLive() {
	o.mu.Lock()
	if o.leased {
		if c := o.clients[o.ledIdx]; c != nil && c.SessionLive(o.leaseSession) {
			o.mu.Unlock()
			return
		}
		o.leased = false
	}
	o.mu.Unlock()
	if _, _, err := o.ensureLease(); err != nil {
		o.cache.InvalidateAll() // reads now refill — and surface err — instead of hitting
	}
}

// ensureLease returns a client holding a live lease on the object, acquiring
// or re-acquiring one as needed. The revoke handler is installed before the
// grant so no revoke can slip through unobserved, and it marks the lease
// dead BEFORE bumping the cache epoch — a fill racing the revoke therefore
// either tags with the old epoch (and is discarded) or re-leases first (and
// blocks until the conflicting write has fully applied).
func (o *Object) ensureLease() (*remote.Client, int, error) {
	o.acqMu.Lock()
	defer o.acqMu.Unlock()

	o.mu.Lock()
	if o.leased {
		c := o.clients[o.ledIdx]
		if c != nil && c.SessionLive(o.leaseSession) {
			idx := o.ledIdx
			o.mu.Unlock()
			return c, idx, nil
		}
		o.leased = false
	}
	prefer := o.ledIdx
	o.mu.Unlock()
	if prefer < 0 {
		prefer = o.pick()
	}
	defer func() {
		o.mu.Lock()
		o.acqIdx = -1
		o.mu.Unlock()
	}()

	var lastErr error
	for i := 0; i < len(o.owners); i++ {
		idx := (prefer + i) % len(o.owners)
		c, err := o.client(idx)
		if err != nil {
			lastErr = err
			continue
		}
		leasedIdx := idx
		c.SetRevokeHandler(func(_ string, epoch, sid uint64) {
			o.mu.Lock()
			defer o.mu.Unlock()
			switch {
			case o.leased && o.ledIdx == leasedIdx && o.leaseSession == sid:
				// The live lease: one monotonic epoch bump invalidates every
				// earlier-tagged block in O(1).
				o.leased = false
				o.cache.SetEpoch(epoch)
			case o.acqIdx == leasedIdx && o.acqSession == sid:
				// The revoke raced a grant in flight on this session — the
				// server may push before the grant's reply is processed. Bank
				// it; the acquirer folds it in before publishing the lease.
				if epoch > o.pendingRevoke {
					o.pendingRevoke = epoch
				}
			}
			// Anything else is a straggler from a dead regime: every block
			// cached under it was discarded when the regime turned over.
		})
		// The lease must be paired with the session that granted it: if the
		// session turned over during the exchange (idempotent replay), the
		// grant we hold may belong to a connection the server has already
		// forgotten, so lease again on the settled session.
		granted := false
		for tries := 0; tries < 3; tries++ {
			before := c.Reconnects()
			o.mu.Lock()
			o.acqIdx, o.acqSession, o.pendingRevoke = idx, before, 0
			o.mu.Unlock()
			e, lerr := c.Lease()
			if lerr != nil {
				if !shouldFailover(lerr) {
					return nil, 0, lerr
				}
				lastErr = lerr
				break
			}
			if c.Reconnects() != before {
				continue
			}
			o.mu.Lock()
			// Epochs are only comparable with the cache's tags while they
			// come from the same owner on the same session; any other grant
			// rebases the cache wholesale.
			sameRegime := o.epochOwner == idx && o.epochSession == before
			pending := o.pendingRevoke
			o.acqIdx = -1
			eff := e
			if pending > eff {
				eff = pending
			}
			o.ledIdx, o.leaseSession = idx, before
			o.epochOwner, o.epochSession = idx, before
			o.leased = pending <= e // a banked revoke above the grant means it is already dead
			live := o.leased
			if sameRegime {
				o.cache.SetEpoch(eff)
			} else {
				o.cache.ResetEpoch(eff)
			}
			o.mu.Unlock()
			if live {
				return c, idx, nil
			}
			granted = true // regime published; retry waits out the conflicting write's round
		}
		if !granted {
			o.dropClient(idx, c)
			if lastErr == nil {
				lastErr = fmt.Errorf("fleet: lease on %q kept losing its session", o.name)
			}
			continue
		}
		// Granted but revoked mid-grant every try: the connection is healthy,
		// so keep it and try another owner.
		if lastErr == nil {
			lastErr = fmt.Errorf("fleet: lease on %q kept being revoked mid-grant", o.name)
		}
	}
	return nil, 0, fmt.Errorf("fleet: no owner of %q granted a lease: %w", o.name, lastErr)
}

// leaseRouter is the cache's backing store: fills read from the replica the
// object holds a lease on (so every cached byte is covered by a revoke
// channel), writes and truncates route to the primary.
type leaseRouter struct {
	o *Object
}

var _ cache.RandomAccess = (*leaseRouter)(nil)

func (r *leaseRouter) ReadAt(p []byte, off int64) (int, error) {
	var lastErr error
	for i := 0; i <= len(r.o.owners); i++ {
		c, idx, err := r.o.ensureLease()
		if err != nil {
			return 0, err
		}
		n, rerr := c.ReadAt(p, off)
		if rerr == nil || !shouldFailover(rerr) {
			if errors.Is(rerr, remote.ErrSourceClosed) && !r.o.isClosed() {
				lastErr = rerr
				r.o.dropClient(idx, c)
				continue
			}
			return n, rerr
		}
		r.o.dropClient(idx, c) // also drops the lease that lived on it
		r.o.mu.Lock()
		r.o.failovers++
		r.o.mu.Unlock()
		lastErr = rerr
	}
	return 0, fmt.Errorf("fleet: leased reads of %q kept failing: %w", r.o.name, lastErr)
}

func (r *leaseRouter) WriteAt(p []byte, off int64) (int, error) { return r.o.writeDirect(p, off) }
func (r *leaseRouter) Size() (int64, error)                     { return r.o.sizeDirect() }
func (r *leaseRouter) Truncate(n int64) error                   { return r.o.truncateDirect(n) }

func init() {
	backend.Register("fleet", func(opts map[string]string, config string) (backend.Backend, error) {
		if config == "" {
			return nil, fmt.Errorf("%w: fleet wants shard addresses (fleet:host:port,host:port,...)", backend.ErrBadSpec)
		}
		var addrs []string
		for _, a := range strings.Split(config, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		var o Options
		replicas := 1
		var hot []string
		for k, v := range opts {
			switch k {
			case "cache":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("%w: fleet cache=%q wants a block count", backend.ErrBadSpec, v)
				}
				o.CacheBlocks = n
			case "bsize":
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("%w: fleet bsize=%q wants a positive block size", backend.ErrBadSpec, v)
				}
				o.CacheBlockSize = n
			case "replicas":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("%w: fleet replicas=%q wants a positive count", backend.ErrBadSpec, v)
				}
				replicas = n
			case "hot":
				// Globs are ';'-separated: ',' delimits spec options.
				for _, g := range strings.Split(v, ";") {
					if g != "" {
						hot = append(hot, g)
					}
				}
			default:
				return nil, fmt.Errorf("%w: fleet does not understand option %q", backend.ErrBadSpec, k)
			}
		}
		// The shards' own map is authoritative; a locally built one (epoch 0)
		// covers fleets of plain FileServers that were never SetFleet'd.
		m, err := Fetch(addrs, o.Dial)
		if err != nil {
			m, err = NewMap(0, addrs, replicas, hot)
			if err != nil {
				return nil, err
			}
		}
		return New(m, o), nil
	})
}
