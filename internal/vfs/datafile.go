package vfs

import (
	"fmt"
	"os"
	"sync"
)

// DataFile wraps the data part of an active file with the random-access
// operations sentinels need when the data part acts as a local cache
// (Figure 5, path 2). It serializes access so several sentinel goroutines of
// the same process can share one descriptor.
type DataFile struct {
	mu sync.Mutex
	f  *os.File
}

// OpenData opens (creating if necessary) the data part of the active file at
// manifestPath.
func OpenData(manifestPath string) (*DataFile, error) {
	if !IsActive(manifestPath) {
		return nil, fmt.Errorf("%w: %q", ErrNotActive, manifestPath)
	}
	f, err := os.OpenFile(DataPath(manifestPath), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open data part: %w", err)
	}
	return &DataFile{f: f}, nil
}

// ReadAt reads len(p) bytes at offset off.
func (d *DataFile) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.ReadAt(p, off)
}

// WriteAt writes p at offset off, extending the file as needed.
func (d *DataFile) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.WriteAt(p, off)
}

// Size returns the current length of the data part.
func (d *DataFile) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	info, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Truncate sets the data part's length to n.
func (d *DataFile) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Truncate(n)
}

// Sync flushes the data part to stable storage.
func (d *DataFile) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close releases the underlying descriptor.
func (d *DataFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
