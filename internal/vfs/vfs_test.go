package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func validManifest() Manifest {
	return Manifest{
		Program:  ProgramSpec{Name: "null"},
		Strategy: "thread",
		Cache:    "disk",
	}
}

func TestIsActive(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{"notes.af", true},
		{"dir/inbox.af", true},
		{"plain.txt", false},
		{"archive.af.data", false},
		{"", false},
		{".af", true},
	}
	for _, tt := range tests {
		if got := IsActive(tt.give); got != tt.want {
			t.Errorf("IsActive(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestCreateLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.af")
	give := Manifest{
		Program:  ProgramSpec{Name: "compress", Args: []string{"-level", "3"}},
		Strategy: "procctl",
		Cache:    "memory",
		Source:   SourceSpec{Kind: "tcp", Addr: "127.0.0.1:9000", Path: "obj"},
		Params:   map[string]string{"window": "4096"},
	}
	if err := Create(path, give); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Program.Name != "compress" || got.Strategy != "procctl" || got.Cache != "memory" ||
		got.Source.Addr != "127.0.0.1:9000" || got.Params["window"] != "4096" {
		t.Errorf("Load = %+v", got)
	}
	if got.Version != manifestVersion {
		t.Errorf("Version = %d, want %d", got.Version, manifestVersion)
	}
	if _, err := os.Stat(DataPath(path)); err != nil {
		t.Errorf("data part missing: %v", err)
	}
}

func TestCreateNoData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.af")
	m := validManifest()
	m.NoData = true
	if err := Create(path, m); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := os.Stat(DataPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("data part exists for NoData manifest: %v", err)
	}
}

func TestCreateErrors(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name    string
		path    string
		m       Manifest
		wantErr error
	}{
		{name: "bad extension", path: filepath.Join(dir, "x.txt"), m: validManifest(), wantErr: ErrNotActive},
		{name: "no program", path: filepath.Join(dir, "a.af"), m: Manifest{}, wantErr: ErrBadManifest},
		{name: "bad strategy", path: filepath.Join(dir, "b.af"), m: Manifest{Program: ProgramSpec{Name: "x"}, Strategy: "dll"}, wantErr: ErrBadManifest},
		{name: "bad cache", path: filepath.Join(dir, "c.af"), m: Manifest{Program: ProgramSpec{Name: "x"}, Cache: "l2"}, wantErr: ErrBadManifest},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Create(tt.path, tt.m); !errors.Is(err, tt.wantErr) {
				t.Errorf("Create err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestCreateExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.af")
	if err := Create(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := Create(path, validManifest()); !errors.Is(err, ErrExists) {
		t.Errorf("second Create err = %v, want ErrExists", err)
	}
}

func TestLoadMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.af")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadManifest) {
		t.Errorf("Load err = %v, want ErrBadManifest", err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.af")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Load err = %v, want os.ErrNotExist", err)
	}
}

func TestLoadUnsupportedVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.af")
	if err := os.WriteFile(path, []byte(`{"version":99,"program":{"name":"x"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadManifest) {
		t.Errorf("Load err = %v, want ErrBadManifest", err)
	}
}

func TestUpdatePreservesData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.af")
	if err := Create(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(DataPath(path), []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := validManifest()
	m.Cache = "memory"
	if err := Update(path, m); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache != "memory" {
		t.Errorf("Cache = %q, want %q", got.Cache, "memory")
	}
	data, err := os.ReadFile(DataPath(path))
	if err != nil || string(data) != "payload" {
		t.Errorf("data part = (%q, %v), want preserved", data, err)
	}
}

func TestCopyDuplicatesBothParts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.af")
	dst := filepath.Join(dir, "dst.af")
	if err := Create(src, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(DataPath(src), []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, dst); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	// Same components...
	gotM, err := Load(dst)
	if err != nil || gotM.Program.Name != "null" {
		t.Fatalf("dst manifest = (%+v, %v)", gotM, err)
	}
	gotD, err := os.ReadFile(DataPath(dst))
	if err != nil || string(gotD) != "original" {
		t.Fatalf("dst data = (%q, %v)", gotD, err)
	}
	// ...but independent: mutating the copy leaves the source alone.
	if err := os.WriteFile(DataPath(dst), []byte("changed"), 0o644); err != nil {
		t.Fatal(err)
	}
	srcD, _ := os.ReadFile(DataPath(src))
	if string(srcD) != "original" {
		t.Errorf("src data mutated to %q", srcD)
	}
}

func TestCopyErrors(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "s.af")
	if err := Create(src, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, filepath.Join(dir, "d.txt")); !errors.Is(err, ErrNotActive) {
		t.Errorf("Copy to non-.af err = %v, want ErrNotActive", err)
	}
	dst := filepath.Join(dir, "d.af")
	if err := Create(dst, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, dst); !errors.Is(err, ErrExists) {
		t.Errorf("Copy over existing err = %v, want ErrExists", err)
	}
}

func TestRenameMovesBothParts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "old.af")
	dst := filepath.Join(dir, "new.af")
	if err := Create(src, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(DataPath(src), []byte("cargo"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(src, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Error("source manifest still exists")
	}
	if _, err := os.Stat(DataPath(src)); !errors.Is(err, os.ErrNotExist) {
		t.Error("source data part still exists")
	}
	got, err := os.ReadFile(DataPath(dst))
	if err != nil || string(got) != "cargo" {
		t.Errorf("dst data = (%q, %v)", got, err)
	}
}

func TestRemoveDeletesBothParts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.af")
	if err := Create(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	if err := Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("manifest still exists")
	}
	if _, err := os.Stat(DataPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Error("data part still exists")
	}
}

func TestList(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.af", "b.af"} {
		if err := Create(filepath.Join(dir, name), validManifest()); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "c.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("List = %v, want 2 manifests", got)
	}
}

func TestManifestRoundTripProperty(t *testing.T) {
	// Any valid manifest survives Create/Load unchanged in its salient
	// fields.
	strategies := []string{"", "process", "procctl", "thread", "direct"}
	caches := []string{"", "none", "disk", "memory"}
	dir := t.TempDir()
	i := 0
	f := func(rawName []byte, sIdx, cIdx uint8, rawAddr []byte) bool {
		// JSON round-trips arbitrary bytes only if they are valid UTF-8, so
		// project the generated identifiers onto ASCII.
		name := asciiName(rawName)
		addr := asciiName(rawAddr)
		i++
		path := filepath.Join(dir, "prop", "m"+itoa(i)+".af")
		os.MkdirAll(filepath.Dir(path), 0o755)
		give := Manifest{
			Program:  ProgramSpec{Name: name},
			Strategy: strategies[int(sIdx)%len(strategies)],
			Cache:    caches[int(cIdx)%len(caches)],
			Source:   SourceSpec{Kind: "tcp", Addr: addr},
		}
		if err := Create(path, give); err != nil {
			return false
		}
		got, err := Load(path)
		if err != nil {
			return false
		}
		return got.Program.Name == give.Program.Name &&
			got.Strategy == give.Strategy &&
			got.Cache == give.Cache &&
			got.Source.Addr == give.Source.Addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func asciiName(raw []byte) string {
	if len(raw) > 64 {
		raw = raw[:64]
	}
	out := make([]byte, 0, len(raw)+1)
	out = append(out, 'p')
	for _, b := range raw {
		out = append(out, 'a'+b%26)
	}
	return string(out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestDataFileReadWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.af")
	if err := Create(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	df, err := OpenData(path)
	if err != nil {
		t.Fatalf("OpenData: %v", err)
	}
	defer df.Close()

	if _, err := df.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := df.ReadAt(buf, 3); err != nil || string(buf) != "3456" {
		t.Errorf("ReadAt = (%q, %v)", buf, err)
	}
	if size, err := df.Size(); err != nil || size != 10 {
		t.Errorf("Size = (%d, %v), want 10", size, err)
	}
	if err := df.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if size, _ := df.Size(); size != 5 {
		t.Errorf("Size after truncate = %d, want 5", size)
	}
	if _, err := df.ReadAt(buf, 4); !errors.Is(err, io.EOF) && err != nil {
		// a 4-byte read at offset 4 of a 5-byte file returns 1, io.EOF
		t.Errorf("ReadAt past end err = %v", err)
	}
	if err := df.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
}

func TestOpenDataSparseWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sparse.af")
	if err := Create(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	df, err := OpenData(path)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if _, err := df.WriteAt([]byte("end"), 100); err != nil {
		t.Fatal(err)
	}
	if size, _ := df.Size(); size != 103 {
		t.Errorf("Size = %d, want 103", size)
	}
	buf := make([]byte, 3)
	if _, err := df.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Errorf("hole = %v, want zeros", buf)
	}
}

func TestOpenDataRejectsPassivePath(t *testing.T) {
	if _, err := OpenData("plain.txt"); !errors.Is(err, ErrNotActive) {
		t.Errorf("OpenData err = %v, want ErrNotActive", err)
	}
}

func TestNoDataDirectoryOperations(t *testing.T) {
	dir := t.TempDir()
	m := validManifest()
	m.NoData = true

	src := filepath.Join(dir, "gen.af")
	if err := Create(src, m); err != nil {
		t.Fatal(err)
	}

	// Copy carries only the manifest; no data part appears.
	cp := filepath.Join(dir, "copy.af")
	if err := Copy(src, cp); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if _, err := os.Stat(DataPath(cp)); !errors.Is(err, os.ErrNotExist) {
		t.Error("Copy of NoData file created a data part")
	}

	// Rename moves just the manifest.
	mv := filepath.Join(dir, "moved.af")
	if err := Rename(cp, mv); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := os.Stat(mv); err != nil {
		t.Errorf("renamed manifest missing: %v", err)
	}

	// Remove deletes just the manifest, without complaining about the
	// absent data part.
	if err := Remove(mv); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := Remove(src); err != nil {
		t.Fatalf("Remove src: %v", err)
	}
}
