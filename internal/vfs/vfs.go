// Package vfs implements the on-disk representation of active files and the
// directory operations over them.
//
// The NT prototype packages an active file's two passive components — the
// data part and the active part (sentinel program) — into a single file using
// NTFS alternate streams, so that copying or renaming moves both. Offline
// and cross-platform, we substitute a manifest file: path ending in ".af"
// holds a small JSON manifest naming the sentinel program and its
// parameters, and the data part lives beside it at "<path>.data". Directory
// operations (copy, rename, remove) act on both components, preserving the
// paper's §2.1 semantics ("a copy operation produces a second active file
// with the same data and executable components as the first one").
package vfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/backend"
)

// Extension marks a path as an active file.
const Extension = ".af"

// dataSuffix is appended to the manifest path to locate the data part.
const dataSuffix = ".data"

// Manifest format errors.
var (
	ErrNotActive   = errors.New("vfs: not an active file path")
	ErrBadManifest = errors.New("vfs: malformed manifest")
	ErrExists      = errors.New("vfs: active file already exists")
)

// Well-known manifest parameter names understood by the core layer (all
// other params are program-specific).
const (
	// ParamBackend holds a backend spec ("mem", "nativefs:/dir",
	// "errorfs(rate=0.1):mem", "remote:host:port", ...) selecting the storage
	// backend the sentinel binds instead of a Source transport. The spec
	// grammar is checked when the manifest loads; the kind is resolved at
	// open time against the opener's backend registry.
	ParamBackend = "backend"
	// ParamObject names the object within the ParamBackend backend; when
	// unset, Source.Path is used.
	ParamObject = "object"
)

// manifestVersion is the current on-disk manifest format version.
const manifestVersion = 1

// ProgramSpec names the active part: either a program registered in-process
// (thread and direct strategies, and process strategies via re-exec of the
// current binary) or an external executable.
type ProgramSpec struct {
	// Name of a registered sentinel program. Used by in-process strategies
	// and, when Exec is empty, passed to a re-exec'd copy of the current
	// binary for process strategies.
	Name string `json:"name,omitempty"`
	// Exec is the path of a standalone sentinel executable for the process
	// strategies. Empty means re-exec the current binary.
	Exec string `json:"exec,omitempty"`
	// Args are extra arguments for the executable.
	Args []string `json:"args,omitempty"`
}

// SourceSpec describes the remote information source the sentinel binds to.
type SourceSpec struct {
	// Kind selects the transport: "", "tcp" (block file service), or any
	// program-defined scheme.
	Kind string `json:"kind,omitempty"`
	// Addr is the network address for network kinds.
	Addr string `json:"addr,omitempty"`
	// Path is the object name within the source.
	Path string `json:"path,omitempty"`
}

// Manifest is the persisted description of an active file.
type Manifest struct {
	Version int         `json:"version"`
	Program ProgramSpec `json:"program"`
	// Strategy is the default implementation strategy hint:
	// "process", "procctl", "thread", or "direct". Empty means the opener
	// decides.
	Strategy string `json:"strategy,omitempty"`
	// Cache selects the Figure 5 critical path: "none", "disk", or "memory".
	Cache string `json:"cache,omitempty"`
	// Source is the remote binding, if any.
	Source SourceSpec `json:"source,omitempty"`
	// Params carries program-specific configuration.
	Params map[string]string `json:"params,omitempty"`
	// NoData marks active files with an empty data part (the paper's §2.2
	// "an active file can have an empty data part"): no data file is
	// created, and the sentinel synthesizes all content.
	NoData bool `json:"noData,omitempty"`
}

// validate checks structural invariants of a decoded manifest.
func (m *Manifest) validate() error {
	if m.Version <= 0 || m.Version > manifestVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadManifest, m.Version)
	}
	if m.Program.Name == "" && m.Program.Exec == "" {
		return fmt.Errorf("%w: manifest names no sentinel program", ErrBadManifest)
	}
	switch m.Strategy {
	case "", "process", "procctl", "thread", "direct":
	default:
		return fmt.Errorf("%w: unknown strategy %q", ErrBadManifest, m.Strategy)
	}
	switch m.Cache {
	case "", "none", "disk", "memory":
	default:
		return fmt.Errorf("%w: unknown cache mode %q", ErrBadManifest, m.Cache)
	}
	if spec, ok := m.Params[ParamBackend]; ok {
		// Grammar only: whether the kind exists is the opener's concern —
		// kinds register by linkage, which this decoder cannot see.
		if _, _, _, err := backend.ParseSpec(spec); err != nil {
			return fmt.Errorf("%w: backend param: %v", ErrBadManifest, err)
		}
	}
	return nil
}

// IsActive reports whether path names an active file by extension, the same
// check the paper's OpenFile stub performs.
func IsActive(path string) bool {
	return strings.HasSuffix(path, Extension)
}

// DataPath returns the path of the data part belonging to the manifest at
// path.
func DataPath(path string) string {
	return path + dataSuffix
}

// Create writes a new active file: the manifest at path plus an empty data
// part (unless m.NoData). It fails with ErrExists if the manifest already
// exists and ErrNotActive if path lacks the ".af" extension.
func Create(path string, m Manifest) error {
	if !IsActive(path) {
		return fmt.Errorf("%w: %q", ErrNotActive, path)
	}
	if m.Version == 0 {
		m.Version = manifestVersion
	}
	if err := m.validate(); err != nil {
		return err
	}
	if _, err := os.Lstat(path); err == nil {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	if err := writeManifest(path, &m); err != nil {
		return err
	}
	if m.NoData {
		return nil
	}
	f, err := os.OpenFile(DataPath(path), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("create data part: %w", err)
	}
	return f.Close()
}

// Load reads and validates the manifest at path.
func Load(path string) (Manifest, error) {
	if !IsActive(path) {
		return Manifest{}, fmt.Errorf("%w: %q", ErrNotActive, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if err := m.validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Update rewrites the manifest at path, preserving the data part.
func Update(path string, m Manifest) error {
	if !IsActive(path) {
		return fmt.Errorf("%w: %q", ErrNotActive, path)
	}
	if m.Version == 0 {
		m.Version = manifestVersion
	}
	if err := m.validate(); err != nil {
		return err
	}
	return writeManifest(path, &m)
}

func writeManifest(path string, m *Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("encode manifest: %w", err)
	}
	raw = append(raw, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit manifest: %w", err)
	}
	return nil
}

// Copy duplicates the active file at src to dst: both the manifest and the
// data part are copied, so dst is an independent active file with the same
// components.
func Copy(src, dst string) error {
	m, err := Load(src)
	if err != nil {
		return err
	}
	if !IsActive(dst) {
		return fmt.Errorf("%w: %q", ErrNotActive, dst)
	}
	if _, err := os.Lstat(dst); err == nil {
		return fmt.Errorf("%w: %q", ErrExists, dst)
	}
	if err := copyFile(src, dst); err != nil {
		return err
	}
	if m.NoData {
		return nil
	}
	if err := copyFile(DataPath(src), DataPath(dst)); err != nil {
		os.Remove(dst)
		return err
	}
	return nil
}

// Rename moves the active file at src to dst, carrying the data part along.
func Rename(src, dst string) error {
	m, err := Load(src)
	if err != nil {
		return err
	}
	if !IsActive(dst) {
		return fmt.Errorf("%w: %q", ErrNotActive, dst)
	}
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("rename manifest: %w", err)
	}
	if m.NoData {
		return nil
	}
	if err := os.Rename(DataPath(src), DataPath(dst)); err != nil {
		// Roll the manifest back so the two parts stay together.
		os.Rename(dst, src)
		return fmt.Errorf("rename data part: %w", err)
	}
	return nil
}

// Remove deletes the active file at path: manifest and data part.
func Remove(path string) error {
	m, err := Load(path)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("remove manifest: %w", err)
	}
	if m.NoData {
		return nil
	}
	if err := os.Remove(DataPath(path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("remove data part: %w", err)
	}
	return nil
}

// List returns the active-file manifests directly inside dir, sorted by
// directory order.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("list %q: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && IsActive(e.Name()) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	return paths, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("copy open %q: %w", src, err)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("copy create %q: %w", dst, err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return fmt.Errorf("copy %q -> %q: %w", src, dst, err)
	}
	if err := out.Close(); err != nil {
		os.Remove(dst)
		return fmt.Errorf("copy close %q: %w", dst, err)
	}
	return nil
}
