// Package interpose is the legacy-application-facing file layer — the Go
// analogue of the paper's binary interception of Win32 file API calls
// (Appendix A). An application written against FS uses one set of file
// operations for everything; each Open checks whether the path names an
// active file ("by checking the extension") and either passes straight
// through to the operating system or diverts to a sentinel session. The
// application cannot tell which happened: that transparency is the paper's
// central claim.
package interpose

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/vfs"
)

// File is the operation set legacy applications program against, mirroring
// the intercepted Win32 calls: ReadFile, WriteFile, SetFilePointer,
// GetFileSize, SetEndOfFile, FlushFileBuffers, CloseHandle, and the
// positioned variants.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the file length (GetFileSize).
	Size() (int64, error)
	// Truncate sets the file length (SetEndOfFile).
	Truncate(n int64) error
	// Sync flushes buffered state (FlushFileBuffers).
	Sync() error
}

// FS opens files with active-file interposition. The zero value is not
// usable; construct with New.
type FS struct {
	strategy core.Strategy // 0 = per-manifest default
	registry *core.Registry
}

// Option configures an FS.
type Option interface {
	apply(*FS)
}

type strategyOption core.Strategy

func (o strategyOption) apply(fs *FS) { fs.strategy = core.Strategy(o) }

// WithStrategy forces every active open to use the given implementation
// strategy instead of each manifest's default.
func WithStrategy(s core.Strategy) Option {
	return strategyOption(s)
}

type registryOption struct{ reg *core.Registry }

func (o registryOption) apply(fs *FS) { fs.registry = o.reg }

// WithRegistry resolves sentinel programs from reg instead of the default
// registry.
func WithRegistry(reg *core.Registry) Option {
	return registryOption{reg: reg}
}

// New returns an interposing file system.
func New(opts ...Option) *FS {
	fs := &FS{}
	for _, o := range opts {
		o.apply(fs)
	}
	return fs
}

// Open opens the file at path for reading and writing. Active paths divert
// to a sentinel; passive paths go to the operating system.
func (fs *FS) Open(path string) (File, error) {
	if vfs.IsActive(path) {
		h, err := core.Open(path, core.Options{Strategy: fs.strategy, Registry: fs.registry})
		if err != nil {
			return nil, fmt.Errorf("open active file %q: %w", path, err)
		}
		return h, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &passiveFile{f: f}, nil
}

// Create opens path, creating a passive file if it does not exist. Creating
// a new *active* file requires a manifest and goes through vfs.Create; Open
// is then used to start a session.
func (fs *FS) Create(path string) (File, error) {
	if vfs.IsActive(path) {
		return fs.Open(path)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &passiveFile{f: f}, nil
}

// Remove deletes the file at path; for active files, both components go
// (§2.1 directory operations).
func (fs *FS) Remove(path string) error {
	if vfs.IsActive(path) {
		return vfs.Remove(path)
	}
	return os.Remove(path)
}

// Copy duplicates src to dst. Copying an active file duplicates manifest and
// data part; both paths must then be active. Passive copies are plain byte
// copies.
func (fs *FS) Copy(src, dst string) error {
	if vfs.IsActive(src) || vfs.IsActive(dst) {
		return vfs.Copy(src, dst)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// Rename moves src to dst, carrying an active file's data part along.
func (fs *FS) Rename(src, dst string) error {
	if vfs.IsActive(src) || vfs.IsActive(dst) {
		return vfs.Rename(src, dst)
	}
	return os.Rename(src, dst)
}

// passiveFile adapts *os.File to the File interface.
type passiveFile struct {
	f *os.File
}

var _ File = (*passiveFile)(nil)

func (p *passiveFile) Read(b []byte) (int, error)  { return p.f.Read(b) }
func (p *passiveFile) Write(b []byte) (int, error) { return p.f.Write(b) }
func (p *passiveFile) Seek(off int64, whence int) (int64, error) {
	return p.f.Seek(off, whence)
}
func (p *passiveFile) ReadAt(b []byte, off int64) (int, error)  { return p.f.ReadAt(b, off) }
func (p *passiveFile) WriteAt(b []byte, off int64) (int, error) { return p.f.WriteAt(b, off) }
func (p *passiveFile) Close() error                             { return p.f.Close() }
func (p *passiveFile) Truncate(n int64) error                   { return p.f.Truncate(n) }
func (p *passiveFile) Sync() error                              { return p.f.Sync() }

func (p *passiveFile) Size() (int64, error) {
	info, err := p.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Compile-time check: an active handle satisfies the legacy File interface,
// the property that makes the diversion invisible.
var _ File = (*core.Handle)(nil)
