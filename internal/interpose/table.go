package interpose

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Handle is a fictitious file handle, the opaque token the paper's stubs
// return from an instrumented OpenFile: "a dummy handle is acquired and
// supplied as the return file handle to the process ... an association is
// also made between the dummy handle and the two or three pipe handles"
// (Appendix A.2).
type Handle uint32

// InvalidHandle is returned by failed opens.
const InvalidHandle Handle = 0

// ErrBadHandle reports an operation on a handle the table never issued or
// has already closed.
var ErrBadHandle = errors.New("interpose: invalid file handle")

// HandleTable is the association between fictitious handles and their open
// files. Together with FS it completes the Appendix A picture: a legacy
// application holds only integer handles and calls the Win32-shaped methods
// below; whether a sentinel sits underneath is invisible.
type HandleTable struct {
	fs   *FS
	mu   sync.Mutex
	next Handle
	open map[Handle]File
}

// NewHandleTable returns a table opening files through fs (nil means a
// default FS).
func NewHandleTable(fs *FS) *HandleTable {
	if fs == nil {
		fs = New()
	}
	return &HandleTable{fs: fs, open: make(map[Handle]File)}
}

// insert registers f and returns its new handle.
func (t *HandleTable) insert(f File) Handle {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	h := t.next
	t.open[h] = f
	return h
}

// lookup resolves h.
func (t *HandleTable) lookup(h Handle) (File, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.open[h]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	return f, nil
}

// OpenFile opens path (passive or active) and returns its handle.
func (t *HandleTable) OpenFile(path string) (Handle, error) {
	f, err := t.fs.Open(path)
	if err != nil {
		return InvalidHandle, err
	}
	return t.insert(f), nil
}

// CreateFile opens path, creating a passive file if absent.
func (t *HandleTable) CreateFile(path string) (Handle, error) {
	f, err := t.fs.Create(path)
	if err != nil {
		return InvalidHandle, err
	}
	return t.insert(f), nil
}

// ReadFile reads from the handle's current position.
func (t *HandleTable) ReadFile(h Handle, p []byte) (int, error) {
	f, err := t.lookup(h)
	if err != nil {
		return 0, err
	}
	return f.Read(p)
}

// WriteFile writes at the handle's current position.
func (t *HandleTable) WriteFile(h Handle, p []byte) (int, error) {
	f, err := t.lookup(h)
	if err != nil {
		return 0, err
	}
	return f.Write(p)
}

// SetFilePointer repositions the handle (whence as in io.Seek*).
func (t *HandleTable) SetFilePointer(h Handle, off int64, whence int) (int64, error) {
	f, err := t.lookup(h)
	if err != nil {
		return 0, err
	}
	return f.Seek(off, whence)
}

// GetFileSize returns the file length.
func (t *HandleTable) GetFileSize(h Handle) (int64, error) {
	f, err := t.lookup(h)
	if err != nil {
		return 0, err
	}
	return f.Size()
}

// SetEndOfFile truncates or extends the file to n bytes.
func (t *HandleTable) SetEndOfFile(h Handle, n int64) error {
	f, err := t.lookup(h)
	if err != nil {
		return err
	}
	return f.Truncate(n)
}

// FlushFileBuffers flushes buffered state.
func (t *HandleTable) FlushFileBuffers(h Handle) error {
	f, err := t.lookup(h)
	if err != nil {
		return err
	}
	return f.Sync()
}

// LockFile acquires a byte-range lock; only active files with a locking
// program support it.
func (t *HandleTable) LockFile(h Handle, off, n int64) error {
	f, err := t.lookup(h)
	if err != nil {
		return err
	}
	if ch, ok := f.(*core.Handle); ok {
		return ch.Lock(off, n)
	}
	return wire.ErrUnsupported
}

// UnlockFile releases a byte-range lock.
func (t *HandleTable) UnlockFile(h Handle, off, n int64) error {
	f, err := t.lookup(h)
	if err != nil {
		return err
	}
	if ch, ok := f.(*core.Handle); ok {
		return ch.Unlock(off, n)
	}
	return wire.ErrUnsupported
}

// CloseHandle closes the file and retires the handle.
func (t *HandleTable) CloseHandle(h Handle) error {
	t.mu.Lock()
	f, ok := t.open[h]
	if ok {
		delete(t.open, h)
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	return f.Close()
}

// OpenCount returns the number of live handles (leak checking in tests).
func (t *HandleTable) OpenCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// CloseAll closes every open handle, returning the first error.
func (t *HandleTable) CloseAll() error {
	t.mu.Lock()
	files := make([]File, 0, len(t.open))
	for h, f := range t.open {
		files = append(files, f)
		delete(t.open, h)
	}
	t.mu.Unlock()
	var first error
	for _, f := range files {
		if err := f.Close(); first == nil {
			first = err
		}
	}
	return first
}
