package interpose_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/interpose"
	"repro/internal/program"
	"repro/internal/vfs"
)

func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

// legacyApp is code written purely against the File interface, with no
// knowledge of active files: it writes, seeks, reads back, and reports.
func legacyApp(f interpose.File, payload string) (string, error) {
	if _, err := f.Write([]byte(payload)); err != nil {
		return "", err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	out := make([]byte, len(payload))
	if _, err := io.ReadFull(f, out); err != nil {
		return "", err
	}
	if size, err := f.Size(); err != nil || size != int64(len(payload)) {
		return "", errors.Join(err, errors.New("size mismatch"))
	}
	return string(out), nil
}

func TestLegacyAppCannotTellActiveFromPassive(t *testing.T) {
	dir := t.TempDir()
	fs := interpose.New()

	passivePath := filepath.Join(dir, "plain.txt")
	passive, err := fs.Create(passivePath)
	if err != nil {
		t.Fatal(err)
	}
	defer passive.Close()

	activePath := filepath.Join(dir, "active.af")
	if err := vfs.Create(activePath, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	}); err != nil {
		t.Fatal(err)
	}
	active, err := fs.Open(activePath)
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()

	const payload = "identical behaviour either way"
	gotPassive, err := legacyApp(passive, payload)
	if err != nil {
		t.Fatalf("legacy app on passive file: %v", err)
	}
	gotActive, err := legacyApp(active, payload)
	if err != nil {
		t.Fatalf("legacy app on active file: %v", err)
	}
	if gotPassive != payload || gotActive != payload {
		t.Errorf("views = %q / %q, want %q", gotPassive, gotActive, payload)
	}
}

func TestOpenMissingPassive(t *testing.T) {
	fs := interpose.New()
	if _, err := fs.Open(filepath.Join(t.TempDir(), "nope.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want os.ErrNotExist", err)
	}
}

func TestOpenMissingActive(t *testing.T) {
	fs := interpose.New()
	if _, err := fs.Open(filepath.Join(t.TempDir(), "nope.af")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want os.ErrNotExist", err)
	}
}

func TestWithStrategyOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program:  vfs.ProgramSpec{Name: "passthrough"},
		Strategy: "thread",
		Cache:    "memory",
	}); err != nil {
		t.Fatal(err)
	}
	fs := interpose.New(interpose.WithStrategy(core.StrategyDirect))
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, ok := f.(*core.Handle)
	if !ok {
		t.Fatalf("active open returned %T", f)
	}
	if h.Strategy() != core.StrategyDirect {
		t.Errorf("Strategy = %v, want direct override", h.Strategy())
	}
}

func TestWithRegistry(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(program.Passthrough{})
	dir := t.TempDir()
	path := filepath.Join(dir, "f.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	}); err != nil {
		t.Fatal(err)
	}
	fs := interpose.New(interpose.WithRegistry(reg), interpose.WithStrategy(core.StrategyDirect))
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestRemoveDispatch(t *testing.T) {
	dir := t.TempDir()
	fs := interpose.New()

	passive := filepath.Join(dir, "p.txt")
	os.WriteFile(passive, []byte("x"), 0o644)
	if err := fs.Remove(passive); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(passive); !errors.Is(err, os.ErrNotExist) {
		t.Error("passive file survived Remove")
	}

	active := filepath.Join(dir, "a.af")
	vfs.Create(active, vfs.Manifest{Program: vfs.ProgramSpec{Name: "passthrough"}})
	if err := fs.Remove(active); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(vfs.DataPath(active)); !errors.Is(err, os.ErrNotExist) {
		t.Error("active data part survived Remove")
	}
}

func TestCopyDispatch(t *testing.T) {
	dir := t.TempDir()
	fs := interpose.New()

	src := filepath.Join(dir, "src.af")
	vfs.Create(src, vfs.Manifest{Program: vfs.ProgramSpec{Name: "passthrough"}, Cache: "disk"})
	os.WriteFile(vfs.DataPath(src), []byte("cargo"), 0o644)
	dst := filepath.Join(dir, "dst.af")
	if err := fs.Copy(src, dst); err != nil {
		t.Fatal(err)
	}

	// The copy is a fully functional, independent active file.
	f, err := fs.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "cargo" {
		t.Errorf("copied contents = (%q, %v)", got, err)
	}

	// Passive copy path.
	p1 := filepath.Join(dir, "one.txt")
	os.WriteFile(p1, []byte("passive"), 0o644)
	p2 := filepath.Join(dir, "two.txt")
	if err := fs.Copy(p1, p2); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(p2)
	if string(data) != "passive" {
		t.Errorf("passive copy = %q", data)
	}
}

func TestRenameDispatch(t *testing.T) {
	dir := t.TempDir()
	fs := interpose.New()
	src := filepath.Join(dir, "old.af")
	vfs.Create(src, vfs.Manifest{Program: vfs.ProgramSpec{Name: "passthrough"}})
	dst := filepath.Join(dir, "new.af")
	if err := fs.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Errorf("renamed manifest missing: %v", err)
	}

	p1 := filepath.Join(dir, "a.txt")
	os.WriteFile(p1, []byte("x"), 0o644)
	p2 := filepath.Join(dir, "b.txt")
	if err := fs.Rename(p1, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p2); err != nil {
		t.Errorf("renamed passive missing: %v", err)
	}
}

func TestPassiveFileFullInterface(t *testing.T) {
	dir := t.TempDir()
	fs := interpose.New()
	f, err := fs.Create(filepath.Join(dir, "full.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 3); err != nil || string(buf) != "3456" {
		t.Errorf("ReadAt = (%q, %v)", buf, err)
	}
	if _, err := f.WriteAt([]byte("XY"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if size, err := f.Size(); err != nil || size != 5 {
		t.Errorf("Size = (%d, %v)", size, err)
	}
	if err := f.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if pos, err := f.Seek(0, io.SeekStart); pos != 0 || err != nil {
		t.Errorf("Seek = (%d, %v)", pos, err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(f, got); err != nil || string(got) != "0XY34" {
		t.Errorf("final read = (%q, %v)", got, err)
	}
}
