package interpose_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/interpose"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// win32App is legacy code written purely against integer handles — the
// programming model of the paper's instrumented Win32 applications.
func win32App(t *interpose.HandleTable, path string) (string, error) {
	h, err := t.OpenFile(path)
	if err != nil {
		return "", err
	}
	defer t.CloseHandle(h)

	if _, err := t.WriteFile(h, []byte("handle-based i/o")); err != nil {
		return "", err
	}
	if _, err := t.SetFilePointer(h, 0, io.SeekStart); err != nil {
		return "", err
	}
	size, err := t.GetFileSize(h)
	if err != nil {
		return "", err
	}
	buf := make([]byte, size)
	if _, err := t.ReadFile(h, buf); err != nil {
		return "", err
	}
	if err := t.FlushFileBuffers(h); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestHandleTableTransparency(t *testing.T) {
	dir := t.TempDir()
	table := interpose.NewHandleTable(nil)

	passive := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(passive, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	active := filepath.Join(dir, "a.af")
	if err := vfs.Create(active, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	}); err != nil {
		t.Fatal(err)
	}

	gotPassive, err := win32App(table, passive)
	if err != nil {
		t.Fatalf("handle app on passive: %v", err)
	}
	gotActive, err := win32App(table, active)
	if err != nil {
		t.Fatalf("handle app on active: %v", err)
	}
	if gotPassive != "handle-based i/o" || gotActive != gotPassive {
		t.Errorf("views: passive %q, active %q", gotPassive, gotActive)
	}
	if n := table.OpenCount(); n != 0 {
		t.Errorf("OpenCount = %d after closes", n)
	}
}

func TestHandleTableBadHandle(t *testing.T) {
	table := interpose.NewHandleTable(nil)
	buf := make([]byte, 1)
	if _, err := table.ReadFile(42, buf); !errors.Is(err, interpose.ErrBadHandle) {
		t.Errorf("ReadFile err = %v, want ErrBadHandle", err)
	}
	if _, err := table.WriteFile(42, buf); !errors.Is(err, interpose.ErrBadHandle) {
		t.Errorf("WriteFile err = %v, want ErrBadHandle", err)
	}
	if err := table.CloseHandle(42); !errors.Is(err, interpose.ErrBadHandle) {
		t.Errorf("CloseHandle err = %v, want ErrBadHandle", err)
	}
	if _, err := table.GetFileSize(42); !errors.Is(err, interpose.ErrBadHandle) {
		t.Errorf("GetFileSize err = %v, want ErrBadHandle", err)
	}
}

func TestHandleTableDoubleCloseFails(t *testing.T) {
	dir := t.TempDir()
	table := interpose.NewHandleTable(nil)
	h, err := table.CreateFile(filepath.Join(dir, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.CloseHandle(h); err != nil {
		t.Fatal(err)
	}
	if err := table.CloseHandle(h); !errors.Is(err, interpose.ErrBadHandle) {
		t.Errorf("double close err = %v, want ErrBadHandle", err)
	}
}

func TestHandleTableDistinctHandles(t *testing.T) {
	dir := t.TempDir()
	table := interpose.NewHandleTable(nil)
	h1, err := table.CreateFile(filepath.Join(dir, "a.txt"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := table.CreateFile(filepath.Join(dir, "b.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 || h1 == interpose.InvalidHandle {
		t.Errorf("handles = %d, %d", h1, h2)
	}
	// Independent positions and contents.
	table.WriteFile(h1, []byte("one"))
	table.WriteFile(h2, []byte("two"))
	table.SetFilePointer(h1, 0, io.SeekStart)
	buf := make([]byte, 3)
	table.ReadFile(h1, buf)
	if string(buf) != "one" {
		t.Errorf("h1 = %q", buf)
	}
	table.CloseAll()
	if table.OpenCount() != 0 {
		t.Error("CloseAll left handles open")
	}
}

func TestHandleTableLocking(t *testing.T) {
	dir := t.TempDir()
	active := filepath.Join(dir, "l.af")
	if err := vfs.Create(active, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "locking"},
		Cache:   "memory",
	}); err != nil {
		t.Fatal(err)
	}
	table := interpose.NewHandleTable(nil)
	h1, err := table.OpenFile(active)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := table.OpenFile(active)
	if err != nil {
		t.Fatal(err)
	}
	defer table.CloseAll()

	if err := table.LockFile(h1, 0, 10); err != nil {
		t.Fatalf("LockFile: %v", err)
	}
	if err := table.LockFile(h2, 5, 10); err == nil {
		t.Error("overlapping LockFile on second handle succeeded")
	}
	if err := table.UnlockFile(h1, 0, 10); err != nil {
		t.Errorf("UnlockFile: %v", err)
	}

	// Passive files report unsupported, like the real stub would.
	passive := filepath.Join(dir, "p.txt")
	os.WriteFile(passive, nil, 0o644)
	hp, err := table.OpenFile(passive)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.LockFile(hp, 0, 1); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("passive LockFile err = %v, want ErrUnsupported", err)
	}
}
