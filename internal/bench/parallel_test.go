package bench_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestMeasureParallelDegrees(t *testing.T) {
	r := newRunner(t)
	for _, strategy := range []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect} {
		for _, degree := range []int{1, 4, 16} {
			cfg := bench.Config{
				Strategy:  strategy,
				Path:      bench.PathMemory,
				Op:        bench.OpRead,
				BlockSize: 64,
				Ops:       64,
			}
			res, err := r.MeasureParallel(cfg, degree)
			if err != nil {
				t.Fatalf("MeasureParallel(%v, %d): %v", strategy, degree, err)
			}
			if res.Parallel != degree || res.Total <= 0 || res.MicrosPerOp() <= 0 {
				t.Errorf("MeasureParallel(%v, %d) = %+v", strategy, degree, res)
			}
		}
	}
}

func TestMeasureParallelRejectsBadCells(t *testing.T) {
	r := newRunner(t)
	cfg := bench.Config{Strategy: core.StrategyThread, Path: bench.PathMemory, Op: bench.OpRead, BlockSize: 8, Ops: 4}
	if _, err := r.MeasureParallel(cfg, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	cfg.Strategy = core.StrategyProcess
	if _, err := r.MeasureParallel(cfg, 2); err == nil {
		t.Error("stream strategy accepted for parallel measurement")
	}
}

func TestRunParallelTable(t *testing.T) {
	r := newRunner(t)
	panels, err := r.RunParallel(bench.ParallelOptions{
		Ops:       32,
		BlockSize: 64,
		Degrees:   []int{1, 2},
		OpsFilter: bench.OpRead,
	})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if len(panels) != 1 {
		t.Fatalf("panels = %d, want 1", len(panels))
	}
	p := panels[0]
	for _, strategy := range []string{"procctl", "thread", "direct"} {
		if _, ok := p.Speedup(strategy, 2); !ok {
			t.Errorf("no speedup for %s: %+v", strategy, p.Micros[strategy])
		}
	}
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"parallel clients", "x1", "x2", "speedup@2", "procctl", "thread", "direct"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkParallelReadAt measures aggregate throughput of concurrent
// positioned reads on one shared handle per strategy — the tentpole's
// headline number. It uses the remote-source path with a realistic injected
// service latency, so each operation blocks on a genuine wait: exactly what
// Seq-correlated pipelining overlaps. Compare p1 to p16 within a strategy
// for the gain.
func BenchmarkParallelReadAt(b *testing.B) {
	for _, strategy := range []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect} {
		for _, degree := range []int{1, 4, 16} {
			b.Run(strategy.String()+"/p"+strconv.Itoa(degree), func(b *testing.B) {
				r, err := bench.NewRunner(b.TempDir())
				if err != nil {
					b.Fatalf("NewRunner: %v", err)
				}
				defer r.Close()
				r.SetRemoteLatency(200 * time.Microsecond)
				for i := 0; i < b.N; i++ {
					res, err := r.MeasureParallel(bench.Config{
						Strategy:  strategy,
						Path:      bench.PathRemote,
						Op:        bench.OpRead,
						BlockSize: 512,
						Ops:       512,
					}, degree)
					if err != nil {
						b.Fatalf("MeasureParallel: %v", err)
					}
					b.ReportMetric(res.MicrosPerOp(), "µs/op-agg")
				}
			})
		}
	}
}
