package bench

import (
	"bytes"
	"testing"
	"time"
)

// TestRunChaosSmoke runs a small sweep end to end: with faults injected the
// client must still complete the run (recovering via reconnect), and the
// table must render.
func TestRunChaosSmoke(t *testing.T) {
	r, err := NewRunner(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	points, err := r.RunChaos(ChaosOptions{
		Rates:     []float64{0, 0.05},
		Ops:       120,
		BlockSize: 64,
		OpTimeout: 2 * time.Second,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}

	clean, faulty := points[0], points[1]
	if clean.Errors != 0 || clean.Drops != 0 {
		t.Errorf("clean point saw faults: %+v", clean)
	}
	if faulty.Drops == 0 {
		t.Errorf("faulty point injected nothing: %+v", faulty)
	}
	if faulty.Reconnects == 0 {
		t.Errorf("faults without reconnects: %+v", faulty)
	}
	if faulty.Errors > faulty.Ops/10 {
		t.Errorf("too many unrecovered ops: %d of %d", faulty.Errors, faulty.Ops)
	}
	if faulty.Recoveries > 0 && faulty.MeanRecovery <= 0 {
		t.Errorf("recoveries recorded without latency: %+v", faulty)
	}

	var buf bytes.Buffer
	if err := WriteChaosTable(&buf, points); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty chaos table")
	}
}
