package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shm"
)

// The sessions sweep measures fleet-scale multiplexing: N concurrent
// sessions opened against one active file, timed together, with the
// process-wide descriptor gauges sampled around the opens. The MPSC lane
// plane is the cell under test — sessions share segments, so descriptors
// grow with segments (O(1) doorbells each), not with sessions. Dedicated
// shm and pipe sessions anchor the comparison at the smallest count; they
// spawn a process per session, which is exactly the cost the lane plane
// exists to avoid, so sweeping them to 1024 would measure the host's
// process limits rather than the data plane.

// SessionCounts are the sweep's session cohorts.
var SessionCounts = []int{64, 256, 1024}

// sessionsBlock keeps the per-op work small so the cell measures session
// multiplexing, not memcpy.
const sessionsBlock = 64

// sessionsOpsPerSession bounds the work each session performs; the cohort's
// aggregate op count is Sessions × this.
const sessionsOpsPerSession = 25

// SessionsOptions configures the sweep.
type SessionsOptions struct {
	Counts        []int // default SessionCounts
	OpsPerSession int   // default sessionsOpsPerSession
	Params        map[string]string
}

// SessionsResult is one (cell, cohort size) measurement.
type SessionsResult struct {
	Cell          string // "mpsc", "shm", "pipe"
	Sessions      int
	Block         int
	OpsPerSession int
	OpenMillis    float64       // wall clock to open the whole cohort
	Total         time.Duration // wall clock for all sessions' ops together
	// Descriptor deltas attributable to the cohort, from shm.SnapshotFDs.
	Segments     int64
	DoorbellFDs  int64
	LaneSessions int64
}

// MicrosPerOp reports aggregate wall-clock cost per operation across the
// whole cohort — lower means more throughput.
func (r SessionsResult) MicrosPerOp() float64 {
	ops := r.Sessions * r.OpsPerSession
	if ops == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(ops) / 1e3
}

// DoorbellsPerSegment reports the doorbell-fd cost per mapped segment; the
// MPSC plane's contract is that this stays constant as sessions grow. ok is
// false when the cohort mapped no segments (the pipe cell).
func (r SessionsResult) DoorbellsPerSegment() (float64, bool) {
	if r.Segments == 0 {
		return 0, false
	}
	return float64(r.DoorbellFDs) / float64(r.Segments), true
}

// sessionCells returns the sweep's cells for this platform. Each cell's
// counts are the cohort sizes it runs; the process-per-session baselines
// stay at the smallest cohort.
func sessionCells(counts []int) []struct {
	name   string
	params map[string]string
	counts []int
} {
	base := counts[:1]
	cells := []struct {
		name   string
		params map[string]string
		counts []int
	}{
		{"pipe", map[string]string{"readahead": "false"}, base},
	}
	if shm.Supported() {
		cells = append(cells,
			struct {
				name   string
				params map[string]string
				counts []int
			}{"shm", map[string]string{"transport": "shm", "readahead": "false"}, base},
			struct {
				name   string
				params map[string]string
				counts []int
			}{"mpsc", map[string]string{
				"transport": "shm",
				"shmlanes":  fmt.Sprint(shm.MaxLanes),
				"readahead": "false",
			}, counts},
		)
	}
	return cells
}

// RunSessions measures every cell of the session sweep. Cohort teardown is
// part of each cell: all handles close and shared segments drain before the
// next cell samples the gauges, so deltas are attributable.
func (r *Runner) RunSessions(opts SessionsOptions) ([]SessionsResult, error) {
	counts := opts.Counts
	if len(counts) == 0 {
		counts = SessionCounts
	}
	opsPer := opts.OpsPerSession
	if opsPer == 0 {
		opsPer = sessionsOpsPerSession
	}

	var results []SessionsResult
	for _, cell := range sessionCells(counts) {
		for _, n := range cell.counts {
			res, err := r.measureSessions(cell.name, cell.params, opts.Params, n, opsPer)
			if err != nil {
				return nil, fmt.Errorf("sessions %s/%d: %w", cell.name, n, err)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

func (r *Runner) measureSessions(cellName string, cellParams, extra map[string]string, sessions, opsPer int) (SessionsResult, error) {
	params := map[string]string{}
	for k, v := range extra {
		params[k] = v
	}
	for k, v := range cellParams {
		params[k] = v
	}

	// One manifest for the whole cohort: every session opens the same path,
	// which is what routes them onto shared lane segments in the mpsc cell.
	cfg := Config{
		Strategy:  core.StrategyProcCtl,
		Path:      PathMemory,
		Op:        OpRead,
		BlockSize: sessionsBlock,
		Ops:       opsPer,
		Params:    params,
	}
	h0, size, cleanup, err := r.Setup(cfg)
	if err != nil {
		return SessionsResult{}, err
	}
	defer cleanup()
	defer core.DrainSharedSegments()
	path := r.lastPath
	// Setup's probe handle is not part of the cohort: close it — and drain
	// the shared segment its open may have spawned — so the descriptor
	// deltas sampled below belong to the N sessions alone.
	h0.Close()
	core.DrainSharedSegments()

	before := shm.SnapshotFDs()
	handles := make([]*core.Handle, 0, sessions)
	closeAll := func() {
		for _, h := range handles {
			h.Close()
		}
		handles = nil
	}
	defer closeAll()

	openStart := time.Now()
	for i := 0; i < sessions; i++ {
		h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
		if err != nil {
			return SessionsResult{}, fmt.Errorf("open session %d: %w", i, err)
		}
		handles = append(handles, h)
	}
	openDur := time.Since(openStart)
	after := shm.SnapshotFDs()

	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s, h := range handles {
		wg.Add(1)
		go func(s int, h *core.Handle) {
			defer wg.Done()
			buf := make([]byte, sessionsBlock)
			for i := 0; i < opsPer; i++ {
				off := (int64(i*sessions+s) * sessionsBlock) % size
				if _, err := h.ReadAt(buf, off); err != nil {
					errs <- fmt.Errorf("session %d op %d: %w", s, i, err)
					return
				}
			}
		}(s, h)
	}
	wg.Wait()
	total := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return SessionsResult{}, err
	}

	res := SessionsResult{
		Cell:          cellName,
		Sessions:      sessions,
		Block:         sessionsBlock,
		OpsPerSession: opsPer,
		OpenMillis:    float64(openDur.Nanoseconds()) / 1e6,
		Total:         total,
		Segments:      after.Segments - before.Segments,
		DoorbellFDs:   after.DoorbellFDs - before.DoorbellFDs,
		LaneSessions:  after.LaneSessions - before.LaneSessions,
	}
	return res, nil
}

// WriteSessionsTable renders the session sweep.
func WriteSessionsTable(w io.Writer, results []SessionsResult) error {
	if len(results) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"session sweep — procctl, memory path, %dB reads, %d ops/session, descriptor deltas per cohort\n",
		results[0].Block, results[0].OpsPerSession); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s%10s%10s%12s%10s%10s%12s%12s\n",
		"cell", "sessions", "µs/op", "open ms", "segments", "bell fds", "lanes", "bells/seg"); err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%-8s%10d%10.1f%12.1f%10d%10d%12d",
			res.Cell, res.Sessions, res.MicrosPerOp(), res.OpenMillis,
			res.Segments, res.DoorbellFDs, res.LaneSessions); err != nil {
			return err
		}
		if dps, ok := res.DoorbellsPerSegment(); ok {
			if _, err := fmt.Fprintf(w, "%12.1f\n", dps); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%12s\n", "-"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
