package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/vfs"
)

// The backend sweep drives the same passthrough sentinel over each backend
// kind via the manifest's backend= parameter, so a new backend is a new
// workload for free: the cell differs only in what sits behind the seam —
// the sentinel's own memory (mem), a local file (nativefs), a read-only
// view (rofs), a quiet fault wrapper (errorfs, rate 0, measuring the
// wrapper's own overhead), or a FileServer round trip (remote). The default
// strategy is thread: in-process, so sentinel-private backends are seedable
// through the handle, and the numbers isolate backend cost from process
// transport cost (the Figure 6 panels already cover the latter).

// BackendNames are the sweep's columns, in display order.
var BackendNames = []string{"mem", "nativefs", "rofs", "errorfs", "remote"}

// BackendBlocks are the default block sizes: one syscall-dominated small
// block and one memcpy-visible large block.
var BackendBlocks = []int{32, 512}

// BackendResult is one (backend, block) cell of the sweep.
type BackendResult struct {
	Backend     string
	Block       int
	ReadMicros  float64
	WriteMicros float64 // 0 when the backend is read-only
	ReadOnly    bool
}

// BackendOptions configures the backend sweep.
type BackendOptions struct {
	Ops      int
	Blocks   []int         // default BackendBlocks
	Names    []string      // default BackendNames
	Strategy core.Strategy // default thread
}

// RunBackends measures per-op read (and, where writable, write) cost across
// backend kinds.
func (r *Runner) RunBackends(opts BackendOptions) ([]BackendResult, error) {
	ops := opts.Ops
	if ops == 0 {
		ops = DefaultOps
	}
	blocks := opts.Blocks
	if len(blocks) == 0 {
		blocks = BackendBlocks
	}
	names := opts.Names
	if len(names) == 0 {
		names = BackendNames
	}
	strategy := opts.Strategy
	if strategy == 0 {
		strategy = core.StrategyThread
	}

	var results []BackendResult
	for _, name := range names {
		for _, block := range blocks {
			res, err := r.backendCell(strategy, name, block, ops)
			if err != nil {
				return nil, fmt.Errorf("backend sweep %s/%d: %w", name, block, err)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

// backendCell provisions one backend-bound active file, seeds it, and times
// ops block reads (and writes, for writable backends) through the handle.
func (r *Runner) backendCell(strategy core.Strategy, name string, block, ops int) (BackendResult, error) {
	size := int64(block) * int64(ops)
	if size == 0 {
		size = int64(block)
	}
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i)
	}

	r.nextID++
	obj := fmt.Sprintf("bench-be-%d", r.nextID)

	seedFile := func(prefix string) (string, error) {
		dir, err := os.MkdirTemp(r.dir, prefix)
		if err != nil {
			return "", err
		}
		return dir, os.WriteFile(filepath.Join(dir, obj), content, 0o644)
	}

	var (
		spec          string
		seedViaHandle bool
		readOnly      bool
	)
	switch name {
	case "mem":
		spec, seedViaHandle = "mem", true
	case "nativefs":
		dir, err := seedFile("be-native")
		if err != nil {
			return BackendResult{}, err
		}
		spec = "nativefs:" + dir
	case "rofs":
		dir, err := seedFile("be-rofs")
		if err != nil {
			return BackendResult{}, err
		}
		spec, readOnly = "rofs:nativefs:"+dir, true
	case "errorfs":
		spec, seedViaHandle = "errorfs(rate=0,seed=1):mem", true
	case "remote":
		r.server.Put(obj, content)
		spec = "remote:" + r.addr
	default:
		return BackendResult{}, fmt.Errorf("unknown backend %q (want one of %v)", name, BackendNames)
	}

	path := filepath.Join(r.dir, fmt.Sprintf("bench-be-%d.af", r.nextID))
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		NoData:  true,
		Params:  map[string]string{vfs.ParamBackend: spec, vfs.ParamObject: obj},
	}); err != nil {
		return BackendResult{}, err
	}
	defer vfs.Remove(path)

	h, err := core.Open(path, core.Options{Strategy: strategy})
	if err != nil {
		return BackendResult{}, err
	}
	defer h.Close()
	if seedViaHandle {
		if _, err := h.WriteAt(content, 0); err != nil {
			return BackendResult{}, fmt.Errorf("seed via handle: %w", err)
		}
	}

	res := BackendResult{Backend: name, Block: block, ReadOnly: readOnly}
	buf := make([]byte, block)

	start := time.Now()
	for i := 0; i < ops; i++ {
		off := (int64(i) * int64(block)) % size
		if _, err := h.ReadAt(buf, off); err != nil {
			return BackendResult{}, fmt.Errorf("read op %d: %w", i, err)
		}
	}
	res.ReadMicros = float64(time.Since(start).Nanoseconds()) / float64(ops) / 1e3

	if !readOnly {
		start = time.Now()
		for i := 0; i < ops; i++ {
			off := (int64(i) * int64(block)) % size
			if _, err := h.WriteAt(buf, off); err != nil {
				return BackendResult{}, fmt.Errorf("write op %d: %w", i, err)
			}
		}
		res.WriteMicros = float64(time.Since(start).Nanoseconds()) / float64(ops) / 1e3
	}
	return res, nil
}

// WriteBackendTable renders the sweep, one row per (backend, block) cell.
func WriteBackendTable(w io.Writer, strategy core.Strategy, ops int, results []BackendResult) error {
	if len(results) == 0 {
		return nil
	}
	if strategy == 0 {
		strategy = core.StrategyThread
	}
	if _, err := fmt.Fprintf(w,
		"backend sweep — %s strategy, passthrough sentinel (%d ops per point)\n",
		strategy, ops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s%-8s%14s%14s\n", "backend", "block", "read µs/op", "write µs/op"); err != nil {
		return err
	}
	for _, row := range results {
		if _, err := fmt.Fprintf(w, "%-12s%-8d%14.2f", row.Backend, row.Block, row.ReadMicros); err != nil {
			return err
		}
		if row.ReadOnly {
			if _, err := fmt.Fprintf(w, "%14s\n", "ro"); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%14.2f\n", row.WriteMicros); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
