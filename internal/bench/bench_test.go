package bench_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/program"
)

func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

func newRunner(t *testing.T) *bench.Runner {
	t.Helper()
	r, err := bench.NewRunner(t.TempDir())
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestMeasureEveryCellVariant(t *testing.T) {
	r := newRunner(t)
	// A small sweep over every dimension proves each cell is measurable.
	for _, strategy := range []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect} {
		for _, path := range []bench.CachePath{bench.PathRemote, bench.PathDisk, bench.PathMemory} {
			for _, op := range []bench.Op{bench.OpRead, bench.OpWrite} {
				cfg := bench.Config{
					Strategy:  strategy,
					Path:      path,
					Op:        op,
					BlockSize: 32,
					Ops:       8,
				}
				res, err := r.Measure(cfg)
				if err != nil {
					t.Fatalf("Measure(%v/%v/%v): %v", strategy, path, op, err)
				}
				if res.Total <= 0 {
					t.Errorf("Measure(%v/%v/%v) total = %v", strategy, path, op, res.Total)
				}
				if res.MicrosPerOp() <= 0 {
					t.Errorf("MicrosPerOp = %v", res.MicrosPerOp())
				}
			}
		}
	}
}

func TestMeasurePlainProcessStreams(t *testing.T) {
	r := newRunner(t)
	for _, op := range []bench.Op{bench.OpRead, bench.OpWrite} {
		res, err := r.Measure(bench.Config{
			Strategy:  core.StrategyProcess,
			Path:      bench.PathDisk,
			Op:        op,
			BlockSize: 64,
			Ops:       8,
		})
		if err != nil {
			t.Fatalf("Measure(process/%v): %v", op, err)
		}
		if res.Total <= 0 {
			t.Errorf("total = %v", res.Total)
		}
	}
}

func TestMeasureBaselineAllPaths(t *testing.T) {
	r := newRunner(t)
	for _, path := range []bench.CachePath{bench.PathRemote, bench.PathDisk, bench.PathMemory} {
		for _, op := range []bench.Op{bench.OpRead, bench.OpWrite} {
			res, err := r.MeasureBaseline(path, op, 32, 8)
			if err != nil {
				t.Fatalf("MeasureBaseline(%v/%v): %v", path, op, err)
			}
			if res.Total <= 0 {
				t.Errorf("baseline total = %v", res.Total)
			}
		}
	}
}

func TestRunFigure6ShapeHolds(t *testing.T) {
	// A reduced Figure 6 (one panel, small op count) must reproduce the
	// paper's qualitative ordering: procctl (the paper's "Process" line)
	// costs more per read than thread, which costs more than direct.
	r := newRunner(t)
	panels, err := r.RunFigure6(bench.FigureOptions{
		Ops:             200,
		Blocks:          []int{128},
		Paths:           []bench.CachePath{bench.PathMemory},
		OpsFilter:       bench.OpRead,
		IncludeBaseline: true,
	})
	if err != nil {
		t.Fatalf("RunFigure6: %v", err)
	}
	if len(panels) != 1 {
		t.Fatalf("panels = %d, want 1", len(panels))
	}
	p := panels[0]
	procctl, ok1 := p.Value("procctl", 128)
	thread, ok2 := p.Value("thread", 128)
	direct, ok3 := p.Value("direct", 128)
	baseline, ok4 := p.Value("baseline", 128)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing cells: %+v", p.Cells)
	}
	if !(procctl > thread && thread > direct) {
		t.Errorf("ordering violated: procctl=%.2f thread=%.2f direct=%.2f",
			procctl, thread, direct)
	}
	// Direct should be within a small factor of baseline ("negligible
	// impact"); allow generous slack for a single noisy run.
	if direct > baseline*20+5 {
		t.Errorf("direct %.2fµs far above baseline %.2fµs", direct, baseline)
	}
}

func TestPanelTableRendering(t *testing.T) {
	p := &bench.Panel{
		Path: bench.PathRemote,
		Op:   bench.OpRead,
		Cells: []bench.Cell{
			{Strategy: "direct", Block: 8, MicrosOp: 1.5},
			{Strategy: "thread", Block: 8, MicrosOp: 3.25},
			{Strategy: "procctl", Block: 8, MicrosOp: 42},
			{Strategy: "baseline", Block: 8, MicrosOp: 1.4},
			{Strategy: "procctl", Block: 32, MicrosOp: 44},
		},
	}
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6(a) Read") {
		t.Errorf("missing title: %q", out)
	}
	// Legend order: procctl, thread, direct, then baseline.
	head := strings.SplitN(out, "\n", 3)[1]
	if !strings.Contains(head, "procctl") || strings.Index(head, "procctl") > strings.Index(head, "thread") {
		t.Errorf("column order wrong: %q", head)
	}
	if strings.Index(head, "thread") > strings.Index(head, "direct") {
		t.Errorf("column order wrong: %q", head)
	}
	if !strings.Contains(out, "42.0") {
		t.Errorf("missing value: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent cell: %q", out)
	}
}

func TestEnumStrings(t *testing.T) {
	tests := []struct {
		give fmt.Stringer
		want string
	}{
		{bench.PathRemote, "remote"},
		{bench.PathDisk, "disk"},
		{bench.PathMemory, "memory"},
		{bench.CachePath(9), "path(9)"},
		{bench.OpRead, "read"},
		{bench.OpWrite, "write"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMicrosPerOpZeroOps(t *testing.T) {
	var r bench.Result
	if got := r.MicrosPerOp(); got != 0 {
		t.Errorf("MicrosPerOp on zero ops = %v", got)
	}
}

func TestPanelTitles(t *testing.T) {
	tests := []struct {
		path bench.CachePath
		op   bench.Op
		want string
	}{
		{bench.PathRemote, bench.OpRead, "Figure 6(a) Read — sentinel uses a remote source (µs/op)"},
		{bench.PathDisk, bench.OpWrite, "Figure 6(b) Write — sentinel uses a local on-disk cache (µs/op)"},
		{bench.PathMemory, bench.OpRead, "Figure 6(c) Read — sentinel uses an in-memory cache (µs/op)"},
	}
	for _, tt := range tests {
		p := &bench.Panel{Path: tt.path, Op: tt.op}
		if got := p.Title(); got != tt.want {
			t.Errorf("Title = %q, want %q", got, tt.want)
		}
	}
}
