// Package bench is the measurement harness reproducing the paper's
// evaluation (§6, Figure 6): per-operation Read and Write overheads of the
// active-file implementation strategies for block sizes {8, 32, 128, 512,
// 2048} across the three Figure 5 critical paths — (a) remote source,
// (b) local on-disk cache, (c) in-memory cache — plus the direct-access
// baseline the paper reports as indistinguishable from DLL-only.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/vfs"
)

// BlockSizes are the x-axis points of every Figure 6 panel.
var BlockSizes = []int{8, 32, 128, 512, 2048}

// DefaultOps matches the paper's "time 1000 calls of each".
const DefaultOps = 1000

// CachePath identifies a Figure 5 critical path / Figure 6 panel.
type CachePath int

// The three panels.
const (
	PathRemote CachePath = iota + 1 // (a) sentinel uses a remote source
	PathDisk                        // (b) sentinel uses a local on-disk cache
	PathMemory                      // (c) sentinel uses an in-memory cache
)

// String returns the panel letter and description.
func (p CachePath) String() string {
	switch p {
	case PathRemote:
		return "remote"
	case PathDisk:
		return "disk"
	case PathMemory:
		return "memory"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// cacheMode returns the manifest cache mode realizing the panel.
func (p CachePath) cacheMode() string {
	switch p {
	case PathRemote:
		return "none"
	case PathDisk:
		return "disk"
	case PathMemory:
		return "memory"
	default:
		return "none"
	}
}

// Op is the measured operation.
type Op int

// Measured operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Config is one measurement cell.
type Config struct {
	Strategy  core.Strategy
	Path      CachePath
	Op        Op
	BlockSize int
	Ops       int
	// Program overrides the sentinel program; empty means "passthrough"
	// (the evaluation's null filter).
	Program string
	// Params are extra program parameters for ablation cells.
	Params map[string]string
}

// Result is the measured outcome of one cell.
type Result struct {
	Config
	Total time.Duration
}

// MicrosPerOp returns the per-operation cost in microseconds, the unit of
// Figure 6's y axes.
func (r Result) MicrosPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(r.Ops) / 1e3
}

// Runner provisions the environment for measurement cells: a scratch
// directory for active files and a block file server as the remote source.
type Runner struct {
	dir    string
	server *remote.FileServer
	addr   string
	nextID int
	// lastPath is the manifest path of the most recent Setup, for cells that
	// reopen the same active file repeatedly (churn).
	lastPath string
}

// NewRunner starts the remote service and returns a ready runner. Close it
// when done.
func NewRunner(dir string) (*Runner, error) {
	server := remote.NewFileServer()
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Runner{dir: dir, server: server, addr: addr}, nil
}

// Close stops the remote service and retires any warm sentinels the churn
// cells left parked and shared lane segments the session cells spawned, so a
// finished run leaks no subprocesses.
func (r *Runner) Close() error {
	core.DrainSentinelPool()
	core.DrainSharedSegments()
	return r.server.Close()
}

// SetRemoteLatency injects a fixed delay into every remote-service
// operation, simulating a distant source for crossover ablations.
func (r *Runner) SetRemoteLatency(d time.Duration) { r.server.SetLatency(d) }

// Setup provisions the active file for one cell and returns an opened
// handle plus the content length. The returned cleanup closes the handle.
// Setup work (population, sentinel spawn) is outside the measured region,
// as in the paper, whose graphs time only the ReadFile/WriteFile calls.
func (r *Runner) Setup(cfg Config) (*core.Handle, int64, func(), error) {
	r.nextID++
	objName := fmt.Sprintf("bench-%d", r.nextID)
	path := filepath.Join(r.dir, fmt.Sprintf("bench-%d.af", r.nextID))

	size := int64(cfg.BlockSize) * int64(cfg.Ops)
	if size == 0 {
		size = int64(cfg.BlockSize)
	}
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i)
	}
	r.server.Put(objName, content)

	programName := cfg.Program
	if programName == "" {
		programName = "passthrough"
	}
	m := vfs.Manifest{
		Program: vfs.ProgramSpec{Name: programName},
		Cache:   cfg.Path.cacheMode(),
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: r.addr, Path: objName},
		Params:  cfg.Params,
	}
	if err := vfs.Create(path, m); err != nil {
		return nil, 0, nil, err
	}
	r.lastPath = path

	h, err := core.Open(path, core.Options{Strategy: cfg.Strategy})
	if err != nil {
		return nil, 0, nil, err
	}
	cleanup := func() {
		h.Close()
		vfs.Remove(path)
	}
	return h, size, cleanup, nil
}

// Measure runs one cell and returns its result. It reproduces the paper's
// methodology: open once, then time cfg.Ops fixed-size block operations.
func (r *Runner) Measure(cfg Config) (Result, error) {
	if cfg.Ops == 0 {
		cfg.Ops = DefaultOps
	}
	h, size, cleanup, err := r.Setup(cfg)
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	buf := make([]byte, cfg.BlockSize)
	useStream := !cfg.Strategy.SupportsPositioning()

	start := time.Now()
	for i := 0; i < cfg.Ops; i++ {
		if cfg.Op == OpRead {
			if useStream {
				_, err = io.ReadFull(h, buf)
			} else {
				off := (int64(i) * int64(cfg.BlockSize)) % size
				_, err = h.ReadAt(buf, off)
			}
		} else {
			if useStream {
				_, err = h.Write(buf)
			} else {
				off := (int64(i) * int64(cfg.BlockSize)) % size
				_, err = h.WriteAt(buf, off)
			}
		}
		if err != nil {
			return Result{}, fmt.Errorf("%s op %d (%v/%v/%d): %w",
				cfg.Op, i, cfg.Strategy, cfg.Path, cfg.BlockSize, err)
		}
	}
	total := time.Since(start)
	return Result{Config: cfg, Total: total}, nil
}

// MeasureBaseline times direct access to the same storage tier with no
// sentinel — the paper's baseline, "indistinguishable from the DLL-only
// case".
func (r *Runner) MeasureBaseline(path CachePath, op Op, blockSize, ops int) (Result, error) {
	if ops == 0 {
		ops = DefaultOps
	}
	size := int64(blockSize) * int64(ops)
	content := make([]byte, size)
	buf := make([]byte, blockSize)

	type randomAccess interface {
		ReadAt(p []byte, off int64) (int, error)
		WriteAt(p []byte, off int64) (int, error)
	}
	var (
		store   randomAccess
		cleanup func()
	)
	switch path {
	case PathRemote:
		r.nextID++
		objName := fmt.Sprintf("baseline-%d", r.nextID)
		r.server.Put(objName, content)
		client, err := remote.Dial(r.addr, objName)
		if err != nil {
			return Result{}, err
		}
		store, cleanup = client, func() { client.Close() }
	case PathDisk:
		r.nextID++
		f, err := os.Create(filepath.Join(r.dir, fmt.Sprintf("baseline-%d.dat", r.nextID)))
		if err != nil {
			return Result{}, err
		}
		if _, err := f.Write(content); err != nil {
			f.Close()
			return Result{}, err
		}
		store, cleanup = f, func() { f.Close() }
	case PathMemory:
		store, cleanup = remote.NewMemSource(content), func() {}
	default:
		return Result{}, fmt.Errorf("bench: unknown path %v", path)
	}
	defer cleanup()

	var err error
	start := time.Now()
	for i := 0; i < ops; i++ {
		off := (int64(i) * int64(blockSize)) % size
		if op == OpRead {
			_, err = store.ReadAt(buf, off)
		} else {
			_, err = store.WriteAt(buf, off)
		}
		if err != nil {
			return Result{}, fmt.Errorf("baseline %s op %d: %w", op, i, err)
		}
	}
	total := time.Since(start)
	return Result{
		Config: Config{Path: path, Op: op, BlockSize: blockSize, Ops: ops},
		Total:  total,
	}, nil
}
