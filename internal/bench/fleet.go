package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/remote"
)

// The fleet sweep measures horizontal scaling: the same 16-client read load
// against fleets of 1, 2, and 4 FileServer shards, each shard's service
// capacity capped by a token-bucket bandwidth throttle so that same-host
// shards model independent machines (without the cap, every cell saturates
// the loopback memory bus and "scaling" measures nothing). The aggregate
// MB/s column should grow near-linearly with the shard count. A second pair
// of cells reads ONE hot file with and without 2-way replication: the
// replicated cell fans reads across both replicas (power-of-two-choices)
// and should approach twice the single-server ceiling.

const (
	// DefaultFleetClients is the concurrent reader count per cell.
	DefaultFleetClients = 16
	// DefaultFleetBlock is the read size.
	DefaultFleetBlock = 64 << 10
	// DefaultFleetOps is reads per client per cell.
	DefaultFleetOps = 48
	// DefaultFleetBandwidthMB caps each shard's service rate (MB/s).
	DefaultFleetBandwidthMB = 48
	// fleetObjectSize is each benchmark object's seeded size.
	fleetObjectSize = 1 << 20
)

// FleetOptions adjust the sharded-fleet scaling sweep.
type FleetOptions struct {
	// Shards are the scaling cells; empty means {1, 2, 4}.
	Shards []int
	// Clients is the concurrent reader count; 0 means DefaultFleetClients.
	Clients int
	// Block is the read size; 0 means DefaultFleetBlock.
	Block int
	// Ops is reads per client per cell; 0 means DefaultFleetOps.
	Ops int
	// BandwidthMB caps each shard's service rate in MB/s; 0 means
	// DefaultFleetBandwidthMB. Negative disables the cap (loopback ceiling).
	BandwidthMB int
	// HotReplicas is the replication factor of the hot-file cells; 0 means 2.
	HotReplicas int
}

// FleetResult is one cell of the sweep.
type FleetResult struct {
	Cell     string // "scale" (cold files spread over shards) or "hot" (one file)
	Shards   int
	Replicas int
	Clients  int
	Block    int
	Bytes    int64
	Elapsed  time.Duration
}

// MBPerSec returns the cell's aggregate read throughput.
func (r FleetResult) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / (1 << 20)
}

// RunFleet sweeps fleet sizes with the scaling load, then measures the
// hot-file replication pair.
func (r *Runner) RunFleet(opts FleetOptions) ([]FleetResult, error) {
	shards := opts.Shards
	if len(shards) == 0 {
		shards = []int{1, 2, 4}
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = DefaultFleetClients
	}
	block := opts.Block
	if block <= 0 {
		block = DefaultFleetBlock
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = DefaultFleetOps
	}
	bw := int64(opts.BandwidthMB)
	if bw == 0 {
		bw = DefaultFleetBandwidthMB
	}
	if bw < 0 {
		bw = 0 // uncapped
	}
	bw *= 1 << 20
	hotReplicas := opts.HotReplicas
	if hotReplicas <= 0 {
		hotReplicas = 2
	}

	var results []FleetResult
	for _, n := range shards {
		res, err := measureFleetScaleCell(n, clients, block, ops, bw)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	for _, reps := range []int{1, hotReplicas} {
		res, err := measureFleetHotCell(reps, clients, block, ops, bw)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// startFleetServers boots n bandwidth-capped shards under one shard map.
func startFleetServers(n, replicas int, hot []string, bw int64) (*fleet.Map, map[string]*remote.FileServer, func(), error) {
	byAddr := make(map[string]*remote.FileServer, n)
	addrs := make([]string, 0, n)
	stop := func() {
		for _, srv := range byAddr {
			srv.Close()
		}
	}
	for i := 0; i < n; i++ {
		srv := remote.NewFileServer()
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		addrs = append(addrs, addr)
		byAddr[addr] = srv
	}
	m, err := fleet.NewMap(1, addrs, replicas, hot)
	if err != nil {
		stop()
		return nil, nil, nil, err
	}
	for addr, srv := range byAddr {
		srv.SetFleet(m, addr)
		if bw > 0 {
			srv.SetBandwidth(bw)
		}
	}
	return m, byAddr, stop, nil
}

// fleetPayload builds the seeded object contents.
func fleetPayload(block int) []byte {
	size := fleetObjectSize
	if size < 2*block {
		size = 2 * block
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	return payload
}

// measureFleetScaleCell times clients readers over a fleet of n shards, each
// client pinned to an object whose primary is shard (client mod n) — even,
// deterministic demand, so the aggregate divided by the per-shard cap reads
// directly as scaling efficiency.
func measureFleetScaleCell(n, clients, block, ops int, bw int64) (FleetResult, error) {
	m, byAddr, stop, err := startFleetServers(n, 1, nil, bw)
	if err != nil {
		return FleetResult{}, err
	}
	defer stop()

	// One object per shard: probe names until each shard owns one, then seed
	// it directly on its primary (seeding bypasses the wire, so the cap does
	// not slow setup).
	payload := fleetPayload(block)
	names := make([]string, 0, n)
	owned := make(map[string]bool, n)
	for j := 0; len(names) < n; j++ {
		if j > 100000 {
			return FleetResult{}, fmt.Errorf("fleet bench: ring never placed an object on every shard")
		}
		name := fmt.Sprintf("scale/obj-%d", j)
		primary := m.Primary(name)
		if owned[primary] {
			continue
		}
		owned[primary] = true
		byAddr[primary].Put(name, payload)
		names = append(names, name)
	}

	fl := fleet.New(m, fleet.Options{Dial: remote.DialOptions{OpTimeout: 30 * time.Second}})
	objs := make([]backend.Object, clients)
	for i := range objs {
		obj, err := fl.Open(names[i%n])
		if err != nil {
			return FleetResult{}, err
		}
		objs[i] = obj
	}
	defer func() {
		for _, o := range objs {
			o.Close()
		}
	}()

	bytes, elapsed, err := timeFleetReaders(objs, block, ops, len(payload))
	if err != nil {
		return FleetResult{}, err
	}
	return FleetResult{
		Cell: "scale", Shards: n, Replicas: 1, Clients: clients, Block: block,
		Bytes: bytes, Elapsed: elapsed,
	}, nil
}

// measureFleetHotCell times clients readers all hammering ONE file, served by
// `replicas` shards (replicas == 1 is the single-server baseline).
func measureFleetHotCell(replicas, clients, block, ops int, bw int64) (FleetResult, error) {
	m, _, stop, err := startFleetServers(replicas, replicas, []string{"hot/*"}, bw)
	if err != nil {
		return FleetResult{}, err
	}
	defer stop()

	// Seed through the fleet: a replicated write lands on every owner.
	payload := fleetPayload(block)
	seeder := fleet.New(m, fleet.Options{Dial: remote.DialOptions{OpTimeout: 60 * time.Second}})
	sobj, err := seeder.Open("hot/obj")
	if err != nil {
		return FleetResult{}, err
	}
	if _, err := sobj.WriteAt(payload, 0); err != nil {
		sobj.Close()
		return FleetResult{}, err
	}
	sobj.Close()

	fl := fleet.New(m, fleet.Options{Dial: remote.DialOptions{OpTimeout: 30 * time.Second}})
	objs := make([]backend.Object, clients)
	for i := range objs {
		obj, err := fl.Open("hot/obj")
		if err != nil {
			return FleetResult{}, err
		}
		objs[i] = obj
	}
	defer func() {
		for _, o := range objs {
			o.Close()
		}
	}()

	bytes, elapsed, err := timeFleetReaders(objs, block, ops, len(payload))
	if err != nil {
		return FleetResult{}, err
	}
	return FleetResult{
		Cell: "hot", Shards: replicas, Replicas: replicas, Clients: clients,
		Block: block, Bytes: bytes, Elapsed: elapsed,
	}, nil
}

// timeFleetReaders drives every object with ops sequential block reads from
// its own goroutine, all released together, and returns total bytes moved.
func timeFleetReaders(objs []backend.Object, block, ops, size int) (int64, time.Duration, error) {
	var (
		wg       sync.WaitGroup
		moved    atomic.Int64
		firstErr atomic.Pointer[error]
	)
	start := make(chan struct{})
	for i, obj := range objs {
		wg.Add(1)
		go func(i int, obj backend.Object) {
			defer wg.Done()
			buf := make([]byte, block)
			<-start
			for k := 0; k < ops; k++ {
				off := int64(((i*ops + k) * block) % (size - block))
				n, err := obj.ReadAt(buf, off)
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				moved.Add(int64(n))
			}
		}(i, obj)
	}
	begin := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	if errp := firstErr.Load(); errp != nil {
		return 0, 0, *errp
	}
	return moved.Load(), elapsed, nil
}

// WriteFleetTable renders the sweep as text: the scaling cells with speedup
// against the single-shard cell, then the hot-file pair.
func WriteFleetTable(w io.Writer, opts FleetOptions, results []FleetResult) error {
	clients := opts.Clients
	if clients <= 0 {
		clients = DefaultFleetClients
	}
	bwMB := opts.BandwidthMB
	if bwMB == 0 {
		bwMB = DefaultFleetBandwidthMB
	}
	if _, err := fmt.Fprintf(w, "sharded fleet — aggregate read throughput (%d clients, %d MB/s per-shard cap)\n", clients, bwMB); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s%8s%10s%8s%12s%10s\n", "cell", "shards", "replicas", "block", "MB/s", "speedup"); err != nil {
		return err
	}
	base := map[string]float64{}
	for _, res := range results {
		if res.Cell == "scale" && res.Shards == 1 {
			base["scale"] = res.MBPerSec()
		}
		if res.Cell == "hot" && res.Replicas == 1 {
			base["hot"] = res.MBPerSec()
		}
	}
	for _, res := range results {
		speedup := ""
		if b := base[res.Cell]; b > 0 {
			speedup = fmt.Sprintf("%.2fx", res.MBPerSec()/b)
		}
		if _, err := fmt.Fprintf(w, "%-10s%8d%10d%8d%12.1f%10s\n",
			res.Cell, res.Shards, res.Replicas, res.Block, res.MBPerSec(), speedup); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
