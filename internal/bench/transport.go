package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/shm"
)

// The transport sweep isolates the control-channel carrier cost: the same
// procctl sentinel, the same sequential small-block reads, once over the
// pipe pair and once over the shared-memory rings. Read-ahead is disabled in
// both cells — the prefetch window hides the round trip for either carrier,
// and this sweep exists to measure exactly the cost the window hides (the
// same reasoning the parallel sweeps use). Small blocks keep the memcpy
// negligible, so the number is almost purely per-op carrier overhead.

// TransportBlocks are the sweep's default block sizes: the small-block
// regime where the per-frame syscall pair dominates the pipe path.
var TransportBlocks = []int{8, 32, 128}

// TransportResult is one block-size row of the carrier sweep.
type TransportResult struct {
	Block      int
	PipeMicros float64 // µs/op over the pipe carrier
	ShmMicros  float64 // µs/op over the shm ring carrier; 0 if unsupported
}

// Speedup returns pipe/shm — how many times faster the ring carrier is.
func (t TransportResult) Speedup() float64 {
	if t.ShmMicros == 0 {
		return 0
	}
	return t.PipeMicros / t.ShmMicros
}

// TransportOptions configures the carrier sweep.
type TransportOptions struct {
	Ops    int
	Blocks []int     // default TransportBlocks
	Path   CachePath // default PathMemory (the carrier-bound panel)
	Params map[string]string
}

// RunTransports measures sequential procctl reads per block size over both
// carriers. On platforms without shm support the ShmMicros column is zero.
func (r *Runner) RunTransports(opts TransportOptions) ([]TransportResult, error) {
	ops := opts.Ops
	if ops == 0 {
		ops = DefaultOps
	}
	blocks := opts.Blocks
	if len(blocks) == 0 {
		blocks = TransportBlocks
	}
	path := opts.Path
	if path == 0 {
		path = PathMemory
	}

	cell := func(block int, carrier string) (float64, error) {
		params := map[string]string{"transport": carrier, "readahead": "false"}
		for k, v := range opts.Params {
			if k != "transport" && k != "readahead" {
				params[k] = v
			}
		}
		res, err := r.Measure(Config{
			Strategy:  core.StrategyProcCtl,
			Path:      path,
			Op:        OpRead,
			BlockSize: block,
			Ops:       ops,
			Params:    params,
		})
		if err != nil {
			return 0, fmt.Errorf("transport sweep %s/%d: %w", carrier, block, err)
		}
		return res.MicrosPerOp(), nil
	}

	var results []TransportResult
	for _, block := range blocks {
		row := TransportResult{Block: block}
		var err error
		if row.PipeMicros, err = cell(block, "pipe"); err != nil {
			return nil, err
		}
		if shm.Supported() {
			if row.ShmMicros, err = cell(block, "shm"); err != nil {
				return nil, err
			}
		}
		results = append(results, row)
	}
	return results, nil
}

// WriteTransportTable renders the carrier sweep with its speedup column.
func WriteTransportTable(w io.Writer, path CachePath, ops int, results []TransportResult) error {
	if len(results) == 0 {
		return nil
	}
	if path == 0 {
		path = PathMemory
	}
	if _, err := fmt.Fprintf(w,
		"transport sweep — procctl sequential reads, %s path, read-ahead off (%d ops per point)\n",
		path, ops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s%12s%12s%12s\n", "block", "pipe µs/op", "shm µs/op", "speedup"); err != nil {
		return err
	}
	for _, row := range results {
		if _, err := fmt.Fprintf(w, "%-10d%12.2f", row.Block, row.PipeMicros); err != nil {
			return err
		}
		if row.ShmMicros > 0 {
			if _, err := fmt.Fprintf(w, "%12.2f%11.2fx\n", row.ShmMicros, row.Speedup()); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%12s%12s\n", "n/a", "n/a"); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
