package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/shm"
)

// The transport sweep isolates the control-channel carrier cost: the same
// procctl sentinel, the same sequential small-block reads, once over the
// pipe pair and once over the shared-memory rings. Read-ahead is disabled in
// both cells — the prefetch window hides the round trip for either carrier,
// and this sweep exists to measure exactly the cost the window hides (the
// same reasoning the parallel sweeps use). Small blocks keep the memcpy
// negligible, so the number is almost purely per-op carrier overhead.

// TransportBlocks are the sweep's default block sizes: the small-block
// regime where the per-frame syscall pair dominates the pipe path.
var TransportBlocks = []int{8, 32, 128}

// TransportResult is one block-size row of the carrier sweep.
type TransportResult struct {
	Block      int
	PipeMicros float64 // µs/op over the pipe carrier
	ShmMicros  float64 // µs/op over the shm ring carrier; 0 if unsupported
}

// Speedup returns pipe/shm — how many times faster the ring carrier is.
func (t TransportResult) Speedup() float64 {
	if t.ShmMicros == 0 {
		return 0
	}
	return t.PipeMicros / t.ShmMicros
}

// TransportOptions configures the carrier sweep.
type TransportOptions struct {
	Ops    int
	Blocks []int     // default TransportBlocks
	Path   CachePath // default PathMemory (the carrier-bound panel)
	Params map[string]string
}

// RunTransports measures sequential procctl reads per block size over both
// carriers. On platforms without shm support the ShmMicros column is zero.
func (r *Runner) RunTransports(opts TransportOptions) ([]TransportResult, error) {
	ops := opts.Ops
	if ops == 0 {
		ops = DefaultOps
	}
	blocks := opts.Blocks
	if len(blocks) == 0 {
		blocks = TransportBlocks
	}
	path := opts.Path
	if path == 0 {
		path = PathMemory
	}

	cell := func(block int, carrier string) (float64, error) {
		params := map[string]string{"transport": carrier, "readahead": "false"}
		for k, v := range opts.Params {
			if k != "transport" && k != "readahead" {
				params[k] = v
			}
		}
		res, err := r.Measure(Config{
			Strategy:  core.StrategyProcCtl,
			Path:      path,
			Op:        OpRead,
			BlockSize: block,
			Ops:       ops,
			Params:    params,
		})
		if err != nil {
			return 0, fmt.Errorf("transport sweep %s/%d: %w", carrier, block, err)
		}
		return res.MicrosPerOp(), nil
	}

	var results []TransportResult
	for _, block := range blocks {
		row := TransportResult{Block: block}
		var err error
		if row.PipeMicros, err = cell(block, "pipe"); err != nil {
			return nil, err
		}
		if shm.Supported() {
			if row.ShmMicros, err = cell(block, "shm"); err != nil {
				return nil, err
			}
		}
		results = append(results, row)
	}
	return results, nil
}

// The syscall-economy cells complement the latency rows: the same procctl
// sentinel driven by 16 pipelined clients, once per carrier, reporting the
// wakeup counters instead of µs/op. Pipelining is what makes the economy
// visible — a sequential client's every frame is a wakeup by construction,
// while 16 concurrent exchanges give both the group-committing batch writer
// and the drain-mode receive loop clumps to amortize.

// TransportEconomyClients is the pipelined client count of the economy
// cells — the sweep's saturating degree.
const TransportEconomyClients = 16

// transportEconomyBlock keeps the economy cells in the small-block regime,
// where per-frame wakeup cost dominates.
const transportEconomyBlock = 64

// TransportEconomy is one carrier's syscall-economy cell.
type TransportEconomy struct {
	Carrier     string // "pipe" or "shm"
	Clients     int
	Block       int
	MicrosPerOp float64 // aggregate, for cross-checking against the latency rows
	Doorbells   uint64  // eventfd doorbells rung (shm; both rings, both sides)
	Suppressed  uint64  // ring wakeups avoided (peer running or flush-coalesced)
	RecvFrames  uint64  // response frames the client receive loop decoded
	RecvWakeups uint64  // read syscalls that delivered them (0 on shm)
	Submitter   string  // flush backend: "io_uring" or "portable"
	Flushes     uint64  // submission flushes (write syscalls, or ring enters)
	Frames      uint64  // command frames those flushes carried
}

// FramesPerFlush reports command frames per submission flush — the send-side
// group-commit amortization; ok is false when the channel never flushed.
func (e TransportEconomy) FramesPerFlush() (float64, bool) {
	if e.Flushes == 0 {
		return 0, false
	}
	return float64(e.Frames) / float64(e.Flushes), true
}

// DoorbellsPerFrame reports doorbells rung per frame moved across the rings.
// Each exchange is one command frame plus one response frame, so the frame
// total is 2× the decoded response count. Below 1.0 means coalescing and
// running-peer suppression are beating one-wakeup-per-frame; ok is false off
// the shm carrier.
func (e TransportEconomy) DoorbellsPerFrame() (float64, bool) {
	if e.Carrier != "shm" || e.RecvFrames == 0 {
		return 0, false
	}
	return float64(e.Doorbells) / float64(2*e.RecvFrames), true
}

// FramesPerWakeup reports response frames decoded per receive-side read
// syscall — the drain-mode amortization. ok is false when the receive path
// made no reads (the shm carrier).
func (e TransportEconomy) FramesPerWakeup() (float64, bool) {
	if e.RecvWakeups == 0 {
		return 0, false
	}
	return float64(e.RecvFrames) / float64(e.RecvWakeups), true
}

// RunTransportEconomy measures the syscall-economy cell for each supported
// carrier: 16 pipelined clients, small blocks, read-ahead off.
func (r *Runner) RunTransportEconomy(opts TransportOptions) ([]TransportEconomy, error) {
	ops := opts.Ops
	if ops == 0 {
		ops = DefaultOps
	}
	path := opts.Path
	if path == 0 {
		path = PathMemory
	}
	carriers := []string{"pipe"}
	if shm.Supported() {
		carriers = append(carriers, "shm")
	}
	var cells []TransportEconomy
	for _, carrier := range carriers {
		params := map[string]string{"transport": carrier, "readahead": "false"}
		for k, v := range opts.Params {
			if k != "transport" && k != "readahead" {
				params[k] = v
			}
		}
		res, err := r.MeasureParallel(Config{
			Strategy:  core.StrategyProcCtl,
			Path:      path,
			Op:        OpRead,
			BlockSize: transportEconomyBlock,
			Ops:       ops,
			Params:    params,
		}, TransportEconomyClients)
		if err != nil {
			return nil, fmt.Errorf("transport economy %s: %w", carrier, err)
		}
		cells = append(cells, TransportEconomy{
			Carrier:     carrier,
			Clients:     TransportEconomyClients,
			Block:       transportEconomyBlock,
			MicrosPerOp: res.MicrosPerOp(),
			Doorbells:   res.Doorbells,
			Suppressed:  res.Suppressed,
			RecvFrames:  res.RecvFrames,
			RecvWakeups: res.RecvWakeups,
			Submitter:   res.Submitter,
			Flushes:     res.BatchFlushes,
			Frames:      res.BatchFrames,
		})
	}
	return cells, nil
}

// WriteTransportEconomyTable renders the syscall-economy cells.
func WriteTransportEconomyTable(w io.Writer, path CachePath, ops int, cells []TransportEconomy) error {
	if len(cells) == 0 {
		return nil
	}
	if path == 0 {
		path = PathMemory
	}
	if _, err := fmt.Fprintf(w,
		"syscall economy — procctl, %s path, %d pipelined clients, %dB reads (%d ops per cell)\n",
		path, TransportEconomyClients, transportEconomyBlock, ops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s%10s%12s%12s%12s%12s%12s%13s\n",
		"carrier", "µs/op", "doorbells", "suppressed", "bells/frame", "frames/wake",
		"submitter", "frames/flush"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%-10s%10.1f%12d%12d", c.Carrier, c.MicrosPerOp, c.Doorbells, c.Suppressed); err != nil {
			return err
		}
		if dpf, ok := c.DoorbellsPerFrame(); ok {
			if _, err := fmt.Fprintf(w, "%12.3f", dpf); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%12s", "-"); err != nil {
			return err
		}
		if fpw, ok := c.FramesPerWakeup(); ok {
			if _, err := fmt.Fprintf(w, "%12.1f", fpw); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%12s", "-"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%12s", c.Submitter); err != nil {
			return err
		}
		if fpf, ok := c.FramesPerFlush(); ok {
			if _, err := fmt.Fprintf(w, "%13.2f\n", fpf); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%13s\n", "-"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTransportTable renders the carrier sweep with its speedup column.
func WriteTransportTable(w io.Writer, path CachePath, ops int, results []TransportResult) error {
	if len(results) == 0 {
		return nil
	}
	if path == 0 {
		path = PathMemory
	}
	if _, err := fmt.Fprintf(w,
		"transport sweep — procctl sequential reads, %s path, read-ahead off (%d ops per point)\n",
		path, ops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s%12s%12s%12s\n", "block", "pipe µs/op", "shm µs/op", "speedup"); err != nil {
		return err
	}
	for _, row := range results {
		if _, err := fmt.Fprintf(w, "%-10d%12.2f", row.Block, row.PipeMicros); err != nil {
			return err
		}
		if row.ShmMicros > 0 {
			if _, err := fmt.Fprintf(w, "%12.2f%11.2fx\n", row.ShmMicros, row.Speedup()); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%12s%12s\n", "n/a", "n/a"); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
