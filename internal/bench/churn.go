package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// The churn sweep measures open/close cost — the overhead the paper's
// sentinel-per-file design pays on every first touch. A procctl open is a
// fork+exec+handshake; with a warm sentinel pool (manifest param "pool") it
// collapses to a pipe round trip, and this sweep quantifies exactly that gap
// against the in-process strategies.

// DefaultChurnOpens is the open/close cycle count per churn cell.
const DefaultChurnOpens = 100

// DefaultChurnPool is the warm-pool size used by the pooled churn cell.
const DefaultChurnPool = 4

// poolRecoverTimeout caps the untimed wait for pool replenishment between
// warm churn cycles.
const poolRecoverTimeout = 2 * time.Second

// waitForIdle polls until at least want warm sentinels are parked for path,
// giving up after timeout (the next open then simply measures whatever state
// the pool is in).
func waitForIdle(path string, want int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for core.IdleSentinels(path) < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// ChurnResult is one churn cell: Opens open/touch/close cycles against one
// active file, Total summing the Open plus first-read pairs — close is
// outside the timed region. Timing open-to-first-byte (not Open alone) keeps
// the cells comparable: a cold procctl Open returns as soon as fork+exec
// does, deferring child boot to the first operation, while a warm open's
// rebind round trip only completes on a booted child. MicrosPerOpen is
// therefore time-to-first-byte latency.
type ChurnResult struct {
	Strategy string // e.g. "procctl-cold", "procctl-warm", "thread"
	Opens    int
	Total    time.Duration
}

// MicrosPerOpen returns the average open latency in microseconds.
func (r ChurnResult) MicrosPerOpen() float64 {
	if r.Opens == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(r.Opens) / 1e3
}

// ChurnOptions adjust a churn sweep.
type ChurnOptions struct {
	// Opens per cell; 0 means DefaultChurnOpens.
	Opens int
	// Pool is the warm-pool size for the pooled procctl cell; 0 means
	// DefaultChurnPool.
	Pool int
	// Params are extra manifest parameters applied to every cell.
	Params map[string]string
}

// MeasureChurn times opens opens of one active file under strategy,
// performing a one-block read after each open (proving the session is live)
// and closing before the next cycle. label names the resulting cell.
// prewarm > 0 adds a "pool" manifest param and synchronously fills the warm
// sentinel pool before the first timed open.
func (r *Runner) MeasureChurn(label string, strategy core.Strategy, opens, prewarm int, params map[string]string) (ChurnResult, error) {
	if opens <= 0 {
		opens = DefaultChurnOpens
	}
	cellParams := map[string]string{}
	for k, v := range params {
		cellParams[k] = v
	}
	if prewarm > 0 {
		cellParams["pool"] = fmt.Sprint(prewarm)
	}

	// One active file reused across all cycles; Setup opens it once, which we
	// use only to provision the manifest — that handle closes immediately.
	h, _, cleanup, err := r.Setup(Config{
		Strategy:  strategy,
		Path:      PathDisk,
		Op:        OpRead,
		BlockSize: 8,
		Ops:       1,
		Params:    cellParams,
	})
	if err != nil {
		return ChurnResult{}, err
	}
	path := r.lastPath
	h.Close()
	defer cleanup()

	if prewarm > 0 {
		// Drain before cleanup removes the active file (defers run LIFO), so
		// in-flight background replenishes never race the file's removal.
		defer core.DrainSentinelPool()
		if _, err := core.PrewarmSentinels(path); err != nil {
			return ChurnResult{}, fmt.Errorf("prewarm %s: %w", label, err)
		}
	}

	buf := make([]byte, 8)
	var total time.Duration
	for i := 0; i < opens; i++ {
		start := time.Now()
		h, err := core.Open(path, core.Options{Strategy: strategy})
		if err != nil {
			return ChurnResult{}, fmt.Errorf("churn %s open %d: %w", label, i, err)
		}
		_, rerr := h.ReadAt(buf, 0)
		total += time.Since(start)
		if rerr != nil {
			h.Close()
			return ChurnResult{}, fmt.Errorf("churn %s touch %d: %w", label, i, rerr)
		}
		if err := h.Close(); err != nil {
			return ChurnResult{}, fmt.Errorf("churn %s close %d: %w", label, i, err)
		}
		if prewarm > 0 {
			// Untimed think time: let the background replenish catch up, so
			// every timed open measures the steady-state warm path. Without
			// this, a zero-think-time loop churns faster than fork+exec can
			// refill any finite pool and the tail of the sweep silently
			// measures cold fallbacks instead of the pool.
			waitForIdle(path, prewarm, poolRecoverTimeout)
		}
	}
	return ChurnResult{Strategy: label, Opens: opens, Total: total}, nil
}

// RunChurn sweeps open/close churn across the cells that matter for the warm
// pool story: cold procctl (fork+exec per open), warm procctl (pool rebind
// per open), and the in-process thread and direct strategies as floors.
func (r *Runner) RunChurn(opts ChurnOptions) ([]ChurnResult, error) {
	opens := opts.Opens
	if opens <= 0 {
		opens = DefaultChurnOpens
	}
	pool := opts.Pool
	if pool <= 0 {
		pool = DefaultChurnPool
	}
	cells := []struct {
		label    string
		strategy core.Strategy
		prewarm  int
	}{
		{"procctl-cold", core.StrategyProcCtl, 0},
		{"procctl-warm", core.StrategyProcCtl, pool},
		{"thread", core.StrategyThread, 0},
		{"direct", core.StrategyDirect, 0},
	}
	var results []ChurnResult
	for _, cell := range cells {
		res, err := r.MeasureChurn(cell.label, cell.strategy, opens, cell.prewarm, opts.Params)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	core.DrainSentinelPool()
	return results, nil
}

// WriteChurnTable renders churn results as an aligned table, with each row's
// speedup relative to the cold procctl anchor.
func WriteChurnTable(w io.Writer, results []ChurnResult) error {
	if len(results) == 0 {
		return nil
	}
	var cold float64
	for _, res := range results {
		if res.Strategy == "procctl-cold" {
			cold = res.MicrosPerOpen()
		}
	}
	if _, err := fmt.Fprintf(w, "open/close churn — disk cache (%d opens per cell, open-to-first-byte latency)\n", results[0].Opens); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s%12s%14s\n", "strategy", "µs/open", "vs cold"); err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%-14s%12.1f", res.Strategy, res.MicrosPerOpen()); err != nil {
			return err
		}
		if cold > 0 && res.MicrosPerOpen() > 0 {
			if _, err := fmt.Fprintf(w, "%13.2fx", cold/res.MicrosPerOpen()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
