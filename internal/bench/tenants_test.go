package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestRunTenantsSweep(t *testing.T) {
	r := newRunner(t)
	opts := bench.TenantOptions{Sessions: []int{8, 16}, Tenants: 4, Ops: 3, Block: 16}
	results, err := r.RunTenants(opts)
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d cells, want 2", len(results))
	}
	for _, res := range results {
		// Targets divide by the fanout, so admitted capacity is exact.
		if res.Admitted != res.Sessions {
			t.Errorf("cell %d: admitted %d of %d sessions", res.Sessions, res.Admitted, res.Sessions)
		}
		if res.RejectedQuota == 0 {
			t.Errorf("cell %d: quota never engaged", res.Sessions)
		}
		if want := uint64(res.Admitted * 3); res.Ops != want {
			t.Errorf("cell %d: ops = %d, want %d", res.Sessions, res.Ops, want)
		}
		if res.MicrosPerOp() <= 0 {
			t.Errorf("cell %d: non-positive µs/op", res.Sessions)
		}
		if !res.DrainClean {
			t.Errorf("cell %d: drain did not quiesce cleanly", res.Sessions)
		}
		if res.DrainTime <= 0 {
			t.Errorf("cell %d: drain not measured", res.Sessions)
		}
	}

	var buf bytes.Buffer
	if err := bench.WriteTenantTable(&buf, opts, results); err != nil {
		t.Fatalf("WriteTenantTable: %v", err)
	}
	out := buf.String()
	for _, col := range []string{"sessions", "rejected", "drain ms", "clean"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing %q column:\n%s", col, out)
		}
	}
}

func TestTenantRoundsTargetUpToFanout(t *testing.T) {
	r := newRunner(t)
	// 10 sessions over 4 tenants rounds up to a quota of 3 each = 12.
	results, err := r.RunTenants(bench.TenantOptions{Sessions: []int{10}, Tenants: 4, Ops: 1})
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	if results[0].Sessions != 12 || results[0].Admitted != 12 {
		t.Errorf("cell = %+v, want 12 sessions admitted", results[0])
	}
}
