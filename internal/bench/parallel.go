package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// ParallelDegrees are the client counts of the concurrency sweep: the
// sequential anchor, a small pool, and enough clients to saturate the
// session pipeline.
var ParallelDegrees = []int{1, 4, 16}

// ParallelResult is one measured (cell, degree) point: cfg.Ops operations
// were spread over Parallel concurrent clients and took Total wall-clock
// time, so MicrosPerOp reports aggregate (not per-client) cost — lower means
// more throughput.
type ParallelResult struct {
	Config
	Parallel int
	Total    time.Duration
	// BatchFrames/BatchFlushes snapshot the command channel's vectored-write
	// amortization over the run, for strategies that batch (procctl): frames
	// submitted versus write syscalls issued. Zero when the strategy has no
	// batched command channel.
	BatchFrames  uint64
	BatchFlushes uint64
	// Submitter names the syscall backend those flushes took ("io_uring"
	// when batches cross the kernel through a ring, "portable" otherwise).
	// Empty when the strategy has no batched command channel.
	Submitter string
	// RecvFrames/RecvWakeups snapshot the receive path's drain amortization:
	// response frames decoded versus read syscalls that delivered them.
	// RecvWakeups is zero on the shm carrier, whose hot path makes no read
	// syscalls at all.
	RecvFrames  uint64
	RecvWakeups uint64
	// Doorbells/Suppressed snapshot the shm rings' wakeup economy (both
	// directions, both processes); zero off the shm carrier.
	Doorbells  uint64
	Suppressed uint64
}

// FramesPerFlush reports how many command frames each flush syscall carried
// on average — 1.0 means no coalescing, N means a 1/N syscall-per-op rate.
// ok is false when the cell's transport does not batch.
func (r ParallelResult) FramesPerFlush() (float64, bool) {
	if r.BatchFlushes == 0 {
		return 0, false
	}
	return float64(r.BatchFrames) / float64(r.BatchFlushes), true
}

// FramesPerWakeup reports how many response frames each receive-side read
// syscall delivered on average — the drain-mode mirror of FramesPerFlush.
// ok is false when the cell's transport issued no receive reads (either it
// has no framed channel, or it runs on shm rings where the receive path is
// syscall-free).
func (r ParallelResult) FramesPerWakeup() (float64, bool) {
	if r.RecvWakeups == 0 {
		return 0, false
	}
	return float64(r.RecvFrames) / float64(r.RecvWakeups), true
}

// MicrosPerOp returns the aggregate wall-clock cost per operation in
// microseconds.
func (r ParallelResult) MicrosPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(r.Ops) / 1e3
}

// MeasureParallel runs one cell with `parallel` concurrent clients hammering
// a single handle, the workload the concurrent session core exists for: every
// client issues positioned operations on its own disjoint block-aligned
// stripe, so results are deterministic while the transport sees `parallel`
// exchanges in flight. Only positioning strategies qualify — the plain
// process strategy's streams are strictly ordered, so concurrency is not
// meaningful there.
func (r *Runner) MeasureParallel(cfg Config, parallel int) (ParallelResult, error) {
	if parallel < 1 {
		return ParallelResult{}, fmt.Errorf("bench: parallel degree %d", parallel)
	}
	if !cfg.Strategy.SupportsPositioning() {
		return ParallelResult{}, fmt.Errorf("bench: %v strategy has no positioned ops to parallelize", cfg.Strategy)
	}
	if cfg.Ops == 0 {
		cfg.Ops = DefaultOps
	}
	h, size, cleanup, err := r.Setup(cfg)
	if err != nil {
		return ParallelResult{}, err
	}
	defer cleanup()

	// Partition the op count across clients; every client walks its own
	// stripe of block-aligned offsets.
	perClient := cfg.Ops / parallel
	extra := cfg.Ops % parallel
	errs := make(chan error, parallel)
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < parallel; c++ {
		ops := perClient
		if c < extra {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(client, ops int) {
			defer wg.Done()
			buf := make([]byte, cfg.BlockSize)
			for i := 0; i < ops; i++ {
				// Stride clients across the file so their blocks never
				// overlap within a round.
				off := (int64(i*parallel+client) * int64(cfg.BlockSize)) % size
				var err error
				if cfg.Op == OpRead {
					_, err = h.ReadAt(buf, off)
				} else {
					_, err = h.WriteAt(buf, off)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d %s op %d (%v/%v/%d): %w",
						client, cfg.Op, i, cfg.Strategy, cfg.Path, cfg.BlockSize, err)
					return
				}
			}
		}(c, ops)
	}
	wg.Wait()
	total := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return ParallelResult{}, err
	}
	res := ParallelResult{Config: cfg, Parallel: parallel, Total: total}
	if bs, ok := h.BatchStats(); ok {
		res.BatchFrames, res.BatchFlushes = bs.Frames, bs.Flushes
		res.Submitter = bs.Backend
	}
	if ds, ok := h.DataPlaneStats(); ok {
		res.RecvFrames, res.RecvWakeups = ds.RecvFrames, ds.RecvWakeups
		res.Doorbells, res.Suppressed = ds.Doorbells, ds.Suppressed
	}
	return res, nil
}

// ParallelOptions adjust a concurrency sweep.
type ParallelOptions struct {
	// RemoteLatency is injected into every remote-service operation for the
	// sweep's duration, simulating a distant source. Overlapping such waits
	// is the concurrency core's reason to exist, so a realistic latency makes
	// the pipelining gain visible even on few cores. 0 leaves the service
	// untouched.
	RemoteLatency time.Duration
	// Ops per data point; 0 means DefaultOps.
	Ops int
	// BlockSize for every point; 0 means 512.
	BlockSize int
	// Degrees to sweep; nil means ParallelDegrees.
	Degrees []int
	// Path selects the storage tier; 0 means the in-memory cache, where
	// transport overhead — the thing concurrency hides — dominates.
	Path CachePath
	// OpsFilter limits to one operation; 0 means both.
	OpsFilter Op
	// Params are extra program parameters applied to every cell (e.g.
	// readahead/writebehind toggles), so the sweep can isolate transport
	// pipelining from data-path coalescing.
	Params map[string]string
}

// ParallelPanel is one concurrency sweep: a series per strategy, a column per
// degree.
type ParallelPanel struct {
	Path    CachePath
	Op      Op
	Block   int
	Degrees []int
	// Micros[strategy][degree] is the aggregate µs/op.
	Micros map[string]map[int]float64
	// FramesPerFlush[strategy][degree] is the command-channel batching
	// amortization, present only for strategies that batch (procctl).
	FramesPerFlush map[string]map[int]float64
	// FramesPerWakeup[strategy][degree] is the receive-side drain
	// amortization — response frames per read syscall — present only for
	// strategies with a framed channel that makes receive reads (procctl
	// over pipes).
	FramesPerWakeup map[string]map[int]float64
}

// Speedup returns strategy's throughput gain at degree relative to its
// sequential (degree-1) anchor.
func (p *ParallelPanel) Speedup(strategy string, degree int) (float64, bool) {
	series, ok := p.Micros[strategy]
	if !ok {
		return 0, false
	}
	base, okBase := series[1]
	at, okAt := series[degree]
	if !okBase || !okAt || at == 0 {
		return 0, false
	}
	return base / at, true
}

// WriteTable renders the sweep as an aligned text table, one row per
// strategy: aggregate µs/op per degree, then the speedup at the highest
// degree.
func (p *ParallelPanel) WriteTable(w io.Writer) error {
	maxDeg := p.Degrees[len(p.Degrees)-1]
	if _, err := fmt.Fprintf(w, "parallel clients — %s %s, %dB blocks (aggregate µs/op)\n",
		p.Path, p.Op, p.Block); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s", "strategy"); err != nil {
		return err
	}
	for _, d := range p.Degrees {
		if _, err := fmt.Fprintf(w, "%10s", fmt.Sprintf("x%d", d)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%12s%14s%14s\n",
		fmt.Sprintf("speedup@%d", maxDeg), fmt.Sprintf("frames/wr@%d", maxDeg),
		fmt.Sprintf("frames/wk@%d", maxDeg)); err != nil {
		return err
	}
	for _, strategy := range []string{"procctl", "thread", "direct"} {
		series, ok := p.Micros[strategy]
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-10s", strategy); err != nil {
			return err
		}
		for _, d := range p.Degrees {
			if v, ok := series[d]; ok {
				if _, err := fmt.Fprintf(w, "%10.1f", v); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, "%10s", "-"); err != nil {
				return err
			}
		}
		if s, ok := p.Speedup(strategy, maxDeg); ok {
			if _, err := fmt.Fprintf(w, "%11.2fx", s); err != nil {
				return err
			}
		}
		if fpf, ok := p.FramesPerFlush[strategy][maxDeg]; ok {
			if _, err := fmt.Fprintf(w, "%14.1f", fpf); err != nil {
				return err
			}
		}
		if fpw, ok := p.FramesPerWakeup[strategy][maxDeg]; ok {
			if _, err := fmt.Fprintf(w, "%14.1f", fpw); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RunParallel sweeps the positioning strategies across the requested
// concurrency degrees and returns one panel per operation.
func (r *Runner) RunParallel(opts ParallelOptions) ([]*ParallelPanel, error) {
	degrees := opts.Degrees
	if degrees == nil {
		degrees = ParallelDegrees
	}
	block := opts.BlockSize
	if block == 0 {
		block = 512
	}
	path := opts.Path
	if path == 0 {
		path = PathMemory
	}
	operations := []Op{OpRead, OpWrite}
	if opts.OpsFilter != 0 {
		operations = []Op{opts.OpsFilter}
	}
	strategies := []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect}

	if opts.RemoteLatency > 0 {
		r.SetRemoteLatency(opts.RemoteLatency)
		defer r.SetRemoteLatency(0)
	}

	var panels []*ParallelPanel
	for _, op := range operations {
		panel := &ParallelPanel{
			Path:            path,
			Op:              op,
			Block:           block,
			Degrees:         degrees,
			Micros:          make(map[string]map[int]float64),
			FramesPerFlush:  make(map[string]map[int]float64),
			FramesPerWakeup: make(map[string]map[int]float64),
		}
		for _, strategy := range strategies {
			series := make(map[int]float64)
			amort := make(map[int]float64)
			drain := make(map[int]float64)
			for _, degree := range degrees {
				res, err := r.MeasureParallel(Config{
					Strategy:  strategy,
					Path:      path,
					Op:        op,
					BlockSize: block,
					Ops:       opts.Ops,
					Params:    opts.Params,
				}, degree)
				if err != nil {
					return nil, err
				}
				series[degree] = res.MicrosPerOp()
				if fpf, ok := res.FramesPerFlush(); ok {
					amort[degree] = fpf
				}
				if fpw, ok := res.FramesPerWakeup(); ok {
					drain[degree] = fpw
				}
			}
			panel.Micros[strategy.String()] = series
			if len(amort) > 0 {
				panel.FramesPerFlush[strategy.String()] = amort
			}
			if len(drain) > 0 {
				panel.FramesPerWakeup[strategy.String()] = drain
			}
		}
		panels = append(panels, panel)
	}
	return panels, nil
}
