package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/faultinject"
	"repro/internal/remote"
)

// ChaosOptions configures a fault-injection sweep over the remote path: a
// client reads through a fault-injecting proxy while connections are severed
// at a configured per-operation probability, and the sweep reports how fast
// the fault-tolerant client recovers.
type ChaosOptions struct {
	// Rates are the per-operation connection-drop probabilities to sweep.
	Rates []float64
	// Ops per rate point (DefaultOps when zero).
	Ops int
	// BlockSize per read (512 when zero).
	BlockSize int
	// OpTimeout is the client's per-exchange deadline (1s when zero).
	OpTimeout time.Duration
	// Seed makes the fault schedule reproducible.
	Seed int64
}

// ChaosPoint is one rate's outcome.
type ChaosPoint struct {
	Rate       float64
	Ops        int
	Drops      uint64 // connections severed under the client
	Errors     int    // operations that still failed (retries exhausted)
	Reconnects uint64 // sessions the client redialed
	// Recovery latency: time from severing the connection to the next
	// successful operation, i.e. what a caller actually waits through a
	// fault (backoff + redial + reopen + replay).
	Recoveries   int
	MeanRecovery time.Duration
	MaxRecovery  time.Duration
	Elapsed      time.Duration
}

// OpsPerSec is the achieved throughput including fault handling.
func (p ChaosPoint) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Elapsed.Seconds()
}

// RunChaos sweeps drop rates over the remote read path. Each point dials a
// fresh fault-tolerant client through a fresh proxy, so rates don't
// contaminate each other.
func (r *Runner) RunChaos(opts ChaosOptions) ([]ChaosPoint, error) {
	if opts.Ops == 0 {
		opts.Ops = DefaultOps
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 512
	}
	if opts.OpTimeout == 0 {
		opts.OpTimeout = time.Second
	}
	if len(opts.Rates) == 0 {
		opts.Rates = []float64{0, 0.01, 0.05, 0.10}
	}

	r.nextID++
	objName := fmt.Sprintf("chaos-%d", r.nextID)
	size := int64(opts.BlockSize) * int64(opts.Ops)
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i)
	}
	r.server.Put(objName, content)

	points := make([]ChaosPoint, 0, len(opts.Rates))
	for i, rate := range opts.Rates {
		pt, err := r.chaosPoint(objName, size, rate, opts, opts.Seed+int64(i))
		if err != nil {
			return points, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func (r *Runner) chaosPoint(objName string, size int64, rate float64, opts ChaosOptions, seed int64) (ChaosPoint, error) {
	proxy := faultinject.NewProxy(r.addr)
	paddr, err := proxy.Start()
	if err != nil {
		return ChaosPoint{}, err
	}
	defer proxy.Close()

	client, err := remote.DialWith(paddr, objName, remote.DialOptions{OpTimeout: opts.OpTimeout})
	if err != nil {
		return ChaosPoint{}, fmt.Errorf("chaos dial (rate %.2f): %w", rate, err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(seed))
	pt := ChaosPoint{Rate: rate, Ops: opts.Ops}
	buf := make([]byte, opts.BlockSize)

	var totalRecovery time.Duration
	var dropAt time.Time
	recovering := false

	start := time.Now()
	for i := 0; i < opts.Ops; i++ {
		if rate > 0 && rng.Float64() < rate {
			proxy.DropActive()
			if !recovering {
				dropAt = time.Now()
				recovering = true
			}
		}
		off := (int64(i) * int64(opts.BlockSize)) % size
		if _, rerr := client.ReadAt(buf, off); rerr != nil {
			pt.Errors++
			continue
		}
		if recovering {
			rec := time.Since(dropAt)
			totalRecovery += rec
			if rec > pt.MaxRecovery {
				pt.MaxRecovery = rec
			}
			pt.Recoveries++
			recovering = false
		}
	}
	pt.Elapsed = time.Since(start)
	pt.Drops = proxy.Drops()
	pt.Reconnects = client.Reconnects()
	if pt.Recoveries > 0 {
		pt.MeanRecovery = totalRecovery / time.Duration(pt.Recoveries)
	}
	return pt, nil
}

// WriteChaosTable renders the sweep as the EXPERIMENTS.md-style table:
// recovery latency and surviving throughput against fault rate.
func WriteChaosTable(w io.Writer, points []ChaosPoint) error {
	if _, err := fmt.Fprintf(w, "%-10s %6s %6s %10s %7s %14s %14s %12s\n",
		"drop-rate", "ops", "drops", "reconnects", "errors", "mean-recovery", "max-recovery", "ops/sec"); err != nil {
		return err
	}
	for _, p := range points {
		mean, max := "-", "-"
		if p.Recoveries > 0 {
			mean = p.MeanRecovery.Round(10 * time.Microsecond).String()
			max = p.MaxRecovery.Round(10 * time.Microsecond).String()
		}
		if _, err := fmt.Fprintf(w, "%-10.2f %6d %6d %10d %7d %14s %14s %12.0f\n",
			p.Rate, p.Ops, p.Drops, p.Reconnects, p.Errors, mean, max, p.OpsPerSec()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
