package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// Cell is one (strategy, blockSize) data point of a panel.
type Cell struct {
	Strategy string // strategy name or "baseline"
	Block    int
	MicrosOp float64
}

// Panel is one Figure 6 graph: a caching path and an operation, with a
// series per implementation strategy.
type Panel struct {
	Path  CachePath
	Op    Op
	Cells []Cell
}

// Title returns the panel heading matching the paper's figure captions.
func (p *Panel) Title() string {
	letter := map[CachePath]string{PathRemote: "a", PathDisk: "b", PathMemory: "c"}[p.Path]
	desc := map[CachePath]string{
		PathRemote: "sentinel uses a remote source",
		PathDisk:   "sentinel uses a local on-disk cache",
		PathMemory: "sentinel uses an in-memory cache",
	}[p.Path]
	return fmt.Sprintf("Figure 6(%s) %s — %s (µs/op)", letter, titleOp(p.Op), desc)
}

func titleOp(o Op) string {
	if o == OpRead {
		return "Read"
	}
	return "Write"
}

// strategies lists the panel's series in the paper's legend order, with any
// extras (ablations, baseline) after.
func (p *Panel) strategies() []string {
	order := map[string]int{
		"procctl":  1, // the paper's "Process" line
		"thread":   2,
		"direct":   3, // the paper's "DLL" line
		"process":  4, // ablation: no control channel
		"baseline": 5,
	}
	seen := make(map[string]bool)
	var out []string
	for _, c := range p.Cells {
		if !seen[c.Strategy] {
			seen[c.Strategy] = true
			out = append(out, c.Strategy)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := order[out[i]], order[out[j]]
		if oi != oj {
			return oi < oj
		}
		return out[i] < out[j]
	})
	return out
}

// Value returns the panel's data point for (strategy, block).
func (p *Panel) Value(strategy string, block int) (float64, bool) {
	for _, c := range p.Cells {
		if c.Strategy == strategy && c.Block == block {
			return c.MicrosOp, true
		}
	}
	return 0, false
}

// WriteTable renders the panel as an aligned text table, one row per block
// size and one column per strategy — the series the paper plots.
func (p *Panel) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintln(w, p.Title()); err != nil {
		return err
	}
	strategies := p.strategies()
	if _, err := fmt.Fprintf(w, "%-8s", "block"); err != nil {
		return err
	}
	for _, s := range strategies {
		if _, err := fmt.Fprintf(w, "%12s", s); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	blocks := p.blocks()
	for _, b := range blocks {
		if _, err := fmt.Fprintf(w, "%-8d", b); err != nil {
			return err
		}
		for _, s := range strategies {
			if v, ok := p.Value(s, b); ok {
				if _, err := fmt.Fprintf(w, "%12.1f", v); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, "%12s", "-"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func (p *Panel) blocks() []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range p.Cells {
		if !seen[c.Block] {
			seen[c.Block] = true
			out = append(out, c.Block)
		}
	}
	sort.Ints(out)
	return out
}

// FigureOptions adjust a full Figure 6 run.
type FigureOptions struct {
	// Ops per data point; 0 means DefaultOps (the paper's 1000).
	Ops int
	// Blocks to sweep; nil means BlockSizes.
	Blocks []int
	// IncludeProcess adds the plain process strategy (the §4.1 ablation the
	// paper describes but does not plot).
	IncludeProcess bool
	// IncludeBaseline adds the no-sentinel direct-access series.
	IncludeBaseline bool
	// Paths to run; nil means all three panels.
	Paths []CachePath
	// OpsFilter limits to one operation; 0 means both.
	OpsFilter Op
	// Params are extra sentinel program parameters applied to every
	// strategy cell (not the baseline), e.g. disabling read-ahead or
	// enabling write-behind for ablation runs.
	Params map[string]string
}

// RunFigure6 measures every requested panel and returns them in the paper's
// order: (a) read, (a) write, (b) read, ... .
func (r *Runner) RunFigure6(opts FigureOptions) ([]*Panel, error) {
	blocks := opts.Blocks
	if blocks == nil {
		blocks = BlockSizes
	}
	paths := opts.Paths
	if paths == nil {
		paths = []CachePath{PathRemote, PathDisk, PathMemory}
	}
	operations := []Op{OpRead, OpWrite}
	if opts.OpsFilter != 0 {
		operations = []Op{opts.OpsFilter}
	}

	strategies := []core.Strategy{core.StrategyProcCtl, core.StrategyThread, core.StrategyDirect}
	if opts.IncludeProcess {
		strategies = append(strategies, core.StrategyProcess)
	}

	var panels []*Panel
	for _, path := range paths {
		for _, op := range operations {
			panel := &Panel{Path: path, Op: op}
			for _, strategy := range strategies {
				for _, block := range blocks {
					res, err := r.Measure(Config{
						Strategy:  strategy,
						Path:      path,
						Op:        op,
						BlockSize: block,
						Ops:       opts.Ops,
						Params:    opts.Params,
					})
					if err != nil {
						return nil, err
					}
					panel.Cells = append(panel.Cells, Cell{
						Strategy: strategy.String(),
						Block:    block,
						MicrosOp: res.MicrosPerOp(),
					})
				}
			}
			if opts.IncludeBaseline {
				for _, block := range blocks {
					res, err := r.MeasureBaseline(path, op, block, opts.Ops)
					if err != nil {
						return nil, err
					}
					panel.Cells = append(panel.Cells, Cell{
						Strategy: "baseline",
						Block:    block,
						MicrosOp: res.MicrosPerOp(),
					})
				}
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}
