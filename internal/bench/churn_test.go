package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestRunChurnSweepsAllCells(t *testing.T) {
	r := newRunner(t)
	results, err := r.RunChurn(bench.ChurnOptions{Opens: 3, Pool: 1})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	want := []string{"procctl-cold", "procctl-warm", "thread", "direct"}
	if len(results) != len(want) {
		t.Fatalf("got %d cells, want %d", len(results), len(want))
	}
	for i, res := range results {
		if res.Strategy != want[i] {
			t.Errorf("cell %d = %q, want %q", i, res.Strategy, want[i])
		}
		if res.Opens != 3 || res.Total <= 0 {
			t.Errorf("cell %s: opens=%d total=%v", res.Strategy, res.Opens, res.Total)
		}
		if res.MicrosPerOpen() <= 0 {
			t.Errorf("cell %s: non-positive µs/open", res.Strategy)
		}
	}

	var buf bytes.Buffer
	if err := bench.WriteChurnTable(&buf, results); err != nil {
		t.Fatalf("WriteChurnTable: %v", err)
	}
	out := buf.String()
	for _, label := range want {
		if !strings.Contains(out, label) {
			t.Errorf("table missing %q:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "vs cold") {
		t.Errorf("table missing speedup column:\n%s", out)
	}
}

// BenchmarkOpenClose measures the open/close cycle per strategy — the number
// the warm sentinel pool exists to shrink. The warm variant prewarms the
// pool, so its steady state is one OpOpen rebind per open instead of
// fork+exec.
func BenchmarkOpenClose(b *testing.B) {
	cells := []struct {
		name     string
		strategy core.Strategy
		prewarm  int
	}{
		{"procctl-cold", core.StrategyProcCtl, 0},
		{"procctl-warm", core.StrategyProcCtl, 4},
		{"thread", core.StrategyThread, 0},
		{"direct", core.StrategyDirect, 0},
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			r, err := bench.NewRunner(b.TempDir())
			if err != nil {
				b.Fatalf("NewRunner: %v", err)
			}
			defer r.Close()
			res, err := r.MeasureChurn(cell.name, cell.strategy, b.N, cell.prewarm, nil)
			if err != nil {
				b.Fatalf("MeasureChurn: %v", err)
			}
			b.ReportMetric(res.MicrosPerOpen()*1e3, "ns/open")
		})
	}
}
