package bench

import (
	"encoding/json"
	"io"
	"os"
	"sort"

	"repro/internal/core"
)

// JSON report schema identifier; bump when the layout changes. v2 added the
// optional parallel (with frames-per-flush batching amortization) and churn
// (open latency) sections; v3 added the transport (pipe-vs-shm carrier)
// sweep; v4 added the per-backend sweep; v5 added the syscall-economy cells
// (doorbell and drain-mode wakeup counters) and the frames-per-wakeup column
// in parallel cells; v6 added the many-tenant session sweep (concurrent
// sessions, quota rejections, drain latency); v7 added the sharded-fleet
// scaling sweep (aggregate throughput vs shard count, hot-file replication);
// v8 added the fleet-scale session sweep (MPSC lane multiplexing with
// descriptor deltas) and the submitter/frames-per-flush columns on the
// syscall-economy cells. Older reports remain loadable for comparison.
const ReportSchema = "afbench/v8"

// Report is the machine-readable form of a benchmark run, written by
// afbench -json so successive PRs can diff per-cell numbers instead of
// eyeballing text tables.
type Report struct {
	Schema string            `json:"schema"`
	Ops    int               `json:"opsPerPoint"`
	Params map[string]string `json:"params,omitempty"`
	Panels []ReportPanel     `json:"panels"`
	// Parallel holds the concurrency sweeps (afbench -full / -parallel).
	Parallel []ParallelReportPanel `json:"parallel,omitempty"`
	// Churn holds the open/close sweep (afbench -full / -churn).
	Churn []ChurnReportRow `json:"churn,omitempty"`
	// Transport holds the control-channel carrier sweep (afbench -full /
	// -transport sweep): pipe vs shm rings, per block size.
	Transport []TransportReportRow `json:"transport,omitempty"`
	// TransportEconomy holds the syscall-economy cells of the carrier sweep:
	// wakeup counters under 16 pipelined clients, per carrier.
	TransportEconomy []TransportEconomyRow `json:"transportEconomy,omitempty"`
	// Backends holds the per-backend sweep (afbench -full / -backend):
	// the same sentinel over each backend kind, per block size.
	Backends []BackendReportRow `json:"backends,omitempty"`
	// Tenants holds the many-tenant session sweep (afbench -full /
	// -tenants): concurrent sessions against the daemon's registry, with
	// quota rejections and graceful-drain latency.
	Tenants []TenantReportRow `json:"tenants,omitempty"`
	// Fleet holds the sharded-fleet scaling sweep (afbench -full / -fleet):
	// aggregate read throughput against 1/2/4 bandwidth-capped shards, plus
	// the hot-file replication pair.
	Fleet []FleetReportRow `json:"fleet,omitempty"`
	// Sessions holds the fleet-scale session sweep (afbench -full /
	// -sessions): N concurrent sessions per cell with the data plane's
	// descriptor deltas — the MPSC lane plane's O(1)-doorbells-per-segment
	// contract made measurable.
	Sessions []SessionsReportRow `json:"sessions,omitempty"`
}

// SessionsReportRow is one (cell, cohort size) point of the session sweep.
type SessionsReportRow struct {
	Cell                string  `json:"cell"`
	Sessions            int     `json:"sessions"`
	Block               int     `json:"block"`
	OpsPerSession       int     `json:"opsPerSession"`
	MicrosPerOp         float64 `json:"microsPerOp"`
	OpenMillis          float64 `json:"openMillis"`
	Segments            int64   `json:"segments"`
	DoorbellFDs         int64   `json:"doorbellFDs"`
	LaneSessions        int64   `json:"laneSessions,omitempty"`
	DoorbellsPerSegment float64 `json:"doorbellsPerSegment,omitempty"`
}

// FleetReportRow is one cell of the fleet scaling sweep. Speedup is the
// throughput ratio against the cell family's baseline (1 shard for "scale",
// 1 replica for "hot").
type FleetReportRow struct {
	Cell        string  `json:"cell"`
	Shards      int     `json:"shards"`
	Replicas    int     `json:"replicas"`
	Clients     int     `json:"clients"`
	Block       int     `json:"block"`
	MBPerSec    float64 `json:"mbPerSec"`
	Speedup     float64 `json:"speedup,omitempty"`
	BandwidthMB int     `json:"bandwidthMBPerShard,omitempty"`
}

// TenantReportRow is one concurrency cell of the many-tenant sweep.
type TenantReportRow struct {
	Sessions      int     `json:"sessions"`
	Tenants       int     `json:"tenants"`
	Admitted      int     `json:"admitted"`
	RejectedQuota uint64  `json:"rejectedQuota"`
	Ops           uint64  `json:"ops"`
	MicrosPerOp   float64 `json:"microsPerOp"`
	DrainMillis   float64 `json:"drainMillis"`
	DrainClean    bool    `json:"drainClean"`
}

// BackendReportRow is one (backend, block) cell of the backend sweep.
// WriteMicros is absent for read-only backends.
type BackendReportRow struct {
	Strategy    string  `json:"strategy"`
	Backend     string  `json:"backend"`
	Block       int     `json:"block"`
	ReadMicros  float64 `json:"readMicrosPerOp"`
	WriteMicros float64 `json:"writeMicrosPerOp,omitempty"`
}

// TransportReportRow is one block-size row of the carrier sweep. Speedup is
// pipe/shm; shm columns are zero on platforms without ring support.
type TransportReportRow struct {
	Path       string  `json:"path"`
	Block      int     `json:"block"`
	PipeMicros float64 `json:"pipeMicrosPerOp"`
	ShmMicros  float64 `json:"shmMicrosPerOp,omitempty"`
	ShmSpeedup float64 `json:"shmSpeedup,omitempty"`
}

// TransportEconomyRow is one carrier's syscall-economy cell: the wakeup
// counters accumulated while 16 pipelined clients hammered the session.
// DoorbellsPerFrame and FramesPerWakeup are the derived headline numbers;
// each is present only where it is meaningful (shm and pipe respectively).
type TransportEconomyRow struct {
	Path              string  `json:"path"`
	Carrier           string  `json:"carrier"`
	Clients           int     `json:"clients"`
	Block             int     `json:"block"`
	MicrosPerOp       float64 `json:"microsPerOp"`
	Doorbells         uint64  `json:"doorbells"`
	Suppressed        uint64  `json:"suppressed"`
	RecvFrames        uint64  `json:"recvFrames"`
	RecvWakeups       uint64  `json:"recvWakeups"`
	DoorbellsPerFrame float64 `json:"doorbellsPerFrame,omitempty"`
	FramesPerWakeup   float64 `json:"framesPerWakeup,omitempty"`
	// Submitter names the send-side flush backend ("io_uring"/"portable");
	// Flushes and FramesPerFlush quantify its group-commit amortization.
	// All three are v8 columns, absent in older reports.
	Submitter      string  `json:"submitter,omitempty"`
	Flushes        uint64  `json:"flushes,omitempty"`
	FramesPerFlush float64 `json:"framesPerFlush,omitempty"`
}

// ParallelReportPanel is one concurrency sweep in the report.
type ParallelReportPanel struct {
	Path  string               `json:"path"`
	Op    string               `json:"op"`
	Block int                  `json:"block"`
	Cells []ParallelReportCell `json:"cells"`
}

// ParallelReportCell is one (strategy, degree) point. FramesPerFlush is the
// command-channel batching amortization — mean frames per write syscall —
// present only for strategies that batch (procctl).
type ParallelReportCell struct {
	Strategy       string  `json:"strategy"`
	Degree         int     `json:"degree"`
	MicrosPerOp    float64 `json:"microsPerOp"`
	FramesPerFlush float64 `json:"framesPerFlush,omitempty"`
	// FramesPerWakeup is the receive-side drain amortization — response
	// frames per read syscall — present where the transport's receive path
	// makes reads (procctl over pipes).
	FramesPerWakeup float64 `json:"framesPerWakeup,omitempty"`
}

// ChurnReportRow is one open/close churn cell.
type ChurnReportRow struct {
	Strategy      string  `json:"strategy"`
	Opens         int     `json:"opens"`
	MicrosPerOpen float64 `json:"microsPerOpen"`
}

// ReportPanel is one Figure 6 graph in the report.
type ReportPanel struct {
	Path  string       `json:"path"` // "remote" | "disk" | "memory"
	Op    string       `json:"op"`   // "read" | "write"
	Cells []ReportCell `json:"cells"`
}

// ReportCell is one (strategy, blockSize) data point.
type ReportCell struct {
	Strategy    string  `json:"strategy"`
	Block       int     `json:"block"`
	MicrosPerOp float64 `json:"microsPerOp"`
}

// BuildReport converts measured panels into the serializable report form.
// Cells are emitted in deterministic (strategy legend, block) order so the
// output diffs cleanly between runs.
func BuildReport(panels []*Panel, ops int, params map[string]string) *Report {
	if ops == 0 {
		ops = DefaultOps
	}
	rep := &Report{Schema: ReportSchema, Ops: ops, Params: params}
	for _, p := range panels {
		rp := ReportPanel{Path: p.Path.String(), Op: p.Op.String()}
		for _, s := range p.strategies() {
			blocks := p.blocks()
			sort.Ints(blocks)
			for _, b := range blocks {
				if v, ok := p.Value(s, b); ok {
					rp.Cells = append(rp.Cells, ReportCell{
						Strategy: s, Block: b, MicrosPerOp: v,
					})
				}
			}
		}
		rep.Panels = append(rep.Panels, rp)
	}
	return rep
}

// AddParallel appends concurrency sweeps to the report in deterministic
// (strategy legend, degree) order.
func (rep *Report) AddParallel(panels []*ParallelPanel) {
	for _, p := range panels {
		rp := ParallelReportPanel{Path: p.Path.String(), Op: p.Op.String(), Block: p.Block}
		for _, s := range []string{"procctl", "thread", "direct"} {
			series, ok := p.Micros[s]
			if !ok {
				continue
			}
			for _, d := range p.Degrees {
				v, ok := series[d]
				if !ok {
					continue
				}
				cell := ParallelReportCell{Strategy: s, Degree: d, MicrosPerOp: v}
				if fpf, ok := p.FramesPerFlush[s][d]; ok {
					cell.FramesPerFlush = fpf
				}
				if fpw, ok := p.FramesPerWakeup[s][d]; ok {
					cell.FramesPerWakeup = fpw
				}
				rp.Cells = append(rp.Cells, cell)
			}
		}
		rep.Parallel = append(rep.Parallel, rp)
	}
}

// AddTransports appends the carrier sweep to the report.
func (rep *Report) AddTransports(path CachePath, results []TransportResult) {
	if path == 0 {
		path = PathMemory
	}
	for _, row := range results {
		rep.Transport = append(rep.Transport, TransportReportRow{
			Path:       path.String(),
			Block:      row.Block,
			PipeMicros: row.PipeMicros,
			ShmMicros:  row.ShmMicros,
			ShmSpeedup: row.Speedup(),
		})
	}
}

// AddTransportEconomy appends the syscall-economy cells to the report.
func (rep *Report) AddTransportEconomy(path CachePath, cells []TransportEconomy) {
	if path == 0 {
		path = PathMemory
	}
	for _, c := range cells {
		row := TransportEconomyRow{
			Path:        path.String(),
			Carrier:     c.Carrier,
			Clients:     c.Clients,
			Block:       c.Block,
			MicrosPerOp: c.MicrosPerOp,
			Doorbells:   c.Doorbells,
			Suppressed:  c.Suppressed,
			RecvFrames:  c.RecvFrames,
			RecvWakeups: c.RecvWakeups,
		}
		if dpf, ok := c.DoorbellsPerFrame(); ok {
			row.DoorbellsPerFrame = dpf
		}
		if fpw, ok := c.FramesPerWakeup(); ok {
			row.FramesPerWakeup = fpw
		}
		row.Submitter = c.Submitter
		row.Flushes = c.Flushes
		if fpf, ok := c.FramesPerFlush(); ok {
			row.FramesPerFlush = fpf
		}
		rep.TransportEconomy = append(rep.TransportEconomy, row)
	}
}

// AddBackends appends the backend sweep to the report.
func (rep *Report) AddBackends(strategy core.Strategy, results []BackendResult) {
	if strategy == 0 {
		strategy = core.StrategyThread
	}
	for _, row := range results {
		rep.Backends = append(rep.Backends, BackendReportRow{
			Strategy:    strategy.String(),
			Backend:     row.Backend,
			Block:       row.Block,
			ReadMicros:  row.ReadMicros,
			WriteMicros: row.WriteMicros,
		})
	}
}

// AddTenants appends the many-tenant session sweep to the report.
func (rep *Report) AddTenants(results []TenantResult) {
	for _, res := range results {
		rep.Tenants = append(rep.Tenants, TenantReportRow{
			Sessions:      res.Sessions,
			Tenants:       res.Tenants,
			Admitted:      res.Admitted,
			RejectedQuota: res.RejectedQuota,
			Ops:           res.Ops,
			MicrosPerOp:   res.MicrosPerOp(),
			DrainMillis:   res.DrainMillis(),
			DrainClean:    res.DrainClean,
		})
	}
}

// AddFleet appends the fleet scaling sweep to the report, deriving each
// cell's speedup against its family baseline.
func (rep *Report) AddFleet(opts FleetOptions, results []FleetResult) {
	bwMB := opts.BandwidthMB
	if bwMB == 0 {
		bwMB = DefaultFleetBandwidthMB
	}
	if bwMB < 0 {
		bwMB = 0
	}
	base := map[string]float64{}
	for _, res := range results {
		if res.Cell == "scale" && res.Shards == 1 {
			base["scale"] = res.MBPerSec()
		}
		if res.Cell == "hot" && res.Replicas == 1 {
			base["hot"] = res.MBPerSec()
		}
	}
	for _, res := range results {
		row := FleetReportRow{
			Cell:        res.Cell,
			Shards:      res.Shards,
			Replicas:    res.Replicas,
			Clients:     res.Clients,
			Block:       res.Block,
			MBPerSec:    res.MBPerSec(),
			BandwidthMB: bwMB,
		}
		if b := base[res.Cell]; b > 0 {
			row.Speedup = res.MBPerSec() / b
		}
		rep.Fleet = append(rep.Fleet, row)
	}
}

// AddSessions appends the fleet-scale session sweep to the report.
func (rep *Report) AddSessions(results []SessionsResult) {
	for _, res := range results {
		row := SessionsReportRow{
			Cell:          res.Cell,
			Sessions:      res.Sessions,
			Block:         res.Block,
			OpsPerSession: res.OpsPerSession,
			MicrosPerOp:   res.MicrosPerOp(),
			OpenMillis:    res.OpenMillis,
			Segments:      res.Segments,
			DoorbellFDs:   res.DoorbellFDs,
			LaneSessions:  res.LaneSessions,
		}
		if dps, ok := res.DoorbellsPerSegment(); ok {
			row.DoorbellsPerSegment = dps
		}
		rep.Sessions = append(rep.Sessions, row)
	}
}

// AddChurn appends the open/close sweep to the report.
func (rep *Report) AddChurn(results []ChurnResult) {
	for _, res := range results {
		rep.Churn = append(rep.Churn, ChurnReportRow{
			Strategy:      res.Strategy,
			Opens:         res.Opens,
			MicrosPerOpen: res.MicrosPerOpen(),
		})
	}
}

// WriteJSON serializes the report, indented, to w.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes the report to the named file, creating or truncating
// it.
func (rep *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
