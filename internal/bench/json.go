package bench

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// JSON report schema identifier; bump when the layout changes.
const ReportSchema = "afbench/v1"

// Report is the machine-readable form of a Figure 6 run, written by
// afbench -json so successive PRs can diff per-cell numbers instead of
// eyeballing text tables.
type Report struct {
	Schema string            `json:"schema"`
	Ops    int               `json:"opsPerPoint"`
	Params map[string]string `json:"params,omitempty"`
	Panels []ReportPanel     `json:"panels"`
}

// ReportPanel is one Figure 6 graph in the report.
type ReportPanel struct {
	Path  string       `json:"path"` // "remote" | "disk" | "memory"
	Op    string       `json:"op"`   // "read" | "write"
	Cells []ReportCell `json:"cells"`
}

// ReportCell is one (strategy, blockSize) data point.
type ReportCell struct {
	Strategy    string  `json:"strategy"`
	Block       int     `json:"block"`
	MicrosPerOp float64 `json:"microsPerOp"`
}

// BuildReport converts measured panels into the serializable report form.
// Cells are emitted in deterministic (strategy legend, block) order so the
// output diffs cleanly between runs.
func BuildReport(panels []*Panel, ops int, params map[string]string) *Report {
	if ops == 0 {
		ops = DefaultOps
	}
	rep := &Report{Schema: ReportSchema, Ops: ops, Params: params}
	for _, p := range panels {
		rp := ReportPanel{Path: p.Path.String(), Op: p.Op.String()}
		for _, s := range p.strategies() {
			blocks := p.blocks()
			sort.Ints(blocks)
			for _, b := range blocks {
				if v, ok := p.Value(s, b); ok {
					rp.Cells = append(rp.Cells, ReportCell{
						Strategy: s, Block: b, MicrosPerOp: v,
					})
				}
			}
		}
		rep.Panels = append(rep.Panels, rp)
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes the report to the named file, creating or truncating
// it.
func (rep *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
