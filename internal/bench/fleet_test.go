package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFleetSmoke single-shots a tiny fleet sweep — uncapped bandwidth,
// few ops — so the scaling harness cannot bit-rot between bench runs.
func TestRunFleetSmoke(t *testing.T) {
	r, err := NewRunner(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	opts := FleetOptions{
		Shards:      []int{1, 2},
		Clients:     4,
		Ops:         4,
		Block:       8 << 10,
		BandwidthMB: -1, // uncapped: this is a correctness smoke, not a measurement
	}
	results, err := r.RunFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two scale cells plus the hot pair (1 replica baseline, 2 replicas).
	if len(results) != 4 {
		t.Fatalf("got %d cells, want 4: %+v", len(results), results)
	}
	wantBytes := int64(opts.Clients * opts.Ops * opts.Block)
	for _, res := range results {
		if res.Bytes != wantBytes {
			t.Errorf("cell %s/s%d moved %d bytes, want %d", res.Cell, res.Shards, res.Bytes, wantBytes)
		}
		if res.MBPerSec() <= 0 {
			t.Errorf("cell %s/s%d reports no throughput", res.Cell, res.Shards)
		}
	}

	var buf bytes.Buffer
	if err := WriteFleetTable(&buf, opts, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scale") || !strings.Contains(buf.String(), "hot") {
		t.Fatalf("table missing cells:\n%s", buf.String())
	}

	rep := BuildReport(nil, 1, nil)
	rep.AddFleet(opts, results)
	if len(rep.Fleet) != 4 {
		t.Fatalf("report carries %d fleet rows, want 4", len(rep.Fleet))
	}
	if rep.Fleet[1].Speedup == 0 {
		t.Fatal("scale cell missing derived speedup")
	}
}
