package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/shm"
)

func TestRunSessionsSweep(t *testing.T) {
	r := newRunner(t)
	results, err := r.RunSessions(bench.SessionsOptions{Counts: []int{8}, OpsPerSession: 4})
	if err != nil {
		t.Fatalf("RunSessions: %v", err)
	}
	wantCells := 1 // pipe
	if shm.Supported() {
		wantCells = 3 // + shm, mpsc
	}
	if len(results) != wantCells {
		t.Fatalf("got %d cells, want %d: %+v", len(results), wantCells, results)
	}

	byCell := map[string]bench.SessionsResult{}
	for _, res := range results {
		byCell[res.Cell] = res
		if res.Sessions != 8 || res.MicrosPerOp() <= 0 {
			t.Errorf("cell %s: sessions=%d µs/op=%.1f", res.Cell, res.Sessions, res.MicrosPerOp())
		}
	}

	// The pipe cohort maps no segments; its descriptor columns must be zero.
	pipe := byCell["pipe"]
	if pipe.Segments != 0 || pipe.DoorbellFDs != 0 || pipe.LaneSessions != 0 {
		t.Errorf("pipe cell leaked shm descriptors: %+v", pipe)
	}

	if !shm.Supported() {
		return
	}
	// Dedicated shm: one segment per session, doorbells grow with sessions.
	shmCell := byCell["shm"]
	if shmCell.Segments != 8 || shmCell.LaneSessions != 0 {
		t.Errorf("shm cell: segments=%d laneSessions=%d, want 8/0", shmCell.Segments, shmCell.LaneSessions)
	}
	// MPSC: the whole cohort shares one segment with O(1) doorbell fds.
	mpsc := byCell["mpsc"]
	if mpsc.Segments != 1 || mpsc.LaneSessions != 8 {
		t.Errorf("mpsc cell: segments=%d laneSessions=%d, want 1/8", mpsc.Segments, mpsc.LaneSessions)
	}
	if dps, ok := mpsc.DoorbellsPerSegment(); !ok || dps > 4 {
		t.Errorf("mpsc doorbells/segment = %.1f (ok=%v), want <= 4", dps, ok)
	}
	if shmDps, ok := shmCell.DoorbellsPerSegment(); ok {
		if mpscDps, _ := mpsc.DoorbellsPerSegment(); mpscDps > shmDps*2 {
			t.Errorf("mpsc per-segment doorbells (%.1f) dwarf dedicated shm's (%.1f)", mpscDps, shmDps)
		}
	}

	var buf bytes.Buffer
	if err := bench.WriteSessionsTable(&buf, results); err != nil {
		t.Fatalf("WriteSessionsTable: %v", err)
	}
	for _, want := range []string{"session sweep", "mpsc", "bells/seg"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}

	rep := bench.BuildReport(nil, 4, nil)
	rep.AddSessions(results)
	if len(rep.Sessions) != wantCells {
		t.Fatalf("report carries %d session rows, want %d", len(rep.Sessions), wantCells)
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"sessions"`, `"doorbellFDs"`, `"cell": "mpsc"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}
