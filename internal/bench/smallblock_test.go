package bench_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// BenchmarkSmallBlockSequential is the zero-copy data path's headline panel:
// sequential reads of the paper's small block sizes (where per-operation
// overhead dominates) through the switched strategies, with the adaptive
// read-ahead toggled per sub-benchmark. The readahead=on/off pairs isolate
// the window's contribution: with it on, a streak of small sequential reads
// collapses into a few multi-block control-channel round trips.
func BenchmarkSmallBlockSequential(b *testing.B) {
	for _, strategy := range []core.Strategy{core.StrategyProcCtl, core.StrategyThread} {
		for _, block := range []int{8, 32, 128} {
			for _, readahead := range []bool{true, false} {
				name := fmt.Sprintf("%s/%dB/readahead=%v", strategy, block, readahead)
				b.Run(name, func(b *testing.B) {
					r, err := bench.NewRunner(b.TempDir())
					if err != nil {
						b.Fatalf("NewRunner: %v", err)
					}
					defer r.Close()
					cfg := bench.Config{
						Strategy:  strategy,
						Path:      bench.PathMemory,
						Op:        bench.OpRead,
						BlockSize: block,
						Ops:       512,
					}
					if !readahead {
						cfg.Params = map[string]string{"readahead": "false"}
					}
					for i := 0; i < b.N; i++ {
						res, err := r.Measure(cfg)
						if err != nil {
							b.Fatalf("Measure: %v", err)
						}
						b.ReportMetric(res.MicrosPerOp(), "µs/op")
					}
				})
			}
		}
	}
}

// BenchmarkSmallBlockSequentialWrite is the write-side companion: sequential
// small writes with and without the coalescing buffer. With writebehind=true
// a run of adjacent small writes is merged into one backing WriteAt per
// 64 KiB, so the per-operation cost approaches an in-memory append.
func BenchmarkSmallBlockSequentialWrite(b *testing.B) {
	for _, strategy := range []core.Strategy{core.StrategyThread, core.StrategyDirect} {
		for _, block := range []int{8, 128} {
			for _, writebehind := range []bool{false, true} {
				name := fmt.Sprintf("%s/%dB/writebehind=%v", strategy, block, writebehind)
				b.Run(name, func(b *testing.B) {
					r, err := bench.NewRunner(b.TempDir())
					if err != nil {
						b.Fatalf("NewRunner: %v", err)
					}
					defer r.Close()
					cfg := bench.Config{
						Strategy:  strategy,
						Path:      bench.PathMemory,
						Op:        bench.OpWrite,
						BlockSize: block,
						Ops:       512,
					}
					if writebehind {
						cfg.Params = map[string]string{"writebehind": "true"}
					}
					for i := 0; i < b.N; i++ {
						res, err := r.Measure(cfg)
						if err != nil {
							b.Fatalf("Measure: %v", err)
						}
						b.ReportMetric(res.MicrosPerOp(), "µs/op")
					}
				})
			}
		}
	}
}
