package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Report comparison: load two afbench JSON reports (any schema version) and
// render the per-cell deltas as a table, so a PR's perf claim is a
// `make bench-compare` away instead of a manual diff of two JSON files.

// LoadReport reads an afbench JSON report from path. The current v8 schema
// and the older v1–v7 layouts are all accepted; sections an older report
// lacks stay empty.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	switch rep.Schema {
	case "afbench/v1", "afbench/v2", "afbench/v3", "afbench/v4", "afbench/v5",
		"afbench/v6", "afbench/v7", "afbench/v8":
		return &rep, nil
	default:
		return nil, fmt.Errorf("report %s: unknown schema %q", path, rep.Schema)
	}
}

// deltaPct returns the relative change from old to new in percent; negative
// is an improvement for latency-style metrics.
func deltaPct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

// WriteCompareTable renders every cell present in BOTH reports with its
// old/new value and percentage delta. Cells only one report has are counted
// and summarized, never silently dropped.
func WriteCompareTable(w io.Writer, oldRep, newRep *Report) error {
	var unmatched int

	// Figure 6 panels: index old cells by (path, op, strategy, block).
	oldCells := map[string]float64{}
	for _, p := range oldRep.Panels {
		for _, c := range p.Cells {
			oldCells[fmt.Sprintf("%s/%s/%s/%d", p.Path, p.Op, c.Strategy, c.Block)] = c.MicrosPerOp
		}
	}
	if _, err := fmt.Fprintf(w, "figure 6 panels (µs/op)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
		return err
	}
	matched := map[string]bool{}
	for _, p := range newRep.Panels {
		for _, c := range p.Cells {
			key := fmt.Sprintf("%s/%s/%s/%d", p.Path, p.Op, c.Strategy, c.Block)
			old, ok := oldCells[key]
			if !ok {
				unmatched++
				continue
			}
			matched[key] = true
			if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
				key, old, c.MicrosPerOp, deltaPct(old, c.MicrosPerOp)); err != nil {
				return err
			}
		}
	}
	for key := range oldCells {
		if !matched[key] {
			unmatched++
		}
	}

	// Parallel sweeps, when both reports carry them (v1 has none).
	if len(oldRep.Parallel) > 0 && len(newRep.Parallel) > 0 {
		oldPar := map[string]ParallelReportCell{}
		for _, p := range oldRep.Parallel {
			for _, c := range p.Cells {
				oldPar[fmt.Sprintf("%s/%s/%d/%s/x%d", p.Path, p.Op, p.Block, c.Strategy, c.Degree)] = c
			}
		}
		if _, err := fmt.Fprintf(w, "\nparallel sweeps (aggregate µs/op)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, p := range newRep.Parallel {
			for _, c := range p.Cells {
				key := fmt.Sprintf("%s/%s/%d/%s/x%d", p.Path, p.Op, p.Block, c.Strategy, c.Degree)
				old, ok := oldPar[key]
				if !ok {
					unmatched++
					continue
				}
				if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
					key, old.MicrosPerOp, c.MicrosPerOp, deltaPct(old.MicrosPerOp, c.MicrosPerOp)); err != nil {
					return err
				}
			}
		}
	}

	// Churn, same deal.
	if len(oldRep.Churn) > 0 && len(newRep.Churn) > 0 {
		oldChurn := map[string]float64{}
		for _, row := range oldRep.Churn {
			oldChurn[row.Strategy] = row.MicrosPerOpen
		}
		if _, err := fmt.Fprintf(w, "\nopen/close churn (µs/open)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.Churn {
			old, ok := oldChurn[row.Strategy]
			if !ok {
				unmatched++
				continue
			}
			if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
				row.Strategy, old, row.MicrosPerOpen, deltaPct(old, row.MicrosPerOpen)); err != nil {
				return err
			}
		}
	}

	// Transport carrier sweep, when both reports carry it (pre-v3 have none).
	if len(oldRep.Transport) > 0 && len(newRep.Transport) > 0 {
		oldTr := map[string]TransportReportRow{}
		for _, row := range oldRep.Transport {
			oldTr[fmt.Sprintf("%s/%d", row.Path, row.Block)] = row
		}
		if _, err := fmt.Fprintf(w, "\ntransport sweep (µs/op, sequential procctl reads)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.Transport {
			old, ok := oldTr[fmt.Sprintf("%s/%d", row.Path, row.Block)]
			if !ok {
				unmatched++
				continue
			}
			for _, col := range []struct {
				carrier  string
				old, new float64
			}{
				{"pipe", old.PipeMicros, row.PipeMicros},
				{"shm", old.ShmMicros, row.ShmMicros},
			} {
				if col.old == 0 || col.new == 0 {
					continue // carrier absent in one report (platform fallback)
				}
				key := fmt.Sprintf("%s/%d/%s", row.Path, row.Block, col.carrier)
				if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
					key, col.old, col.new, deltaPct(col.old, col.new)); err != nil {
					return err
				}
			}
		}
	}

	// Syscall-economy cells, when both reports carry them (pre-v5 have none).
	if len(oldRep.TransportEconomy) > 0 && len(newRep.TransportEconomy) > 0 {
		oldEc := map[string]TransportEconomyRow{}
		for _, row := range oldRep.TransportEconomy {
			oldEc[fmt.Sprintf("%s/%s/x%d", row.Path, row.Carrier, row.Clients)] = row
		}
		if _, err := fmt.Fprintf(w, "\nsyscall economy (µs/op, %d pipelined clients)\n%-34s%10s%10s%9s\n",
			TransportEconomyClients, "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.TransportEconomy {
			key := fmt.Sprintf("%s/%s/x%d", row.Path, row.Carrier, row.Clients)
			old, ok := oldEc[key]
			if !ok {
				unmatched++
				continue
			}
			if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
				key, old.MicrosPerOp, row.MicrosPerOp, deltaPct(old.MicrosPerOp, row.MicrosPerOp)); err != nil {
				return err
			}
		}
	}

	// Backend sweep, when both reports carry it (pre-v4 have none).
	if len(oldRep.Backends) > 0 && len(newRep.Backends) > 0 {
		oldBe := map[string]BackendReportRow{}
		for _, row := range oldRep.Backends {
			oldBe[fmt.Sprintf("%s/%s/%d", row.Strategy, row.Backend, row.Block)] = row
		}
		if _, err := fmt.Fprintf(w, "\nbackend sweep (µs/op)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.Backends {
			old, ok := oldBe[fmt.Sprintf("%s/%s/%d", row.Strategy, row.Backend, row.Block)]
			if !ok {
				unmatched++
				continue
			}
			for _, col := range []struct {
				op       string
				old, new float64
			}{
				{"read", old.ReadMicros, row.ReadMicros},
				{"write", old.WriteMicros, row.WriteMicros},
			} {
				if col.old == 0 || col.new == 0 {
					continue // read-only backends carry no write column
				}
				key := fmt.Sprintf("%s/%s/%d/%s", row.Strategy, row.Backend, row.Block, col.op)
				if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
					key, col.old, col.new, deltaPct(col.old, col.new)); err != nil {
					return err
				}
			}
		}
	}

	// Fleet scaling sweep, when both reports carry it (pre-v7 have none).
	// Throughput cells: positive delta is the improvement.
	if len(oldRep.Fleet) > 0 && len(newRep.Fleet) > 0 {
		oldFl := map[string]FleetReportRow{}
		for _, row := range oldRep.Fleet {
			oldFl[fmt.Sprintf("%s/s%d/r%d/x%d", row.Cell, row.Shards, row.Replicas, row.Clients)] = row
		}
		if _, err := fmt.Fprintf(w, "\nfleet sweep (aggregate MB/s; positive delta = faster)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.Fleet {
			key := fmt.Sprintf("%s/s%d/r%d/x%d", row.Cell, row.Shards, row.Replicas, row.Clients)
			old, ok := oldFl[key]
			if !ok {
				unmatched++
				continue
			}
			if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
				key, old.MBPerSec, row.MBPerSec, deltaPct(old.MBPerSec, row.MBPerSec)); err != nil {
				return err
			}
		}
	}

	// Session sweep, when both reports carry it (pre-v8 have none).
	// Latency cells: negative delta is the improvement.
	if len(oldRep.Sessions) > 0 && len(newRep.Sessions) > 0 {
		oldSe := map[string]SessionsReportRow{}
		for _, row := range oldRep.Sessions {
			oldSe[fmt.Sprintf("%s/x%d", row.Cell, row.Sessions)] = row
		}
		if _, err := fmt.Fprintf(w, "\nsession sweep (aggregate µs/op)\n%-34s%10s%10s%9s\n", "cell", "old", "new", "delta"); err != nil {
			return err
		}
		for _, row := range newRep.Sessions {
			key := fmt.Sprintf("%s/x%d", row.Cell, row.Sessions)
			old, ok := oldSe[key]
			if !ok {
				unmatched++
				continue
			}
			if _, err := fmt.Fprintf(w, "%-34s%10.1f%10.1f%+8.1f%%\n",
				key, old.MicrosPerOp, row.MicrosPerOp, deltaPct(old.MicrosPerOp, row.MicrosPerOp)); err != nil {
				return err
			}
		}
	}

	if unmatched > 0 {
		if _, err := fmt.Fprintf(w, "\n(%d cells present in only one report were skipped)\n", unmatched); err != nil {
			return err
		}
	}
	return nil
}

// CompareFiles loads two report files and writes their comparison table,
// the engine behind afbench -compare and `make bench-compare`.
func CompareFiles(w io.Writer, oldPath, newPath string) error {
	oldRep, err := LoadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := LoadReport(newPath)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "benchmark comparison: %s -> %s\n\n",
		strings.TrimSpace(oldPath), strings.TrimSpace(newPath)); err != nil {
		return err
	}
	return WriteCompareTable(w, oldRep, newRep)
}
