package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/daemon"
	"repro/internal/remote"
	"repro/internal/wire"
)

// The many-tenant sweep measures the daemon layer itself: how the session
// registry behaves when M clients multiplex one afd. Each cell spins a
// registry-backed file server, admits a target number of concurrent
// sessions spread across tenants (holding them all open at once, so the
// concurrency is real rather than sequential), sends extra contenders past
// the per-tenant session quota to count typed rejections, times the read
// phase under full concurrency, and finally measures a graceful drain with
// probes still reading. "Thousands of concurrent sessions" stops being a
// claim and becomes the sessions column.

const (
	// DefaultTenantFanout is how many tenants the sessions spread across.
	DefaultTenantFanout = 16
	// DefaultTenantOps is the reads each admitted session performs.
	DefaultTenantOps = 10
	// DefaultTenantBlock is the read size in bytes.
	DefaultTenantBlock = 64
	// tenantDrainProbes caps the sessions kept reading through the drain.
	tenantDrainProbes = 32
	// tenantDrainLatency is injected before the drain so in-flight work
	// spans it — otherwise loopback reads finish in microseconds and the
	// drain measures nothing.
	tenantDrainLatency = 2 * time.Millisecond
)

// TenantOptions adjust the many-tenant sweep.
type TenantOptions struct {
	// Sessions are the sweep cells: target concurrently-open sessions per
	// cell. Each target is rounded up to a multiple of Tenants so the
	// per-tenant quota divides evenly.
	Sessions []int
	// Tenants is the fanout; 0 means DefaultTenantFanout.
	Tenants int
	// Ops is the reads per admitted session; 0 means DefaultTenantOps.
	Ops int
	// Block is the read size; 0 means DefaultTenantBlock.
	Block int
}

// TenantResult is one cell of the sweep.
type TenantResult struct {
	Sessions      int    // admitted concurrent sessions (quota × tenants)
	Tenants       int    // tenant fanout
	Admitted      int    // sessions actually admitted (should equal Sessions)
	RejectedQuota uint64 // contenders refused with wire.ErrQuotaExceeded
	Ops           uint64 // reads served during the timed phase
	Total         time.Duration
	DrainTime     time.Duration // Shutdown latency with probes in flight
	DrainClean    bool          // drain quiesced within its deadline
}

// MicrosPerOp returns the mean read latency under full session concurrency.
func (r TenantResult) MicrosPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(r.Ops) / 1e3
}

// DrainMillis returns the drain latency in milliseconds.
func (r TenantResult) DrainMillis() float64 {
	return float64(r.DrainTime.Nanoseconds()) / 1e6
}

// RunTenants sweeps the daemon's session layer across the configured
// concurrency targets. Each cell is self-contained: its own file server,
// registry, and client fleet.
func (r *Runner) RunTenants(opts TenantOptions) ([]TenantResult, error) {
	tenants := opts.Tenants
	if tenants <= 0 {
		tenants = DefaultTenantFanout
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = DefaultTenantOps
	}
	block := opts.Block
	if block <= 0 {
		block = DefaultTenantBlock
	}
	targets := opts.Sessions
	if len(targets) == 0 {
		targets = []int{64, 256, 1024}
	}
	var results []TenantResult
	for _, target := range targets {
		res, err := measureTenantCell(target, tenants, ops, block)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// measureTenantCell runs one (target sessions) cell.
func measureTenantCell(target, tenants, ops, block int) (TenantResult, error) {
	quota := (target + tenants - 1) / tenants // per-tenant; rounds target up
	sessions := quota * tenants
	// One extra contender per tenant keeps the quota engaged in every cell
	// without flooding small cells with rejections.
	extra := 1 + quota/8

	srv := remote.NewFileServer()
	srv.SetRegistry(daemon.NewRegistry(daemon.Quotas{MaxSessions: quota}))
	size := 4096
	if size < 2*block {
		size = 2 * block
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for t := 0; t < tenants; t++ {
		srv.Put(fmt.Sprintf("t%d/obj", t), payload)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return TenantResult{}, err
	}
	defer srv.Close()

	var (
		wg       sync.WaitGroup
		admitted atomic.Uint64
		rejected atomic.Uint64
		served   atomic.Uint64
		dialErr  atomic.Pointer[error]
	)
	opened := make(chan struct{}, sessions) // one tick per admitted session
	hold := make(chan struct{})             // closed to start the timed phase
	clients := make([]*remote.Client, 0, sessions)
	var clientsMu sync.Mutex

	for t := 0; t < tenants; t++ {
		name := fmt.Sprintf("t%d/obj", t)
		for c := 0; c < quota+extra; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// No retries: a quota rejection must surface typed, not be
				// retried into admission once a rival closes.
				cl, err := remote.DialWith(addr, name, remote.DialOptions{MaxRetries: -1})
				if errors.Is(err, wire.ErrQuotaExceeded) {
					rejected.Add(1)
					opened <- struct{}{}
					return
				}
				if err != nil {
					dialErr.Store(&err)
					opened <- struct{}{}
					return
				}
				admitted.Add(1)
				clientsMu.Lock()
				clients = append(clients, cl)
				clientsMu.Unlock()
				opened <- struct{}{}
				<-hold // every admitted session is open before anyone reads
				buf := make([]byte, block)
				for i := 0; i < ops; i++ {
					if _, rerr := cl.ReadAt(buf, int64((i*block)%(len(payload)-block))); rerr != nil {
						err := fmt.Errorf("tenant read: %w", rerr)
						dialErr.Store(&err)
						return
					}
					served.Add(1)
				}
			}()
		}
	}
	for i := 0; i < tenants*(quota+extra); i++ {
		<-opened
	}

	start := time.Now()
	close(hold)
	wg.Wait()
	total := time.Since(start)
	if errp := dialErr.Load(); errp != nil {
		for _, cl := range clients {
			cl.Close()
		}
		return TenantResult{}, *errp
	}

	// Drain phase: keep a handful of sessions reading, inject latency so
	// their operations span the shutdown, and time the graceful drain.
	probes := tenantDrainProbes
	if probes > len(clients) {
		probes = len(clients)
	}
	srv.SetLatency(tenantDrainLatency)
	var probeWG sync.WaitGroup
	for _, cl := range clients[:probes] {
		probeWG.Add(1)
		go func(cl *remote.Client) {
			defer probeWG.Done()
			buf := make([]byte, block)
			for {
				if _, rerr := cl.ReadAt(buf, 0); rerr != nil {
					return // shutdown status or connection close ends the probe
				}
			}
		}(cl)
	}
	time.Sleep(5 * time.Millisecond) // let the probes get in flight
	drainStart := time.Now()
	clean := srv.Shutdown(10 * time.Second)
	drain := time.Since(drainStart)
	probeWG.Wait()
	for _, cl := range clients {
		cl.Close()
	}

	return TenantResult{
		Sessions:      sessions,
		Tenants:       tenants,
		Admitted:      int(admitted.Load()),
		RejectedQuota: rejected.Load(),
		Ops:           served.Load(),
		Total:         total,
		DrainTime:     drain,
		DrainClean:    clean,
	}, nil
}

// WriteTenantTable renders the many-tenant sweep as an aligned table.
func WriteTenantTable(w io.Writer, opts TenantOptions, results []TenantResult) error {
	if len(results) == 0 {
		return nil
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = DefaultTenantOps
	}
	block := opts.Block
	if block <= 0 {
		block = DefaultTenantBlock
	}
	if _, err := fmt.Fprintf(w, "many-tenant sessions — %d tenants, %d × %d B reads per session, per-tenant quota + drain\n",
		results[0].Tenants, ops, block); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s%10s%10s%12s%12s%8s\n",
		"sessions", "admitted", "rejected", "µs/op", "drain ms", "clean"); err != nil {
		return err
	}
	for _, res := range results {
		clean := "yes"
		if !res.DrainClean {
			clean = "NO"
		}
		if _, err := fmt.Fprintf(w, "%10d%10d%10d%12.1f%12.2f%8s\n",
			res.Sessions, res.Admitted, res.RejectedQuota,
			res.MicrosPerOp(), res.DrainMillis(), clean); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
