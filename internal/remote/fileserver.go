package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/daemon"
	"repro/internal/wire"
)

// FileServer is a TCP block-file service serving the named objects of any
// backend. Clients speak the same framed protocol as the active-file control
// channel: an OpOpen naming the object, then OpRead/OpWrite/OpSize/
// OpTruncate, and OpClose. One connection accesses one object.
//
// The default store is the in-memory backend; NewFileServerWith mounts any
// other — a directory (nativefs), a read-only view, a fault-injecting
// wrapper, even another FileServer (remotefs), so backends compose across
// the network.
//
// The server supports fault and latency injection so sentinel code paths for
// slow and failing sources can be exercised.
type FileServer struct {
	store backend.Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// reg, when set, makes the server multi-tenant: every session is
	// admitted against per-tenant quotas and every operation passes
	// admission control, with activity accounted daemon-wide. Without a
	// registry the server admits everything (the embedded/test
	// configuration).
	reg *daemon.Registry

	// draining flips when shutdown begins: in-flight operations finish,
	// new requests are refused with wire.ErrShuttingDown, and connections
	// close only once quiet — at frame boundaries, never mid-reply.
	draining     atomic.Bool
	inflightOps  atomic.Int64 // ops between intake and reply flush
	drainTimeout time.Duration

	latency   time.Duration
	failNext  error
	stallNext time.Duration
}

// DefaultDrainTimeout bounds how long Close waits for in-flight
// operations to finish before tearing connections down anyway.
const DefaultDrainTimeout = 2 * time.Second

// NewFileServer returns a server over an empty in-memory object store.
func NewFileServer() *FileServer {
	return NewFileServerWith(backend.NewMem())
}

// NewFileServerWith returns a server exporting store's objects.
func NewFileServerWith(store backend.Backend) *FileServer {
	return &FileServer{
		store: store,
		conns: make(map[net.Conn]struct{}),
	}
}

// Store returns the backend the server is exporting.
func (s *FileServer) Store() backend.Backend { return s.store }

// SetRegistry installs the multi-tenant session registry. Every
// connection's OpOpen is then admitted against the named tenant's session
// quota (daemon.TenantOf maps object names to tenants) and every
// operation passes admission control. Set it before Start.
func (s *FileServer) SetRegistry(reg *daemon.Registry) { s.reg = reg }

// Registry returns the installed session registry, if any.
func (s *FileServer) Registry() *daemon.Registry { return s.reg }

// SetDrainTimeout overrides how long Close lets in-flight operations
// finish before forcing connections down. Set it before Start.
func (s *FileServer) SetDrainTimeout(d time.Duration) { s.drainTimeout = d }

// Put creates or replaces the named object's contents in place, so sessions
// already bound to the name observe the new bytes. It is a best-effort
// seeding helper: on a read-only store it is a no-op.
func (s *FileServer) Put(name string, data []byte) {
	if m, ok := s.store.(*backend.Mem); ok {
		m.Put(name, data)
		return
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return
	}
	defer obj.Close()
	if err := obj.Truncate(0); err != nil {
		return
	}
	obj.WriteAt(data, 0)
}

// Get returns a copy of the named object's contents.
func (s *FileServer) Get(name string) ([]byte, bool) {
	if m, ok := s.store.(*backend.Mem); ok {
		return m.Get(name)
	}
	// Don't let a writable backend's open-creates semantics turn a probe
	// into a creation.
	if st, ok := s.store.(backend.Stater); ok {
		if _, err := st.Stat(name); err != nil {
			return nil, false
		}
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return nil, false
	}
	defer obj.Close()
	size, err := obj.Size()
	if err != nil {
		return nil, false
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := obj.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, false
		}
	}
	return data, true
}

// SetLatency injects a fixed per-operation delay, simulating a distant or
// loaded source.
func (s *FileServer) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

// FailNext makes the next object operation fail with err (once).
func (s *FileServer) FailNext(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = err
}

// StallNext makes the next object operation hang for d before answering
// (once) — a server that is alive but unresponsive, for exercising client
// deadlines. Keep d short in tests: Close waits for in-flight operations,
// including a stalled one.
func (s *FileServer) StallNext(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stallNext = d
}

// Start begins listening on addr (use "127.0.0.1:0" for an ephemeral port)
// and serving connections in the background. It returns the bound address.
func (s *FileServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("file server listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *FileServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close gracefully shuts the server down: it stops accepting, lets
// in-flight operations finish (bounded by the drain timeout), refuses new
// requests with wire.ErrShuttingDown, and only then closes connections —
// at frame boundaries, so clients see a typed rejection or a clean EOF
// instead of a torn frame.
func (s *FileServer) Close() error {
	d := s.drainTimeout
	if d <= 0 {
		d = DefaultDrainTimeout
	}
	s.Shutdown(d)
	return nil
}

// Kill tears the server down ABRUPTLY: the listener and every live
// connection close immediately, mid-frame if one is in flight. It is the
// crash simulation the chaos suites use; real shutdown goes through Close
// or Shutdown, which drain first.
func (s *FileServer) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.draining.Store(true)
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Shutdown is Close with an explicit drain deadline. It reports whether
// the server quiesced (every in-flight operation finished and its reply
// flushed) before connections were torn down; false means the deadline
// expired with work still running and the teardown was forced.
func (s *FileServer) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return s.inflightOps.Load() == 0
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	// Stop intake: no new connections, and every request read from here on
	// is answered with the typed shutdown status instead of dispatched.
	s.draining.Store(true)
	if s.reg != nil {
		s.reg.Drain(0) // flip the registry too; the wait happens below
	}
	if ln != nil {
		ln.Close()
	}

	// Let in-flight operations settle — each is counted from intake until
	// its reply has flushed, so reaching zero means every connection sits
	// at a frame boundary.
	clean := true
	deadline := time.Now().Add(timeout)
	for s.inflightOps.Load() > 0 {
		if time.Now().After(deadline) {
			clean = false
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return clean
}

// injectedDelayAndFault applies configured latency and returns any one-shot
// injected fault.
func (s *FileServer) injectedDelayAndFault() error {
	s.mu.Lock()
	d := s.latency
	stall := s.stallNext
	s.stallNext = 0
	err := s.failNext
	s.failNext = nil
	s.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// serveConn answers one connection's framed requests. Object operations are
// handled CONCURRENTLY — each runs on its own goroutine and replies carry the
// request's Seq, so a pipelining client (ipc.Mux) overlaps many round trips,
// including any injected latency, on one connection. Responses may complete
// out of order; Seq correlates them, and a group-committing BatchWriter
// coalesces replies finishing together into one vectored write on the
// connection instead of one syscall each. OpOpen and OpClose change
// connection state, so the intake loop drains every in-flight operation
// before handling those inline.
func (s *FileServer) serveConn(conn net.Conn) {
	defer conn.Close()
	// Drain-mode intake: a pipelining client's requests arrive in clumps,
	// and one read syscall pulls the whole clump into a pooled buffer the
	// frame reader then decodes without further syscalls — the receive-side
	// mirror of the reply path's group commit.
	src, dr := wire.WrapDrain(conn)
	defer dr.Release()
	r := wire.NewReader(src)
	w := wire.NewBatchWriter(conn, nil)

	respond := func(resp *wire.Response) {
		w.WriteResponse(resp) // a dead connection surfaces on the next read
	}

	// sess is the connection's admitted tenant session (nil without a
	// registry, or before OpOpen). When the connection ends its wire-level
	// amortization counters fold into the daemon-wide aggregate.
	var sess *daemon.Session
	defer func() {
		sess.Close()
		if s.reg != nil {
			s.reg.AddBatchStats(w.Stats())
			s.reg.AddDrainStats(dr.Stats())
		}
	}()

	// The connection binds one backend object at OpOpen. Backends hand out
	// handles onto shared state (mem) or shared files (nativefs), so
	// replacements (Put) and other sessions' writes stay visible through a
	// held handle. obj/opened are written only by the intake loop, behind an
	// inflight.Wait() barrier, so workers read them race-free.
	var obj backend.Object
	opened := false
	defer func() {
		if obj != nil {
			obj.Close()
		}
	}()

	handle := func(req *wire.Request) {
		resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
		release := func() {}
		// Shutdown and admission checks come first: a refused operation is
		// answered immediately with a typed status — it never queues.
		if s.draining.Load() {
			resp.Status, resp.Msg = wire.FromError(wire.ErrShuttingDown)
			respond(&resp)
			return
		}
		var done daemon.DoneFunc
		if sess != nil {
			var resident int64
			switch req.Op {
			case wire.OpRead:
				resident = req.N // the response buffer the read reserves
			case wire.OpWrite:
				resident = int64(len(req.Data))
			}
			var aerr error
			done, aerr = sess.Begin(req.Op, resident)
			if aerr != nil {
				resp.Status, resp.Msg = wire.FromError(aerr)
				respond(&resp)
				return
			}
		}
		settle := func() {
			if done != nil {
				var opErr error
				if resp.Status != wire.StatusOK && resp.Status != wire.StatusEOF {
					opErr = wire.ToError(req.Op, resp.Status, resp.Msg)
				}
				done(opErr, resp.N)
			}
		}
		if ierr := s.injectedDelayAndFault(); ierr != nil {
			resp.Status, resp.Msg = wire.FromError(ierr)
			if resp.Status == wire.StatusOK {
				resp.Status = wire.StatusError
			}
			respond(&resp)
			settle()
			return
		}
		switch req.Op {
		case wire.OpRead:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			n := int(req.N)
			if n < 0 || n > wire.MaxPayload {
				resp.Status, resp.Msg = wire.StatusError, "bad read size"
				break
			}
			// Pooled response buffer, recycled once the frame has shipped:
			// concurrent reads cost no per-op allocation.
			buf, rel := wire.GetBuf(n)
			release = rel
			rn, rerr := obj.ReadAt(buf, req.Off)
			resp.N = int64(rn)
			resp.Data = buf[:rn]
			if rerr != nil && !(errors.Is(rerr, io.EOF) && rn > 0) {
				resp.Status, resp.Msg = wire.FromError(rerr)
			}

		case wire.OpWrite:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			wn, werr := obj.WriteAt(req.Data, req.Off)
			resp.N = int64(wn)
			if werr != nil {
				resp.Status, resp.Msg = wire.FromError(werr)
			}

		case wire.OpSize:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			size, serr := obj.Size()
			resp.N = size
			if serr != nil {
				resp.Status, resp.Msg = wire.FromError(serr)
			}

		case wire.OpTruncate:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			if terr := obj.Truncate(req.Off); terr != nil {
				resp.Status, resp.Msg = wire.FromError(terr)
			}

		case wire.OpSync:
			// Objects are in memory; sync is a no-op acknowledgement.

		default:
			resp.Status = wire.StatusUnsupported
		}
		respond(&resp)
		settle() // latency includes the reply flush
		release()
	}

	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		req, payloadLen, err := r.ReadRequestHeader()
		if err != nil {
			return // connection gone or garbage; nothing to answer
		}

		switch req.Op {
		case wire.OpOpen:
			name := make([]byte, payloadLen)
			if err := r.ReadPayload(name); err != nil {
				return
			}
			inflight.Wait() // settle workers before changing connection state
			s.inflightOps.Add(1)
			resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
			if s.draining.Load() {
				resp.Status, resp.Msg = wire.FromError(wire.ErrShuttingDown)
				respond(&resp)
				s.inflightOps.Add(-1)
				continue
			}
			// Admission precedes backend work: a tenant at its session cap
			// is refused with a typed status before anything opens.
			// Rebinding re-admits under the new name's tenant.
			var (
				newSess *daemon.Session
				done    daemon.DoneFunc
			)
			if s.reg != nil {
				var aerr error
				newSess, aerr = s.reg.Admit(daemon.TenantOf(string(name)))
				if aerr == nil {
					done, aerr = newSess.Begin(wire.OpOpen, 0)
				}
				if aerr != nil {
					newSess.Close()
					resp.Status, resp.Msg = wire.FromError(aerr)
					respond(&resp)
					s.inflightOps.Add(-1)
					continue
				}
			}
			settleOpen := func() {
				if done != nil {
					var opErr error
					if resp.Status != wire.StatusOK {
						opErr = wire.ToError(wire.OpOpen, resp.Status, resp.Msg)
					}
					done(opErr, 0)
				}
			}
			if ierr := s.injectedDelayAndFault(); ierr != nil {
				resp.Status, resp.Msg = wire.FromError(ierr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				settleOpen()
				newSess.Close()
				s.inflightOps.Add(-1)
				continue
			}
			// Rebinding a connection closes the previous object first.
			if obj != nil {
				obj.Close()
				obj, opened = nil, false
			}
			o, oerr := s.store.Open(string(name))
			if oerr != nil {
				resp.Status, resp.Msg = wire.FromError(oerr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				settleOpen()
				newSess.Close()
				s.inflightOps.Add(-1)
				continue
			}
			obj, opened = o, true
			if s.reg != nil {
				sess.Close() // release the previous binding's slot on rebind
				sess = newSess
			}
			respond(&resp)
			settleOpen()
			s.inflightOps.Add(-1)

		case wire.OpClose:
			if err := r.DiscardPayload(); err != nil {
				return
			}
			inflight.Wait() // every outstanding reply precedes the goodbye
			s.inflightOps.Add(1)
			if obj != nil {
				obj.Close()
				obj, opened = nil, false
			}
			sess.Close() // free the tenant's session slot promptly
			respond(&wire.Response{Seq: req.Seq, Status: wire.StatusOK})
			s.inflightOps.Add(-1)
			return

		default:
			// A queued request's payload lands straight in a pooled buffer
			// the worker releases after replying — no intake-side copy.
			qreq := req
			release := func() {}
			if payloadLen > 0 {
				buf, rel := wire.GetBuf(payloadLen)
				if err := r.ReadPayload(buf); err != nil {
					rel()
					return
				}
				qreq.Data, release = buf, rel
			}
			inflight.Add(1)
			s.inflightOps.Add(1)
			go func() {
				defer inflight.Done()
				defer s.inflightOps.Add(-1)
				handle(&qreq)
				release()
			}()
		}
	}
}
