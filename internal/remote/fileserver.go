package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/wire"
)

// FileServer is a TCP block-file service serving the named objects of any
// backend. Clients speak the same framed protocol as the active-file control
// channel: an OpOpen naming the object, then OpRead/OpWrite/OpSize/
// OpTruncate, and OpClose. One connection accesses one object.
//
// The default store is the in-memory backend; NewFileServerWith mounts any
// other — a directory (nativefs), a read-only view, a fault-injecting
// wrapper, even another FileServer (remotefs), so backends compose across
// the network.
//
// The server supports fault and latency injection so sentinel code paths for
// slow and failing sources can be exercised.
type FileServer struct {
	store backend.Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	latency   time.Duration
	failNext  error
	stallNext time.Duration
}

// NewFileServer returns a server over an empty in-memory object store.
func NewFileServer() *FileServer {
	return NewFileServerWith(backend.NewMem())
}

// NewFileServerWith returns a server exporting store's objects.
func NewFileServerWith(store backend.Backend) *FileServer {
	return &FileServer{
		store: store,
		conns: make(map[net.Conn]struct{}),
	}
}

// Store returns the backend the server is exporting.
func (s *FileServer) Store() backend.Backend { return s.store }

// Put creates or replaces the named object's contents in place, so sessions
// already bound to the name observe the new bytes. It is a best-effort
// seeding helper: on a read-only store it is a no-op.
func (s *FileServer) Put(name string, data []byte) {
	if m, ok := s.store.(*backend.Mem); ok {
		m.Put(name, data)
		return
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return
	}
	defer obj.Close()
	if err := obj.Truncate(0); err != nil {
		return
	}
	obj.WriteAt(data, 0)
}

// Get returns a copy of the named object's contents.
func (s *FileServer) Get(name string) ([]byte, bool) {
	if m, ok := s.store.(*backend.Mem); ok {
		return m.Get(name)
	}
	// Don't let a writable backend's open-creates semantics turn a probe
	// into a creation.
	if st, ok := s.store.(backend.Stater); ok {
		if _, err := st.Stat(name); err != nil {
			return nil, false
		}
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return nil, false
	}
	defer obj.Close()
	size, err := obj.Size()
	if err != nil {
		return nil, false
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := obj.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, false
		}
	}
	return data, true
}

// SetLatency injects a fixed per-operation delay, simulating a distant or
// loaded source.
func (s *FileServer) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

// FailNext makes the next object operation fail with err (once).
func (s *FileServer) FailNext(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = err
}

// StallNext makes the next object operation hang for d before answering
// (once) — a server that is alive but unresponsive, for exercising client
// deadlines. Keep d short in tests: Close waits for in-flight operations,
// including a stalled one.
func (s *FileServer) StallNext(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stallNext = d
}

// Start begins listening on addr (use "127.0.0.1:0" for an ephemeral port)
// and serving connections in the background. It returns the bound address.
func (s *FileServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("file server listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *FileServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and tears down every active connection.
func (s *FileServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// injectedDelayAndFault applies configured latency and returns any one-shot
// injected fault.
func (s *FileServer) injectedDelayAndFault() error {
	s.mu.Lock()
	d := s.latency
	stall := s.stallNext
	s.stallNext = 0
	err := s.failNext
	s.failNext = nil
	s.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// serveConn answers one connection's framed requests. Object operations are
// handled CONCURRENTLY — each runs on its own goroutine and replies carry the
// request's Seq, so a pipelining client (ipc.Mux) overlaps many round trips,
// including any injected latency, on one connection. Responses may complete
// out of order; Seq correlates them, and a group-committing BatchWriter
// coalesces replies finishing together into one vectored write on the
// connection instead of one syscall each. OpOpen and OpClose change
// connection state, so the intake loop drains every in-flight operation
// before handling those inline.
func (s *FileServer) serveConn(conn net.Conn) {
	defer conn.Close()
	// Drain-mode intake: a pipelining client's requests arrive in clumps,
	// and one read syscall pulls the whole clump into a pooled buffer the
	// frame reader then decodes without further syscalls — the receive-side
	// mirror of the reply path's group commit.
	src, dr := wire.WrapDrain(conn)
	defer dr.Release()
	r := wire.NewReader(src)
	w := wire.NewBatchWriter(conn, nil)

	respond := func(resp *wire.Response) {
		w.WriteResponse(resp) // a dead connection surfaces on the next read
	}

	// The connection binds one backend object at OpOpen. Backends hand out
	// handles onto shared state (mem) or shared files (nativefs), so
	// replacements (Put) and other sessions' writes stay visible through a
	// held handle. obj/opened are written only by the intake loop, behind an
	// inflight.Wait() barrier, so workers read them race-free.
	var obj backend.Object
	opened := false
	defer func() {
		if obj != nil {
			obj.Close()
		}
	}()

	handle := func(req *wire.Request) {
		resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
		release := func() {}
		if ierr := s.injectedDelayAndFault(); ierr != nil {
			resp.Status, resp.Msg = wire.FromError(ierr)
			if resp.Status == wire.StatusOK {
				resp.Status = wire.StatusError
			}
			respond(&resp)
			return
		}
		switch req.Op {
		case wire.OpRead:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			n := int(req.N)
			if n < 0 || n > wire.MaxPayload {
				resp.Status, resp.Msg = wire.StatusError, "bad read size"
				break
			}
			// Pooled response buffer, recycled once the frame has shipped:
			// concurrent reads cost no per-op allocation.
			buf, rel := wire.GetBuf(n)
			release = rel
			rn, rerr := obj.ReadAt(buf, req.Off)
			resp.N = int64(rn)
			resp.Data = buf[:rn]
			if rerr != nil && !(errors.Is(rerr, io.EOF) && rn > 0) {
				resp.Status, resp.Msg = wire.FromError(rerr)
			}

		case wire.OpWrite:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			wn, werr := obj.WriteAt(req.Data, req.Off)
			resp.N = int64(wn)
			if werr != nil {
				resp.Status, resp.Msg = wire.FromError(werr)
			}

		case wire.OpSize:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			size, serr := obj.Size()
			resp.N = size
			if serr != nil {
				resp.Status, resp.Msg = wire.FromError(serr)
			}

		case wire.OpTruncate:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			if terr := obj.Truncate(req.Off); terr != nil {
				resp.Status, resp.Msg = wire.FromError(terr)
			}

		case wire.OpSync:
			// Objects are in memory; sync is a no-op acknowledgement.

		default:
			resp.Status = wire.StatusUnsupported
		}
		respond(&resp)
		release()
	}

	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		req, payloadLen, err := r.ReadRequestHeader()
		if err != nil {
			return // connection gone or garbage; nothing to answer
		}

		switch req.Op {
		case wire.OpOpen:
			name := make([]byte, payloadLen)
			if err := r.ReadPayload(name); err != nil {
				return
			}
			inflight.Wait() // settle workers before changing connection state
			resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
			if ierr := s.injectedDelayAndFault(); ierr != nil {
				resp.Status, resp.Msg = wire.FromError(ierr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				continue
			}
			// Rebinding a connection closes the previous object first.
			if obj != nil {
				obj.Close()
				obj, opened = nil, false
			}
			o, oerr := s.store.Open(string(name))
			if oerr != nil {
				resp.Status, resp.Msg = wire.FromError(oerr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				continue
			}
			obj, opened = o, true
			respond(&resp)

		case wire.OpClose:
			if err := r.DiscardPayload(); err != nil {
				return
			}
			inflight.Wait() // every outstanding reply precedes the goodbye
			if obj != nil {
				obj.Close()
				obj, opened = nil, false
			}
			respond(&wire.Response{Seq: req.Seq, Status: wire.StatusOK})
			return

		default:
			// A queued request's payload lands straight in a pooled buffer
			// the worker releases after replying — no intake-side copy.
			qreq := req
			release := func() {}
			if payloadLen > 0 {
				buf, rel := wire.GetBuf(payloadLen)
				if err := r.ReadPayload(buf); err != nil {
					rel()
					return
				}
				qreq.Data, release = buf, rel
			}
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				handle(&qreq)
				release()
			}()
		}
	}
}
