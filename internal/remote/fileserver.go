package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/daemon"
	"repro/internal/wire"
)

// FileServer is a TCP block-file service serving the named objects of any
// backend. Clients speak the same framed protocol as the active-file control
// channel: an OpOpen naming the object, then OpRead/OpWrite/OpSize/
// OpTruncate, and OpClose. One connection accesses one object.
//
// The default store is the in-memory backend; NewFileServerWith mounts any
// other — a directory (nativefs), a read-only view, a fault-injecting
// wrapper, even another FileServer (remotefs), so backends compose across
// the network.
//
// The server supports fault and latency injection so sentinel code paths for
// slow and failing sources can be exercised.
type FileServer struct {
	store backend.Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// reg, when set, makes the server multi-tenant: every session is
	// admitted against per-tenant quotas and every operation passes
	// admission control, with activity accounted daemon-wide. Without a
	// registry the server admits everything (the embedded/test
	// configuration).
	reg *daemon.Registry

	// draining flips when shutdown begins: in-flight operations finish,
	// new requests are refused with wire.ErrShuttingDown, and connections
	// close only once quiet — at frame boundaries, never mid-reply.
	draining     atomic.Bool
	inflightOps  atomic.Int64 // ops between intake and reply flush
	drainTimeout time.Duration

	// leases is the server half of the read-lease protocol: clients tag
	// cached blocks with granted epochs, and conflicting writes revoke
	// every holder before applying. Always present; idle until a client
	// sends OpLease.
	leases *leaseTable

	// Fleet membership, when this server is one shard of a fleet map
	// (SetFleet): writes are refused unless this server is the object's
	// primary, and a primary synchronously forwards applied writes to the
	// object's replicas through pooled peer clients. Atomic so membership
	// can be installed after Start (tests learn ephemeral addresses only
	// then) without racing the serve loops.
	fleet atomic.Pointer[fleetMembership]

	peersMu sync.Mutex
	peers   map[string]*Client // key addr+"\x00"+name

	applyForwards atomic.Uint64 // replica applies forwarded as primary

	bw throttle

	latency   time.Duration
	failNext  error
	stallNext time.Duration
}

// ShardMap is the placement view a FileServer enforces when it is one shard
// of a fleet: who owns an object (primary first), the map's version, and its
// wire encoding for OpShardMap. fleet.Map implements it; the indirection
// keeps this package free of a dependency on the fleet package.
type ShardMap interface {
	Owners(name string) []string
	Epoch() uint64
	Encode() []byte
}

// fleetMembership pairs the map with this server's own address in it.
type fleetMembership struct {
	m    ShardMap
	self string
}

// DefaultDrainTimeout bounds how long Close waits for in-flight
// operations to finish before tearing connections down anyway.
const DefaultDrainTimeout = 2 * time.Second

// NewFileServer returns a server over an empty in-memory object store.
func NewFileServer() *FileServer {
	return NewFileServerWith(backend.NewMem())
}

// NewFileServerWith returns a server exporting store's objects.
func NewFileServerWith(store backend.Backend) *FileServer {
	return &FileServer{
		store:  store,
		conns:  make(map[net.Conn]struct{}),
		leases: newLeaseTable(0),
		peers:  make(map[string]*Client),
	}
}

// Store returns the backend the server is exporting.
func (s *FileServer) Store() backend.Backend { return s.store }

// SetFleet makes the server one shard of a fleet: m is the shard map it
// serves over OpShardMap and enforces (writes are refused unless self — this
// server's address as it appears in the map — is the object's primary), and
// a primary forwards applied writes to the object's replicas synchronously
// before replying. Safe to call anytime, though membership should be in
// place before clients route by it.
func (s *FileServer) SetFleet(m ShardMap, self string) {
	s.fleet.Store(&fleetMembership{m: m, self: self})
}

// SetRevokeTimeout overrides how long a write round waits for lease holders
// to acknowledge a revoke before evicting them (DefaultRevokeTimeout
// otherwise). Set it before Start.
func (s *FileServer) SetRevokeTimeout(d time.Duration) {
	s.leases = newLeaseTable(d)
}

// LeaseStats reports lease-protocol counters.
func (s *FileServer) LeaseStats() LeaseStats { return s.leases.stats() }

// ApplyForwards reports how many replica applies this server has forwarded
// as a primary.
func (s *FileServer) ApplyForwards() uint64 { return s.applyForwards.Load() }

// SetBandwidth caps the server's aggregate data bandwidth (reads, writes,
// and replica applies) at bytesPerSec, zero meaning unlimited. The cap
// models a shard's service capacity — disk or NIC — so fleet scaling is
// measurable even when every shard shares one host. Safe to call anytime.
func (s *FileServer) SetBandwidth(bytesPerSec int64) { s.bw.setRate(bytesPerSec) }

// throttle is a token-bucket pacer: each payload reserves its transmission
// slot in a virtual timeline advancing at the configured rate, and the
// carrying goroutine sleeps until its slot arrives. Concurrency is
// preserved — many operations pace in parallel — while the aggregate rate
// converges on the cap.
type throttle struct {
	mu   sync.Mutex
	rate float64 // bytes per second; <= 0 means unlimited
	next time.Time
}

func (t *throttle) setRate(bytesPerSec int64) {
	t.mu.Lock()
	t.rate = float64(bytesPerSec)
	t.next = time.Time{}
	t.mu.Unlock()
}

func (t *throttle) wait(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	if t.rate <= 0 {
		t.mu.Unlock()
		return
	}
	now := time.Now()
	if t.next.Before(now) {
		t.next = now
	}
	slot := t.next
	t.next = t.next.Add(time.Duration(float64(n) / t.rate * float64(time.Second)))
	t.mu.Unlock()
	time.Sleep(time.Until(slot))
}

// SetRegistry installs the multi-tenant session registry. Every
// connection's OpOpen is then admitted against the named tenant's session
// quota (daemon.TenantOf maps object names to tenants) and every
// operation passes admission control. Set it before Start.
func (s *FileServer) SetRegistry(reg *daemon.Registry) { s.reg = reg }

// Registry returns the installed session registry, if any.
func (s *FileServer) Registry() *daemon.Registry { return s.reg }

// SetDrainTimeout overrides how long Close lets in-flight operations
// finish before forcing connections down. Set it before Start.
func (s *FileServer) SetDrainTimeout(d time.Duration) { s.drainTimeout = d }

// Put creates or replaces the named object's contents in place, so sessions
// already bound to the name observe the new bytes. It is a best-effort
// seeding helper: on a read-only store it is a no-op.
func (s *FileServer) Put(name string, data []byte) {
	if m, ok := s.store.(*backend.Mem); ok {
		m.Put(name, data)
		return
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return
	}
	defer obj.Close()
	if err := obj.Truncate(0); err != nil {
		return
	}
	obj.WriteAt(data, 0)
}

// Get returns a copy of the named object's contents.
func (s *FileServer) Get(name string) ([]byte, bool) {
	if m, ok := s.store.(*backend.Mem); ok {
		return m.Get(name)
	}
	// Don't let a writable backend's open-creates semantics turn a probe
	// into a creation.
	if st, ok := s.store.(backend.Stater); ok {
		if _, err := st.Stat(name); err != nil {
			return nil, false
		}
	}
	obj, err := s.store.Open(name)
	if err != nil {
		return nil, false
	}
	defer obj.Close()
	size, err := obj.Size()
	if err != nil {
		return nil, false
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := obj.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, false
		}
	}
	return data, true
}

// SetLatency injects a fixed per-operation delay, simulating a distant or
// loaded source.
func (s *FileServer) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

// FailNext makes the next object operation fail with err (once).
func (s *FileServer) FailNext(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = err
}

// StallNext makes the next object operation hang for d before answering
// (once) — a server that is alive but unresponsive, for exercising client
// deadlines. Keep d short in tests: Close waits for in-flight operations,
// including a stalled one.
func (s *FileServer) StallNext(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stallNext = d
}

// Start begins listening on addr (use "127.0.0.1:0" for an ephemeral port)
// and serving connections in the background. It returns the bound address.
func (s *FileServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("file server listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *FileServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close gracefully shuts the server down: it stops accepting, lets
// in-flight operations finish (bounded by the drain timeout), refuses new
// requests with wire.ErrShuttingDown, and only then closes connections —
// at frame boundaries, so clients see a typed rejection or a clean EOF
// instead of a torn frame.
func (s *FileServer) Close() error {
	d := s.drainTimeout
	if d <= 0 {
		d = DefaultDrainTimeout
	}
	s.Shutdown(d)
	return nil
}

// Kill tears the server down ABRUPTLY: the listener and every live
// connection close immediately, mid-frame if one is in flight. It is the
// crash simulation the chaos suites use; real shutdown goes through Close
// or Shutdown, which drain first.
func (s *FileServer) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	// Deliberately NOT flipping the draining gate: a crashed server never
	// answers with a typed shutdown status — clients must see only torn
	// connections, or failover tests would mistake the death throes for a
	// policy refusal.
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	s.closePeers()
}

// Shutdown is Close with an explicit drain deadline. It reports whether
// the server quiesced (every in-flight operation finished and its reply
// flushed) before connections were torn down; false means the deadline
// expired with work still running and the teardown was forced.
func (s *FileServer) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return s.inflightOps.Load() == 0
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	// Stop intake: no new connections, and every request read from here on
	// is answered with the typed shutdown status instead of dispatched.
	s.draining.Store(true)
	if s.reg != nil {
		s.reg.Drain(0) // flip the registry too; the wait happens below
	}
	if ln != nil {
		ln.Close()
	}

	// Let in-flight operations settle — each is counted from intake until
	// its reply has flushed, so reaching zero means every connection sits
	// at a frame boundary.
	clean := true
	deadline := time.Now().Add(timeout)
	for s.inflightOps.Load() > 0 {
		if time.Now().After(deadline) {
			clean = false
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.closePeers()
	return clean
}

// notPrimary returns a refusal message when this server is part of a fleet
// but not the named object's primary — writes must go to the primary, which
// orders them and drives replication.
func (s *FileServer) notPrimary(name string) string {
	fm := s.fleet.Load()
	if fm == nil {
		return ""
	}
	if p := fm.m.Owners(name)[0]; p != fm.self {
		return "not primary for object (primary is " + p + ")"
	}
	return ""
}

// applyRefusal returns a refusal message unless this server is a NON-primary
// owner (replica) of name in an installed fleet map — the only role that
// legitimately receives primary-forwarded applies. Without the check any
// opened connection could mutate through OpApply, bypassing the primary's
// write ordering and the lease revocation on the other owners, silently
// diverging replicas.
func (s *FileServer) applyRefusal(name string) string {
	fm := s.fleet.Load()
	if fm == nil {
		return "apply refused: not a fleet member"
	}
	for i, a := range fm.m.Owners(name) {
		if a != fm.self {
			continue
		}
		if i == 0 {
			return "apply refused: the primary orders writes (use OpWrite)"
		}
		return ""
	}
	return "apply refused: not an owner of object"
}

// peer returns the pooled client bound to name on the replica at addr,
// dialing on first use. Peer connections carry OpApply forwarding only.
func (s *FileServer) peer(addr, name string) (*Client, error) {
	key := addr + "\x00" + name
	s.peersMu.Lock()
	c := s.peers[key]
	s.peersMu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := DialWith(addr, name, DialOptions{
		OpTimeout:   2 * DefaultRevokeTimeout,
		DialTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	s.peersMu.Lock()
	if prev := s.peers[key]; prev != nil {
		s.peersMu.Unlock()
		c.Close()
		return prev, nil
	}
	s.peers[key] = c
	s.peersMu.Unlock()
	return c, nil
}

func (s *FileServer) closePeers() {
	s.peersMu.Lock()
	peers := s.peers
	s.peers = make(map[string]*Client)
	s.peersMu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// replicate forwards an applied mutation to every replica of name, in owner
// order, synchronously — the write's reply waits until each replica has
// applied (running its own local revoke round), so a lease granted by any
// replica after the write commits observes the new bytes.
//
// Failure semantics: the primary has ALREADY applied by the time replication
// runs, so a replica failure surfaces as the write's error while the write
// is PARTIALLY APPLIED — on the primary and any replicas reached before the
// failure. Replicas that missed the apply diverge until the object's next
// successful replicated mutation overwrites the gap, and fanned-out reads
// may observe either version in the interim. A caller that must know the
// outcome of a failed write reissues it (offset writes are idempotent) or
// reads through the primary, which is always authoritative; see DESIGN.md
// §15 failure modes.
func (s *FileServer) replicate(name string, kind int64, off int64, data []byte) error {
	fm := s.fleet.Load()
	if fm == nil {
		return nil
	}
	for _, addr := range fm.m.Owners(name) {
		if addr == fm.self {
			continue
		}
		c, err := s.peer(addr, name)
		if err != nil {
			return fmt.Errorf("replica %s unreachable: %w", addr, err)
		}
		if _, err := c.Apply(kind, off, data); err != nil {
			return fmt.Errorf("replica %s apply: %w", addr, err)
		}
		s.applyForwards.Add(1)
	}
	return nil
}

// injectedDelayAndFault applies configured latency and returns any one-shot
// injected fault.
func (s *FileServer) injectedDelayAndFault() error {
	s.mu.Lock()
	d := s.latency
	stall := s.stallNext
	s.stallNext = 0
	err := s.failNext
	s.failNext = nil
	s.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// serveConn answers one connection's framed requests. Object operations are
// handled CONCURRENTLY — each runs on its own goroutine and replies carry the
// request's Seq, so a pipelining client (ipc.Mux) overlaps many round trips,
// including any injected latency, on one connection. Responses may complete
// out of order; Seq correlates them, and a group-committing BatchWriter
// coalesces replies finishing together into one vectored write on the
// connection instead of one syscall each. OpOpen and OpClose change
// connection state, so the intake loop drains every in-flight operation
// before handling those inline.
func (s *FileServer) serveConn(conn net.Conn) {
	defer conn.Close()
	// Drain-mode intake: a pipelining client's requests arrive in clumps,
	// and one read syscall pulls the whole clump into a pooled buffer the
	// frame reader then decodes without further syscalls — the receive-side
	// mirror of the reply path's group commit.
	src, dr := wire.WrapDrain(conn)
	defer dr.Release()
	r := wire.NewReader(src)
	w := wire.NewBatchWriter(conn, nil)

	respond := func(resp *wire.Response) {
		w.WriteResponse(resp) // a dead connection surfaces on the next read
	}

	// sess is the connection's admitted tenant session (nil without a
	// registry, or before OpOpen). When the connection ends its wire-level
	// amortization counters fold into the daemon-wide aggregate.
	var sess *daemon.Session
	defer func() {
		sess.Close()
		if s.reg != nil {
			s.reg.AddBatchStats(w.Stats())
			s.reg.AddDrainStats(dr.Stats())
		}
	}()

	// The connection binds one backend object at OpOpen. Backends hand out
	// handles onto shared state (mem) or shared files (nativefs), so
	// replacements (Put) and other sessions' writes stay visible through a
	// held handle. obj/opened/boundName are written only by the intake loop,
	// behind an inflight.Wait() barrier, so workers read them race-free.
	var obj backend.Object
	var boundName string
	opened := false
	defer func() {
		s.leases.dropConn(conn) // a closed connection's lease lapses with it
		if obj != nil {
			obj.Close()
		}
	}()

	handle := func(req *wire.Request) {
		resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
		release := func() {}
		// Shutdown and admission checks come first: a refused operation is
		// answered immediately with a typed status — it never queues.
		if s.draining.Load() {
			resp.Status, resp.Msg = wire.FromError(wire.ErrShuttingDown)
			respond(&resp)
			return
		}
		var done daemon.DoneFunc
		if sess != nil {
			var resident int64
			switch req.Op {
			case wire.OpRead:
				resident = req.N // the response buffer the read reserves
			case wire.OpWrite, wire.OpApply:
				resident = int64(len(req.Data))
			}
			var aerr error
			done, aerr = sess.Begin(req.Op, resident)
			if aerr != nil {
				resp.Status, resp.Msg = wire.FromError(aerr)
				respond(&resp)
				return
			}
		}
		settle := func() {
			if done != nil {
				var opErr error
				if resp.Status != wire.StatusOK && resp.Status != wire.StatusEOF {
					opErr = wire.ToError(req.Op, resp.Status, resp.Msg)
				}
				done(opErr, resp.N)
			}
		}
		if ierr := s.injectedDelayAndFault(); ierr != nil {
			resp.Status, resp.Msg = wire.FromError(ierr)
			if resp.Status == wire.StatusOK {
				resp.Status = wire.StatusError
			}
			respond(&resp)
			settle()
			return
		}
		// Pace data-moving operations against the configured bandwidth cap;
		// each payload reserves its slot in the shared timeline, so the
		// server's aggregate rate models one shard's service capacity.
		switch req.Op {
		case wire.OpRead:
			s.bw.wait(int(req.N))
		case wire.OpWrite, wire.OpApply:
			s.bw.wait(len(req.Data))
		}
		switch req.Op {
		case wire.OpRead:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			n := int(req.N)
			if n < 0 || n > wire.MaxPayload {
				resp.Status, resp.Msg = wire.StatusError, "bad read size"
				break
			}
			// Pooled response buffer, recycled once the frame has shipped:
			// concurrent reads cost no per-op allocation.
			buf, rel := wire.GetBuf(n)
			release = rel
			rn, rerr := obj.ReadAt(buf, req.Off)
			resp.N = int64(rn)
			resp.Data = buf[:rn]
			if rerr != nil && !(errors.Is(rerr, io.EOF) && rn > 0) {
				resp.Status, resp.Msg = wire.FromError(rerr)
			}

		case wire.OpWrite:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			if msg := s.notPrimary(boundName); msg != "" {
				resp.Status, resp.Msg = wire.StatusError, msg
				break
			}
			// Revoke every read lease before the write applies — holders
			// invalidate their caches and ack — then apply locally, push the
			// mutation to each replica, and only then close the round, so a
			// lease granted after this write always observes its bytes.
			endRound := s.leases.beginWrite(boundName)
			wn, werr := obj.WriteAt(req.Data, req.Off)
			resp.N = int64(wn)
			if werr == nil && wn > 0 {
				werr = s.replicate(boundName, wire.ApplyWrite, req.Off, req.Data[:wn])
			}
			if werr != nil {
				resp.Status, resp.Msg = wire.FromError(werr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
			}
			endRound()

		case wire.OpLease:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			// Grant runs on a worker so the intake loop stays free to read
			// this connection's OpLeaseAck while the grant waits out an
			// in-progress write round. The push closure captures the bound
			// name by value: it outlives this request and is invoked from
			// other connections' write rounds; BatchWriter is safe for that.
			name := boundName
			epoch := s.leases.grant(conn, name,
				func(e uint64) {
					w.WriteResponse(&wire.Response{Seq: wire.PushSeq, Status: wire.StatusOK, N: int64(e), Data: []byte(name)})
				},
				func() { conn.Close() },
			)
			resp.N = int64(epoch)

		case wire.OpApply:
			// Replica apply, forwarded by the object's primary: run our own
			// revoke round (clients lease from the replica they read), apply,
			// never forward further — the primary drives the fan-out. Only a
			// replica of the object may honor it; everyone else refuses, so a
			// client cannot smuggle writes past the primary.
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			if msg := s.applyRefusal(boundName); msg != "" {
				resp.Status, resp.Msg = wire.StatusError, msg
				break
			}
			endRound := s.leases.beginWrite(boundName)
			switch req.N {
			case wire.ApplyWrite:
				wn, werr := obj.WriteAt(req.Data, req.Off)
				resp.N = int64(wn)
				if werr != nil {
					resp.Status, resp.Msg = wire.FromError(werr)
				}
			case wire.ApplyTruncate:
				if terr := obj.Truncate(req.Off); terr != nil {
					resp.Status, resp.Msg = wire.FromError(terr)
				}
			default:
				resp.Status, resp.Msg = wire.StatusError, "bad apply kind"
			}
			endRound()

		case wire.OpShardMap:
			// Served without an object binding so clients can bootstrap
			// routing from any shard address they know.
			fm := s.fleet.Load()
			if fm == nil {
				resp.Status = wire.StatusUnsupported
				break
			}
			resp.Data = fm.m.Encode()
			resp.N = int64(fm.m.Epoch())

		case wire.OpSize:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			size, serr := obj.Size()
			resp.N = size
			if serr != nil {
				resp.Status, resp.Msg = wire.FromError(serr)
			}

		case wire.OpTruncate:
			if !opened {
				resp.Status, resp.Msg = wire.StatusError, "no object opened"
				break
			}
			if msg := s.notPrimary(boundName); msg != "" {
				resp.Status, resp.Msg = wire.StatusError, msg
				break
			}
			endRound := s.leases.beginWrite(boundName)
			terr := obj.Truncate(req.Off)
			if terr == nil {
				terr = s.replicate(boundName, wire.ApplyTruncate, req.Off, nil)
			}
			if terr != nil {
				resp.Status, resp.Msg = wire.FromError(terr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
			}
			endRound()

		case wire.OpSync:
			// Objects are in memory; sync is a no-op acknowledgement.

		default:
			resp.Status = wire.StatusUnsupported
		}
		respond(&resp)
		settle() // latency includes the reply flush
		release()
	}

	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		req, payloadLen, err := r.ReadRequestHeader()
		if err != nil {
			return // connection gone or garbage; nothing to answer
		}

		switch req.Op {
		case wire.OpOpen:
			name := make([]byte, payloadLen)
			if err := r.ReadPayload(name); err != nil {
				return
			}
			inflight.Wait() // settle workers before changing connection state
			s.inflightOps.Add(1)
			resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
			if s.draining.Load() {
				resp.Status, resp.Msg = wire.FromError(wire.ErrShuttingDown)
				respond(&resp)
				s.inflightOps.Add(-1)
				continue
			}
			// Admission precedes backend work: a tenant at its session cap
			// is refused with a typed status before anything opens.
			// Rebinding re-admits under the new name's tenant.
			var (
				newSess *daemon.Session
				done    daemon.DoneFunc
			)
			if s.reg != nil {
				var aerr error
				newSess, aerr = s.reg.Admit(daemon.TenantOf(string(name)))
				if aerr == nil {
					done, aerr = newSess.Begin(wire.OpOpen, 0)
				}
				if aerr != nil {
					newSess.Close()
					resp.Status, resp.Msg = wire.FromError(aerr)
					respond(&resp)
					s.inflightOps.Add(-1)
					continue
				}
			}
			settleOpen := func() {
				if done != nil {
					var opErr error
					if resp.Status != wire.StatusOK {
						opErr = wire.ToError(wire.OpOpen, resp.Status, resp.Msg)
					}
					done(opErr, 0)
				}
			}
			if ierr := s.injectedDelayAndFault(); ierr != nil {
				resp.Status, resp.Msg = wire.FromError(ierr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				settleOpen()
				newSess.Close()
				s.inflightOps.Add(-1)
				continue
			}
			// Rebinding a connection closes the previous object first and
			// releases its lease — the new binding leases afresh.
			if obj != nil {
				s.leases.dropConn(conn)
				obj.Close()
				obj, opened, boundName = nil, false, ""
			}
			o, oerr := s.store.Open(string(name))
			if oerr != nil {
				resp.Status, resp.Msg = wire.FromError(oerr)
				if resp.Status == wire.StatusOK {
					resp.Status = wire.StatusError
				}
				respond(&resp)
				settleOpen()
				newSess.Close()
				s.inflightOps.Add(-1)
				continue
			}
			obj, opened, boundName = o, true, string(name)
			if s.reg != nil {
				sess.Close() // release the previous binding's slot on rebind
				sess = newSess
			}
			respond(&resp)
			settleOpen()
			s.inflightOps.Add(-1)

		case wire.OpLeaseAck:
			// A revoke acknowledgement, handled inline so it is never queued
			// behind this connection's own in-flight operations — the write
			// round it unblocks may be what those operations are waiting on.
			// Pure notification: the client Posts it without a waiter, so no
			// response is sent.
			if err := r.DiscardPayload(); err != nil {
				return
			}
			s.leases.ack(conn, uint64(req.N))

		case wire.OpClose:
			if err := r.DiscardPayload(); err != nil {
				return
			}
			inflight.Wait() // every outstanding reply precedes the goodbye
			s.inflightOps.Add(1)
			if obj != nil {
				obj.Close()
				obj, opened = nil, false
			}
			sess.Close() // free the tenant's session slot promptly
			respond(&wire.Response{Seq: req.Seq, Status: wire.StatusOK})
			s.inflightOps.Add(-1)
			return

		default:
			// A queued request's payload lands straight in a pooled buffer
			// the worker releases after replying — no intake-side copy.
			qreq := req
			release := func() {}
			if payloadLen > 0 {
				buf, rel := wire.GetBuf(payloadLen)
				if err := r.ReadPayload(buf); err != nil {
					rel()
					return
				}
				qreq.Data, release = buf, rel
			}
			inflight.Add(1)
			s.inflightOps.Add(1)
			go func() {
				defer inflight.Done()
				defer s.inflightOps.Add(-1)
				handle(&qreq)
				release()
			}()
		}
	}
}
