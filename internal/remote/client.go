package remote

import (
	"fmt"
	"net"
	"sync/atomic"

	"repro/internal/ipc"
	"repro/internal/wire"
)

// Client is a Source backed by one object on a FileServer, reached over TCP.
// It is safe for concurrent use, and concurrent requests PIPELINE on the
// connection: each is tagged with a fresh Seq by an ipc.Mux and responses are
// matched as they arrive, so many exchanges share one round trip's wire time
// instead of queueing for a serialized connection.
type Client struct {
	conn   net.Conn
	mux    *ipc.Mux
	closed atomic.Bool
}

var _ Source = (*Client)(nil)

// Dial connects to the file server at addr and opens the named object.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial file server %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		mux:  ipc.NewMux(conn, conn, nil),
	}
	if _, _, err := c.call(&wire.Request{Op: wire.OpOpen, Data: []byte(name)}, nil); err != nil {
		c.mux.Close()
		conn.Close()
		return nil, fmt.Errorf("open remote object %q: %w", name, err)
	}
	return c, nil
}

// call performs one request/response exchange through the mux. Any response
// payload lands in dst (which may be nil); copied reports how much.
func (c *Client) call(req *wire.Request, dst []byte) (n int64, copied int, err error) {
	if c.closed.Load() {
		return 0, 0, ErrSourceClosed
	}
	resp, err := c.mux.RoundTrip(req, dst)
	if err != nil {
		if c.closed.Load() {
			return 0, 0, ErrSourceClosed
		}
		return 0, 0, err
	}
	if dst != nil {
		copied = len(resp.Data)
	}
	if werr := wire.ToError(req.Op, resp.Status, resp.Msg); werr != nil {
		return resp.N, copied, werr
	}
	return resp.N, copied, nil
}

// ReadAt implements Source.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		_, copied, err := c.call(&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)}, p[total:total+chunk])
		total += copied
		if err != nil {
			return total, err
		}
		if copied == 0 {
			break
		}
	}
	return total, nil
}

// WriteAt implements Source.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		n, _, err := c.call(&wire.Request{Op: wire.OpWrite, Off: off + int64(total), Data: p[total : total+chunk]}, nil)
		total += int(n)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, fmt.Errorf("remote write stalled at %d bytes", total)
		}
	}
	return total, nil
}

// Size implements Source.
func (c *Client) Size() (int64, error) {
	n, _, err := c.call(&wire.Request{Op: wire.OpSize}, nil)
	return n, err
}

// Truncate implements Source.
func (c *Client) Truncate(n int64) error {
	_, _, err := c.call(&wire.Request{Op: wire.OpTruncate, Off: n}, nil)
	return err
}

// Close implements Source, notifying the server and dropping the connection.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Best effort goodbye; the transport close is what matters. Closing the
	// connection also stops the mux's receive loop and fails any stragglers.
	c.mux.Post(&wire.Request{Op: wire.OpClose}, nil)
	c.mux.Close()
	return c.conn.Close()
}
