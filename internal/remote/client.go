package remote

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/wire"
)

// Client is a Source backed by one object on a FileServer, reached over TCP.
// It is safe for concurrent use; requests are serialized on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *wire.Reader
	w      *wire.Writer
	seq    uint32
	closed bool
}

var _ Source = (*Client)(nil)

// Dial connects to the file server at addr and opens the named object.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial file server %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		r:    wire.NewReader(conn),
		w:    wire.NewWriter(conn),
	}
	if _, _, err := c.call(&wire.Request{Op: wire.OpOpen, Data: []byte(name)}, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("open remote object %q: %w", name, err)
	}
	return c, nil
}

// call performs one request/response exchange. Any response payload is
// copied into dst (which may be nil) before the client lock is released —
// the response data in the read buffer is invalid once another caller's
// exchange begins.
func (c *Client) call(req *wire.Request, dst []byte) (n int64, copied int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, ErrSourceClosed
	}
	c.seq++
	req.Seq = c.seq
	if err := c.w.WriteRequest(req); err != nil {
		return 0, 0, fmt.Errorf("send %s: %w", req.Op, err)
	}
	resp, err := c.r.ReadResponse()
	if err != nil {
		return 0, 0, fmt.Errorf("receive %s reply: %w", req.Op, err)
	}
	if resp.Seq != req.Seq {
		return 0, 0, fmt.Errorf("reply sequence %d for request %d", resp.Seq, req.Seq)
	}
	copied = copy(dst, resp.Data)
	if werr := wire.ToError(req.Op, resp.Status, resp.Msg); werr != nil {
		return resp.N, copied, werr
	}
	return resp.N, copied, nil
}

// ReadAt implements Source.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		_, copied, err := c.call(&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)}, p[total:total+chunk])
		total += copied
		if err != nil {
			return total, err
		}
		if copied == 0 {
			break
		}
	}
	return total, nil
}

// WriteAt implements Source.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		n, _, err := c.call(&wire.Request{Op: wire.OpWrite, Off: off + int64(total), Data: p[total : total+chunk]}, nil)
		total += int(n)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, fmt.Errorf("remote write stalled at %d bytes", total)
		}
	}
	return total, nil
}

// Size implements Source.
func (c *Client) Size() (int64, error) {
	n, _, err := c.call(&wire.Request{Op: wire.OpSize}, nil)
	return n, err
}

// Truncate implements Source.
func (c *Client) Truncate(n int64) error {
	_, _, err := c.call(&wire.Request{Op: wire.OpTruncate, Off: n}, nil)
	return err
}

// Close implements Source, notifying the server and dropping the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	// Best effort goodbye; the transport close is what matters.
	c.seq++
	c.w.WriteRequest(&wire.Request{Op: wire.OpClose, Seq: c.seq})
	return c.conn.Close()
}
