package remote

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipc"
	"repro/internal/wire"
)

// DialOptions tunes the client's fault-tolerance envelope. The zero value
// selects the defaults below.
type DialOptions struct {
	// OpTimeout bounds each request/response exchange. Zero means no
	// per-operation deadline (an exchange can wait forever on a hung server).
	OpTimeout time.Duration
	// MaxRetries is how many times an idempotent operation re-dials and
	// replays after a transport failure. Zero selects the default (2);
	// negative disables retries entirely.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// reconnect attempts (equal jitter: each sleep is uniform in
	// [d/2, d], d doubling from Base up to Max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DialTimeout bounds each TCP connect. Zero selects the default (2s).
	DialTimeout time.Duration
}

const (
	defaultMaxRetries  = 2
	defaultBackoffBase = 5 * time.Millisecond
	defaultBackoffMax  = 250 * time.Millisecond
	defaultDialTimeout = 2 * time.Second
)

func (o DialOptions) withDefaults() DialOptions {
	if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = defaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = defaultBackoffMax
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	return o
}

// session is one live connection epoch: a TCP conn plus the mux pipelining
// exchanges over it. Sessions are replaced wholesale on transport failure;
// pointer identity tells dropSession whether the failure it is reporting is
// stale (another caller already replaced the session).
type session struct {
	conn net.Conn
	mux  *ipc.Mux
}

func (s *session) teardown() {
	s.mux.Close()
	s.conn.Close()
}

// Client is a Source backed by one object on a FileServer, reached over TCP.
// It is safe for concurrent use, and concurrent requests PIPELINE on the
// connection: each is tagged with a fresh Seq by an ipc.Mux and responses are
// matched as they arrive, so many exchanges share one round trip's wire time
// instead of queueing for a serialized connection.
//
// The client is fault tolerant: when the connection drops it redials with
// exponential backoff and replays IDEMPOTENT operations (reads, size) up to
// MaxRetries times. Writes and truncates are never replayed after the request
// may have reached the server — the server could have applied the first copy —
// so they fail fast on transport errors; the NEXT operation heals the
// connection. Application-level errors (the server answered with a status)
// are never retried.
type Client struct {
	addr string
	name string
	opts DialOptions

	closed atomic.Bool

	mu   sync.Mutex // guards sess, dialing, and revoke
	sess *session

	// revoke, when set, observes lease-revoke pushes from the server before
	// the client acknowledges them — the cache-invalidation hook. It runs on
	// the session's receive loop and must not block on another exchange.
	revoke func(name string, epoch, session uint64)

	reconnects atomic.Uint64
	inflight   atomic.Int64
}

var _ Source = (*Client)(nil)

// Dial connects to the file server at addr and opens the named object, with
// default fault-tolerance options.
func Dial(addr, name string) (*Client, error) {
	return DialWith(addr, name, DialOptions{})
}

// DialWith is Dial with explicit DialOptions.
func DialWith(addr, name string, opts DialOptions) (*Client, error) {
	c := &Client{addr: addr, name: name, opts: opts.withDefaults()}
	c.mu.Lock()
	_, err := c.sessionLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("open remote object %q: %w", name, err)
	}
	return c, nil
}

// connect establishes one fresh session: TCP dial plus the OpOpen handshake
// re-binding the object, both under the configured deadlines.
func (c *Client) connect() (*session, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial file server %s: %w", c.addr, err)
	}
	s := &session{conn: conn, mux: ipc.NewMux(conn, conn, nil)}
	// The session's id is the reconnect count at creation: connect runs under
	// c.mu and dropSession (the only bumper) also needs c.mu, so the value is
	// stable here and matches what Reconnects() reports while this session is
	// the live one. Pushes carry it so a handler can tell a revoke for the
	// lease it holds from a straggler delivered by a session already replaced.
	sid := c.reconnects.Load()
	// Every session — including pooled, currently idle ones — answers
	// lease-revoke pushes: the revoke hook (if any) invalidates first, then
	// the ack is posted. Without the auto-ack an idle pooled connection
	// holding a stale lease would stall every conflicting write until the
	// server's revoke timeout evicted it.
	s.mux.SetPushHandler(func(resp wire.Response) {
		c.mu.Lock()
		h := c.revoke
		c.mu.Unlock()
		if h != nil {
			h(string(resp.Data), uint64(resp.N), sid)
		}
		s.mux.Post(&wire.Request{Op: wire.OpLeaseAck, N: resp.N}, nil)
	})
	ctx, cancel := c.opCtx()
	resp, err := s.mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpOpen, Data: []byte(c.name)}, nil)
	cancel()
	if err == nil {
		err = wire.ToError(wire.OpOpen, resp.Status, resp.Msg)
	}
	if err != nil {
		s.teardown()
		return nil, fmt.Errorf("reopen %q: %w", c.name, err)
	}
	return s, nil
}

func (c *Client) opCtx() (context.Context, context.CancelFunc) {
	if c.opts.OpTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), c.opts.OpTimeout)
}

// sessionLocked returns the live session, dialing a fresh one if none exists.
// Callers hold c.mu.
func (c *Client) sessionLocked() (*session, error) {
	if c.closed.Load() {
		return nil, ErrSourceClosed
	}
	if c.sess != nil {
		return c.sess, nil
	}
	s, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.sess = s
	return s, nil
}

// getSession returns the current session, establishing one when needed. Only
// the dial is serialized; exchanges pipeline outside the lock.
func (c *Client) getSession() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionLocked()
}

// dropSession retires s after a transport failure. Stale reports (another
// caller already replaced the session) are ignored, so one failure epoch
// costs one reconnect, not one per in-flight exchange.
func (c *Client) dropSession(s *session) {
	c.mu.Lock()
	if c.sess == s {
		c.sess = nil
		c.reconnects.Add(1)
	} else {
		s = nil // someone else already tore it down
	}
	c.mu.Unlock()
	if s != nil {
		s.teardown()
	}
}

// Reconnects reports how many sessions have been retired after transport
// failures. Beyond chaos observability, it is the client's SESSION EPOCH: a
// lease is only as live as the session it was granted on, so lease holders
// record this value at grant time and treat any change as lease loss.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// InFlight reports how many exchanges are currently outstanding — the load
// gauge power-of-two-choices replica selection compares.
func (c *Client) InFlight() int64 { return c.inflight.Load() }

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// SetRevokeHandler installs h to observe lease-revoke pushes before they are
// acknowledged. h runs on the session's receive loop: it must not wait for
// another exchange's response. Install it BEFORE acquiring a lease, so no
// revoke can slip through unobserved. session identifies the session the
// push arrived on — the Reconnects() value current while that session is
// live — so h can attribute the revoke to the lease granted on it rather
// than to one re-acquired since.
func (c *Client) SetRevokeHandler(h func(name string, epoch, session uint64)) {
	c.mu.Lock()
	c.revoke = h
	c.mu.Unlock()
}

// SessionLive reports whether the session identified by session (a
// Reconnects() value recorded when a lease was granted) is still the
// client's current one AND healthy — its receive loop has observed no
// transport failure. The mux fails as soon as the connection dies, even with
// no exchange outstanding, so this is how a lease holder serving purely from
// cache learns its revoke channel is gone: a dead or replaced session means
// the server has already forgotten the lease and cached data granted under
// it must not be trusted.
func (c *Client) SessionLive(session uint64) bool {
	c.mu.Lock()
	s := c.sess
	c.mu.Unlock()
	return s != nil && c.reconnects.Load() == session && s.mux.Err() == nil
}

// IsRefusal reports whether err is a typed admission-control refusal
// (quota, overload, shutdown) — a server's deliberate policy decision.
// Refusals are never retried and never trigger cross-replica failover:
// routing around admission control would defeat it.
func IsRefusal(err error) bool {
	return errors.Is(err, wire.ErrQuotaExceeded) ||
		errors.Is(err, wire.ErrOverloaded) ||
		errors.Is(err, wire.ErrShuttingDown)
}

// Lease acquires (or refreshes) a read lease on the bound object and returns
// its epoch. The caller tags cached data with the epoch; a lease-revoke push
// carrying a higher epoch invalidates it. Idempotent — re-requesting after a
// transport failure just re-grants on the new session.
func (c *Client) Lease() (uint64, error) {
	n, _, err := c.call(&wire.Request{Op: wire.OpLease}, nil, true)
	return uint64(n), err
}

// Apply forwards a primary-ordered mutation to this replica: kind is
// wire.ApplyWrite (data at off) or wire.ApplyTruncate (truncate to off).
// Like writes it is never replayed after the request may have reached the
// server.
func (c *Client) Apply(kind, off int64, data []byte) (int64, error) {
	n, _, err := c.call(&wire.Request{Op: wire.OpApply, N: kind, Off: off, Data: data}, nil, false)
	return n, err
}

// FetchShardMap dials addr and retrieves the fleet shard map it serves —
// no object binding needed, so a client can bootstrap routing from any one
// shard address. It returns the encoded map and its epoch.
func FetchShardMap(addr string, opts DialOptions) ([]byte, uint64, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("dial shard %s: %w", addr, err)
	}
	mux := ipc.NewMux(conn, conn, nil)
	defer func() {
		mux.Close()
		conn.Close()
	}()
	ctx := context.Background()
	if opts.OpTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.OpTimeout)
		defer cancel()
	}
	buf, rel := wire.GetBuf(1 << 16) // maps are small: a few KiB even at 64 shards
	defer rel()
	resp, err := mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpShardMap}, buf)
	if err == nil {
		err = wire.ToError(wire.OpShardMap, resp.Status, resp.Msg)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("fetch shard map from %s: %w", addr, err)
	}
	return append([]byte(nil), resp.Data...), uint64(resp.N), nil
}

// backoff sleeps the attempt-th reconnect delay: exponential growth from
// BackoffBase capped at BackoffMax, with equal jitter so a fleet of waiters
// doesn't thunder back in lockstep.
func (c *Client) backoff(attempt int) {
	d := c.opts.BackoffBase << attempt
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	half := d / 2
	time.Sleep(half + time.Duration(rand.Int63n(int64(half)+1)))
}

// call performs one request/response exchange, transparently redialing and —
// for idempotent operations — replaying across transport failures. Any
// response payload lands in dst (which may be nil); copied reports how much.
func (c *Client) call(req *wire.Request, dst []byte, idempotent bool) (n int64, copied int, err error) {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	for attempt := 0; ; attempt++ {
		s, serr := c.getSession()
		if serr != nil {
			// The operation was never sent, so retrying a failed dial is
			// safe for every op, idempotent or not — EXCEPT when the server
			// answered the redial's OpOpen with a typed policy refusal
			// (quota, overload, shutdown): that is a deliberate decision, not
			// a fault, and retrying it — here or against a replica — would
			// turn admission control into a retry storm. It surfaces
			// immediately.
			if serr == ErrSourceClosed || IsRefusal(serr) || attempt >= c.opts.MaxRetries {
				return 0, 0, serr
			}
			c.backoff(attempt)
			continue
		}

		ctx, cancel := c.opCtx()
		resp, rerr := s.mux.RoundTripContext(ctx, req, dst)
		cancel()
		if rerr == nil {
			if dst != nil {
				copied = len(resp.Data)
			}
			// The server answered: any error here is the application's,
			// deterministic on replay — never retried.
			if werr := wire.ToError(req.Op, resp.Status, resp.Msg); werr != nil {
				return resp.N, copied, werr
			}
			return resp.N, copied, nil
		}

		// Transport failure (connection lost, mux poisoned, or deadline
		// expired on a hung exchange). The session is unusable or suspect:
		// retire it so the next attempt — ours or a later call's — redials.
		c.dropSession(s)
		if c.closed.Load() {
			return 0, 0, ErrSourceClosed
		}
		if !idempotent {
			return 0, 0, fmt.Errorf("remote %s not replayed (connection failed mid-exchange, may have applied): %w", req.Op, rerr)
		}
		if attempt >= c.opts.MaxRetries {
			return 0, 0, fmt.Errorf("remote %s failed after %d attempts: %w", req.Op, attempt+1, rerr)
		}
		c.backoff(attempt)
	}
}

// ReadAt implements Source.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		_, copied, err := c.call(&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)}, p[total:total+chunk], true)
		total += copied
		if err != nil {
			return total, err
		}
		if copied == 0 {
			break
		}
	}
	return total, nil
}

// WriteAt implements Source.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		n, _, err := c.call(&wire.Request{Op: wire.OpWrite, Off: off + int64(total), Data: p[total : total+chunk]}, nil, false)
		total += int(n)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, fmt.Errorf("remote write stalled at %d bytes", total)
		}
	}
	return total, nil
}

// Size implements Source.
func (c *Client) Size() (int64, error) {
	n, _, err := c.call(&wire.Request{Op: wire.OpSize}, nil, true)
	return n, err
}

// Truncate implements Source.
func (c *Client) Truncate(n int64) error {
	_, _, err := c.call(&wire.Request{Op: wire.OpTruncate, Off: n}, nil, false)
	return err
}

// Close implements Source, notifying the server and dropping the connection.
// In-flight exchanges are released with ErrSourceClosed; none may replay.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.mu.Lock()
	s := c.sess
	c.sess = nil
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	// Best effort goodbye; the transport close is what matters. Closing the
	// connection also stops the mux's receive loop and fails any stragglers.
	s.mux.Post(&wire.Request{Op: wire.OpClose}, nil)
	s.teardown()
	return nil
}
