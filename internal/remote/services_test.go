package remote

import (
	"bytes"
	"strings"
	"testing"
)

func startQuotes(t *testing.T, initial []Quote) (*QuoteServer, string) {
	t.Helper()
	srv := NewQuoteServer(initial)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("quote server start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestFetchQuotes(t *testing.T) {
	_, addr := startQuotes(t, []Quote{
		{Symbol: "MSFT", Cents: 11550},
		{Symbol: "AAPL", Cents: 9825},
	})
	got, err := FetchQuotes(addr)
	if err != nil {
		t.Fatalf("FetchQuotes: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d quotes, want 2", len(got))
	}
	// The listing is sorted by symbol.
	if got[0].Symbol != "AAPL" || got[0].Cents != 9825 {
		t.Errorf("quote[0] = %+v", got[0])
	}
	if got[1].Symbol != "MSFT" || got[1].Cents != 11550 {
		t.Errorf("quote[1] = %+v", got[1])
	}
}

func TestFetchQuotesEmpty(t *testing.T) {
	_, addr := startQuotes(t, nil)
	got, err := FetchQuotes(addr)
	if err != nil || len(got) != 0 {
		t.Errorf("FetchQuotes = (%v, %v), want empty", got, err)
	}
}

func TestQuoteTickChangesPrices(t *testing.T) {
	srv, addr := startQuotes(t, []Quote{{Symbol: "X", Cents: 10000}})
	before, err := FetchQuotes(addr)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		srv.Tick()
		after, err := FetchQuotes(addr)
		if err != nil {
			t.Fatal(err)
		}
		changed = after[0].Cents != before[0].Cents
	}
	if !changed {
		t.Error("10 ticks never moved the price")
	}
	// Prices stay positive under any walk.
	for i := 0; i < 200; i++ {
		srv.Tick()
	}
	final := srv.Snapshot()
	if final[0].Cents < 1 {
		t.Errorf("price fell to %d", final[0].Cents)
	}
}

func TestFormatQuotes(t *testing.T) {
	got := FormatQuotes([]Quote{
		{Symbol: "AAPL", Cents: 9825},
		{Symbol: "MSFT", Cents: 11501},
	})
	want := "AAPL\t98.25\nMSFT\t115.01\n"
	if string(got) != want {
		t.Errorf("FormatQuotes = %q, want %q", got, want)
	}
}

func TestQuoteServerSetQuoteVisible(t *testing.T) {
	srv, addr := startQuotes(t, nil)
	srv.SetQuote("NEW", 777)
	got, err := FetchQuotes(addr)
	if err != nil || len(got) != 1 || got[0].Cents != 777 {
		t.Errorf("FetchQuotes = (%v, %v)", got, err)
	}
}

func startMail(t *testing.T) (*MailServer, string) {
	t.Helper()
	srv := NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("mail server start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestMailDeliverAndFetch(t *testing.T) {
	srv, addr := startMail(t)
	msg1 := []byte("To: u@x\n\nfirst message\n")
	msg2 := []byte("To: u@x\n\nsecond\nmessage with\nlines\n")
	if err := DeliverMail(addr, "u", msg1); err != nil {
		t.Fatalf("DeliverMail: %v", err)
	}
	if err := DeliverMail(addr, "u", msg2); err != nil {
		t.Fatalf("DeliverMail: %v", err)
	}
	if n := srv.Count("u"); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}

	got, err := FetchMail(addr, "u", false /* take */)
	if err != nil {
		t.Fatalf("FetchMail: %v", err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], msg1) || !bytes.Equal(got[1], msg2) {
		t.Errorf("FetchMail = %q", got)
	}
	// RETR leaves messages in place.
	if n := srv.Count("u"); n != 2 {
		t.Errorf("Count after RETR = %d, want 2", n)
	}
}

func TestMailTakeDrainsMailbox(t *testing.T) {
	srv, addr := startMail(t)
	srv.Deposit("inbox", []byte("hello"))
	got, err := FetchMail(addr, "inbox", true /* take */)
	if err != nil || len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("FetchMail = (%q, %v)", got, err)
	}
	if n := srv.Count("inbox"); n != 0 {
		t.Errorf("Count after TAKE = %d, want 0", n)
	}
	// Taking from an empty mailbox is fine.
	got, err = FetchMail(addr, "inbox", true)
	if err != nil || len(got) != 0 {
		t.Errorf("second TAKE = (%q, %v)", got, err)
	}
}

func TestMailSeparateMailboxes(t *testing.T) {
	srv, addr := startMail(t)
	srv.Deposit("alice", []byte("for alice"))
	srv.Deposit("bob", []byte("for bob"))
	got, err := FetchMail(addr, "alice", false)
	if err != nil || len(got) != 1 || string(got[0]) != "for alice" {
		t.Errorf("alice = (%q, %v)", got, err)
	}
	if srv.Count("bob") != 1 {
		t.Error("bob's mailbox disturbed")
	}
}

func TestMailBinaryMessageSurvives(t *testing.T) {
	srv, addr := startMail(t)
	msg := []byte{0, 1, '\n', 2, '\r', '\n', 255, 254}
	srv.Deposit("bin", msg)
	got, err := FetchMail(addr, "bin", false)
	if err != nil || len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Errorf("binary round trip = (%v, %v)", got, err)
	}
}

func TestMailDepositCopies(t *testing.T) {
	srv, _ := startMail(t)
	raw := []byte("mutable")
	srv.Deposit("m", raw)
	raw[0] = 'X'
	msgs := srv.Messages("m")
	if string(msgs[0]) != "mutable" {
		t.Error("Deposit aliased caller bytes")
	}
}

func TestMailServerRejectsBadCommands(t *testing.T) {
	_, addr := startMail(t)
	// FetchMail against a bogus mailbox command path: craft via DeliverMail
	// of an oversized length is awkward; instead check the error surface of
	// FetchMail when the server replies -ERR (unknown command is easiest to
	// trigger through a raw dial, but the client only sends valid verbs), so
	// assert a name with spaces fails cleanly.
	if err := DeliverMail(addr, "bad box", []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "rejected") {
		t.Errorf("DeliverMail to malformed mailbox err = %v", err)
	}
}
