package remote

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"repro/internal/backend/conformance"
)

func startObjectServer(t *testing.T) (*ObjectServer, *httptest.Server) {
	t.Helper()
	obj := NewObjectServer()
	srv := httptest.NewServer(obj)
	t.Cleanup(srv.Close)
	return obj, srv
}

func TestHTTPSourceReadAt(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/doc", []byte("0123456789"))
	s := NewHTTPSource(srv.URL+"/doc", srv.Client())
	defer s.Close()

	buf := make([]byte, 4)
	if n, err := s.ReadAt(buf, 3); n != 4 || err != nil || string(buf) != "3456" {
		t.Errorf("ReadAt = (%d, %v, %q)", n, err, buf)
	}
	// Short read at the tail.
	n, err := s.ReadAt(buf, 8)
	if n != 2 || !errors.Is(err, io.EOF) || string(buf[:n]) != "89" {
		t.Errorf("tail ReadAt = (%d, %v, %q)", n, err, buf[:n])
	}
	// Past the end.
	if _, err := s.ReadAt(buf, 50); !errors.Is(err, io.EOF) {
		t.Errorf("past-end err = %v, want EOF", err)
	}
	// Zero-length read.
	if n, err := s.ReadAt(nil, 0); n != 0 || err != nil {
		t.Errorf("empty ReadAt = (%d, %v)", n, err)
	}
}

func TestHTTPSourceSize(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/doc", []byte("hello"))
	s := NewHTTPSource(srv.URL+"/doc", srv.Client())
	defer s.Close()
	if size, err := s.Size(); size != 5 || err != nil {
		t.Errorf("Size = (%d, %v)", size, err)
	}
}

func TestHTTPSourceWriteAt(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/doc", []byte("aaaaaaaa"))
	s := NewHTTPSource(srv.URL+"/doc", srv.Client())
	defer s.Close()

	if n, err := s.WriteAt([]byte("BB"), 3); n != 2 || err != nil {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got, _ := obj.Get("/doc")
	if string(got) != "aaaBBaaa" {
		t.Errorf("object = %q", got)
	}
	// Extending write.
	if _, err := s.WriteAt([]byte("tail"), 10); err != nil {
		t.Fatal(err)
	}
	got, _ = obj.Get("/doc")
	if len(got) != 14 || string(got[10:]) != "tail" {
		t.Errorf("extended object = %q", got)
	}
}

func TestHTTPSourceWriteCreatesMissing(t *testing.T) {
	obj, srv := startObjectServer(t)
	s := NewHTTPSource(srv.URL+"/new", srv.Client())
	defer s.Close()
	if _, err := s.WriteAt([]byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	got, ok := obj.Get("/new")
	if !ok || string(got) != "fresh" {
		t.Errorf("object = (%q, %v)", got, ok)
	}
}

func TestHTTPSourceTruncate(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/doc", []byte("0123456789"))
	s := NewHTTPSource(srv.URL+"/doc", srv.Client())
	defer s.Close()
	if err := s.Truncate(4); err != nil {
		t.Fatal(err)
	}
	got, _ := obj.Get("/doc")
	if string(got) != "0123" {
		t.Errorf("after shrink = %q", got)
	}
	if err := s.Truncate(6); err != nil {
		t.Fatal(err)
	}
	got, _ = obj.Get("/doc")
	if len(got) != 6 || got[5] != 0 {
		t.Errorf("after grow = %v", got)
	}
}

func TestHTTPSourceClosed(t *testing.T) {
	_, srv := startObjectServer(t)
	s := NewHTTPSource(srv.URL+"/doc", srv.Client())
	s.Close()
	if _, err := s.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("ReadAt err = %v, want ErrSourceClosed", err)
	}
	if _, err := s.Size(); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("Size err = %v, want ErrSourceClosed", err)
	}
}

func TestHTTPSourceMissingObject(t *testing.T) {
	_, srv := startObjectServer(t)
	s := NewHTTPSource(srv.URL+"/absent", srv.Client())
	defer s.Close()
	if _, err := s.ReadAt(make([]byte, 1), 0); err == nil {
		t.Error("ReadAt of missing object succeeded")
	}
}

func TestHTTPSourceAgainstRangeIgnoringServer(t *testing.T) {
	// A plain file-style handler that ignores Range: the client must skip
	// to the offset itself.
	content := []byte("abcdefghij")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(content)
	}))
	defer srv.Close()
	s := NewHTTPSource(srv.URL, srv.Client())
	defer s.Close()
	buf := make([]byte, 3)
	if n, err := s.ReadAt(buf, 4); n != 3 || err != nil || string(buf) != "efg" {
		t.Errorf("ReadAt = (%d, %v, %q)", n, err, buf)
	}
}

func TestHTTPSourceRoundTripProperty(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/p", nil)
	s := NewHTTPSource(srv.URL+"/p", srv.Client())
	defer s.Close()

	f := func(data []byte, off uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 512 {
			data = data[:512]
		}
		o := int64(off)
		if _, err := s.WriteAt(data, o); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if _, err := s.ReadAt(back, o); err != nil && !errors.Is(err, io.EOF) {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParseRange(t *testing.T) {
	tests := []struct {
		give      string
		size      int64
		wantStart int64
		wantEnd   int64
		wantOK    bool
	}{
		{give: "bytes=0-3", size: 10, wantStart: 0, wantEnd: 3, wantOK: true},
		{give: "bytes=5-", size: 10, wantStart: 5, wantEnd: 9, wantOK: true},
		{give: "bytes=8-99", size: 10, wantStart: 8, wantEnd: 9, wantOK: true},
		{give: "bytes=10-12", size: 10, wantOK: false},
		{give: "bytes=-5", size: 10, wantOK: false},
		{give: "bytes=3-1", size: 10, wantOK: false},
		{give: "bytes=0-1,4-5", size: 10, wantOK: false},
		{give: "items=0-1", size: 10, wantOK: false},
		{give: "bytes=x-y", size: 10, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			start, end, ok := parseRange(tt.give, tt.size)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && (start != tt.wantStart || end != tt.wantEnd) {
				t.Errorf("range = [%d,%d], want [%d,%d]", start, end, tt.wantStart, tt.wantEnd)
			}
		})
	}
}

func TestObjectServerDelete(t *testing.T) {
	obj, srv := startObjectServer(t)
	obj.Put("/gone", []byte("x"))
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/gone", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := obj.Get("/gone"); ok {
		t.Error("object survived DELETE")
	}
}

func TestObjectServerMethodNotAllowed(t *testing.T) {
	_, srv := startObjectServer(t)
	req, err := http.NewRequest(http.MethodPatch, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestHTTPSourceConformanceRO runs the shared read-only conformance profile
// over HTTPSource: ranged-GET offset math, EOF mapping from 416 responses,
// zero-length probes, and concurrent readers all match os.File semantics.
func TestHTTPSourceConformanceRO(t *testing.T) {
	conformance.RunRO(t, func(t *testing.T, content []byte) conformance.Object {
		obj, srv := startObjectServer(t)
		obj.Put("/obj", content)
		return NewHTTPSource(srv.URL+"/obj", srv.Client())
	})
}
