package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestClientDeadlineOnHungServer: the server hangs mid-exchange; the
// configured per-operation deadline must bound the wait, and the handle must
// be usable again after the automatic reconnect.
func TestClientDeadlineOnHungServer(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("remote contents"))

	c, err := DialWith(addr, "obj", DialOptions{
		OpTimeout:  75 * time.Millisecond,
		MaxRetries: -1, // isolate the deadline: no transparent replay
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.StallNext(400 * time.Millisecond)
	buf := make([]byte, 6)
	start := time.Now()
	_, rerr := c.ReadAt(buf, 0)
	waited := time.Since(start)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("hung read err = %v, want DeadlineExceeded", rerr)
	}
	if waited > 2*time.Second {
		t.Fatalf("deadline took %v; hung exchange effectively unbounded", waited)
	}

	// The suspect session was retired; the very next call redials and works.
	if n, err := c.ReadAt(buf, 0); err != nil || string(buf[:n]) != "remote" {
		t.Fatalf("read after reconnect = (%q, %v)", buf[:n], err)
	}
	if c.Reconnects() == 0 {
		t.Fatal("hung session was not retired")
	}
}

// TestClientReplaysReadAcrossHang: with retries enabled, one client call
// absorbs the hang entirely — deadline, reconnect, replay — and succeeds.
func TestClientReplaysReadAcrossHang(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("remote contents"))

	c, err := DialWith(addr, "obj", DialOptions{OpTimeout: 75 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.StallNext(400 * time.Millisecond) // one-shot: the replay sails through
	buf := make([]byte, 15)
	n, rerr := c.ReadAt(buf, 0)
	if rerr != nil || string(buf[:n]) != "remote contents" {
		t.Fatalf("read across hang = (%q, %v)", buf[:n], rerr)
	}
	if c.Reconnects() == 0 {
		t.Fatal("read succeeded without the expected reconnect")
	}
}

// TestClientWriteFailsFastOnDrop: non-idempotent operations must NOT replay
// once the request may have reached the server.
func TestClientWriteFailsFastOnDrop(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("0123456789"))

	proxy := faultinject.NewProxy(addr)
	paddr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialWith(paddr, "obj", DialOptions{OpTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.StallNext(300 * time.Millisecond) // hold the exchange so the drop lands mid-flight
	done := make(chan error, 1)
	go func() {
		_, werr := c.WriteAt([]byte("XX"), 0)
		done <- werr
	}()
	time.Sleep(50 * time.Millisecond)
	proxy.DropActive()

	select {
	case werr := <-done:
		if werr == nil {
			t.Fatal("write reported success across a dropped connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write hung after connection drop")
	}

	// A later read heals the connection; the write was reported failed, so
	// whether it applied is the caller's problem — the channel must recover.
	buf := make([]byte, 2)
	if _, err := c.ReadAt(buf, 2); err != nil {
		t.Fatalf("read after failed write: %v", err)
	}
}

// TestClientServerKilledMidPipeline is the acceptance scenario: the file
// server dies under a pipeline of in-flight reads. Every in-flight call must
// error within the deadline envelope — no orphaned waiter — and once a
// server is back on the same address, a subsequent read succeeds through
// automatic reconnect.
func TestClientServerKilledMidPipeline(t *testing.T) {
	faultinject.LeakCheck(t)
	srv := NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("the quick brown fox jumps over the lazy dog")
	srv.Put("obj", content)
	srv.SetLatency(100 * time.Millisecond) // hold replies so the kill lands mid-pipeline

	const opTimeout = 500 * time.Millisecond
	c, err := DialWith(addr, "obj", DialOptions{OpTimeout: opTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	durations := make([]time.Duration, readers)
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 4)
			_, errs[i] = c.ReadAt(buf, int64(i))
			durations[i] = time.Since(start)
		}(i)
	}

	time.Sleep(30 * time.Millisecond) // let the pipeline fill
	srv.Kill()                        // kill the server under it, mid-frame

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	// Envelope: per attempt up to opTimeout, plus retries and backoff.
	envelope := time.Duration(1+defaultMaxRetries)*opTimeout + 2*time.Second
	select {
	case <-waitDone:
	case <-time.After(envelope):
		t.Fatal("in-flight reads still blocked after the server died: waiters orphaned")
	}
	for i, rerr := range errs {
		if rerr == nil {
			t.Errorf("read %d reported success against a dead server", i)
		}
		if durations[i] > envelope {
			t.Errorf("read %d took %v, beyond the deadline envelope %v", i, durations[i], envelope)
		}
	}

	// Bring a server back on the SAME address; the next read must heal.
	srv2 := NewFileServer()
	if _, err := srv2.Start(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	srv2.Put("obj", content)

	buf := make([]byte, 9)
	recoverStart := time.Now()
	n, rerr := c.ReadAt(buf, 4)
	if rerr != nil || string(buf[:n]) != "quick bro" {
		t.Fatalf("read after server restart = (%q, %v)", buf[:n], rerr)
	}
	t.Logf("recovered %v after restart; %d reconnects", time.Since(recoverStart), c.Reconnects())
	if c.Reconnects() == 0 {
		t.Fatal("recovery did not go through reconnect")
	}
}

// TestClientDropReleasesPipelinedWaiters: a wire-level connection drop with
// a full pipeline in flight must release every waiter and leak nothing; the
// reads themselves succeed via replay.
func TestClientDropReleasesPipelinedWaiters(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	content := []byte("abcdefghijklmnopqrstuvwxyz")
	srv.Put("obj", content)

	proxy := faultinject.NewProxy(addr)
	paddr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialWith(paddr, "obj", DialOptions{OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.SetLatency(80 * time.Millisecond)
	const readers = 8
	var wg sync.WaitGroup
	fails := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 1)
			n, rerr := c.ReadAt(buf, int64(i))
			if rerr != nil {
				fails <- fmt.Errorf("read %d: %w", i, rerr)
				return
			}
			if n != 1 || buf[0] != content[i] {
				fails <- fmt.Errorf("read %d returned %q", i, buf[:n])
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	proxy.DropActive()
	srv.SetLatency(0)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipelined reads hung after connection drop")
	}
	close(fails)
	for ferr := range fails {
		t.Error(ferr)
	}
	if c.Reconnects() == 0 {
		t.Fatal("pipeline recovered without a reconnect?")
	}
}

// TestClientTornResponseFrame: the connection dies mid-frame — the client
// received a torn response prefix. The mux must fail the session (never
// deliver partial bytes as a response), and the client must recover.
func TestClientTornResponseFrame(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("remote contents"))

	proxy := faultinject.NewProxy(addr)
	paddr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialWith(paddr, "obj", DialOptions{OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	proxy.TruncateNextResponse(3) // tear the next response frame
	buf := make([]byte, 6)
	n, rerr := c.ReadAt(buf, 0)
	// Replay may heal the read entirely (idempotent); either way the data
	// must be right if reported right.
	if rerr == nil && string(buf[:n]) != "remote" {
		t.Fatalf("torn frame delivered corrupt data: %q", buf[:n])
	}
	if n, err := c.ReadAt(buf, 0); err != nil || string(buf[:n]) != "remote" {
		t.Fatalf("read after torn frame = (%q, %v)", buf[:n], err)
	}
}

// TestClientCloseRacesInflight: Close while a pipeline is in flight must
// release every call promptly — with ErrSourceClosed or a transport error,
// never a hang — and later calls report ErrSourceClosed.
func TestClientCloseRacesInflight(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("abcdefghijklmnop"))
	srv.SetLatency(60 * time.Millisecond)

	c, err := DialWith(addr, "obj", DialOptions{OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 2)
			c.ReadAt(buf, int64(i)) // success or error both fine; hanging is not
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight reads hung across Close")
	}

	if _, err := c.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrSourceClosed) {
		t.Fatalf("read after Close = %v, want ErrSourceClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	srv.SetLatency(0)
}
