package remote

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestLeaseEpochAdvancesWithoutHolders pins the gap-write invalidation rule:
// the lease epoch advances on EVERY write round, even when nobody holds a
// lease at the time. A client whose lease lapsed (connection drop) and who
// re-leases after a gap write must receive an epoch ahead of the one its
// cached blocks are tagged with — at the old epoch they would validate again
// and serve the pre-write bytes forever.
func TestLeaseEpochAdvancesWithoutHolders(t *testing.T) {
	lt := newLeaseTable(0)
	conn := new(int)

	e0 := lt.grant(conn, "obj", func(uint64) {}, func() {})
	if e0 == 0 {
		t.Fatal("grant returned epoch 0")
	}

	// The connection drops: the lease lapses with it.
	lt.dropConn(conn)

	// A write lands during the gap — no holders, so no revokes, but the
	// epoch must still advance.
	end := lt.beginWrite("obj")
	end()

	e1 := lt.grant(conn, "obj", func(uint64) {}, func() {})
	if e1 <= e0 {
		t.Fatalf("re-grant after gap write returned epoch %d, want > %d — "+
			"blocks cached before the write would validate again", e1, e0)
	}
}

// staticMap is a minimal ShardMap for server-side role tests: fixed owners
// for every name.
type staticMap struct{ owners []string }

func (m staticMap) Owners(string) []string { return m.owners }
func (m staticMap) Epoch() uint64          { return 1 }
func (m staticMap) Encode() []byte         { return []byte("static") }

// TestApplyRefusedOutsideFleetRole: OpApply is the primary→replica
// replication channel, not a client write path. A server that is not a
// fleet member, or is the object's primary, or does not own the object at
// all must refuse it — otherwise any client could write directly to a
// replica, bypassing the primary's write ordering and lease revocation and
// silently diverging the copies.
func TestApplyRefusedOutsideFleetRole(t *testing.T) {
	checkRefused := func(t *testing.T, srv *FileServer, addr, want string) {
		t.Helper()
		c, err := Dial(addr, "obj")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Apply(wire.ApplyWrite, 0, []byte("forged")); err == nil {
			t.Fatal("direct OpApply accepted, want refusal")
		} else if !strings.Contains(err.Error(), want) {
			t.Fatalf("refusal = %v, want it to mention %q", err, want)
		}
		// The store must be untouched by the refused apply.
		if data, ok := srv.Get("obj"); ok && string(data) == "forged" {
			t.Fatal("refused apply still mutated the store")
		}
	}

	t.Run("plain server", func(t *testing.T) {
		srv, addr := startServer(t)
		checkRefused(t, srv, addr, "not a fleet member")
	})

	t.Run("primary", func(t *testing.T) {
		srv, addr := startServer(t)
		srv.SetFleet(staticMap{owners: []string{addr, "127.0.0.1:1"}}, addr)
		checkRefused(t, srv, addr, "primary orders writes")
	})

	t.Run("non-owner", func(t *testing.T) {
		srv, addr := startServer(t)
		srv.SetFleet(staticMap{owners: []string{"127.0.0.1:1", "127.0.0.1:2"}}, addr)
		checkRefused(t, srv, addr, "not an owner")
	})

	t.Run("replica accepts", func(t *testing.T) {
		srv, addr := startServer(t)
		srv.SetFleet(staticMap{owners: []string{"127.0.0.1:1", addr}}, addr)
		c, err := Dial(addr, "obj")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Apply(wire.ApplyWrite, 0, []byte("replicated")); err != nil {
			t.Fatalf("apply on a replica: %v", err)
		}
		if data, ok := srv.Get("obj"); !ok || string(data) != "replicated" {
			t.Fatalf("replica store after apply = (%q, %v)", data, ok)
		}
	})
}
